// Self-healing wrapper around the MW node state machine.
//
// The paper's protocol assumes reliable, static nodes; X14 shows that a
// leader crashing mid-run permanently stalls the requesters it orphaned.
// SelfHealingNode adds three mechanisms, all local and heuristic (safety
// stays the protocol's; liveness is restored without a proof claim):
//
//  1. Failure detection — while in state R the wrapper tracks beacon silence
//     from the recorded leader; after a suspect timeout (exponential backoff
//     across failovers) the leader is declared dead.
//  2. Leader failover — a suspecting requester re-enters leader election
//     from A_0 (MwNode::restart_election) instead of waiting forever; it
//     re-acquires a color range from another leader or self-promotes. Stale
//     competitor mirrors are pruned on the same timeout so a crashed
//     competitor cannot depress χ(P_v) indefinitely.
//  3. Fast dynamic join — a late arrival listens for color beacons, picks a
//     locally free color, and beacons it tentatively (M_J) while watching
//     for collisions. Joiner/joiner ties break by id (lower id keeps the
//     color); an established M_C beacon always wins. If the listen phase
//     overhears competition/request traffic the neighborhood has not
//     converged and the joiner falls back to the full MW protocol.
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "core/mw_node.h"
#include "core/mw_params.h"
#include "core/recovery_types.h"
#include "obs/observation.h"
#include "radio/protocol.h"

namespace sinrcolor::robust {

class SelfHealingNode final : public radio::Protocol {
 public:
  /// `params` must outlive the node; `options` is copied. `joiner` selects
  /// the fast-join path on wake (normal nodes run the wrapped MW protocol).
  SelfHealingNode(graph::NodeId id, const core::MwParams& params,
                  const core::RecoveryOptions& options, bool joiner);

  // --- radio::Protocol ---
  void on_wake(radio::Slot slot) override;
  std::optional<radio::Message> begin_slot(radio::Slot slot,
                                           common::Rng& rng) override;
  void on_receive(radio::Slot slot, const radio::Message& message) override;
  void end_slot(radio::Slot slot) override;
  bool decided() const override;

  // --- introspection (recovery driver, tests) ---
  graph::NodeId id() const { return id_; }
  /// Final color: the wrapped node's while it runs, the (possibly repaired)
  /// join color on the fast path; graph::kUncolored before any decision.
  graph::Color final_color() const;
  bool is_joiner() const { return joiner_; }
  /// True while the fast-join path is active (false after a fallback).
  bool fast_join_active() const { return join_phase_ != JoinPhase::kInactive; }
  bool fell_back_to_full_protocol() const { return join_fallback_; }
  /// True once the node gave up on the MW protocol and fell back to a
  /// provisional color (degrade_to_provisional after max_failovers).
  bool degraded() const { return degraded_; }
  std::size_t failovers() const { return failovers_; }
  radio::Slot first_failover_slot() const { return first_failover_slot_; }
  std::size_t conflicts_repaired() const { return conflicts_repaired_; }
  /// Post-decision collisions detected while ESTABLISHED (a lower-id
  /// neighbor beaconing our color) and repaired via the fast-join path.
  std::size_t late_conflicts_repaired() const {
    return late_conflicts_repaired_;
  }
  /// The wrapped MW node (null while the fast-join path runs).
  const core::MwNode* inner() const { return inner_.get(); }

  // --- observability (src/obs) ---
  /// Attaches trace + metrics sinks: join-phase transitions, failovers and
  /// fast-join color decisions are emitted here; the wrapped MwNode (current
  /// and any created later by fallback/revival) is wired through. Null
  /// detaches.
  void set_observation(obs::RunObservation* observation);

 private:
  enum class JoinPhase : std::uint8_t {
    kInactive,    ///< not a joiner, or fell back to the full protocol
    kListening,   ///< collecting neighbor colors
    kConfirming,  ///< beaconing the tentative color, watching for conflicts
    kConfirmed,   ///< color held; beaconing + conflict watch continue
  };

  /// Number of JoinPhase values (dimension of the transition table).
  static constexpr std::size_t kJoinPhaseCount = 4;

  /// The fast-join automaton as data: kJoinTransitionTable[from][to] is true
  /// iff the recovery layer may move a joiner from `from` to `to`. Every
  /// mutation of join_phase_ flows through transition_to(), which CHECKs
  /// against this table (audited by the sinrlint R2 rule).
  ///
  /// Edges (row = from):
  ///   any         → kInactive    revival reset on a repeated on_wake, or
  ///                              fallback to the full MW protocol
  ///   kInactive   → kListening   joiner wake: collect neighbor colors
  ///   kInactive   → kConfirming  graceful degradation: a requester that
  ///                              exhausted max_failovers abandons the MW
  ///                              protocol and confirms a provisional color
  ///                              picked from overheard beacons
  ///                              (RecoveryOptions::degrade_to_provisional)
  ///   kListening  → kConfirming  listen over, tentative color picked
  ///   kConfirming → kConfirming  collision detected: re-pick, restart window
  ///   kConfirming → kConfirmed   confirmation window survived
  ///   kConfirmed  → kConfirming  late collision: local repair
  static constexpr bool kJoinTransitionTable[kJoinPhaseCount][kJoinPhaseCount] = {
      //                to: inactive listen confirming confirmed
      /* kInactive   */ {true, true, true, false},
      /* kListening  */ {true, false, true, false},
      /* kConfirming */ {true, false, true, true},
      /* kConfirmed  */ {true, false, true, false},
  };

  /// True iff the fast-join automaton allows `from` → `to`.
  static constexpr bool join_transition_allowed(JoinPhase from, JoinPhase to) {
    return kJoinTransitionTable[static_cast<std::size_t>(from)]
                               [static_cast<std::size_t>(to)];
  }

  /// Sole mutation point of join_phase_: validates the edge against
  /// kJoinTransitionTable (aborts on an illegal transition).
  void transition_to(JoinPhase next);
  void start_inner(radio::Slot slot);
  void fail_over(radio::Slot slot);
  /// Graceful degradation: drop the MW protocol, pick a provisional color
  /// from overheard beacons and route it through the fast-join confirm path
  /// (same conflict repair). Fires once, after max_failovers is exhausted.
  void degrade(radio::Slot slot);
  /// Late-conflict repair: an established (kColored) node heard a lower-id
  /// neighbor beacon its own color — a collision that injected message loss
  /// let through. Re-pick a locally free color and confirm it on the
  /// fast-join path (kInactive → kConfirming); the node stays decided, so
  /// the repair is local and bounded by the confirm window.
  void repair_collision(radio::Slot slot);
  void note_heard_color(graph::Color color);
  graph::Color pick_free_color() const;
  std::optional<radio::Message> join_begin_slot(radio::Slot slot,
                                                common::Rng& rng);
  void join_receive(const radio::Message& message);

  const graph::NodeId id_;
  const core::MwParams& params_;
  const core::RecoveryOptions options_;
  const bool joiner_;

  // Observability sinks (null when unobserved); last_slot_ lets
  // transition_to stamp events although join_receive carries no slot.
  obs::RunObservation* observation_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  radio::Slot last_slot_ = 0;

  std::unique_ptr<core::MwNode> inner_;

  // Failure detector (normal path).
  radio::Slot suspect_timeout_ = 0;   ///< current, doubles per failover
  radio::Slot requesting_since_ = -1; ///< slot the inner node entered R
  radio::Slot last_leader_heard_ = -1;
  std::size_t failovers_ = 0;
  radio::Slot first_failover_slot_ = -1;

  // Fast-join state.
  JoinPhase join_phase_{JoinPhase::kInactive};
  radio::Slot join_listen_remaining_ = 0;
  radio::Slot confirm_remaining_ = 0;
  std::set<graph::Color> heard_colors_;
  bool heard_beacon_ = false;      ///< any M_C / M_J during the listen phase
  bool heard_contention_ = false;  ///< any M_A / M_R: neighborhood not converged
  bool join_fallback_ = false;
  bool degraded_ = false;
  bool confirmed_once_ = false;
  graph::Color join_color_ = graph::kUncolored;
  std::size_t conflicts_repaired_ = 0;
  std::size_t late_conflicts_repaired_ = 0;
};

}  // namespace sinrcolor::robust
