#include "robust/self_healing_node.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::robust {
namespace {

// Worst legitimate wait in state R: the leader may serve every other cluster
// member first ((Δ+1)·assign_slots) and our own request still needs to get
// through (2·window⁺ covers a q_s sender w.h.p. by the κ·ln n coupling).
radio::Slot default_suspect_timeout(const core::MwParams& p) {
  return static_cast<radio::Slot>(p.max_degree + 1) * p.assign_slots +
         2 * static_cast<radio::Slot>(p.window_positive);
}

}  // namespace

SelfHealingNode::SelfHealingNode(graph::NodeId id, const core::MwParams& params,
                                 const core::RecoveryOptions& options,
                                 bool joiner)
    : id_(id), params_(params), options_(options), joiner_(joiner) {
  suspect_timeout_ = options_.suspect_timeout > 0 ? options_.suspect_timeout
                                                  : default_suspect_timeout(params_);
  SINRCOLOR_CHECK(suspect_timeout_ > 0);
  SINRCOLOR_CHECK(options_.backoff >= 1.0);
}

void SelfHealingNode::set_observation(obs::RunObservation* observation) {
  observation_ = observation;
  profiler_ = observation != nullptr ? observation->profiler.get() : nullptr;
  if (inner_ != nullptr) inner_->set_observation(observation);
}

void SelfHealingNode::transition_to(JoinPhase next) {
  SINRCOLOR_CHECK_MSG(join_transition_allowed(join_phase_, next),
                      "illegal JoinPhase transition (kJoinTransitionTable)");
  const JoinPhase from = join_phase_;
  join_phase_ = next;
  // Skip the no-op kInactive -> kInactive edge every non-joiner wake takes.
  if (from == JoinPhase::kInactive && next == JoinPhase::kInactive) return;
  if (observation_ != nullptr) {
    observation_->trace.record(last_slot_, obs::EventKind::kJoinTransition,
                               id_, obs::kNoNode,
                               static_cast<std::int32_t>(from),
                               static_cast<std::int64_t>(next));
  }
}

void SelfHealingNode::start_inner(radio::Slot slot) {
  inner_ = std::make_unique<core::MwNode>(id_, params_);
  inner_->set_retransmit_policy(options_.retransmit);
  inner_->set_observation(observation_);
  inner_->on_wake(slot);
  requesting_since_ = -1;
  last_leader_heard_ = -1;
}

void SelfHealingNode::on_wake(radio::Slot slot) {
  SINRCOLOR_CHECK_MSG(slot >= 0, "on_wake with a negative slot");
  last_slot_ = slot;
  // A second on_wake is a revival (join slot after a failure slot): the node
  // restarts from scratch, forgetting any pre-crash protocol state.
  transition_to(JoinPhase::kInactive);
  join_fallback_ = false;
  degraded_ = false;
  confirmed_once_ = false;
  join_color_ = graph::kUncolored;
  heard_colors_.clear();
  heard_beacon_ = false;
  heard_contention_ = false;
  inner_.reset();
  if (joiner_) {
    transition_to(JoinPhase::kListening);
    join_listen_remaining_ =
        options_.join_listen_slots > 0
            ? options_.join_listen_slots
            : 2 * static_cast<radio::Slot>(params_.window_positive);
  } else {
    start_inner(slot);
  }
}

void SelfHealingNode::fail_over(radio::Slot slot) {
  ++failovers_;
  if (first_failover_slot_ < 0) first_failover_slot_ = slot;
  if (observation_ != nullptr) {
    observation_->trace.record(slot, obs::EventKind::kFailover, id_,
                               inner_->leader(),
                               static_cast<std::int32_t>(failovers_));
    observation_->metrics.counter("robust.failovers").add();
  }
  suspect_timeout_ = static_cast<radio::Slot>(
      static_cast<double>(suspect_timeout_) * options_.backoff);
  inner_->restart_election();
  requesting_since_ = -1;
  last_leader_heard_ = -1;
}

void SelfHealingNode::degrade(radio::Slot slot) {
  // The leader keeps vanishing (or is jammed beyond reach) and the failover
  // budget is spent: stop stalling, pick a provisional color from the
  // beacons overheard so far and confirm it on the fast-join path — its
  // collision watch and local repair keep the provisional color legal.
  SINRCOLOR_CHECK(!degraded_ && options_.degrade_to_provisional);
  degraded_ = true;
  inner_.reset();
  join_color_ = pick_free_color();
  transition_to(JoinPhase::kConfirming);  // kInactive → kConfirming edge
  confirm_remaining_ =
      options_.join_confirm_slots > 0
          ? options_.join_confirm_slots
          : static_cast<radio::Slot>(params_.window_positive);
  if (observation_ != nullptr) {
    observation_->trace.record(slot, obs::EventKind::kFailover, id_,
                               obs::kNoNode,
                               static_cast<std::int32_t>(failovers_),
                               static_cast<std::int64_t>(join_color_));
    observation_->metrics.counter("robust.degraded").add();
  }
}

void SelfHealingNode::repair_collision(radio::Slot slot) {
  SINRCOLOR_CHECK(inner_ != nullptr && inner_->decided());
  ++late_conflicts_repaired_;
  // The conflicting color is already in heard_colors_ (the palette update
  // runs before the watch), so pick_free_color avoids it; any further
  // collision the stale palette causes is caught by the confirm-phase
  // watch and repaired the same way.
  inner_.reset();
  join_color_ = pick_free_color();
  confirmed_once_ = true;  // the repair is local; the node stays decided
  transition_to(JoinPhase::kConfirming);  // kInactive → kConfirming edge
  confirm_remaining_ =
      options_.join_confirm_slots > 0
          ? options_.join_confirm_slots
          : static_cast<radio::Slot>(params_.window_positive);
  if (observation_ != nullptr) {
    observation_->trace.record(slot, obs::EventKind::kColorFinalized, id_,
                               obs::kNoNode, 1,
                               static_cast<std::int64_t>(join_color_));
  }
}

std::optional<radio::Message> SelfHealingNode::begin_slot(radio::Slot slot,
                                                          common::Rng& rng) {
  // kRecovery wraps the whole robust slot (join machine, failure detection
  // and the inner step); the inner MwNode nests kProtocolStep under it.
  SINRCOLOR_PROFILE(profiler_, obs::Phase::kRecovery);
  SINRCOLOR_CHECK_MSG(join_phase_ != JoinPhase::kInactive || inner_ != nullptr,
                      "begin_slot on a sleeping self-healing node");
  last_slot_ = slot;
  if (join_phase_ != JoinPhase::kInactive) return join_begin_slot(slot, rng);

  // Failure detection: a requester whose leader has been silent past the
  // suspect timeout declares it dead and re-enters leader election.
  if (options_.enabled && inner_->state() == core::MwStateKind::kRequesting) {
    if (requesting_since_ < 0) requesting_since_ = slot;
    const radio::Slot last_signal = std::max(requesting_since_, last_leader_heard_);
    if (slot - last_signal > suspect_timeout_) {
      if (failovers_ < options_.max_failovers) {
        fail_over(slot);
      } else if (options_.degrade_to_provisional) {
        degrade(slot);
        return join_begin_slot(slot, rng);
      }
    }
  } else {
    requesting_since_ = -1;
  }
  // Competitor mirrors advance one per slot without any traffic; prune the
  // ones silent past the same timeout so a crashed competitor cannot keep
  // depressing χ(P_v).
  if (options_.enabled &&
      (inner_->state() == core::MwStateKind::kListening ||
       inner_->state() == core::MwStateKind::kCompeting)) {
    inner_->prune_competitors_older_than(slot, suspect_timeout_);
  }
  return inner_->begin_slot(slot, rng);
}

void SelfHealingNode::on_receive(radio::Slot slot, const radio::Message& msg) {
  SINRCOLOR_CHECK_MSG(join_phase_ != JoinPhase::kInactive || inner_ != nullptr,
                      "delivery to a sleeping self-healing node");
  last_slot_ = slot;
  if (join_phase_ != JoinPhase::kInactive) {
    join_receive(msg);
    return;
  }
  if (msg.sender == inner_->leader()) last_leader_heard_ = slot;
  if (options_.enabled || options_.degrade_to_provisional) {
    // Keep the overheard palette current so degrade() and the late-conflict
    // repair have colors to avoid. Opt-in: the set insert allocates, which
    // the plain protocol's zero-allocation slot loop must not
    // (docs/PERFORMANCE.md); recovery runs sit outside that gate.
    switch (msg.kind) {
      case radio::MessageKind::kColorBeacon:
      case radio::MessageKind::kJoinBeacon:
        note_heard_color(msg.color_class);
        break;
      case radio::MessageKind::kColorAssign:
        note_heard_color(0);  // the sender is a leader
        break;
      case radio::MessageKind::kCompete:
      case radio::MessageKind::kRequest:
        break;
    }
  }
  // Post-decision conflict watch: two established nodes holding the same
  // color is a safety violation that injected message loss can let through
  // (each missed the other's traffic while deciding). The perpetual q_s
  // color beacons expose it; on hearing our own color from a LOWER-id
  // neighbor we yield and re-pick locally, so exactly one side of any
  // conflicting pair moves. Leaders are exempt: color 0 carries cluster
  // duties, and leader independence is the MIS invariant, not locally
  // repairable.
  if (options_.enabled && inner_->state() == core::MwStateKind::kColored &&
      msg.kind == radio::MessageKind::kColorBeacon &&
      msg.color_class == inner_->final_color() && msg.sender < id_) {
    repair_collision(slot);
    return;
  }
  inner_->on_receive(slot, msg);
}

void SelfHealingNode::end_slot(radio::Slot slot) {
  if (inner_ != nullptr) inner_->end_slot(slot);
}

bool SelfHealingNode::decided() const {
  if (confirmed_once_) return true;
  return inner_ != nullptr && inner_->decided();
}

graph::Color SelfHealingNode::final_color() const {
  if (confirmed_once_) return join_color_;
  return inner_ != nullptr ? inner_->final_color() : graph::kUncolored;
}

void SelfHealingNode::note_heard_color(graph::Color color) {
  heard_colors_.insert(color);
}

graph::Color SelfHealingNode::pick_free_color() const {
  // Smallest free color ≥ 1: color 0 carries leader duties a fast joiner
  // does not take on, and any color absent from the neighborhood keeps the
  // (1,·)-coloring valid.
  graph::Color c = 1;
  while (heard_colors_.count(c) > 0) ++c;
  return c;
}

std::optional<radio::Message> SelfHealingNode::join_begin_slot(
    radio::Slot slot, common::Rng& rng) {
  switch (join_phase_) {
    case JoinPhase::kInactive:
      return std::nullopt;  // unreachable; kept for switch completeness

    case JoinPhase::kListening: {
      if (--join_listen_remaining_ > 0) return std::nullopt;
      if (heard_contention_ || !heard_beacon_) {
        // The neighborhood is still converging (or empty): the fast path's
        // premise fails, so run the full MW protocol from this slot on.
        join_fallback_ = true;
        transition_to(JoinPhase::kInactive);
        start_inner(slot);
        return inner_->begin_slot(slot, rng);
      }
      join_color_ = pick_free_color();
      transition_to(JoinPhase::kConfirming);
      confirm_remaining_ =
          options_.join_confirm_slots > 0
              ? options_.join_confirm_slots
              : static_cast<radio::Slot>(params_.window_positive);
      return std::nullopt;
    }

    case JoinPhase::kConfirming:
    case JoinPhase::kConfirmed: {
      if (join_phase_ == JoinPhase::kConfirming && --confirm_remaining_ <= 0) {
        transition_to(JoinPhase::kConfirmed);
        confirmed_once_ = true;
        if (observation_ != nullptr) {
          observation_->trace.record(slot, obs::EventKind::kColorFinalized,
                                     id_, obs::kNoNode, 0,
                                     static_cast<std::int64_t>(join_color_));
        }
      }
      // Beacon the (tentative or held) color like a colored node; the M_J
      // kind keeps it distinguishable from a settled M_C so joiner/joiner
      // ties stay resolvable.
      if (rng.bernoulli(params_.q_small)) {
        radio::Message m;
        m.kind = radio::MessageKind::kJoinBeacon;
        m.sender = id_;
        m.color_class = join_color_;
        return m;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void SelfHealingNode::join_receive(const radio::Message& msg) {
  if (join_phase_ == JoinPhase::kListening) {
    switch (msg.kind) {
      case radio::MessageKind::kColorBeacon:
      case radio::MessageKind::kJoinBeacon:
        heard_beacon_ = true;
        note_heard_color(msg.color_class);
        return;
      case radio::MessageKind::kColorAssign:
        heard_beacon_ = true;
        note_heard_color(0);  // the sender is a leader
        return;
      case radio::MessageKind::kCompete:
      case radio::MessageKind::kRequest:
        heard_contention_ = true;
        return;
    }
    return;
  }

  // Confirming / confirmed: keep absorbing the neighborhood palette and
  // watch for collisions with our own color.
  bool conflict = false;
  switch (msg.kind) {
    case radio::MessageKind::kColorBeacon:
      // An established node owns this color outright; we always yield.
      conflict = msg.color_class == join_color_;
      note_heard_color(msg.color_class);
      break;
    case radio::MessageKind::kJoinBeacon:
      // Joiner/joiner tie: the lower id keeps the color, the higher yields.
      if (msg.color_class == join_color_ && msg.sender < id_) {
        conflict = true;
        note_heard_color(msg.color_class);
      } else if (msg.color_class != join_color_) {
        note_heard_color(msg.color_class);
      }
      break;
    case radio::MessageKind::kColorAssign:
      note_heard_color(0);
      break;
    case radio::MessageKind::kCompete:
    case radio::MessageKind::kRequest:
      break;  // a neighbor is re-electing (failover); not our concern
  }
  if (conflict) {
    join_color_ = pick_free_color();
    ++conflicts_repaired_;
    // Re-run the confirmation window for the new color; an already-confirmed
    // joiner stays "decided" (the repair is local and the final extraction
    // reads the repaired color).
    transition_to(JoinPhase::kConfirming);
    confirm_remaining_ =
        options_.join_confirm_slots > 0
            ? options_.join_confirm_slots
            : static_cast<radio::Slot>(params_.window_positive);
  }
}

}  // namespace sinrcolor::robust
