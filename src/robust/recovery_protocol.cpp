#include "robust/recovery_protocol.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sinrcolor::robust {

RecoveryInstance::RecoveryInstance(const graph::UnitDiskGraph& g,
                                   const core::MwRunConfig& config)
    : graph_(g),
      config_(config),
      params_(core::derive_mw_params(g, config)) {
  simulator_ = std::make_unique<radio::Simulator>(
      graph_, core::make_interference_model(graph_, config_),
      core::make_wakeup_schedule(g.size(), config_), config_.seed);

  const core::RecoveryOptions& rec = config_.recovery;
  std::vector<bool> is_joiner(g.size(), false);
  if (rec.join_fraction > 0.0) {
    SINRCOLOR_CHECK(rec.join_fraction <= 1.0);
    SINRCOLOR_CHECK(rec.join_at >= 0 && rec.join_window >= 0);
    common::Rng rng(common::derive_seed(config_.seed, 0x901dULL));
    std::vector<graph::NodeId> order(g.size());
    for (graph::NodeId v = 0; v < g.size(); ++v) order[v] = v;
    common::shuffle(order, rng);
    const auto arrivals = static_cast<std::size_t>(
        std::ceil(rec.join_fraction * static_cast<double>(g.size())));
    for (std::size_t k = 0; k < arrivals && k < order.size(); ++k) {
      const graph::NodeId v = order[k];
      is_joiner[v] = true;
      joiners_.push_back(v);
      simulator_->set_join_slot(
          v, rec.join_at + rng.uniform_int(0, std::max<radio::Slot>(
                                                  rec.join_window, 0)));
    }
  }
  core::schedule_random_failures(*simulator_, config_, &is_joiner);

  nodes_.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    auto node = std::make_unique<SelfHealingNode>(v, params_, rec, is_joiner[v]);
    nodes_.push_back(node.get());
    simulator_->set_protocol(v, std::move(node));
  }
}

void RecoveryInstance::attach_observation(obs::RunObservation* observation) {
  observation_ = observation;
  simulator_->set_observation(observation);
  for (SelfHealingNode* node : nodes_) node->set_observation(observation);
}

core::MwRunResult RecoveryInstance::run() {
  obs::Profiler* const profiler =
      observation_ != nullptr ? observation_->profiler.get() : nullptr;
  SINRCOLOR_PROFILE(profiler, obs::Phase::kRun);
  const core::RecoveryOptions& rec = config_.recovery;
  radio::Slot horizon = config_.max_slots > 0 ? config_.max_slots
                                              : params_.recommended_max_slots();
  if (!joiners_.empty()) {
    // Late arrivals need room to listen, pick and confirm after the last
    // join slot, whatever the base horizon was sized for.
    const radio::Slot listen =
        rec.join_listen_slots > 0
            ? rec.join_listen_slots
            : 2 * static_cast<radio::Slot>(params_.window_positive);
    const radio::Slot confirm =
        rec.join_confirm_slots > 0
            ? rec.join_confirm_slots
            : static_cast<radio::Slot>(params_.window_positive);
    horizon = std::max(horizon, rec.join_at + rec.join_window + listen +
                                    8 * confirm);
  }

  core::MwRunResult result;
  result.params = params_;
  // Post-decision settle window: air time for the late-conflict watch
  // after the last decision (0 keeps the original stop-on-decided exit).
  simulator_->set_settle_slots(rec.settle_slots);
  result.metrics = simulator_->run(horizon);

  const std::size_t n = graph_.size();
  result.coloring.color.assign(n, graph::kUncolored);
  for (std::size_t v = 0; v < n; ++v) {
    result.coloring.color[v] = nodes_[v]->final_color();
    const core::MwNode* inner = nodes_[v]->inner();
    if (inner != nullptr && inner->state() == core::MwStateKind::kLeader) {
      result.leaders.push_back(static_cast<graph::NodeId>(v));
    }
  }

  // Validity on the live nodes: every survivor colored, no two adjacent
  // survivors sharing a color. Dead nodes keep their stale color in
  // result.coloring for inspection, but no live radio uses it.
  graph::Coloring live = result.coloring;
  bool all_live_colored = true;
  for (std::size_t v = 0; v < n; ++v) {
    if (result.metrics.death_slot[v] >= 0) {
      live.color[v] = graph::kUncolored;
    } else if (live.color[v] == graph::kUncolored) {
      all_live_colored = false;
    }
  }
  std::size_t live_conflicts = 0;
  for (const auto& violation : graph::find_coloring_violations(graph_, live)) {
    if (violation.u != violation.v) ++live_conflicts;  // skip uncolored entries
  }
  result.coloring_valid = all_live_colored && live_conflicts == 0;
  result.palette = live.palette_size();
  result.max_color = live.max_color();

  core::RecoveryStats& stats = result.recovery;
  stats.joined_nodes = result.metrics.joined_nodes;
  double latency_total = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    const SelfHealingNode& node = *nodes_[v];
    stats.failovers += node.failovers();
    stats.join_conflicts_repaired += node.conflicts_repaired();
    stats.late_conflicts_repaired += node.late_conflicts_repaired();
    if (node.is_joiner() && node.fell_back_to_full_protocol()) {
      ++stats.join_fallbacks;
    }
    if (node.degraded()) ++stats.degraded_nodes;
    if (node.failovers() > 0 && node.decided() &&
        result.metrics.decision_slot[v] >= 0) {
      ++stats.recovered_nodes;
      const radio::Slot latency =
          result.metrics.decision_slot[v] - node.first_failover_slot();
      latency_total += static_cast<double>(latency);
      stats.max_failover_latency = std::max(stats.max_failover_latency, latency);
    }
  }
  if (stats.recovered_nodes > 0) {
    stats.mean_failover_latency =
        latency_total / static_cast<double>(stats.recovered_nodes);
  }
  if (observation_ != nullptr) {
    auto& m = observation_->metrics;
    m.counter("robust.recovered_nodes").add(stats.recovered_nodes);
    m.counter("robust.join_fallbacks").add(stats.join_fallbacks);
    m.counter("robust.join_conflicts_repaired")
        .add(stats.join_conflicts_repaired);
    m.counter("robust.late_conflicts_repaired")
        .add(stats.late_conflicts_repaired);
  }
  return result;
}

core::MwRunResult run_recovering_mw(const graph::UnitDiskGraph& g,
                                    const core::MwRunConfig& config) {
  RecoveryInstance instance(g, config);
  return instance.run();
}

}  // namespace sinrcolor::robust
