// Driver tying the self-healing node layer to the slotted simulator.
//
// RecoveryInstance mirrors core::MwInstance but installs a SelfHealingNode
// per graph node, honours the config's RecoveryOptions (failure detection +
// leader failover) and join knobs (⌈join_fraction·n⌉ random late arrivals),
// and reports the recovery metrics in MwRunResult::recovery. Joiners are
// excluded from random failure injection (killing a node that has not
// arrived yet would conflate the two churn mechanisms).
//
// Validity is judged on the LIVE nodes: the run's coloring is valid when
// every survivor holds a color and no two adjacent survivors share one
// (dead nodes' stale colors are reported in the coloring but do not count —
// no live radio uses them; see X14).
#pragma once

#include <memory>
#include <vector>

#include "core/mw_protocol.h"
#include "robust/self_healing_node.h"

namespace sinrcolor::robust {

class RecoveryInstance {
 public:
  RecoveryInstance(const graph::UnitDiskGraph& g,
                   const core::MwRunConfig& config);

  const core::MwParams& params() const { return params_; }
  radio::Simulator& simulator() { return *simulator_; }
  const std::vector<SelfHealingNode*>& nodes() const { return nodes_; }
  /// Nodes scheduled as late arrivals (empty when join_fraction == 0).
  const std::vector<graph::NodeId>& joiners() const { return joiners_; }

  /// Attaches trace + metrics sinks to the simulator and every
  /// SelfHealingNode (which wire their wrapped MwNodes through). Call before
  /// run(); null detaches. See core::MwInstance::attach_observation.
  void attach_observation(obs::RunObservation* observation);

  /// Executes the protocol and extracts the result. Call once.
  core::MwRunResult run();

 private:
  const graph::UnitDiskGraph& graph_;
  core::MwRunConfig config_;
  core::MwParams params_;
  std::unique_ptr<radio::Simulator> simulator_;
  std::vector<SelfHealingNode*> nodes_;  // owned by the simulator
  std::vector<graph::NodeId> joiners_;
  obs::RunObservation* observation_ = nullptr;
};

/// Convenience wrapper: build a RecoveryInstance and run it.
core::MwRunResult run_recovering_mw(const graph::UnitDiskGraph& g,
                                    const core::MwRunConfig& config);

}  // namespace sinrcolor::robust
