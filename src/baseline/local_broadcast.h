// Distributed local broadcasting under SINR, and an idealized-CSMA variant.
//
// Local broadcasting — every node must deliver one message to all of its
// neighbors — is the primitive studied by Goussevskaia, Moscibroda and
// Wattenhofer ("Local broadcasting in the physical interference model",
// 2008), the closest SINR-algorithmics relative of the paper's MAC layer.
// With known Δ, transmitting with probability p = Θ(1/Δ) for Θ(Δ log n)
// slots succeeds w.h.p. These runners measure that primitive empirically and
// provide the schedule-free baselines for experiment X13:
//   * slotted ALOHA with the 1/Δ probability scaling (the [21]-style scheme);
//   * idealized CSMA: carrier sensing defers to already-committed
//     transmitters above a power threshold before joining a slot.
#pragma once

#include "baseline/aloha.h"
#include "graph/unit_disk_graph.h"
#include "sinr/params.h"

namespace sinrcolor::baseline {

/// [21]-style local broadcast: p = prob_num/Δ, hard slot budget
/// ⌈kappa·Δ·ln n / prob_num⌉. `completed` says whether every (sender,
/// neighbor) pair was served within the budget — the w.h.p. claim.
AlohaResult run_local_broadcast_known_delta(const graph::UnitDiskGraph& g,
                                            const sinr::SinrParams& phys,
                                            double prob_num, double kappa,
                                            std::uint64_t seed);

/// Idealized CSMA local broadcast: each slot, pending nodes are visited in a
/// random order; a node joins the slot's transmitter set with probability p
/// unless the already-committed transmitters deposit more than
/// `cs_threshold_factor · N` power at its own position (carrier sensing with
/// zero propagation delay). Runs until all pairs served or `max_slots`.
AlohaResult run_csma_local_broadcast(const graph::UnitDiskGraph& g,
                                     const sinr::SinrParams& phys, double p,
                                     double cs_threshold_factor,
                                     radio::Slot max_slots, std::uint64_t seed);

}  // namespace sinrcolor::baseline
