// The MW algorithm in its original habitat — the graph-based interference
// model [MW05/MW08] — and the "what if we ignore SINR" negative baseline.
//
// In the graph model only *neighbors* can collide, so the algorithm can use
// aggressive constants: larger sending probabilities and shorter windows
// (nothing outside the 1-hop disc matters). The X9 experiment runs this
// tuning (a) under the graph medium — the original algorithm, works — and
// (b) under the SINR medium — where cumulative far interference breaks the
// delivery guarantees the windows rely on, which is precisely the gap the
// paper's re-tuning closes.
#pragma once

#include "core/mw_params.h"
#include "core/mw_protocol.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::baseline {

/// Constants appropriate for the graph-based model: q_ℓ and κ-window chosen
/// for a medium where only 1-hop collisions exist. Roughly 2–3× faster than
/// the SINR-tuned practical profile, but with no global interference margin.
core::PracticalTuning graph_model_tuning();

/// Original MW: graph-model tuning under the graph-based medium.
core::MwRunResult run_mw_graph_model(const graph::UnitDiskGraph& g,
                                     std::uint64_t seed);

/// Negative baseline: graph-model tuning executed under the *SINR* medium.
core::MwRunResult run_mw_graph_tuning_under_sinr(const graph::UnitDiskGraph& g,
                                                 std::uint64_t seed);

}  // namespace sinrcolor::baseline
