// Slotted-ALOHA local broadcast — the schedule-free MAC baseline.
//
// Every node holds one message and transmits it with probability p each slot
// until every (sender, neighbor) pair has been served. Contrasts with the
// coloring-based TDMA MAC (deterministic V-slot frames, Theorem 3): ALOHA
// needs Θ(Δ log n / (p·e^{-Θ(pΔ)})) slots in expectation and gives only
// probabilistic guarantees.
#pragma once

#include <cstdint>
#include <string>

#include "graph/unit_disk_graph.h"
#include "radio/message.h"
#include "sinr/params.h"

namespace sinrcolor::baseline {

struct AlohaResult {
  radio::Slot slots = 0;            ///< slots until completion (or cap)
  bool completed = false;           ///< all pairs served within the cap
  std::uint64_t transmissions = 0;
  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_served = 0;
  /// Slot by which 50% / 95% of the pairs were served (−1 if never).
  radio::Slot slots_p50 = -1;
  radio::Slot slots_p95 = -1;

  std::string summary() const;
};

/// Runs slotted ALOHA under the SINR physical layer until every node's
/// message has reached all of its neighbors, or `max_slots`.
AlohaResult run_aloha_local_broadcast(const graph::UnitDiskGraph& g,
                                      const sinr::SinrParams& phys, double p,
                                      radio::Slot max_slots, std::uint64_t seed);

}  // namespace sinrcolor::baseline
