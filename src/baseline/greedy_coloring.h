// Centralized greedy colorings — the classical baselines the distributed
// algorithm is compared against (palette quality oracle, and a fast way to
// produce distance-d colorings for MAC experiments without a protocol run).
#pragma once

#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::baseline {

/// First-fit greedy in id order: a (1, Δ+1)-coloring.
graph::Coloring greedy_coloring(const graph::UnitDiskGraph& g);

/// First-fit greedy on the distance-d conflict graph (nodes within d·R_T must
/// differ): a (d, φ(d·R_T)·Δ)-coloring; palette ≤ Δ_{G^d}+1.
graph::Coloring greedy_distance_d_coloring(const graph::UnitDiskGraph& g,
                                           double d);

}  // namespace sinrcolor::baseline
