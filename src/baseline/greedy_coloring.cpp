#include "baseline/greedy_coloring.h"

#include <functional>
#include <vector>

#include "common/check.h"

namespace sinrcolor::baseline {
namespace {

graph::Coloring greedy_on_conflicts(
    const graph::UnitDiskGraph& g,
    const std::function<std::vector<graph::NodeId>(graph::NodeId)>& conflicts) {
  graph::Coloring coloring;
  coloring.color.assign(g.size(), graph::kUncolored);
  std::vector<bool> taken;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    taken.assign(g.size() + 1, false);
    for (graph::NodeId u : conflicts(v)) {
      const graph::Color c = coloring.color[u];
      if (c != graph::kUncolored) taken[static_cast<std::size_t>(c)] = true;
    }
    graph::Color chosen = graph::kUncolored;
    for (std::size_t c = 0; c < taken.size(); ++c) {
      if (!taken[c]) {
        chosen = static_cast<graph::Color>(c);
        break;
      }
    }
    SINRCOLOR_CHECK(chosen != graph::kUncolored);
    coloring.color[v] = chosen;
  }
  return coloring;
}

}  // namespace

graph::Coloring greedy_coloring(const graph::UnitDiskGraph& g) {
  return greedy_on_conflicts(g, [&](graph::NodeId v) {
    const auto nbrs = g.neighbors(v);
    return std::vector<graph::NodeId>(nbrs.begin(), nbrs.end());
  });
}

graph::Coloring greedy_distance_d_coloring(const graph::UnitDiskGraph& g,
                                           double d) {
  SINRCOLOR_CHECK(d >= 1.0);
  const double range = d * g.radius();
  return greedy_on_conflicts(
      g, [&](graph::NodeId v) { return g.nodes_within(v, range); });
}

}  // namespace sinrcolor::baseline
