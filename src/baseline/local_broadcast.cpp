#include "baseline/local_broadcast.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::baseline {

AlohaResult run_local_broadcast_known_delta(const graph::UnitDiskGraph& g,
                                            const sinr::SinrParams& phys,
                                            double prob_num, double kappa,
                                            std::uint64_t seed) {
  SINRCOLOR_CHECK(prob_num > 0.0 && prob_num < 1.0);
  SINRCOLOR_CHECK(kappa > 0.0);
  const double delta = static_cast<double>(std::max<std::size_t>(g.max_degree(), 1));
  const double p = prob_num / delta;
  const double log_n =
      std::log(static_cast<double>(std::max<std::size_t>(g.size(), 3)));
  const auto budget = static_cast<radio::Slot>(
      std::ceil(kappa * delta * log_n / prob_num));
  return run_aloha_local_broadcast(g, phys, p, budget, seed);
}

AlohaResult run_csma_local_broadcast(const graph::UnitDiskGraph& g,
                                     const sinr::SinrParams& phys, double p,
                                     double cs_threshold_factor,
                                     radio::Slot max_slots,
                                     std::uint64_t seed) {
  SINRCOLOR_CHECK(p > 0.0 && p < 1.0);
  SINRCOLOR_CHECK(cs_threshold_factor > 0.0);
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");

  AlohaResult result;
  std::vector<std::vector<graph::NodeId>> pending(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto nbrs = g.neighbors(v);
    pending[v].assign(nbrs.begin(), nbrs.end());
    result.pairs_total += nbrs.size();
  }

  common::Rng rng(seed);
  const double threshold = cs_threshold_factor * phys.noise;
  std::vector<graph::NodeId> order(g.size());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<graph::NodeId> senders;
  std::vector<sinr::Transmitter> txs;
  std::vector<bool> transmitting(g.size());

  for (radio::Slot slot = 0; slot < max_slots; ++slot) {
    if (result.pairs_served == result.pairs_total) break;
    result.slots = slot + 1;

    // Random arbitration order models who grabs the channel first.
    common::shuffle(order, rng);
    senders.clear();
    txs.clear();
    std::fill(transmitting.begin(), transmitting.end(), false);
    for (graph::NodeId v : order) {
      if (pending[v].empty() || !rng.bernoulli(p)) continue;
      // Carrier sense against the already-committed transmitters.
      const double sensed = txs.empty()
                                ? 0.0
                                : sinr::interference_at(phys, g.position(v), txs);
      if (sensed > threshold) continue;  // channel busy: defer
      senders.push_back(v);
      txs.push_back({g.position(v)});
      transmitting[v] = true;
    }
    result.transmissions += senders.size();

    for (std::size_t i = 0; i < senders.size(); ++i) {
      auto& waiting = pending[senders[i]];
      for (std::size_t k = 0; k < waiting.size();) {
        const graph::NodeId u = waiting[k];
        if (!transmitting[u] && sinr::decodes(phys, g.position(u), txs, i)) {
          waiting[k] = waiting.back();
          waiting.pop_back();
          ++result.pairs_served;
        } else {
          ++k;
        }
      }
    }

    if (result.slots_p50 < 0 && result.pairs_served * 2 >= result.pairs_total) {
      result.slots_p50 = result.slots;
    }
    if (result.slots_p95 < 0 &&
        result.pairs_served * 100 >= result.pairs_total * 95) {
      result.slots_p95 = result.slots;
    }
  }

  result.completed = result.pairs_served == result.pairs_total;
  return result;
}

}  // namespace sinrcolor::baseline
