#include "baseline/aloha.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::baseline {

std::string AlohaResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "slots=%lld completed=%s tx=%llu pairs=%llu/%llu p50=%lld "
                "p95=%lld",
                static_cast<long long>(slots), completed ? "yes" : "no",
                static_cast<unsigned long long>(transmissions),
                static_cast<unsigned long long>(pairs_served),
                static_cast<unsigned long long>(pairs_total),
                static_cast<long long>(slots_p50),
                static_cast<long long>(slots_p95));
  return buf;
}

AlohaResult run_aloha_local_broadcast(const graph::UnitDiskGraph& g,
                                      const sinr::SinrParams& phys, double p,
                                      radio::Slot max_slots,
                                      std::uint64_t seed) {
  SINRCOLOR_CHECK(p > 0.0 && p < 1.0);
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");

  AlohaResult result;
  // pending[v] = neighbors that have not yet heard v's message.
  std::vector<std::vector<graph::NodeId>> pending(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto nbrs = g.neighbors(v);
    pending[v].assign(nbrs.begin(), nbrs.end());
    result.pairs_total += nbrs.size();
  }

  std::vector<common::Rng> rngs;
  rngs.reserve(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    rngs.emplace_back(common::derive_seed(seed, v));
  }

  std::vector<graph::NodeId> senders;
  std::vector<sinr::Transmitter> txs;
  std::vector<bool> transmitting(g.size());

  for (radio::Slot slot = 0; slot < max_slots; ++slot) {
    if (result.pairs_served == result.pairs_total) break;
    result.slots = slot + 1;

    senders.clear();
    txs.clear();
    std::fill(transmitting.begin(), transmitting.end(), false);
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      if (!pending[v].empty() && rngs[v].bernoulli(p)) {
        senders.push_back(v);
        txs.push_back({g.position(v)});
        transmitting[v] = true;
      }
    }
    result.transmissions += senders.size();

    for (std::size_t i = 0; i < senders.size(); ++i) {
      auto& waiting = pending[senders[i]];
      for (std::size_t k = 0; k < waiting.size();) {
        const graph::NodeId u = waiting[k];
        if (!transmitting[u] && sinr::decodes(phys, g.position(u), txs, i)) {
          waiting[k] = waiting.back();
          waiting.pop_back();
          ++result.pairs_served;
        } else {
          ++k;
        }
      }
    }

    if (result.slots_p50 < 0 &&
        result.pairs_served * 2 >= result.pairs_total) {
      result.slots_p50 = result.slots;
    }
    if (result.slots_p95 < 0 &&
        result.pairs_served * 100 >= result.pairs_total * 95) {
      result.slots_p95 = result.slots;
    }
  }

  result.completed = result.pairs_served == result.pairs_total;
  return result;
}

}  // namespace sinrcolor::baseline
