#include "baseline/mw_graph_model.h"

namespace sinrcolor::baseline {

core::PracticalTuning graph_model_tuning() {
  core::PracticalTuning tuning;
  // In the graph model a q-sender is heard iff no other neighbor transmits,
  // so higher probabilities and tighter windows are safe (locally, the
  // contention is bounded by Δ·q_s + q_ℓ regardless of the rest of the
  // network). These values mirror the spirit of the original MW constants.
  tuning.q_leader = 0.3;
  tuning.kappa = 3.0;
  tuning.sigma_factor = 2.5;
  tuning.eta_factor = 4.5;
  tuning.mu_factor = 3.0;
  return tuning;
}

core::MwRunResult run_mw_graph_model(const graph::UnitDiskGraph& g,
                                     std::uint64_t seed) {
  core::MwRunConfig config;
  config.tuning = graph_model_tuning();
  config.graph_model = true;
  config.seed = seed;
  return core::run_mw_coloring(g, config);
}

core::MwRunResult run_mw_graph_tuning_under_sinr(const graph::UnitDiskGraph& g,
                                                 std::uint64_t seed) {
  core::MwRunConfig config;
  config.tuning = graph_model_tuning();
  config.graph_model = false;
  config.seed = seed;
  return core::run_mw_coloring(g, config);
}

}  // namespace sinrcolor::baseline
