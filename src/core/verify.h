// Extraction and verification of protocol outcomes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mw_node.h"
#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::core {

/// Final colors of all nodes (kUncolored for undecided ones).
graph::Coloring extract_coloring(const std::vector<MwNode*>& nodes);

/// Ids of nodes that ended as leaders (state C_0).
std::vector<graph::NodeId> extract_leaders(const std::vector<MwNode*>& nodes);

/// Theorem-1 snapshot check: for every color class (leaders and each C_i),
/// no two decided members are UDG-adjacent. Returns the violation count.
std::size_t snapshot_independence_violations(const graph::UnitDiskGraph& g,
                                             const std::vector<MwNode*>& nodes);

/// Clustering sanity: every non-leader decided node was granted a cluster
/// color by an actual leader within range (its recorded leader is a leader
/// node and a UDG neighbor). Returns the number of offending nodes.
std::size_t clustering_violations(const graph::UnitDiskGraph& g,
                                  const std::vector<MwNode*>& nodes);

}  // namespace sinrcolor::core
