#include "core/timeline.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace sinrcolor::core {

void StateTimeline::attach(MwInstance& instance) {
  SINRCOLOR_CHECK(interval_ >= 1);
  node_count_ = instance.graph().size();
  const auto& nodes = instance.nodes();
  instance.simulator().add_observer(
      [this, &nodes](radio::Slot slot, std::span<const radio::TxRecord>) {
        if (slot % interval_ != 0) return;
        Sample sample;
        sample.slot = slot;
        for (const MwNode* node : nodes) {
          ++sample.count[static_cast<std::size_t>(node->state())];
        }
        samples_.push_back(sample);
      });
}

radio::Slot StateTimeline::decided_fraction_slot(double fraction) const {
  SINRCOLOR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const double target = fraction * static_cast<double>(node_count_);
  for (const Sample& sample : samples_) {
    const auto decided =
        sample.count[static_cast<std::size_t>(MwStateKind::kLeader)] +
        sample.count[static_cast<std::size_t>(MwStateKind::kColored)];
    if (static_cast<double>(decided) >= target) return sample.slot;
  }
  return -1;
}

std::string StateTimeline::render_ascii(std::size_t max_columns) const {
  if (samples_.empty() || node_count_ == 0) return "(no samples)\n";
  max_columns = std::max<std::size_t>(max_columns, 8);

  // Compress samples into at most max_columns buckets (mean per bucket).
  const std::size_t buckets = std::min(max_columns, samples_.size());
  std::vector<std::array<double, kStates>> compressed(
      buckets, std::array<double, kStates>{});
  std::vector<std::size_t> weight(buckets, 0);
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const std::size_t b = i * buckets / samples_.size();
    for (std::size_t k = 0; k < kStates; ++k) {
      compressed[b][k] += samples_[i].count[k];
    }
    ++weight[b];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    for (auto& v : compressed[b]) v /= static_cast<double>(weight[b]);
  }

  static constexpr const char* kGlyphs = " .:+*#";
  static constexpr std::array<MwStateKind, kStates> kOrder = {
      MwStateKind::kAsleep,     MwStateKind::kListening,
      MwStateKind::kCompeting,  MwStateKind::kRequesting,
      MwStateKind::kLeader,     MwStateKind::kColored,
  };

  std::string out;
  for (MwStateKind kind : kOrder) {
    char label[16];
    std::snprintf(label, sizeof label, "%10s |", to_string(kind));
    out += label;
    for (std::size_t b = 0; b < buckets; ++b) {
      const double share = compressed[b][static_cast<std::size_t>(kind)] /
                           static_cast<double>(node_count_);
      const auto level = static_cast<std::size_t>(
          std::min(5.0, std::max(0.0, share * 5.0 + (share > 0.0 ? 0.999 : 0.0))));
      out += kGlyphs[level];
    }
    out += "|\n";
  }
  char footer[96];
  std::snprintf(footer, sizeof footer,
                "%10s  slots 0..%lld, %zu samples every %lld slots\n", "",
                static_cast<long long>(samples_.back().slot), samples_.size(),
                static_cast<long long>(interval_));
  out += footer;
  return out;
}

StateTimeline timeline_from_trace(std::span<const obs::TraceEvent> events,
                                  std::size_t node_count,
                                  radio::Slot interval) {
  SINRCOLOR_CHECK(interval >= 1);
  StateTimeline timeline(interval);
  timeline.set_node_count(node_count);
  if (events.empty() || node_count == 0) return timeline;

  // Replay: per-node MwStateKind value, updated event by event; a sample row
  // is flushed whenever the replay crosses a slot boundary that is a
  // multiple of `interval`.
  std::vector<std::uint8_t> state(node_count, 0);  // kAsleep
  std::array<std::uint32_t, StateTimeline::kStates> count{};
  count[0] = static_cast<std::uint32_t>(node_count);
  const radio::Slot last_slot = events.back().slot;
  radio::Slot next_sample = 0;
  const auto move = [&](graph::NodeId v, std::uint8_t to) {
    --count[state[v]];
    state[v] = to;
    ++count[to];
  };
  const auto flush_until = [&](radio::Slot limit) {
    while (next_sample <= limit) {
      StateTimeline::Sample sample;
      sample.slot = next_sample;
      sample.count = count;
      timeline.add_sample(sample);
      next_sample += interval;
    }
  };

  for (const obs::TraceEvent& e : events) {
    SINRCOLOR_CHECK_MSG(e.node < node_count,
                        "trace event for a node beyond node_count");
    flush_until(e.slot - 1);
    switch (e.kind) {
      case obs::EventKind::kMwTransition:
        move(e.node, static_cast<std::uint8_t>(e.b));
        break;
      case obs::EventKind::kFailure:
        move(e.node, 0);  // dead nodes render as asleep
        break;
      case obs::EventKind::kColorFinalized:
        // Fast-join confirmations carry no MW transition; count them as
        // colored. MW decisions already moved via kMwTransition (move is
        // then a no-op only if the finalize repeats, e.g. a join repair).
        if (state[e.node] !=
                static_cast<std::uint8_t>(MwStateKind::kLeader) &&
            state[e.node] !=
                static_cast<std::uint8_t>(MwStateKind::kColored)) {
          move(e.node, static_cast<std::uint8_t>(MwStateKind::kColored));
        }
        break;
      default:
        break;
    }
  }
  flush_until(last_slot);
  if (timeline.samples().empty() ||
      timeline.samples().back().slot < last_slot) {
    // Close with the end-of-run population even when `last_slot` is not a
    // sample boundary, so decided_fraction_slot(1.0) can see the final state.
    StateTimeline::Sample sample;
    sample.slot = last_slot;
    sample.count = count;
    timeline.add_sample(sample);
  }
  return timeline;
}

}  // namespace sinrcolor::core
