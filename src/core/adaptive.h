// Adaptive-Δ variant — a constructive take on the paper's Section-VI open
// question ("can we get rid of the knowledge of Δ?").
//
// HEURISTIC, NO PROOF: each node starts from a small local degree estimate
// Δ̂_v, derives its own protocol parameters from it, and doubles whenever it
// has decoded messages from more distinct neighbors than Δ̂_v allows
// (restarting its current color class with the new, more conservative
// parameters). The rationale is experiment X11's finding: *over*estimating Δ
// preserves correctness and costs only a linear factor — so a node only
// needs to reach Δ̂_v ≥ (its relevant competition degree) eventually, and
// decoded-neighbor counts are exactly the evidence of underestimation.
// Nodes that already decided never restart. n is still assumed known.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/mw_node.h"
#include "core/mw_params.h"
#include "core/mw_protocol.h"
#include "graph/coloring.h"
#include "radio/simulator.h"

namespace sinrcolor::core {

class AdaptiveMwNode final : public radio::Protocol {
 public:
  AdaptiveMwNode(graph::NodeId id, std::size_t n, sinr::SinrParams phys,
                 PracticalTuning tuning, std::size_t initial_delta);

  void on_wake(radio::Slot slot) override;
  std::optional<radio::Message> begin_slot(radio::Slot slot,
                                           common::Rng& rng) override;
  void on_receive(radio::Slot slot, const radio::Message& message) override;
  void end_slot(radio::Slot slot) override;
  bool decided() const override { return inner_->decided(); }

  graph::Color final_color() const { return inner_->final_color(); }
  MwStateKind state() const { return inner_->state(); }
  std::size_t delta_estimate() const { return delta_hat_; }
  std::size_t distinct_neighbors_heard() const { return heard_.size(); }
  std::uint32_t restarts() const { return restarts_; }

 private:
  void rebuild(radio::Slot slot, std::size_t new_delta);

  const graph::NodeId id_;
  const std::size_t n_;
  const sinr::SinrParams phys_;
  const PracticalTuning tuning_;
  std::size_t delta_hat_;
  std::uint32_t restarts_ = 0;
  // Ordered on purpose: unordered_set iteration order varies across library
  // implementations, and anything feeding restart decisions must be
  // bit-stable across same-seed runs (sinrlint R1).
  std::set<graph::NodeId> heard_;
  MwParams params_;  // owned; inner_ holds a reference to this member
  std::unique_ptr<MwNode> inner_;
};

struct AdaptiveRunConfig {
  std::uint64_t seed = 1;
  PracticalTuning tuning;
  std::size_t initial_delta = 2;
  WakeupKind wakeup = WakeupKind::kSimultaneous;
  radio::Slot wakeup_window = 0;
  radio::Slot max_slots = 0;  ///< 0 ⇒ derived from the TRUE Δ's horizon
};

struct AdaptiveRunResult {
  graph::Coloring coloring;
  radio::RunMetrics metrics;
  bool coloring_valid = false;
  std::size_t palette = 0;
  std::size_t independence_violations = 0;
  std::uint64_t total_restarts = 0;
  double mean_final_delta = 0.0;  ///< mean Δ̂_v at the end
  std::size_t max_final_delta = 0;

  std::string summary() const;
};

/// Runs the adaptive variant under the SINR medium; nodes receive NO Δ
/// knowledge (only n). Verifies Theorem-1 independence online like the
/// standard driver.
AdaptiveRunResult run_adaptive_coloring(const graph::UnitDiskGraph& g,
                                        const AdaptiveRunConfig& config = {});

}  // namespace sinrcolor::core
