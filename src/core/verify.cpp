#include "core/verify.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::core {

graph::Coloring extract_coloring(const std::vector<MwNode*>& nodes) {
  graph::Coloring coloring;
  coloring.color.reserve(nodes.size());
  for (const MwNode* node : nodes) {
    coloring.color.push_back(node->final_color());
  }
  return coloring;
}

std::vector<graph::NodeId> extract_leaders(const std::vector<MwNode*>& nodes) {
  std::vector<graph::NodeId> leaders;
  for (const MwNode* node : nodes) {
    if (node->state() == MwStateKind::kLeader) leaders.push_back(node->id());
  }
  return leaders;
}

std::size_t snapshot_independence_violations(const graph::UnitDiskGraph& g,
                                             const std::vector<MwNode*>& nodes) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  std::size_t violations = 0;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (!nodes[v]->decided()) continue;
    const graph::Color mine = nodes[v]->final_color();
    for (graph::NodeId u : g.neighbors(v)) {
      if (u < v && nodes[u]->decided() && nodes[u]->final_color() == mine) {
        ++violations;
      }
    }
  }
  return violations;
}

std::size_t clustering_violations(const graph::UnitDiskGraph& g,
                                  const std::vector<MwNode*>& nodes) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  std::size_t violations = 0;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const MwNode* node = nodes[v];
    if (node->state() != MwStateKind::kColored) continue;
    const graph::NodeId leader = node->leader();
    const bool leader_ok =
        leader != graph::kInvalidNode && leader < g.size() &&
        nodes[leader]->state() == MwStateKind::kLeader && g.adjacent(v, leader);
    if (!leader_ok) ++violations;
  }
  return violations;
}

}  // namespace sinrcolor::core
