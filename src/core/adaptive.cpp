#include "core/adaptive.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "radio/interference_model.h"
#include "radio/wakeup.h"

namespace sinrcolor::core {
namespace {

MwParams params_for(std::size_t n, const sinr::SinrParams& phys,
                    const PracticalTuning& tuning, std::size_t delta) {
  MwConfig cfg;
  cfg.n = n;
  cfg.max_degree = std::max<std::size_t>(delta, 1);
  cfg.phys = phys;
  return MwParams::practical(cfg, tuning);
}

}  // namespace

AdaptiveMwNode::AdaptiveMwNode(graph::NodeId id, std::size_t n,
                               sinr::SinrParams phys, PracticalTuning tuning,
                               std::size_t initial_delta)
    : id_(id),
      n_(n),
      phys_(phys),
      tuning_(tuning),
      delta_hat_(std::max<std::size_t>(initial_delta, 1)),
      params_(params_for(n, phys, tuning, delta_hat_)),
      inner_(std::make_unique<MwNode>(id, params_)) {}

void AdaptiveMwNode::on_wake(radio::Slot slot) {
  SINRCOLOR_CHECK_MSG(inner_->state() == MwStateKind::kAsleep,
                      "on_wake on an already-woken adaptive node");
  inner_->on_wake(slot);
}

std::optional<radio::Message> AdaptiveMwNode::begin_slot(radio::Slot slot,
                                                         common::Rng& rng) {
  SINRCOLOR_CHECK_MSG(inner_->state() != MwStateKind::kAsleep,
                      "begin_slot on a sleeping adaptive node");
  return inner_->begin_slot(slot, rng);
}

void AdaptiveMwNode::rebuild(radio::Slot slot, std::size_t new_delta) {
  delta_hat_ = new_delta;
  ++restarts_;
  // params_ is re-assigned in place: inner_'s reference would stay valid, but
  // the restart semantics are "re-enter A_0 with fresh parameters", so the
  // state machine is recreated anyway.
  params_ = params_for(n_, phys_, tuning_, delta_hat_);
  inner_ = std::make_unique<MwNode>(id_, params_);
  inner_->on_wake(slot);
}

void AdaptiveMwNode::on_receive(radio::Slot slot, const radio::Message& msg) {
  SINRCOLOR_CHECK_MSG(inner_->state() != MwStateKind::kAsleep,
                      "delivery to a sleeping adaptive node");
  heard_.insert(msg.sender);
  if (!inner_->decided() && heard_.size() > delta_hat_) {
    // Evidence of underestimation: we have ≥ heard_ neighbors. Double past
    // the observed count for slack (X11: overestimates are safe).
    rebuild(slot, 2 * heard_.size());
  }
  inner_->on_receive(slot, msg);
}

void AdaptiveMwNode::end_slot(radio::Slot slot) { inner_->end_slot(slot); }

std::string AdaptiveRunResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "colors=%zu valid=%s indep_viol=%zu restarts=%llu "
                "mean_delta_hat=%.1f max_delta_hat=%zu %s",
                palette, coloring_valid ? "yes" : "NO",
                independence_violations,
                static_cast<unsigned long long>(total_restarts),
                mean_final_delta, max_final_delta, metrics.summary().c_str());
  return buf;
}

AdaptiveRunResult run_adaptive_coloring(const graph::UnitDiskGraph& g,
                                        const AdaptiveRunConfig& config) {
  sinr::SinrParams phys;
  phys.noise =
      phys.power / (2.0 * phys.beta * std::pow(g.radius(), phys.alpha));

  radio::WakeupSchedule wakeups;
  switch (config.wakeup) {
    case WakeupKind::kSimultaneous:
      wakeups = radio::simultaneous_wakeup(g.size());
      break;
    case WakeupKind::kUniform: {
      common::Rng rng(common::derive_seed(config.seed, 0xbeefULL));
      wakeups = radio::uniform_wakeup(g.size(), config.wakeup_window, rng);
      break;
    }
    case WakeupKind::kStaggered:
      wakeups = radio::staggered_wakeup(g.size(), config.wakeup_window);
      break;
  }

  radio::Simulator simulator(
      g, std::make_unique<radio::SinrInterferenceModel>(g, phys),
      std::move(wakeups), config.seed);

  std::vector<AdaptiveMwNode*> nodes;
  nodes.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    auto node = std::make_unique<AdaptiveMwNode>(
        v, g.size(), phys, config.tuning, config.initial_delta);
    nodes.push_back(node.get());
    simulator.set_protocol(v, std::move(node));
  }

  std::size_t violations = 0;
  simulator.add_observer(
      [&, known = std::vector<bool>(g.size(), false)](
          radio::Slot, std::span<const radio::TxRecord>) mutable {
        for (graph::NodeId v = 0; v < g.size(); ++v) {
          if (known[v] || !nodes[v]->decided()) continue;
          known[v] = true;
          const graph::Color mine = nodes[v]->final_color();
          for (graph::NodeId u : g.neighbors(v)) {
            if (known[u] && nodes[u]->final_color() == mine) ++violations;
          }
        }
      });

  // Horizon: restarts cost extra rounds; allow a few true-Δ horizons.
  radio::Slot horizon = config.max_slots;
  if (horizon <= 0) {
    const auto true_params = params_for(
        g.size(), phys, config.tuning, std::max<std::size_t>(g.max_degree(), 1));
    horizon = 4 * true_params.recommended_max_slots();
  }

  AdaptiveRunResult result;
  result.metrics = simulator.run(horizon);
  result.coloring.color.reserve(g.size());
  double delta_sum = 0.0;
  for (AdaptiveMwNode* node : nodes) {
    result.coloring.color.push_back(node->final_color());
    result.total_restarts += node->restarts();
    delta_sum += static_cast<double>(node->delta_estimate());
    result.max_final_delta =
        std::max(result.max_final_delta, node->delta_estimate());
  }
  result.mean_final_delta =
      g.size() > 0 ? delta_sum / static_cast<double>(g.size()) : 0.0;
  result.coloring_valid = graph::is_valid_coloring(g, result.coloring);
  result.palette = result.coloring.palette_size();
  result.independence_violations = violations;
  return result;
}

}  // namespace sinrcolor::core
