// Driver tying the MW node state machines to the slotted simulator.
//
// MwInstance owns one full protocol execution: it derives parameters for the
// instance, installs one MwNode per graph node, selects the interference
// model (SINR by default; the graph-based model is exposed for the X9
// baseline comparison) and optionally verifies Theorem 1's invariant online
// (each color class stays independent at every slot).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mw_node.h"
#include "core/mw_params.h"
#include "core/recovery_types.h"
#include "graph/coloring.h"
#include "radio/simulator.h"
#include "sinr/fading.h"

namespace sinrcolor::core {

enum class WakeupKind : std::uint8_t {
  kSimultaneous,  ///< all nodes wake at slot 0
  kUniform,       ///< wake uniformly in [0, wakeup_window]
  kStaggered,     ///< node v wakes at v · wakeup_window
};

enum class ParamProfile : std::uint8_t { kPractical, kTheory };

struct MwRunConfig {
  ParamProfile profile = ParamProfile::kPractical;
  PracticalTuning tuning;          ///< used when profile == kPractical
  double c = 5.0;                  ///< used when profile == kTheory
  /// Physical-layer template: α, β, ρ are taken from here; the noise floor is
  /// re-solved so that R_T equals the graph's radius (the UDG must remain the
  /// physical reachability graph). Defaults: α=4, β=1.5, ρ=1.5.
  sinr::SinrParams phys_template;
  WakeupKind wakeup = WakeupKind::kSimultaneous;
  radio::Slot wakeup_window = 0;
  std::uint64_t seed = 1;
  /// 0 ⇒ params.recommended_max_slots().
  radio::Slot max_slots = 0;
  /// Run under the graph-based collision medium instead of SINR (baseline X9).
  bool graph_model = false;
  /// Reception-resolution path of the SINR media (ignored under the graph
  /// medium): kField shares one interference-field sum per covered listener
  /// (the fast path, docs/PERFORMANCE.md); kSimd evaluates the same field
  /// through the SoA batch kernel (docs/KERNELS.md); kNaive re-sums per
  /// (sender, listener) pair and is kept as the A/B oracle. Deliveries are
  /// identical across all three.
  sinr::ResolveKind resolve = sinr::ResolveKind::kField;
  /// Worker threads for the field/simd paths' per-listener shards (1 =
  /// serial). Any count produces byte-identical results (deterministic
  /// sharding).
  std::size_t threads = 1;
  /// Worker threads for the simulator's tiled slot engine (1 = the
  /// sequential engine). Byte-identical results at any count; see
  /// radio::Simulator::set_slot_threads for the determinism argument and
  /// the observation/fault-injector downgrade.
  std::size_t slot_threads = 1;
  /// Stochastic channel fading (ignored under the graph medium). The paper
  /// assumes deterministic path loss; X12 measures robustness against this.
  sinr::FadingSpec fading;
  /// Crash-stop failure injection: ⌈failure_fraction·n⌉ random nodes die at
  /// a uniform random slot in [0, failure_window]. Dead nodes vanish from
  /// the radio medium; the run ends when all SURVIVORS decide (stalled
  /// survivors — e.g. requesters orphaned by a dead leader — are reported in
  /// metrics.stalled_nodes). 0 disables.
  double failure_fraction = 0.0;
  radio::Slot failure_window = 0;
  /// Knowledge the nodes run with (the paper assumes Δ and n are known).
  /// 0 ⇒ use the true values; otherwise the protocol derives its parameters
  /// from these ESTIMATES — X11 measures the cost of mis-estimation
  /// (underestimates break guarantees, overestimates cost time).
  std::size_t delta_estimate = 0;
  std::size_t n_estimate = 0;
  /// Verify Theorem 1 online (every slot, incremental): counts the number of
  /// times a node finalized a color already held by a decided neighbor.
  bool check_independence = true;
  /// When set, bypasses profile/tuning derivation and runs with exactly these
  /// parameters (ablation experiments that break individual relations on
  /// purpose, e.g. constant q_s instead of q_ℓ/Δ).
  std::optional<MwParams> params_override;
  /// Self-healing layer: failure detection + leader failover + dynamic
  /// joins. MwInstance honours only `recovery.retransmit` (request-path
  /// hardening is protocol-local); the detector/failover/join knobs need the
  /// robust driver — run the config through robust::run_recovering_mw to get
  /// them. They live here so every harness configures one struct.
  RecoveryOptions recovery;
};

struct MwRunResult {
  MwParams params;
  graph::Coloring coloring;
  radio::RunMetrics metrics;
  std::vector<graph::NodeId> leaders;
  /// Theorem-1 online violations observed (0 expected).
  std::size_t independence_violations = 0;
  /// Whether the final coloring is a complete valid (1,·)-coloring.
  bool coloring_valid = false;
  std::size_t palette = 0;           ///< distinct colors used
  graph::Color max_color = graph::kUncolored;
  /// Self-healing metrics; all zero unless the robust driver produced this.
  RecoveryStats recovery;

  std::string summary() const;
};

class MwInstance {
 public:
  MwInstance(const graph::UnitDiskGraph& g, const MwRunConfig& config);

  const MwParams& params() const { return params_; }
  radio::Simulator& simulator() { return *simulator_; }
  const std::vector<MwNode*>& nodes() const { return nodes_; }
  const graph::UnitDiskGraph& graph() const { return graph_; }

  /// Attaches trace + metrics sinks to the whole instance: the simulator
  /// (radio events, SINR margin), every MwNode (state transitions, color
  /// decisions, time-in-state) and the independence checker (violation
  /// events). Call before run(); null detaches. Observation never touches
  /// the RNG streams, so results are byte-identical to an unobserved run.
  void attach_observation(obs::RunObservation* observation);

  /// Executes the protocol and extracts the result. Call once.
  MwRunResult run();

 private:
  const graph::UnitDiskGraph& graph_;
  MwRunConfig config_;
  MwParams params_;
  /// Contiguous node arena: one MwNode per graph node, laid out back-to-back
  /// so a tile pass of the slot engine walks protocol state linearly instead
  /// of chasing n separate heap blocks. The simulator holds non-owning
  /// pointers into it; declared before simulator_ so it outlives the
  /// simulator's references on destruction.
  std::vector<MwNode> node_arena_;
  std::unique_ptr<radio::Simulator> simulator_;
  std::vector<MwNode*> nodes_;  // pointers into node_arena_
  std::size_t independence_violations_ = 0;
  obs::RunObservation* observation_ = nullptr;
};

/// Convenience wrapper: build an MwInstance and run it.
MwRunResult run_mw_coloring(const graph::UnitDiskGraph& g,
                            const MwRunConfig& config = {});

// --- building blocks shared with the robust recovery driver ---

/// The run's physical layer: α, β, ρ from the config's template with the
/// noise floor re-solved so R_T equals the graph's radius.
sinr::SinrParams resolve_phys(const graph::UnitDiskGraph& g,
                              const MwRunConfig& config);

/// Protocol parameters for the instance (profile / estimates / override).
MwParams derive_mw_params(const graph::UnitDiskGraph& g,
                          const MwRunConfig& config);

/// The interference medium the config selects (SINR, SINR+fading, or graph).
std::unique_ptr<radio::InterferenceModel> make_interference_model(
    const graph::UnitDiskGraph& g, const MwRunConfig& config);

/// The wake-up schedule the config selects.
radio::WakeupSchedule make_wakeup_schedule(std::size_t n,
                                           const MwRunConfig& config);

/// Applies failure_fraction / failure_window to the simulator: ⌈fraction·n⌉
/// random nodes die at a uniform slot in [0, failure_window]. Nodes with
/// `exclude[v]` set are skipped (they still count toward the quota base).
/// Returns the victims actually scheduled.
std::vector<graph::NodeId> schedule_random_failures(
    radio::Simulator& sim, const MwRunConfig& config,
    const std::vector<bool>* exclude = nullptr);

}  // namespace sinrcolor::core
