// Per-slot state-population timeline of a protocol run.
//
// Records how many nodes are in each MW state (asleep, listening, competing,
// requesting, leader, colored) at sampled slots, which makes the algorithm's
// phase structure visible: the listening wave, the leader-election burst,
// the request/assign pipeline, and the per-class competition cascades.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/mw_protocol.h"
#include "obs/trace.h"

namespace sinrcolor::core {

class StateTimeline {
 public:
  static constexpr std::size_t kStates = 6;

  /// Sample row: node count per MwStateKind (by enum value) at `slot`.
  struct Sample {
    radio::Slot slot = 0;
    std::array<std::uint32_t, kStates> count{};
  };

  explicit StateTimeline(radio::Slot interval) : interval_(interval) {}

  /// Attach to an instance BEFORE run(); samples every `interval` slots.
  void attach(MwInstance& instance);

  /// Offline construction (timeline_from_trace, tests): declare the node
  /// population and append pre-computed sample rows directly.
  void set_node_count(std::size_t node_count) { node_count_ = node_count; }
  void add_sample(const Sample& sample) { samples_.push_back(sample); }

  const std::vector<Sample>& samples() const { return samples_; }
  radio::Slot interval() const { return interval_; }
  std::size_t node_count() const { return node_count_; }

  /// First sampled slot where `fraction` of the nodes had decided
  /// (leader or colored), or -1 if never reached.
  radio::Slot decided_fraction_slot(double fraction) const;

  /// A stacked ASCII chart: one row per state, one column per (compressed)
  /// sample, glyph density proportional to the state's population share.
  std::string render_ascii(std::size_t max_columns = 72) const;

 private:
  radio::Slot interval_;
  std::size_t node_count_ = 0;
  std::vector<Sample> samples_;
};

/// Rebuilds a StateTimeline from a recorded event trace (obs/trace.h) by
/// replaying mw_transition / failure / color_finalized events: a sample
/// every `interval` slots counts each node's state after all events at
/// slots <= the sampled slot. Dead nodes count as kAsleep; fast-join
/// confirmations (color_finalized without an MW transition) as kColored.
/// Events must be in emission order (as Tracer::events / read_jsonl yield).
StateTimeline timeline_from_trace(std::span<const obs::TraceEvent> events,
                                  std::size_t node_count,
                                  radio::Slot interval);

}  // namespace sinrcolor::core
