#include "core/mw_params.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "graph/packing.h"

namespace sinrcolor::core {
namespace {

double safe_log_n(std::size_t n) { return std::log(static_cast<double>(std::max<std::size_t>(n, 3))); }

// Theory-profile slot counts can exceed any integer range for α close to 2
// (φ(R_I) explodes); saturate instead of overflowing — these values are used
// for inequality checks and reporting, never to actually run that long.
std::int64_t ceil_to_i64(double v) {
  constexpr double kMax = 9.0e18;
  if (!(v < kMax)) return static_cast<std::int64_t>(kMax);
  return static_cast<std::int64_t>(std::ceil(v));
}

}  // namespace

std::int64_t MwParams::palette_bound() const {
  return (static_cast<std::int64_t>(phi_2rt) + 1) *
         static_cast<std::int64_t>(std::max<std::size_t>(max_degree, 1));
}

radio::Slot MwParams::recommended_max_slots() const {
  // Lemma 6/7 structure: a node traverses at most φ(2R_T)+2 state classes,
  // each costing O((listen + threshold + resets)) slots; multiply by a
  // comfortable safety factor for the practical profile's smaller h.p. margin.
  const double per_state =
      static_cast<double>(listen_slots + counter_threshold) +
      static_cast<double>(phi_2rt) * 2.0 * static_cast<double>(window_positive) +
      static_cast<double>(max_degree + 1) * static_cast<double>(assign_slots);
  const double states = static_cast<double>(phi_2rt) + 2.0;
  return std::max<radio::Slot>(1000, ceil_to_i64(40.0 * states * per_state));
}

MwParams MwParams::theory(const MwConfig& config) {
  SINRCOLOR_CHECK(config.n >= 1);
  SINRCOLOR_CHECK(config.max_degree >= 1);
  SINRCOLOR_CHECK_MSG(config.c >= 5.0, "the paper requires c >= 5");
  config.phys.validate();

  const double r_t = config.phys.r_t();
  const double r_i = config.phys.r_i();
  const double rho = config.phys.rho;
  const auto delta = static_cast<double>(config.max_degree);
  const double c = config.c;

  MwParams p;
  p.n = config.n;
  p.max_degree = config.max_degree;
  p.phi_ri = graph::phi_upper_bound(r_i, r_t);
  p.phi_ri_rt = graph::phi_upper_bound(r_i + r_t, r_t);
  p.phi_2rt_value = graph::phi_upper_bound(2.0 * r_t, r_t);
  p.phi_2rt = static_cast<std::int32_t>(std::ceil(p.phi_2rt_value));

  const double phi_ratio = p.phi_ri / p.phi_ri_rt;
  p.lambda = (1.0 - 1.0 / rho) / std::exp(phi_ratio) *
             (1.0 - p.phi_ri / (p.phi_ri_rt * p.phi_ri_rt * delta)) *
             (1.0 - 1.0 / (p.phi_ri_rt * p.phi_ri_rt * delta));
  p.lambda_prime = (1.0 - 1.0 / rho) / (std::exp(1.0) * p.phi_ri_rt) *
                   (1.0 - 1.0 / (p.phi_ri_rt * delta)) *
                   std::pow(1.0 - 1.0 / p.phi_ri_rt, p.phi_ri_rt);
  SINRCOLOR_CHECK_MSG(p.lambda > 0.0 && p.lambda < 1.0, "lambda out of (0,1)");
  SINRCOLOR_CHECK_MSG(p.lambda_prime > 0.0 && p.lambda_prime < 1.0,
                      "lambda' out of (0,1)");

  p.sigma = 2.0 * c / p.lambda_prime;
  p.gamma = c * p.phi_ri_rt / p.lambda;
  p.eta = 2.0 * p.gamma * p.phi_2rt_value + p.sigma + 1.0;
  p.mu = std::max(p.gamma, p.sigma);

  p.q_leader = 1.0 / p.phi_ri_rt;
  p.q_small = 1.0 / (p.phi_ri_rt * delta);

  const double log_n = safe_log_n(config.n);
  p.listen_slots = ceil_to_i64(p.eta * delta * log_n);
  p.counter_threshold = ceil_to_i64(p.sigma * delta * log_n);
  p.window_zero = ceil_to_i64(p.gamma * log_n);
  p.window_positive = ceil_to_i64(p.gamma * delta * log_n);
  p.assign_slots = ceil_to_i64(p.mu * log_n);
  return p;
}

MwParams MwParams::practical(const MwConfig& config, const PracticalTuning& tuning) {
  SINRCOLOR_CHECK(config.n >= 1);
  SINRCOLOR_CHECK(config.max_degree >= 1);
  config.phys.validate();
  SINRCOLOR_CHECK_MSG(tuning.sigma_factor > 2.0,
                      "practical tuning must keep threshold > 2*window");
  SINRCOLOR_CHECK_MSG(tuning.eta_factor >= tuning.sigma_factor + 2.0,
                      "practical tuning must keep eta >= sigma + 2");
  SINRCOLOR_CHECK_MSG(tuning.mu_factor >= tuning.kappa,
                      "practical tuning must keep mu >= kappa");
  SINRCOLOR_CHECK(tuning.q_leader > 0.0 && tuning.q_leader < 1.0);
  SINRCOLOR_CHECK(tuning.kappa > 0.0);
  SINRCOLOR_CHECK(tuning.phi_2rt >= 1);

  const auto delta = static_cast<double>(config.max_degree);
  const double r_t = config.phys.r_t();
  const double r_i = config.phys.r_i();

  MwParams p;
  p.n = config.n;
  p.max_degree = config.max_degree;
  p.phi_ri = graph::phi_upper_bound(r_i, r_t);
  p.phi_ri_rt = graph::phi_upper_bound(r_i + r_t, r_t);
  p.phi_2rt_value = static_cast<double>(tuning.phi_2rt);
  p.phi_2rt = tuning.phi_2rt;

  p.lambda = 0.0;        // not meaningful for the practical profile
  p.lambda_prime = 0.0;
  p.sigma = tuning.sigma_factor;
  p.gamma = tuning.kappa;
  p.eta = tuning.eta_factor;
  p.mu = tuning.mu_factor;

  p.q_leader = tuning.q_leader;
  p.q_small = tuning.q_leader / std::max(delta, 1.0);

  const double log_n = safe_log_n(config.n);
  p.window_zero = ceil_to_i64(tuning.kappa * log_n / p.q_leader);
  p.window_positive = ceil_to_i64(tuning.kappa * log_n / p.q_small);
  p.counter_threshold =
      ceil_to_i64(tuning.sigma_factor * static_cast<double>(p.window_positive));
  p.listen_slots =
      ceil_to_i64(tuning.eta_factor * static_cast<double>(p.window_positive));
  p.assign_slots = ceil_to_i64(tuning.mu_factor * log_n / p.q_leader);

  // Structural relation used by Theorem 1 (Case 2): the threshold must exceed
  // twice the largest reset window, or independence can break. σ̂ > 2γ̂
  // guarantees it asymptotically; the max() shields against ceiling effects
  // at very small Δ·ln n.
  p.counter_threshold =
      std::max(p.counter_threshold, 2 * p.window_positive + 1);
  return p;
}

std::string MwParams::to_string() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "MwParams{n=%zu, Delta=%zu, q_l=%.4g, q_s=%.4g, listen=%lld, "
                "threshold=%lld, window0=%lld, window+=%lld, assign=%lld, "
                "phi2RT=%d, sigma=%.3g, gamma=%.3g, eta=%.3g, mu=%.3g}",
                n, max_degree, q_leader, q_small,
                static_cast<long long>(listen_slots),
                static_cast<long long>(counter_threshold),
                static_cast<long long>(window_zero),
                static_cast<long long>(window_positive),
                static_cast<long long>(assign_slots), phi_2rt, sigma, gamma,
                eta, mu);
  return buf;
}

}  // namespace sinrcolor::core
