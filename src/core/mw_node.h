// Per-node state machine of the MW coloring algorithm (paper, Figs. 1–3).
//
// States (paper notation → ours):
//   A_i, listening phase (Fig. 1 lines 2–5)  → kListening
//   A_i, competition loop (Fig. 1 lines 7–15)→ kCompeting
//   R   (Fig. 3)                             → kRequesting
//   C_0 (Fig. 2, i = 0: leader)              → kLeader
//   C_i (Fig. 2, i > 0: colored)             → kColored
//
// A node wakes into A_0's listening phase. Leaders (first locally to drive
// their counter to ⌈σΔ ln n⌉ in class 0) beacon forever and hand out cluster
// colors tc = 1, 2, … to requesting cluster members; a member granted tc then
// competes for its final color in classes tc·(φ(2R_T)+1) + k, k = 0..φ(2R_T).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/mw_params.h"
#include "core/recovery_types.h"
#include "graph/coloring.h"
#include "obs/observation.h"
#include "radio/protocol.h"

namespace sinrcolor::core {

enum class MwStateKind : std::uint8_t {
  kAsleep,
  kListening,    ///< A_i lines 2–5: collect counters, never transmit
  kCompeting,    ///< A_i lines 7–15: increment / reset / transmit M_A
  kRequesting,   ///< R: ask leader for a cluster color
  kLeader,       ///< C_0: beacon + serve the request queue
  kColored,      ///< C_i, i > 0: beacon the final color
};

const char* to_string(MwStateKind kind);

/// Number of MwStateKind values (dimension of the transition table).
inline constexpr std::size_t kMwStateCount = 6;

/// The paper's Fig. 1–3 automaton as data: kMwTransitionTable[from][to] is
/// true iff the protocol may move a node from `from` to `to`. Every mutation
/// of MwNode::state_ flows through MwNode::transition_to(), which CHECKs
/// against this table — so the table IS the auditable automaton, and the
/// sinrlint R2 rule guarantees no mutation bypasses it.
///
/// Edges (row = from):
///   kAsleep     → kListening   on_wake: enter A_0 (Fig. 1 line 1)
///   kListening  → kListening   leader signal in A_i, i>0: enter A_{i+1}
///   kListening  → kCompeting   listening phase over (Fig. 1 line 6)
///   kListening  → kRequesting  class-0 leader signal: L(v) := w (Fig. 1 l. 5)
///   kCompeting  → kListening   A_{i+1} re-entry / election restart
///   kCompeting  → kRequesting  class-0 leader signal (Fig. 1 line 12)
///   kCompeting  → kLeader      c_v hit threshold in class 0 (Fig. 1 line 11)
///   kCompeting  → kColored     c_v hit threshold in class i>0
///   kRequesting → kListening   cluster color granted: enter A_{tc(φ+1)}
///                              (Fig. 3 line 3) or leader failover restart
///   kLeader, kColored           terminal: no outgoing edges
inline constexpr bool kMwTransitionTable[kMwStateCount][kMwStateCount] = {
    //               to: asleep listen compete request leader colored
    /* kAsleep     */ {false, true, false, false, false, false},
    /* kListening  */ {false, true, true, true, false, false},
    /* kCompeting  */ {false, true, false, true, true, true},
    /* kRequesting */ {false, true, false, false, false, false},
    /* kLeader     */ {false, false, false, false, false, false},
    /* kColored    */ {false, false, false, false, false, false},
};

/// True iff the Fig. 1–3 automaton allows `from` → `to`.
constexpr bool mw_transition_allowed(MwStateKind from, MwStateKind to) {
  return kMwTransitionTable[static_cast<std::size_t>(from)]
                           [static_cast<std::size_t>(to)];
}

class MwNode final : public radio::Protocol {
 public:
  /// `params` must outlive the node.
  MwNode(graph::NodeId id, const MwParams& params);

  /// Pre-sizes the per-node containers (P_v, the request queue Q) to their
  /// structural bound — both only ever hold UDG neighbors, so `degree`
  /// capacity means the node never allocates again after setup, no matter
  /// how late it wakes, resets or becomes a leader (the zero-allocation
  /// slot-loop contract; see docs/PERFORMANCE.md).
  void reserve_peers(std::size_t degree);

  // --- radio::Protocol ---
  void on_wake(radio::Slot slot) override;
  std::optional<radio::Message> begin_slot(radio::Slot slot,
                                           common::Rng& rng) override;
  void on_receive(radio::Slot slot, const radio::Message& message) override;
  void end_slot(radio::Slot slot) override;
  bool decided() const override {
    return state_ == MwStateKind::kLeader || state_ == MwStateKind::kColored;
  }
  std::size_t memory_bytes() const override {
    return sizeof(MwNode) + competitors_.capacity() * sizeof(Competitor) +
           request_queue_.capacity() * sizeof(graph::NodeId);
  }

  // --- introspection (verification, probes, experiments) ---
  graph::NodeId id() const { return id_; }
  MwStateKind state() const { return state_; }
  /// Color class i of the current A_i / C_i (undefined while kRequesting).
  std::int32_t color_class() const { return color_class_; }
  /// Final color once decided (leaders: 0); graph::kUncolored before.
  graph::Color final_color() const;
  graph::NodeId leader() const { return leader_; }
  std::int64_t counter() const { return counter_; }
  /// This node's sending probability in its current state (Lemma-3 probes).
  double tx_probability() const;
  /// Cluster colors handed out so far (leaders only).
  std::int32_t assigned_cluster_colors() const { return next_cluster_color_; }
  /// Number of counter resets performed (Fig. 1 line 15 / line 6 re-entries).
  std::uint64_t reset_count() const { return resets_; }

  // --- robustness hooks (src/robust; beyond the paper's model) ---
  /// Abandons the current attempt and re-enters leader election from A_0
  /// with no recorded leader. Called by the self-healing layer when this
  /// node's leader is suspected dead. Requires an awake, undecided node
  /// (kLeader / kColored are terminal in kMwTransitionTable).
  void restart_election();
  /// Drops competitors whose last M_A is older than `max_age` slots — a
  /// crashed competitor's mirrored counter would otherwise advance forever
  /// and keep depressing χ(P_v). Returns the number pruned.
  std::size_t prune_competitors_older_than(radio::Slot now, radio::Slot max_age);
  /// Enables bounded request retransmission with exponential backoff (state
  /// R hardening against injected message loss; see RetransmitPolicy). A
  /// disabled policy (the default) leaves the per-slot behaviour — and the
  /// RNG stream — byte-identical to the paper's protocol. Call before run.
  void set_retransmit_policy(const RetransmitPolicy& policy) {
    retransmit_ = policy;
  }
  /// Forced M_R resends performed so far (0 with a disabled policy).
  std::size_t forced_retransmissions() const { return forced_retransmissions_; }

  // --- observability (src/obs) ---
  /// Attaches trace + metrics sinks: transition_to then emits mw_transition /
  /// leader_elected / color_finalized events and feeds the per-state
  /// time-in-state histograms. Null detaches; unobserved nodes pay one
  /// pointer test per transition and nothing per slot.
  void set_observation(obs::RunObservation* observation);

 private:
  // d_v(w) advances by exactly one per slot (Fig. 1 lines 3/9), so instead of
  // touching every mirror every slot we store the received counter and its
  // slot and reconstruct d_v(w) = base + (now − recorded) on demand.
  struct Competitor {
    graph::NodeId id;
    std::int64_t base;          ///< c_w as carried by the last M_A received
    radio::Slot recorded_slot;  ///< slot of that reception

    std::int64_t mirror(radio::Slot now) const {
      return base + (now - recorded_slot);
    }
  };

  /// Sole mutation point of state_: validates the edge against
  /// kMwTransitionTable (aborts on an illegal transition).
  void transition_to(MwStateKind next);
  /// Enter A_j: Fig. 1 line 1 initialisation + listening phase.
  void enter_class(std::int32_t j);
  /// Fig. 1 line 6: largest value ≤ 0 outside every [d_v(w) ± window].
  std::int64_t chi(radio::Slot now) const;
  Competitor* find_competitor(graph::NodeId w);
  std::optional<radio::Message> leader_slot(common::Rng& rng);

  const graph::NodeId id_;
  const MwParams& params_;

  // Observability sinks (null when unobserved) and the slot bookkeeping that
  // lets transition_to stamp events without a slot parameter: every protocol
  // entry point records its slot in last_slot_ before any transition fires.
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* obs_metrics_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  radio::Slot last_slot_ = 0;
  radio::Slot state_entry_slot_ = 0;

  MwStateKind state_{MwStateKind::kAsleep};
  std::int32_t color_class_ = 0;       ///< i of the current A_i / C_i
  radio::Slot listen_remaining_ = 0;   ///< slots left in the listening phase
  std::int64_t counter_ = 0;           ///< c_v
  std::vector<Competitor> competitors_;  ///< P_v with mirrored counters
  graph::NodeId leader_ = graph::kInvalidNode;  ///< L(v)
  std::uint64_t resets_ = 0;

  // Request retransmission (robustness hardening; inert when disabled).
  RetransmitPolicy retransmit_;
  radio::Slot retransmit_anchor_ = -1;  ///< R entry / last forced send
  radio::Slot retransmit_wait_ = 0;     ///< current backoff interval
  std::size_t retries_used_ = 0;        ///< forced sends this R episode
  std::size_t forced_retransmissions_ = 0;

  // Leader (C_0) bookkeeping. Q is a vector + head index rather than a
  // deque: a deque allocates and frees blocks as entries churn, while the
  // vector's capacity plateaus at the cluster size and the steady-state slot
  // loop stays allocation-free. Live entries are [request_head_, size).
  std::vector<graph::NodeId> request_queue_;  ///< Q, [head] = currently served
  std::size_t request_head_ = 0;
  std::int32_t next_cluster_color_ = 0;  ///< tc
  bool serving_ = false;
  radio::Slot serve_remaining_ = 0;
};

}  // namespace sinrcolor::core
