// Knobs and metrics of the self-healing layer (implemented in src/robust).
//
// These are plain data carried by core::MwRunConfig / core::MwRunResult so
// that experiments and the CLI configure recovery the same way they configure
// failures or fading; the state machines consuming them live one layer up in
// robust::SelfHealingNode / robust::RecoveryInstance. All of this is beyond
// the paper's clean model (reliable, static nodes) — see docs/MODEL.md,
// "Failure and churn model".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "radio/message.h"

namespace sinrcolor::core {

struct RecoveryOptions {
  /// Master switch for the failure detector + leader failover. Joins are
  /// scheduled independently via join_fraction.
  bool enabled = false;

  /// Slots of leader silence a requester tolerates before suspecting its
  /// leader dead and re-entering leader election. 0 ⇒ derived from the run's
  /// MwParams as (Δ+1)·assign_slots + 2·window⁺ — above the worst legitimate
  /// wait (a leader serving every other cluster member first) w.h.p.
  radio::Slot suspect_timeout = 0;
  /// The timeout multiplies by this after every failover (exponential
  /// backoff), so repeated suspicion under heavy contention self-throttles.
  double backoff = 2.0;
  /// A node stops failing over after this many attempts (it then stalls and
  /// is reported like an unrecovered orphan).
  std::size_t max_failovers = 10;

  /// Fraction of nodes held back as late arrivals; ⌈fraction·n⌉ random nodes
  /// join at a uniform slot in [join_at, join_at + join_window]. 0 disables.
  double join_fraction = 0.0;
  radio::Slot join_at = 0;
  radio::Slot join_window = 0;
  /// Slots a joiner listens for color beacons before picking a locally free
  /// color. 0 ⇒ 2·window⁺ (long enough to hear every q_s-beaconing neighbor
  /// w.h.p.). If the listen phase overhears competition or request traffic,
  /// the neighborhood has not converged and the joiner falls back to the
  /// full MW protocol instead.
  radio::Slot join_listen_slots = 0;
  /// Slots a joiner beacons its tentative color while watching for
  /// collisions before confirming it. 0 ⇒ window⁺.
  radio::Slot join_confirm_slots = 0;

  std::string to_string() const;
};

struct RecoveryStats {
  /// Leader-suspect events fired (a node may fail over more than once).
  std::size_t failovers = 0;
  /// Nodes that decided after at least one failover — X14's would-be stalls.
  std::size_t recovered_nodes = 0;
  /// Dynamic-join events fired (RunMetrics::joined_nodes, copied here).
  std::size_t joined_nodes = 0;
  /// Tentative-color collisions a joiner detected and repaired locally.
  std::size_t join_conflicts_repaired = 0;
  /// Joiners that overheard an unconverged neighborhood and ran the full MW
  /// protocol instead of the fast listen-and-pick path.
  std::size_t join_fallbacks = 0;
  /// Slots between a node's FIRST failover and its eventual decision.
  double mean_failover_latency = 0.0;
  radio::Slot max_failover_latency = 0;

  std::string summary() const;
};

}  // namespace sinrcolor::core
