// Knobs and metrics of the self-healing layer (implemented in src/robust).
//
// These are plain data carried by core::MwRunConfig / core::MwRunResult so
// that experiments and the CLI configure recovery the same way they configure
// failures or fading; the state machines consuming them live one layer up in
// robust::SelfHealingNode / robust::RecoveryInstance. All of this is beyond
// the paper's clean model (reliable, static nodes) — see docs/MODEL.md,
// "Failure and churn model".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "radio/message.h"

namespace sinrcolor::core {

/// Bounded retransmission with exponential backoff for the request path
/// (state R): without it a requester relies on the q_s coin alone, and under
/// heavy injected message loss the request/grant exchange can starve. When
/// enabled, a requester that has waited `initial_wait` slots since entering
/// R (or since its last forced send) transmits M_R deterministically, then
/// doubles its wait (× `backoff`) up to `max_retries` forced sends; the
/// plain q_s-randomized sending continues in between. Disabled (the paper's
/// protocol, byte-identical RNG stream) when initial_wait == 0.
struct RetransmitPolicy {
  radio::Slot initial_wait = 0;  ///< slots before the first forced resend; 0 off
  double backoff = 2.0;          ///< wait multiplier per forced resend (≥ 1)
  std::size_t max_retries = 6;   ///< forced resends per R episode

  bool enabled() const { return initial_wait > 0; }
};

struct RecoveryOptions {
  /// Master switch for the failure detector + leader failover. Joins are
  /// scheduled independently via join_fraction.
  bool enabled = false;

  /// Slots of leader silence a requester tolerates before suspecting its
  /// leader dead and re-entering leader election. 0 ⇒ derived from the run's
  /// MwParams as (Δ+1)·assign_slots + 2·window⁺ — above the worst legitimate
  /// wait (a leader serving every other cluster member first) w.h.p.
  radio::Slot suspect_timeout = 0;
  /// The timeout multiplies by this after every failover (exponential
  /// backoff), so repeated suspicion under heavy contention self-throttles.
  double backoff = 2.0;
  /// A node stops failing over after this many attempts (it then stalls and
  /// is reported like an unrecovered orphan).
  std::size_t max_failovers = 10;

  /// Fraction of nodes held back as late arrivals; ⌈fraction·n⌉ random nodes
  /// join at a uniform slot in [join_at, join_at + join_window]. 0 disables.
  double join_fraction = 0.0;
  radio::Slot join_at = 0;
  radio::Slot join_window = 0;
  /// Slots a joiner listens for color beacons before picking a locally free
  /// color. 0 ⇒ 2·window⁺ (long enough to hear every q_s-beaconing neighbor
  /// w.h.p.). If the listen phase overhears competition or request traffic,
  /// the neighborhood has not converged and the joiner falls back to the
  /// full MW protocol instead.
  radio::Slot join_listen_slots = 0;
  /// Slots a joiner beacons its tentative color while watching for
  /// collisions before confirming it. 0 ⇒ window⁺.
  radio::Slot join_confirm_slots = 0;

  /// Request-path retransmission hardening (honoured by both the plain
  /// MwInstance and the self-healing driver). Disabled by default.
  RetransmitPolicy retransmit;

  /// Graceful degradation: a node that exhausted max_failovers (its leader
  /// keeps vanishing or is jammed beyond reach) picks a provisional color
  /// from the beacons it overheard — via the fast-join confirm path, with
  /// the same conflict repair — instead of stalling undecided to the end of
  /// the run. Liveness heuristic beyond the paper's model; off by default.
  bool degrade_to_provisional = false;

  /// Settle window: keep the simulator running this many extra slots after
  /// every node has decided, so the post-decision conflict watch (an
  /// established node yielding to a lower-id neighbor beaconing the same
  /// color) has air time to detect and repair late collisions that message
  /// loss let through. 0 (default) stops at the first all-decided slot —
  /// the original, byte-identical behavior.
  radio::Slot settle_slots = 0;

  std::string to_string() const;
};

struct RecoveryStats {
  /// Leader-suspect events fired (a node may fail over more than once).
  std::size_t failovers = 0;
  /// Nodes that decided after at least one failover — X14's would-be stalls.
  std::size_t recovered_nodes = 0;
  /// Dynamic-join events fired (RunMetrics::joined_nodes, copied here).
  std::size_t joined_nodes = 0;
  /// Tentative-color collisions a joiner detected and repaired locally.
  std::size_t join_conflicts_repaired = 0;
  /// Post-decision collisions an ESTABLISHED node detected (a lower-id
  /// neighbor beaconing its color) and repaired by re-picking locally.
  std::size_t late_conflicts_repaired = 0;
  /// Joiners that overheard an unconverged neighborhood and ran the full MW
  /// protocol instead of the fast listen-and-pick path.
  std::size_t join_fallbacks = 0;
  /// Nodes that exhausted their failovers and fell back to a provisional
  /// color (degrade_to_provisional) instead of stalling.
  std::size_t degraded_nodes = 0;
  /// Slots between a node's FIRST failover and its eventual decision.
  double mean_failover_latency = 0.0;
  radio::Slot max_failover_latency = 0;

  std::string summary() const;
};

}  // namespace sinrcolor::core
