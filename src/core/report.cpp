#include "core/report.h"

#include "common/json.h"

namespace sinrcolor::core {
namespace {

void write_params(common::JsonWriter& json, const MwParams& p) {
  json.begin_object();
  json.field("n", static_cast<std::uint64_t>(p.n));
  json.field("max_degree", static_cast<std::uint64_t>(p.max_degree));
  json.field("q_leader", p.q_leader);
  json.field("q_small", p.q_small);
  json.field("listen_slots", static_cast<std::int64_t>(p.listen_slots));
  json.field("counter_threshold", p.counter_threshold);
  json.field("window_zero", p.window_zero);
  json.field("window_positive", p.window_positive);
  json.field("assign_slots", static_cast<std::int64_t>(p.assign_slots));
  json.field("phi_2rt", static_cast<std::int64_t>(p.phi_2rt));
  json.field("sigma", p.sigma);
  json.field("gamma", p.gamma);
  json.field("eta", p.eta);
  json.field("mu", p.mu);
  json.field("palette_bound", p.palette_bound());
  json.end_object();
}

}  // namespace

std::string to_json(const MwParams& params) {
  common::JsonWriter json;
  write_params(json, params);
  return json.str();
}

namespace {

std::string result_to_json(const MwRunResult& result, bool include_per_node,
                           const obs::RunObservation* observation) {
  common::JsonWriter json;
  json.begin_object();

  json.key("params");
  write_params(json, result.params);

  json.key("metrics");
  json.begin_object();
  json.field("slots_executed",
             static_cast<std::int64_t>(result.metrics.slots_executed));
  json.field("all_decided", result.metrics.all_decided);
  json.field("total_transmissions", result.metrics.total_transmissions);
  json.field("total_deliveries", result.metrics.total_deliveries);
  json.field("max_concurrent_tx",
             static_cast<std::uint64_t>(result.metrics.max_concurrent_tx));
  json.field("failed_nodes",
             static_cast<std::uint64_t>(result.metrics.failed_nodes));
  json.field("stalled_nodes",
             static_cast<std::uint64_t>(result.metrics.stalled_nodes));
  json.field("joined_nodes",
             static_cast<std::uint64_t>(result.metrics.joined_nodes));
  json.field("max_decision_latency",
             static_cast<std::int64_t>(result.metrics.max_decision_latency()));
  json.field("mean_decision_latency", result.metrics.mean_decision_latency());
  json.end_object();

  json.field("palette", static_cast<std::uint64_t>(result.palette));
  json.field("max_color", static_cast<std::int64_t>(result.max_color));
  json.field("coloring_valid", result.coloring_valid);
  json.field("independence_violations",
             static_cast<std::uint64_t>(result.independence_violations));
  json.field("leader_count", static_cast<std::uint64_t>(result.leaders.size()));

  json.key("recovery");
  json.begin_object();
  json.field("failovers", static_cast<std::uint64_t>(result.recovery.failovers));
  json.field("recovered_nodes",
             static_cast<std::uint64_t>(result.recovery.recovered_nodes));
  json.field("joined_nodes",
             static_cast<std::uint64_t>(result.recovery.joined_nodes));
  json.field("join_conflicts_repaired",
             static_cast<std::uint64_t>(result.recovery.join_conflicts_repaired));
  json.field("join_fallbacks",
             static_cast<std::uint64_t>(result.recovery.join_fallbacks));
  json.field("mean_failover_latency", result.recovery.mean_failover_latency);
  json.field("max_failover_latency",
             static_cast<std::int64_t>(result.recovery.max_failover_latency));
  json.end_object();

  if (include_per_node) {
    json.key("colors");
    json.begin_array();
    for (graph::Color c : result.coloring.color) {
      json.value(static_cast<std::int64_t>(c));
    }
    json.end_array();

    json.key("leaders");
    json.begin_array();
    for (graph::NodeId v : result.leaders) {
      json.value(static_cast<std::uint64_t>(v));
    }
    json.end_array();

    json.key("decision_slots");
    json.begin_array();
    for (radio::Slot s : result.metrics.decision_slot) {
      json.value(static_cast<std::int64_t>(s));
    }
    json.end_array();
  }

  if (observation != nullptr) {
    json.key("observability");
    json.begin_object();
    json.key("trace");
    json.begin_object();
    json.field("recorded", observation->trace.recorded());
    json.field("dropped", observation->trace.dropped());
    json.field("held", static_cast<std::uint64_t>(observation->trace.size()));
    json.end_object();
    json.key("metrics");
    observation->metrics.write_json(json);
    json.end_object();
  }

  json.end_object();
  return json.str();
}

}  // namespace

std::string to_json(const MwRunResult& result, bool include_per_node) {
  return result_to_json(result, include_per_node, nullptr);
}

std::string to_json(const MwRunResult& result,
                    const obs::RunObservation& observation,
                    bool include_per_node) {
  return result_to_json(result, include_per_node, &observation);
}

}  // namespace sinrcolor::core
