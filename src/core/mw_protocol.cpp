#include "core/mw_protocol.h"
#include <cmath>

#include <cstdio>

#include "common/check.h"
#include "core/verify.h"
#include "radio/interference_model.h"
#include "radio/wakeup.h"

namespace sinrcolor::core {
namespace {

// The run's physical layer: α, β, ρ from the config's template, with the
// noise floor solved so that R_T equals the graph's radius (the UDG must be
// the physical reachability graph).
sinr::SinrParams resolve_phys(const graph::UnitDiskGraph& g,
                              const MwRunConfig& config) {
  sinr::SinrParams phys = config.phys_template;
  const double r_t = g.radius();
  phys.noise =
      phys.power / (2.0 * phys.beta * std::pow(r_t, phys.alpha));
  phys.validate();
  SINRCOLOR_CHECK(std::abs(phys.r_t() - r_t) <= 1e-9 * r_t);
  return phys;
}

MwParams derive_params(const graph::UnitDiskGraph& g, const MwRunConfig& config) {
  if (config.params_override.has_value()) return *config.params_override;
  MwConfig mw;
  mw.n = config.n_estimate > 0 ? config.n_estimate : g.size();
  mw.max_degree = config.delta_estimate > 0
                      ? config.delta_estimate
                      : std::max<std::size_t>(g.max_degree(), 1);
  mw.phys = resolve_phys(g, config);
  mw.c = config.c;

  return config.profile == ParamProfile::kTheory
             ? MwParams::theory(mw)
             : MwParams::practical(mw, config.tuning);
}

radio::WakeupSchedule make_wakeups(std::size_t n, const MwRunConfig& config,
                                   std::uint64_t seed) {
  switch (config.wakeup) {
    case WakeupKind::kSimultaneous:
      return radio::simultaneous_wakeup(n);
    case WakeupKind::kUniform: {
      common::Rng rng(common::derive_seed(seed, 0xbeefULL));
      return radio::uniform_wakeup(n, config.wakeup_window, rng);
    }
    case WakeupKind::kStaggered:
      return radio::staggered_wakeup(n, config.wakeup_window);
  }
  return radio::simultaneous_wakeup(n);
}

}  // namespace

MwInstance::MwInstance(const graph::UnitDiskGraph& g, const MwRunConfig& config)
    : graph_(g), config_(config), params_(derive_params(g, config)) {
  std::unique_ptr<radio::InterferenceModel> model;
  if (config_.graph_model) {
    model = std::make_unique<radio::GraphInterferenceModel>(graph_);
  } else {
    const sinr::SinrParams phys = resolve_phys(graph_, config_);
    if (config_.fading.enabled()) {
      model = std::make_unique<radio::FadingSinrInterferenceModel>(
          graph_, phys, config_.fading);
    } else {
      model = std::make_unique<radio::SinrInterferenceModel>(graph_, phys);
    }
  }
  simulator_ = std::make_unique<radio::Simulator>(
      graph_, std::move(model), make_wakeups(g.size(), config_, config_.seed),
      config_.seed);

  if (config_.failure_fraction > 0.0) {
    SINRCOLOR_CHECK(config_.failure_fraction <= 1.0);
    common::Rng rng(common::derive_seed(config_.seed, 0xdeadULL));
    std::vector<graph::NodeId> victims(g.size());
    for (graph::NodeId v = 0; v < g.size(); ++v) victims[v] = v;
    common::shuffle(victims, rng);
    const auto kills = static_cast<std::size_t>(
        std::ceil(config_.failure_fraction * static_cast<double>(g.size())));
    for (std::size_t k = 0; k < kills && k < victims.size(); ++k) {
      simulator_->set_failure_slot(
          victims[k], rng.uniform_int(0, std::max<radio::Slot>(
                                             config_.failure_window, 0)));
    }
  }

  nodes_.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    auto node = std::make_unique<MwNode>(v, params_);
    nodes_.push_back(node.get());
    simulator_->set_protocol(v, std::move(node));
  }

  if (config_.check_independence) {
    // Incremental Theorem-1 verification: a violation can only appear the
    // slot a node finalizes its color, so checking newly decided nodes
    // against their decided neighbors each slot is complete.
    simulator_->add_observer(
        [this, known = std::vector<bool>(graph_.size(), false)](
            radio::Slot, std::span<const radio::TxRecord>) mutable {
          for (graph::NodeId v = 0; v < graph_.size(); ++v) {
            if (known[v] || !nodes_[v]->decided()) continue;
            known[v] = true;
            const graph::Color mine = nodes_[v]->final_color();
            for (graph::NodeId u : graph_.neighbors(v)) {
              if (known[u] && nodes_[u]->final_color() == mine) {
                ++independence_violations_;
              }
            }
          }
        });
  }
}

MwRunResult MwInstance::run() {
  const radio::Slot horizon =
      config_.max_slots > 0 ? config_.max_slots : params_.recommended_max_slots();

  MwRunResult result;
  result.params = params_;
  result.metrics = simulator_->run(horizon);
  result.coloring = extract_coloring(nodes_);
  result.leaders = extract_leaders(nodes_);
  result.independence_violations = independence_violations_;
  result.coloring_valid = graph::is_valid_coloring(graph_, result.coloring);
  result.palette = result.coloring.palette_size();
  result.max_color = result.coloring.max_color();
  return result;
}

MwRunResult run_mw_coloring(const graph::UnitDiskGraph& g,
                            const MwRunConfig& config) {
  MwInstance instance(g, config);
  return instance.run();
}

std::string MwRunResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "colors=%zu max_color=%d leaders=%zu valid=%s indep_viol=%zu %s",
                palette, max_color, leaders.size(),
                coloring_valid ? "yes" : "NO", independence_violations,
                metrics.summary().c_str());
  return buf;
}

}  // namespace sinrcolor::core
