#include "core/mw_protocol.h"
#include <cmath>

#include <cstdio>

#include "common/check.h"
#include "core/verify.h"
#include "radio/interference_model.h"
#include "radio/wakeup.h"

namespace sinrcolor::core {

sinr::SinrParams resolve_phys(const graph::UnitDiskGraph& g,
                              const MwRunConfig& config) {
  sinr::SinrParams phys = config.phys_template;
  const double r_t = g.radius();
  phys.noise =
      phys.power / (2.0 * phys.beta * std::pow(r_t, phys.alpha));
  phys.validate();
  SINRCOLOR_CHECK(std::abs(phys.r_t() - r_t) <= 1e-9 * r_t);
  return phys;
}

MwParams derive_mw_params(const graph::UnitDiskGraph& g,
                          const MwRunConfig& config) {
  if (config.params_override.has_value()) return *config.params_override;
  MwConfig mw;
  mw.n = config.n_estimate > 0 ? config.n_estimate : g.size();
  mw.max_degree = config.delta_estimate > 0
                      ? config.delta_estimate
                      : std::max<std::size_t>(g.max_degree(), 1);
  mw.phys = resolve_phys(g, config);
  mw.c = config.c;

  return config.profile == ParamProfile::kTheory
             ? MwParams::theory(mw)
             : MwParams::practical(mw, config.tuning);
}

std::unique_ptr<radio::InterferenceModel> make_interference_model(
    const graph::UnitDiskGraph& g, const MwRunConfig& config) {
  if (config.graph_model) {
    return std::make_unique<radio::GraphInterferenceModel>(g);
  }
  const sinr::SinrParams phys = resolve_phys(g, config);
  const radio::ResolveOptions options{config.resolve, config.threads};
  if (config.fading.enabled()) {
    return std::make_unique<radio::FadingSinrInterferenceModel>(
        g, phys, config.fading, options);
  }
  return std::make_unique<radio::SinrInterferenceModel>(g, phys, options);
}

radio::WakeupSchedule make_wakeup_schedule(std::size_t n,
                                           const MwRunConfig& config) {
  switch (config.wakeup) {
    case WakeupKind::kSimultaneous:
      return radio::simultaneous_wakeup(n);
    case WakeupKind::kUniform: {
      common::Rng rng(common::derive_seed(config.seed, 0xbeefULL));
      return radio::uniform_wakeup(n, config.wakeup_window, rng);
    }
    case WakeupKind::kStaggered:
      return radio::staggered_wakeup(n, config.wakeup_window);
  }
  return radio::simultaneous_wakeup(n);
}

std::vector<graph::NodeId> schedule_random_failures(
    radio::Simulator& sim, const MwRunConfig& config,
    const std::vector<bool>* exclude) {
  std::vector<graph::NodeId> scheduled;
  if (config.failure_fraction <= 0.0) return scheduled;
  SINRCOLOR_CHECK(config.failure_fraction <= 1.0);
  const std::size_t n = sim.graph().size();
  common::Rng rng(common::derive_seed(config.seed, 0xdeadULL));
  std::vector<graph::NodeId> victims(n);
  for (graph::NodeId v = 0; v < n; ++v) victims[v] = v;
  common::shuffle(victims, rng);
  const auto kills = static_cast<std::size_t>(
      std::ceil(config.failure_fraction * static_cast<double>(n)));
  for (std::size_t k = 0; k < kills && k < victims.size(); ++k) {
    // Draw the slot even for excluded victims so the failure pattern of the
    // non-excluded nodes matches a run without exclusions (seeded replays).
    const radio::Slot slot = rng.uniform_int(
        0, std::max<radio::Slot>(config.failure_window, 0));
    if (exclude != nullptr && (*exclude)[victims[k]]) continue;
    sim.set_failure_slot(victims[k], slot);
    scheduled.push_back(victims[k]);
  }
  return scheduled;
}

MwInstance::MwInstance(const graph::UnitDiskGraph& g, const MwRunConfig& config)
    : graph_(g), config_(config), params_(derive_mw_params(g, config)) {
  simulator_ = std::make_unique<radio::Simulator>(
      graph_, make_interference_model(graph_, config_),
      make_wakeup_schedule(g.size(), config_), config_.seed);

  simulator_->set_slot_threads(config_.slot_threads);
  schedule_random_failures(*simulator_, config_);

  // Contiguous arena: reserve up front so emplace_back never reallocates
  // (the simulator and nodes_ hold raw pointers into the storage).
  node_arena_.reserve(g.size());
  nodes_.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    MwNode& node = node_arena_.emplace_back(v, params_);
    node.reserve_peers(g.degree(v));
    node.set_retransmit_policy(config_.recovery.retransmit);
    nodes_.push_back(&node);
    simulator_->set_protocol(v, &node);
  }

  if (config_.check_independence) {
    // Incremental Theorem-1 verification: a violation can only appear the
    // slot a node finalizes its color, so checking newly decided nodes
    // against their decided neighbors each slot is complete.
    simulator_->add_observer(
        [this, known = std::vector<bool>(graph_.size(), false)](
            radio::Slot slot, std::span<const radio::TxRecord>) mutable {
          for (graph::NodeId v = 0; v < graph_.size(); ++v) {
            if (known[v] || !nodes_[v]->decided()) continue;
            known[v] = true;
            const graph::Color mine = nodes_[v]->final_color();
            for (graph::NodeId u : graph_.neighbors(v)) {
              if (known[u] && nodes_[u]->final_color() == mine) {
                ++independence_violations_;
                if (observation_ != nullptr) {
                  observation_->trace.record(
                      slot, obs::EventKind::kIndependenceViolation, v, u, 0,
                      static_cast<std::int64_t>(mine));
                }
              }
            }
          }
        });
  }
}

void MwInstance::attach_observation(obs::RunObservation* observation) {
  observation_ = observation;
  simulator_->set_observation(observation);
  for (MwNode* node : nodes_) node->set_observation(observation);
}

MwRunResult MwInstance::run() {
  obs::Profiler* const profiler =
      observation_ != nullptr ? observation_->profiler.get() : nullptr;
  SINRCOLOR_PROFILE(profiler, obs::Phase::kRun);
  const radio::Slot horizon =
      config_.max_slots > 0 ? config_.max_slots : params_.recommended_max_slots();

  MwRunResult result;
  result.params = params_;
  result.metrics = simulator_->run(horizon);
  result.coloring = extract_coloring(nodes_);
  result.leaders = extract_leaders(nodes_);
  result.independence_violations = independence_violations_;
  result.coloring_valid = graph::is_valid_coloring(graph_, result.coloring);
  result.palette = result.coloring.palette_size();
  result.max_color = result.coloring.max_color();
  if (observation_ != nullptr) {
    auto& m = observation_->metrics;
    m.counter("mw.independence_violations").add(independence_violations_);
    auto& latency = m.histogram(
        "mw.decision_latency",
        {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0});
    for (std::size_t v = 0; v < graph_.size(); ++v) {
      if (result.metrics.decision_slot[v] < 0) continue;
      latency.record(static_cast<double>(result.metrics.decision_slot[v] -
                                         result.metrics.wake_slot[v]));
    }
  }
  return result;
}

MwRunResult run_mw_coloring(const graph::UnitDiskGraph& g,
                            const MwRunConfig& config) {
  MwInstance instance(g, config);
  return instance.run();
}

std::string MwRunResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "colors=%zu max_color=%d leaders=%zu valid=%s indep_viol=%zu %s",
                palette, max_color, leaders.size(),
                coloring_valid ? "yes" : "NO", independence_violations,
                metrics.summary().c_str());
  return buf;
}

}  // namespace sinrcolor::core
