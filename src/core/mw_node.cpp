#include "core/mw_node.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::core {

const char* to_string(MwStateKind kind) {
  switch (kind) {
    case MwStateKind::kAsleep: return "asleep";
    case MwStateKind::kListening: return "listening";
    case MwStateKind::kCompeting: return "competing";
    case MwStateKind::kRequesting: return "requesting";
    case MwStateKind::kLeader: return "leader";
    case MwStateKind::kColored: return "colored";
  }
  return "?";
}

MwNode::MwNode(graph::NodeId id, const MwParams& params)
    : id_(id), params_(params) {}

void MwNode::reserve_peers(std::size_t degree) {
  competitors_.reserve(degree);
  request_queue_.reserve(degree);
}

void MwNode::set_observation(obs::RunObservation* observation) {
  tracer_ = observation != nullptr ? &observation->trace : nullptr;
  obs_metrics_ = observation != nullptr ? &observation->metrics : nullptr;
  profiler_ = observation != nullptr ? observation->profiler.get() : nullptr;
}

void MwNode::on_wake(radio::Slot slot) {
  SINRCOLOR_CHECK(state_ == MwStateKind::kAsleep);
  last_slot_ = slot;
  state_entry_slot_ = slot;
  enter_class(0);
}

void MwNode::transition_to(MwStateKind next) {
  SINRCOLOR_CHECK_MSG(mw_transition_allowed(state_, next),
                      "illegal MwStateKind transition (kMwTransitionTable)");
  const MwStateKind from = state_;
  if (obs_metrics_ != nullptr && from != MwStateKind::kAsleep) {
    static const std::vector<double> kSlotEdges{
        1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0};
    obs_metrics_
        ->histogram(std::string("mw.time_in_state.") + to_string(from),
                    kSlotEdges)
        .record(static_cast<double>(last_slot_ - state_entry_slot_));
  }
  state_ = next;
  state_entry_slot_ = last_slot_;
  SINRCOLOR_TRACE(tracer_, last_slot_, obs::EventKind::kMwTransition, id_,
                  obs::kNoNode, static_cast<std::int32_t>(from),
                  static_cast<std::int64_t>(next));
  if (next == MwStateKind::kLeader) {
    SINRCOLOR_TRACE(tracer_, last_slot_, obs::EventKind::kLeaderElected, id_);
  }
  if (next == MwStateKind::kLeader || next == MwStateKind::kColored) {
    SINRCOLOR_TRACE(tracer_, last_slot_, obs::EventKind::kColorFinalized, id_,
                    obs::kNoNode, 0, static_cast<std::int64_t>(final_color()));
  }
}

void MwNode::enter_class(std::int32_t j) {
  transition_to(MwStateKind::kListening);
  color_class_ = j;
  competitors_.clear();
  counter_ = 0;
  listen_remaining_ = params_.listen_slots;
  retransmit_anchor_ = -1;  // any R episode is over
}

MwNode::Competitor* MwNode::find_competitor(graph::NodeId w) {
  const auto it = std::find_if(competitors_.begin(), competitors_.end(),
                               [w](const Competitor& c) { return c.id == w; });
  return it == competitors_.end() ? nullptr : &*it;
}

std::int64_t MwNode::chi(radio::Slot now) const {
  // Largest χ ≤ 0 with χ ∉ [d_v(w) − W, d_v(w) + W] for every w ∈ P_v.
  // Start at 0 and drop below each blocking interval until none blocks;
  // the candidate strictly decreases, so at most |P_v| passes happen.
  const std::int64_t window = params_.counter_window(color_class_);
  std::int64_t candidate = 0;
  bool blocked = true;
  while (blocked) {
    blocked = false;
    for (const auto& c : competitors_) {
      const std::int64_t d = c.mirror(now);
      if (candidate >= d - window && candidate <= d + window) {
        candidate = d - window - 1;
        blocked = true;
      }
    }
  }
  return std::min<std::int64_t>(candidate, 0);
}

std::optional<radio::Message> MwNode::begin_slot(radio::Slot slot,
                                                 common::Rng& rng) {
  SINRCOLOR_PROFILE(profiler_, obs::Phase::kProtocolStep);
  last_slot_ = slot;
  switch (state_) {
    case MwStateKind::kAsleep:
      SINRCOLOR_CHECK_MSG(false, "begin_slot on a sleeping node");
      return std::nullopt;

    case MwStateKind::kListening: {
      if (listen_remaining_ > 0) {
        // Fig. 1 line 3 (mirror advance is implicit; see Competitor::mirror).
        --listen_remaining_;
        return std::nullopt;
      }
      // Fig. 1 line 6: leave the listening phase with c_v := χ(P_v) and fall
      // through to the first competition iteration in this same slot.
      transition_to(MwStateKind::kCompeting);
      counter_ = chi(slot);
      [[fallthrough]];
    }

    case MwStateKind::kCompeting: {
      // Fig. 1 lines 8–11.
      ++counter_;
      if (counter_ >= params_.counter_threshold) {
        if (color_class_ == 0) {
          transition_to(MwStateKind::kLeader);  // joins the independent set C_0
        } else {
          transition_to(MwStateKind::kColored);
        }
        return std::nullopt;
      }
      if (rng.bernoulli(params_.q_small)) {
        radio::Message m;
        m.kind = radio::MessageKind::kCompete;
        m.sender = id_;
        m.color_class = color_class_;
        m.counter = counter_;
        return m;
      }
      return std::nullopt;
    }

    case MwStateKind::kRequesting: {
      // Robustness hardening: a deterministic forced M_R once the backoff
      // deadline passes, so a request lost to injected drops/jamming is
      // retried in bounded time instead of relying on the q_s coin alone.
      // Inert (and RNG-stream neutral) while the policy is disabled.
      if (retransmit_.enabled()) {
        if (retransmit_anchor_ < 0) {  // first R slot of this episode
          retransmit_anchor_ = slot;
          retransmit_wait_ = retransmit_.initial_wait;
          retries_used_ = 0;
        }
        if (retries_used_ < retransmit_.max_retries &&
            slot - retransmit_anchor_ >= retransmit_wait_) {
          retransmit_anchor_ = slot;
          retransmit_wait_ = std::max<radio::Slot>(
              retransmit_wait_ + 1,
              static_cast<radio::Slot>(static_cast<double>(retransmit_wait_) *
                                       retransmit_.backoff));
          ++retries_used_;
          ++forced_retransmissions_;
          radio::Message m;
          m.kind = radio::MessageKind::kRequest;
          m.sender = id_;
          m.target = leader_;
          return m;
        }
      }
      // Fig. 3 line 2.
      if (rng.bernoulli(params_.q_small)) {
        radio::Message m;
        m.kind = radio::MessageKind::kRequest;
        m.sender = id_;
        m.target = leader_;
        return m;
      }
      return std::nullopt;
    }

    case MwStateKind::kLeader:
      return leader_slot(rng);

    case MwStateKind::kColored: {
      // Fig. 2 line 3: beacon the final color with probability q_s.
      if (rng.bernoulli(params_.q_small)) {
        radio::Message m;
        m.kind = radio::MessageKind::kColorBeacon;
        m.sender = id_;
        m.color_class = color_class_;
        return m;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<radio::Message> MwNode::leader_slot(common::Rng& rng) {
  // Fig. 2 lines 5–14 (i = 0).
  if (!serving_ && request_head_ < request_queue_.size()) {
    ++next_cluster_color_;  // tc := tc + 1
    serving_ = true;
    serve_remaining_ = params_.assign_slots;
  }
  if (serving_) {
    // Fig. 2 line 13: address the front of the queue for ⌈μ ln n⌉ slots.
    std::optional<radio::Message> tx;
    if (rng.bernoulli(params_.q_leader)) {
      radio::Message m;
      m.kind = radio::MessageKind::kColorAssign;
      m.sender = id_;
      m.target = request_queue_[request_head_];
      m.color_class = 0;
      m.tc = next_cluster_color_;
      tx = m;
    }
    if (--serve_remaining_ == 0) {
      ++request_head_;  // Fig. 2 line 14 (pop front)
      if (request_head_ == request_queue_.size()) {
        // Empty: rewind so the buffer's capacity is reused, not regrown.
        request_queue_.clear();
        request_head_ = 0;
      }
      serving_ = false;
    }
    return tx;
  }
  // Fig. 2 line 9: idle beacon.
  if (rng.bernoulli(params_.q_leader)) {
    radio::Message m;
    m.kind = radio::MessageKind::kColorBeacon;
    m.sender = id_;
    m.color_class = 0;
    return m;
  }
  return std::nullopt;
}

void MwNode::on_receive(radio::Slot slot, const radio::Message& msg) {
  last_slot_ = slot;
  switch (state_) {
    case MwStateKind::kAsleep:
      SINRCOLOR_CHECK_MSG(false, "delivery to a sleeping node");
      return;

    case MwStateKind::kListening:
    case MwStateKind::kCompeting: {
      const bool class_zero = color_class_ == 0;
      // "M_C^i received": a class-i color beacon, or — for class 0 — any
      // leader transmission (assignments M_C^0(v,w,tc) equally prove that a
      // leader covers us; Fig. 1 line 5 / line 12).
      const bool leader_signal =
          (msg.kind == radio::MessageKind::kColorBeacon &&
           msg.color_class == color_class_) ||
          (class_zero && msg.kind == radio::MessageKind::kColorAssign);
      if (leader_signal) {
        if (class_zero) {
          leader_ = msg.sender;  // L(v) := w; state := R
          transition_to(MwStateKind::kRequesting);
        } else {
          enter_class(color_class_ + 1);  // state := A_{i+1}
        }
        return;
      }
      if (msg.kind == radio::MessageKind::kCompete &&
          msg.color_class == color_class_) {
        // Fig. 1 lines 4 / 13–15.
        if (Competitor* known = find_competitor(msg.sender)) {
          known->base = msg.counter;
          known->recorded_slot = slot;
        } else {
          competitors_.push_back({msg.sender, msg.counter, slot});
        }
        if (state_ == MwStateKind::kCompeting) {
          const std::int64_t window = params_.counter_window(color_class_);
          if (std::llabs(counter_ - msg.counter) <= window) {
            counter_ = chi(slot);
            ++resets_;
          }
        }
      }
      return;
    }

    case MwStateKind::kRequesting: {
      // Fig. 3 line 3: only our leader's assignment addressed to us counts.
      if (msg.kind == radio::MessageKind::kColorAssign && msg.sender == leader_ &&
          msg.target == id_) {
        const std::int32_t base =
            msg.tc * (params_.phi_2rt + 1);  // A_{tc(φ(2R_T)+1)}
        enter_class(base);
      }
      return;
    }

    case MwStateKind::kLeader: {
      // Fig. 2 line 7.
      if (msg.kind == radio::MessageKind::kRequest && msg.target == id_) {
        // Dedup over the live entries only — a node served and popped
        // earlier may legitimately re-request.
        const bool queued =
            std::find(request_queue_.begin() +
                          static_cast<std::ptrdiff_t>(request_head_),
                      request_queue_.end(), msg.sender) != request_queue_.end();
        if (!queued) request_queue_.push_back(msg.sender);
      }
      return;
    }

    case MwStateKind::kColored:
      return;  // final; ignores all traffic
  }
}

void MwNode::end_slot(radio::Slot /*slot*/) {}

void MwNode::restart_election() {
  SINRCOLOR_CHECK_MSG(state_ == MwStateKind::kListening ||
                          state_ == MwStateKind::kCompeting ||
                          state_ == MwStateKind::kRequesting,
                      "restart_election requires an awake, undecided node");
  leader_ = graph::kInvalidNode;
  request_queue_.clear();
  request_head_ = 0;
  serving_ = false;
  enter_class(0);
}

std::size_t MwNode::prune_competitors_older_than(radio::Slot now,
                                                 radio::Slot max_age) {
  const auto stale = [&](const Competitor& c) {
    return now - c.recorded_slot > max_age;
  };
  const auto it = std::remove_if(competitors_.begin(), competitors_.end(), stale);
  const auto pruned = static_cast<std::size_t>(competitors_.end() - it);
  competitors_.erase(it, competitors_.end());
  return pruned;
}

graph::Color MwNode::final_color() const {
  if (state_ == MwStateKind::kLeader) return 0;
  if (state_ == MwStateKind::kColored) return color_class_;
  return graph::kUncolored;
}

double MwNode::tx_probability() const {
  switch (state_) {
    case MwStateKind::kAsleep:
    case MwStateKind::kListening:
      return 0.0;
    case MwStateKind::kCompeting:
    case MwStateKind::kRequesting:
    case MwStateKind::kColored:
      return params_.q_small;
    case MwStateKind::kLeader:
      return params_.q_leader;
  }
  return 0.0;
}

}  // namespace sinrcolor::core
