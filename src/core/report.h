// JSON serialization of protocol results for downstream tooling
// (plotting, dashboards, regression tracking).
#pragma once

#include <string>

#include "core/mw_protocol.h"
#include "obs/observation.h"

namespace sinrcolor::core {

/// Full run report: parameters, metrics, per-node colors and leaders.
/// Set `include_per_node` to false for compact summaries of large runs.
std::string to_json(const MwRunResult& result, bool include_per_node = true);

/// As above plus an "observability" object: the run's metrics registry
/// (counters + histograms) and the trace's recorded/dropped tallies, so one
/// report file carries the protocol outcome and its run-summary metrics.
std::string to_json(const MwRunResult& result,
                    const obs::RunObservation& observation,
                    bool include_per_node = true);

/// Parameter set alone (both profiles serialize identically).
std::string to_json(const MwParams& params);

}  // namespace sinrcolor::core
