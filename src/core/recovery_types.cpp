#include "core/recovery_types.h"

#include <cstdio>

namespace sinrcolor::core {

std::string RecoveryOptions::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "RecoveryOptions{enabled=%s, timeout=%lld, backoff=%.2g, "
                "max_failovers=%zu, join_frac=%.3g, join_at=%lld, "
                "join_window=%lld, retransmit=%lld, degrade=%s, settle=%lld}",
                enabled ? "yes" : "no",
                static_cast<long long>(suspect_timeout), backoff, max_failovers,
                join_fraction, static_cast<long long>(join_at),
                static_cast<long long>(join_window),
                static_cast<long long>(retransmit.initial_wait),
                degrade_to_provisional ? "yes" : "no",
                static_cast<long long>(settle_slots));
  return buf;
}

std::string RecoveryStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "failovers=%zu recovered=%zu joined=%zu conflicts_repaired=%zu "
                "late_repairs=%zu join_fallbacks=%zu degraded=%zu "
                "failover_latency=%.1f/%lld",
                failovers, recovered_nodes, joined_nodes,
                join_conflicts_repaired, late_conflicts_repaired,
                join_fallbacks, degraded_nodes, mean_failover_latency,
                static_cast<long long>(max_failover_latency));
  return buf;
}

}  // namespace sinrcolor::core
