// Parameters of the MW coloring algorithm, tuned for the SINR model.
//
// The paper's contribution is precisely this tuning (Section II):
//
//   R_I  = 2·R_T·(96·ρ·β·(α−1)/(α−2))^{1/(α−2)}
//   λ    = (1−1/ρ)/e^{φ(R_I)/φ(R_I+R_T)} · (1 − φ(R_I)/(φ(R_I+R_T)²·Δ))
//                                         · (1 − 1/(φ(R_I+R_T)²·Δ))
//   λ'   = (1−1/ρ)/(e·φ(R_I+R_T)) · (1 − 1/(φ(R_I+R_T)·Δ))
//                                  · (1 − 1/φ(R_I+R_T))^{φ(R_I+R_T)}
//   σ    = 2c/λ'            γ = c·φ(R_I+R_T)/λ        (any c ≥ 5)
//   q_ℓ  = 1/φ(R_I+R_T)     q_s = 1/(φ(R_I+R_T)·Δ)
//   ζ_0  = 1, ζ_i = Δ (i>0)
//   η    ≥ 2γ·φ(2R_T) + σ + 1        μ ≥ max(γ, σ)
//
// Two profiles are provided:
//  * theory(): the formulas verbatim. Used to verify the paper's claimed
//    inequalities (σ > 2γ, R_I ≥ 2R_T, ...) and to report the constants; the
//    resulting slot counts are astronomically large by design (w.h.p. bounds).
//  * practical(): same structure — identical probability scalings (q_s ∝ 1/Δ),
//    identical ζ_i shape, and the structural relations the proofs rely on
//    (σ̂ > 2γ̂, η̂ ≥ σ̂ + 2γ̂) — with small constant factors, so simulations
//    finish. DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <string>

#include "radio/message.h"
#include "sinr/params.h"

namespace sinrcolor::core {

/// Instance-level knowledge the paper assumes each node has.
struct MwConfig {
  std::size_t n = 0;            ///< number of nodes (or a known upper bound)
  std::size_t max_degree = 0;   ///< Δ of the UDG (or a known upper bound)
  sinr::SinrParams phys;        ///< physical-layer constants
  double c = 5.0;               ///< w.h.p. exponent (theory profile)
};

/// Knobs of the practical profile (constant factors only; structure fixed).
///
/// The paper couples every time window to the sending probability it must
/// out-wait: a window of W slots observes a probability-q sender w.h.p. iff
/// q·W = Ω(ln n) (that is what γ = c·φ(R_I+R_T)/λ encodes, since
/// q_ℓ = 1/φ(R_I+R_T)). The practical profile keeps exactly that coupling:
///
///   q_s           = q_ℓ / Δ                      (paper's ratio, verbatim)
///   window_0      = ⌈κ·ln n / q_ℓ⌉               (γ·ζ_0·ln n analogue)
///   window_i      = ⌈κ·ln n / q_s⌉ = Δ·window_0  (γ·ζ_i·ln n analogue)
///   threshold     = ⌈σ̂·window_i⌉,  σ̂ > 2        (paper's σ > 2γ)
///   listen phase  = ⌈η̂·window_i⌉,  η̂ ≥ σ̂ + 2   (paper's η ≥ 2γφ+σ+1 shape)
///   assign period = ⌈μ̂·ln n / q_ℓ⌉, μ̂ ≥ κ       (paper's μ ≥ γ)
struct PracticalTuning {
  double q_leader = 0.2;      ///< q̂_ℓ (leaders; the paper's 1/φ(R_I+R_T))
  double kappa = 3.5;         ///< window confidence factor κ
  double sigma_factor = 2.5;  ///< σ̂: threshold / window ratio (> 2)
  double eta_factor = 5.0;    ///< η̂: listen phase / window ratio (≥ σ̂ + 2)
  double mu_factor = 3.5;     ///< μ̂: leader response factor (≥ κ)
  std::int32_t phi_2rt = 5;   ///< effective φ(2R_T) for color-range spacing
};

/// Fully derived, ready-to-run parameter set.
struct MwParams {
  // --- raw constants (reported by experiments, checked by tests) ---
  double phi_ri = 0.0;        ///< φ(R_I) bound in use
  double phi_ri_rt = 0.0;     ///< φ(R_I + R_T) bound in use
  double phi_2rt_value = 0.0; ///< φ(2R_T) bound in use
  double lambda = 0.0;
  double lambda_prime = 0.0;
  double sigma = 0.0;
  double gamma = 0.0;
  double eta = 0.0;
  double mu = 0.0;

  // --- operational values used by the node state machine ---
  double q_leader = 0.0;               ///< q_ℓ
  double q_small = 0.0;                ///< q_s
  radio::Slot listen_slots = 0;        ///< ⌈ηΔ ln n⌉ (Fig. 1 line 2)
  std::int64_t counter_threshold = 0;  ///< ⌈σΔ ln n⌉ (Fig. 1 line 10)
  std::int64_t window_zero = 0;        ///< ⌈γ·ζ_0·ln n⌉ = ⌈γ ln n⌉
  std::int64_t window_positive = 0;    ///< ⌈γ·ζ_i·ln n⌉ = ⌈γΔ ln n⌉, i>0
  radio::Slot assign_slots = 0;        ///< ⌈μ ln n⌉ (Fig. 2 line 13)
  std::int32_t phi_2rt = 0;            ///< φ(2R_T) for state indexing (Fig. 3)

  std::size_t n = 0;
  std::size_t max_degree = 0;

  /// ⌈γ·ζ_i·ln n⌉ for color class i.
  std::int64_t counter_window(std::int32_t color_class) const {
    return color_class == 0 ? window_zero : window_positive;
  }

  /// Theorem 2's palette bound (φ(2R_T)+1)·Δ, under the profile's φ(2R_T).
  std::int64_t palette_bound() const;

  /// A generous stop-gap horizon for simulations (protocol is w.h.p. far
  /// faster); proportional to Δ·ln n with the profile's constants.
  radio::Slot recommended_max_slots() const;

  /// Exact Section-II formulas. Slot counts will be enormous; intended for
  /// inequality verification and reporting, not simulation.
  static MwParams theory(const MwConfig& config);

  /// Scaled-down constants preserving the structural relations (see header
  /// comment). Aborts if the tuning violates σ̂ > 2γ̂ or η̂ ≥ σ̂ + 2γ̂.
  static MwParams practical(const MwConfig& config,
                            const PracticalTuning& tuning = {});

  std::string to_string() const;
};

}  // namespace sinrcolor::core
