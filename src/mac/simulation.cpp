#include "mac/simulation.h"

#include <algorithm>

#include "common/check.h"
#include "radio/interference_model.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::mac {

namespace {

obs::Histogram* mac_concurrent_tx_hist(obs::RunObservation* observation) {
  if (observation == nullptr) return nullptr;
  return &observation->metrics.histogram(
      "mac.concurrent_tx_per_slot",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
}

void record_mac_totals(obs::RunObservation* observation,
                       const ExecutionResult& result) {
  if (observation == nullptr) return;
  auto& m = observation->metrics;
  m.counter("mac.rounds").add(result.rounds);
  m.counter("mac.slots").add(static_cast<std::uint64_t>(result.slots_used));
  m.counter("mac.messages_sent").add(result.messages_sent);
  m.counter("mac.deliveries").add(result.deliveries);
  m.counter("mac.missed_deliveries").add(result.missed_deliveries);
}

}  // namespace

ExecutionResult run_over_sinr_tdma(
    const graph::UnitDiskGraph& g, const sinr::SinrParams& phys,
    const TdmaSchedule& schedule,
    std::vector<std::unique_ptr<UniformAlgorithm>>& nodes,
    std::uint32_t max_rounds, obs::RunObservation* observation) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  SINRCOLOR_CHECK(schedule.size() == g.size());
  phys.validate();
  radio::check_radius_matches_phys(g, phys);

  // Precompute slot membership once; it is static across rounds.
  std::vector<std::vector<graph::NodeId>> by_slot(schedule.frame_length());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    by_slot[schedule.slot_of(v)].push_back(v);
  }

  ExecutionResult result;
  std::vector<std::optional<Payload>> outbox(g.size());
  std::vector<Inbox> inbox(g.size());

  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    bool done = std::all_of(nodes.begin(), nodes.end(), [](const auto& node) {
      return node->terminated();
    });
    if (done) {
      result.all_terminated = true;
      break;
    }
    result.rounds = round + 1;

    for (graph::NodeId v = 0; v < g.size(); ++v) {
      outbox[v] = nodes[v]->round_message(round);
      if (outbox[v].has_value()) ++result.messages_sent;
      inbox[v].messages.clear();
    }

    // One TDMA frame: frame slot t carries the messages of color class t.
    obs::Tracer* const tracer =
        observation != nullptr ? &observation->trace : nullptr;
    obs::Histogram* const tx_hist = mac_concurrent_tx_hist(observation);
    for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
      const auto slot = static_cast<obs::Slot>(result.slots_used);
      result.slots_used += 1;
      std::vector<sinr::Transmitter> txs;
      std::vector<graph::NodeId> senders;
      for (graph::NodeId v : by_slot[t]) {
        if (outbox[v].has_value()) {
          senders.push_back(v);
          txs.push_back({g.position(v)});
          SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kTx, v);
        }
      }
      if (tx_hist != nullptr) {
        tx_hist->record(static_cast<double>(senders.size()));
      }
      if (senders.empty()) continue;
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const graph::NodeId v = senders[i];
        for (graph::NodeId u : g.neighbors(v)) {
          const bool u_silent =
              schedule.slot_of(u) != t || !outbox[u].has_value();
          if (u_silent && sinr::decodes(phys, g.position(u), txs, i)) {
            inbox[u].messages.emplace_back(v, *outbox[v]);
            ++result.deliveries;
            SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kDelivery, u, v);
          } else {
            ++result.missed_deliveries;
            SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kDrop, u, v, 1);
          }
        }
      }
    }

    for (graph::NodeId v = 0; v < g.size(); ++v) {
      // Frame slots deliver in arbitrary sender order; sort per round so the
      // inbox matches the reference executor bit-for-bit.
      std::sort(inbox[v].messages.begin(), inbox[v].messages.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      nodes[v]->end_round(round, inbox[v]);
    }
  }

  if (!result.all_terminated) {
    result.all_terminated =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
  }
  record_mac_totals(observation, result);
  return result;
}

ExecutionResult run_general_over_sinr_tdma(
    const graph::UnitDiskGraph& g, const sinr::SinrParams& phys,
    const TdmaSchedule& schedule,
    std::vector<std::unique_ptr<GeneralAlgorithm>>& nodes,
    std::uint32_t max_rounds, GeneralStrategy strategy,
    obs::RunObservation* observation) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  SINRCOLOR_CHECK(schedule.size() == g.size());
  phys.validate();
  radio::check_radius_matches_phys(g, phys);

  std::vector<std::vector<graph::NodeId>> by_slot(schedule.frame_length());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    by_slot[schedule.slot_of(v)].push_back(v);
  }

  ExecutionResult result;
  std::vector<std::vector<std::pair<graph::NodeId, Payload>>> outbox(g.size());
  std::vector<Inbox> inbox(g.size());

  // Runs one TDMA frame in which `sending(v)` says whether v transmits and
  // `deliver(sender, neighbor)` handles a successful physical delivery.
  obs::Tracer* const tracer =
      observation != nullptr ? &observation->trace : nullptr;
  obs::Histogram* const tx_hist = mac_concurrent_tx_hist(observation);
  auto run_frame = [&](auto&& sending, auto&& deliver) {
    for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
      const auto slot = static_cast<obs::Slot>(result.slots_used);
      result.slots_used += 1;
      std::vector<sinr::Transmitter> txs;
      std::vector<graph::NodeId> senders;
      for (graph::NodeId v : by_slot[t]) {
        if (sending(v)) {
          senders.push_back(v);
          txs.push_back({g.position(v)});
          SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kTx, v);
        }
      }
      if (tx_hist != nullptr) {
        tx_hist->record(static_cast<double>(senders.size()));
      }
      if (senders.empty()) continue;
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const graph::NodeId v = senders[i];
        for (graph::NodeId u : g.neighbors(v)) {
          const bool u_silent = schedule.slot_of(u) != t || !sending(u);
          if (u_silent && sinr::decodes(phys, g.position(u), txs, i)) {
            SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kDelivery, u, v);
            deliver(v, u);
          } else {
            ++result.missed_deliveries;
            SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kDrop, u, v, 1);
          }
        }
      }
    }
  };

  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const bool done =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
    if (done) {
      result.all_terminated = true;
      break;
    }
    result.rounds = round + 1;

    std::size_t max_out = 0;
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      outbox[v] = nodes[v]->round_messages(round);
      for (const auto& [target, payload] : outbox[v]) {
        (void)payload;
        SINRCOLOR_CHECK_MSG(g.adjacent(v, target),
                            "general-model message to a non-neighbor");
      }
      result.messages_sent += outbox[v].size();
      max_out = std::max(max_out, outbox[v].size());
      inbox[v].messages.clear();
    }

    if (strategy == GeneralStrategy::kBundled) {
      result.max_bundle_entries = std::max(result.max_bundle_entries, max_out);
      // One frame; the broadcast carries the whole bundle, the receiver
      // extracts entries addressed to it (possibly none — an empty extract
      // still counts as a physical delivery, not a miss).
      run_frame([&](graph::NodeId v) { return !outbox[v].empty(); },
                [&](graph::NodeId v, graph::NodeId u) {
                  for (const auto& [target, payload] : outbox[v]) {
                    if (target == u) {
                      inbox[u].messages.emplace_back(v, payload);
                      ++result.deliveries;
                    }
                  }
                });
    } else {
      // One frame per outgoing-message index: sub-frame k carries every
      // node's k-th message. Receivers keep only entries addressed to them.
      for (std::size_t k = 0; k < max_out; ++k) {
        run_frame(
            [&](graph::NodeId v) { return outbox[v].size() > k; },
            [&](graph::NodeId v, graph::NodeId u) {
              const auto& [target, payload] = outbox[v][k];
              if (target == u) {
                inbox[u].messages.emplace_back(v, payload);
                ++result.deliveries;
              }
            });
      }
    }

    for (graph::NodeId v = 0; v < g.size(); ++v) {
      std::sort(inbox[v].messages.begin(), inbox[v].messages.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      nodes[v]->end_round(round, inbox[v]);
    }
  }

  if (!result.all_terminated) {
    result.all_terminated =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
  }
  record_mac_totals(observation, result);
  return result;
}

}  // namespace sinrcolor::mac
