#include "mac/link_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::mac {
namespace {

struct SlotState {
  std::vector<std::size_t> links;            // request indices
  std::vector<sinr::Transmitter> txs;        // transmitter positions
  std::vector<graph::NodeId> tx_nodes;       // transmitter ids
  std::vector<graph::NodeId> rx_nodes;       // receiver ids
};

bool feasible_with(const graph::UnitDiskGraph& g, const sinr::SinrParams& phys,
                   const std::vector<LinkRequest>& requests,
                   const SlotState& slot, const LinkRequest& candidate) {
  // Half-duplex and role exclusivity inside a slot.
  for (graph::NodeId node : slot.tx_nodes) {
    if (node == candidate.sender || node == candidate.receiver) return false;
  }
  for (graph::NodeId node : slot.rx_nodes) {
    if (node == candidate.sender || node == candidate.receiver) return false;
  }

  std::vector<sinr::Transmitter> txs = slot.txs;
  txs.push_back({g.position(candidate.sender)});

  // The candidate link must decode...
  if (!sinr::decodes(phys, g.position(candidate.receiver), txs,
                     txs.size() - 1)) {
    return false;
  }
  // ...and must not break any already-scheduled link.
  for (std::size_t idx = 0; idx < slot.links.size(); ++idx) {
    const auto& link = requests[slot.links[idx]];
    if (!sinr::decodes(phys, g.position(link.receiver), txs, idx)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<LinkRequest> all_neighbor_links(const graph::UnitDiskGraph& g) {
  std::vector<LinkRequest> requests;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    for (graph::NodeId u : g.neighbors(v)) {
      requests.push_back({v, u});
    }
  }
  return requests;
}

LinkSchedule greedy_link_schedule(const graph::UnitDiskGraph& g,
                                  const sinr::SinrParams& phys,
                                  const std::vector<LinkRequest>& requests) {
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");
  for (const auto& request : requests) {
    SINRCOLOR_CHECK(request.sender < g.size());
    SINRCOLOR_CHECK(request.receiver < g.size());
    SINRCOLOR_CHECK_MSG(g.adjacent(request.sender, request.receiver),
                        "link request beyond R_T can never decode");
  }

  LinkSchedule schedule;
  schedule.slot_of.assign(requests.size(), 0);
  std::vector<SlotState> slots;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    bool placed = false;
    for (std::size_t s = 0; s < slots.size() && !placed; ++s) {
      if (feasible_with(g, phys, requests, slots[s], requests[i])) {
        slots[s].links.push_back(i);
        slots[s].txs.push_back({g.position(requests[i].sender)});
        slots[s].tx_nodes.push_back(requests[i].sender);
        slots[s].rx_nodes.push_back(requests[i].receiver);
        schedule.slot_of[i] = static_cast<std::uint32_t>(s);
        placed = true;
      }
    }
    if (!placed) {
      SlotState fresh;
      fresh.links.push_back(i);
      fresh.txs.push_back({g.position(requests[i].sender)});
      fresh.tx_nodes.push_back(requests[i].sender);
      fresh.rx_nodes.push_back(requests[i].receiver);
      schedule.slot_of[i] = static_cast<std::uint32_t>(slots.size());
      slots.push_back(std::move(fresh));
    }
  }
  schedule.slots = static_cast<std::uint32_t>(slots.size());
  return schedule;
}

std::size_t count_infeasible_links(const graph::UnitDiskGraph& g,
                                   const sinr::SinrParams& phys,
                                   const std::vector<LinkRequest>& requests,
                                   const LinkSchedule& schedule) {
  SINRCOLOR_CHECK(schedule.slot_of.size() == requests.size());
  std::size_t bad = 0;
  for (std::uint32_t s = 0; s < schedule.slots; ++s) {
    std::vector<sinr::Transmitter> txs;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (schedule.slot_of[i] == s) {
        members.push_back(i);
        txs.push_back({g.position(requests[i].sender)});
      }
    }
    for (std::size_t k = 0; k < members.size(); ++k) {
      const auto& link = requests[members[k]];
      if (!sinr::decodes(phys, g.position(link.receiver), txs, k)) ++bad;
    }
  }
  return bad;
}

}  // namespace sinrcolor::mac
