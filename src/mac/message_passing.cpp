#include "mac/message_passing.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace sinrcolor::mac {

const Payload* Inbox::from(graph::NodeId sender) const {
  const auto it = std::find_if(
      messages.begin(), messages.end(),
      [sender](const auto& entry) { return entry.first == sender; });
  return it == messages.end() ? nullptr : &it->second;
}

std::string ExecutionResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "rounds=%u terminated=%s slots=%lld sent=%llu delivered=%llu "
                "missed=%llu bundle=%zu",
                rounds, all_terminated ? "all" : "NOT ALL",
                static_cast<long long>(slots_used),
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(deliveries),
                static_cast<unsigned long long>(missed_deliveries),
                max_bundle_entries);
  return buf;
}

std::vector<std::unique_ptr<UniformAlgorithm>> instantiate(
    const graph::UnitDiskGraph& g, const AlgorithmFactory& factory) {
  std::vector<std::unique_ptr<UniformAlgorithm>> nodes;
  nodes.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    auto node = factory(v, g);
    SINRCOLOR_CHECK(node != nullptr);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

ExecutionResult run_reference(
    const graph::UnitDiskGraph& g,
    std::vector<std::unique_ptr<UniformAlgorithm>>& nodes,
    std::uint32_t max_rounds) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  ExecutionResult result;
  std::vector<std::optional<Payload>> outbox(g.size());
  std::vector<Inbox> inbox(g.size());

  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    bool done = true;
    for (const auto& node : nodes) {
      if (!node->terminated()) {
        done = false;
        break;
      }
    }
    if (done) {
      result.all_terminated = true;
      break;
    }
    result.rounds = round + 1;

    for (graph::NodeId v = 0; v < g.size(); ++v) {
      outbox[v] = nodes[v]->round_message(round);
      if (outbox[v].has_value()) ++result.messages_sent;
      inbox[v].messages.clear();
    }
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      if (!outbox[v].has_value()) continue;
      for (graph::NodeId u : g.neighbors(v)) {
        inbox[u].messages.emplace_back(v, *outbox[v]);
        ++result.deliveries;
      }
    }
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      // Neighbor lists are scanned in ascending sender order, so inboxes are
      // already sorted by sender id.
      nodes[v]->end_round(round, inbox[v]);
    }
  }

  if (!result.all_terminated) {
    result.all_terminated =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
  }
  return result;
}

std::vector<std::unique_ptr<GeneralAlgorithm>> instantiate_general(
    const graph::UnitDiskGraph& g, const GeneralFactory& factory) {
  std::vector<std::unique_ptr<GeneralAlgorithm>> nodes;
  nodes.reserve(g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    auto node = factory(v, g);
    SINRCOLOR_CHECK(node != nullptr);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

ExecutionResult run_reference_general(
    const graph::UnitDiskGraph& g,
    std::vector<std::unique_ptr<GeneralAlgorithm>>& nodes,
    std::uint32_t max_rounds) {
  SINRCOLOR_CHECK(nodes.size() == g.size());
  ExecutionResult result;
  std::vector<Inbox> inbox(g.size());

  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const bool done =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
    if (done) {
      result.all_terminated = true;
      break;
    }
    result.rounds = round + 1;

    for (auto& box : inbox) box.messages.clear();
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      for (auto& [target, payload] : nodes[v]->round_messages(round)) {
        SINRCOLOR_CHECK_MSG(g.adjacent(v, target),
                            "general-model message to a non-neighbor");
        ++result.messages_sent;
        ++result.deliveries;
        inbox[target].messages.emplace_back(v, std::move(payload));
      }
    }
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      std::sort(inbox[v].messages.begin(), inbox[v].messages.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      nodes[v]->end_round(round, inbox[v]);
    }
  }

  if (!result.all_terminated) {
    result.all_terminated =
        std::all_of(nodes.begin(), nodes.end(),
                    [](const auto& node) { return node->terminated(); });
  }
  return result;
}

}  // namespace sinrcolor::mac
