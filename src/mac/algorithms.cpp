#include "mac/algorithms.h"

#include <algorithm>

namespace sinrcolor::mac {

std::optional<Payload> FloodingBfs::round_message(std::uint32_t round) {
  if (distance_ == round) return Payload{distance_};
  return std::nullopt;
}

void FloodingBfs::end_round(std::uint32_t round, const Inbox& inbox) {
  if (distance_ == kUndiscovered && !inbox.messages.empty()) {
    distance_ = round + 1;
    parent_ = inbox.messages.front().first;  // sorted ⇒ smallest sender id
  }
  if (distance_ != kUndiscovered && round >= distance_) {
    done_ = true;  // token forwarded; output final
  }
}

std::optional<Payload> LubyMis::round_message(std::uint32_t round) {
  if (decided_ && !joined_this_phase_) return std::nullopt;
  if (round % 2 == 0) {
    if (decided_) return std::nullopt;
    // Proposal round: fresh draw per phase; id breaks ties deterministically.
    draw_ = static_cast<std::int64_t>(rng_() >> 1);
    return Payload{draw_, static_cast<std::int64_t>(id_)};
  }
  // Announcement round: only fresh MIS members speak.
  if (joined_this_phase_) return Payload{1};
  return std::nullopt;
}

void LubyMis::end_round(std::uint32_t round, const Inbox& inbox) {
  if (round % 2 == 0) {
    if (decided_) return;
    // A node is a local minimum iff (draw, id) beats every undecided
    // neighbor's pair. Decided neighbors stay silent, so every message in the
    // inbox came from an undecided competitor.
    bool minimum = true;
    for (const auto& [sender, payload] : inbox.messages) {
      if (payload.size() != 2) continue;  // not a proposal
      const std::int64_t their_draw = payload[0];
      const std::int64_t their_id = payload[1];
      if (their_draw < draw_ ||
          (their_draw == draw_ && their_id < static_cast<std::int64_t>(id_))) {
        minimum = false;
        break;
      }
    }
    if (minimum) {
      decided_ = true;
      in_mis_ = true;
      joined_this_phase_ = true;  // still must announce next round
    }
  } else {
    joined_this_phase_ = false;
    if (decided_) return;
    // Covered by a new MIS member?
    for (const auto& [sender, payload] : inbox.messages) {
      if (payload.size() == 1 && payload[0] == 1) {
        decided_ = true;
        in_mis_ = false;
        break;
      }
    }
  }
}

RandomizedMatching::RandomizedMatching(graph::NodeId id,
                                       const graph::UnitDiskGraph& g,
                                       std::uint64_t seed)
    : id_(id), rng_(common::derive_seed(seed, id)) {
  const auto nbrs = g.neighbors(id);
  candidates_.assign(nbrs.begin(), nbrs.end());
}

std::vector<std::pair<graph::NodeId, Payload>>
RandomizedMatching::round_messages(std::uint32_t round) {
  std::vector<std::pair<graph::NodeId, Payload>> out;
  switch (round % 3) {
    case 0: {  // propose
      proposal_target_ = graph::kInvalidNode;
      if (!matched() && !candidates_.empty()) {
        proposer_ = rng_.bernoulli(0.5);
        if (proposer_) {
          proposal_target_ =
              *std::min_element(candidates_.begin(), candidates_.end());
          out.emplace_back(proposal_target_, Payload{kPropose});
        }
      }
      break;
    }
    case 1: {  // accept (decided in end_round of step 0 via partner_)
      if (announce_pending_ && !proposer_) {
        out.emplace_back(partner_, Payload{kAccept});
      }
      break;
    }
    case 2: {  // announce
      if (announce_pending_) {
        for (graph::NodeId u : candidates_) {
          if (u != partner_) out.emplace_back(u, Payload{kMatched});
        }
      }
      break;
    }
  }
  return out;
}

void RandomizedMatching::end_round(std::uint32_t round, const Inbox& inbox) {
  switch (round % 3) {
    case 0: {  // responders pick their smallest proposer
      if (matched() || proposer_) break;
      graph::NodeId best = graph::kInvalidNode;
      for (const auto& [sender, payload] : inbox.messages) {
        if (!payload.empty() && payload[0] == kPropose) {
          best = std::min(best == graph::kInvalidNode ? sender : best, sender);
        }
      }
      if (best != graph::kInvalidNode) {
        partner_ = best;          // accepted; ACCEPT goes out next round
        announce_pending_ = true;
      }
      break;
    }
    case 1: {  // proposers learn acceptance
      if (proposer_ && !matched()) {
        for (const auto& [sender, payload] : inbox.messages) {
          if (sender == proposal_target_ && !payload.empty() &&
              payload[0] == kAccept) {
            partner_ = sender;
            announce_pending_ = true;
          }
        }
      }
      break;
    }
    case 2: {  // prune freshly matched neighbors; settle termination
      for (const auto& [sender, payload] : inbox.messages) {
        if (!payload.empty() && payload[0] == kMatched) {
          std::erase(candidates_, sender);
        }
      }
      if (announce_pending_) {
        announce_pending_ = false;
        terminated_ = true;  // matched and announced
      } else if (!matched() && candidates_.empty()) {
        terminated_ = true;  // no unmatched neighbor left: maximality holds
      }
      break;
    }
  }
}

TreeAggregation::TreeAggregation(graph::NodeId id, graph::NodeId parent,
                                 std::int64_t value)
    : id_(id), parent_(parent), total_(value) {
  if (parent_ == graph::kInvalidNode) parent_ = id_;  // isolated ⇒ own root
}

std::vector<std::pair<graph::NodeId, Payload>> TreeAggregation::round_messages(
    std::uint32_t round) {
  std::vector<std::pair<graph::NodeId, Payload>> out;
  if (round == 0) {
    if (parent_ != id_) out.emplace_back(parent_, Payload{kChild});
    return out;
  }
  if (!sent_ && pending_children_ == 0 && parent_ != id_) {
    out.emplace_back(parent_, Payload{kAggregate, total_});
    sent_ = true;
    terminated_ = true;
  }
  return out;
}

void TreeAggregation::end_round(std::uint32_t round, const Inbox& inbox) {
  if (round == 0) {
    for (const auto& [sender, payload] : inbox.messages) {
      if (!payload.empty() && payload[0] == kChild) ++pending_children_;
    }
    if (parent_ == id_ && pending_children_ == 0) terminated_ = true;
    return;
  }
  for (const auto& [sender, payload] : inbox.messages) {
    if (payload.size() == 2 && payload[0] == kAggregate) {
      total_ += payload[1];
      --pending_children_;
      ++reported_children_;
    }
  }
  if (parent_ == id_ && pending_children_ == 0) terminated_ = true;
}

std::optional<Payload> MaxIdGossip::round_message(std::uint32_t round) {
  if (round >= rounds_) return std::nullopt;
  return Payload{best_};
}

void MaxIdGossip::end_round(std::uint32_t round, const Inbox& inbox) {
  (void)round;
  for (const auto& [sender, payload] : inbox.messages) {
    if (!payload.empty()) best_ = std::max(best_, payload[0]);
  }
  ++completed_;
}

}  // namespace sinrcolor::mac
