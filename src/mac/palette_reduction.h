// Palette reduction (paper, end of Section V).
//
// Starting from a (d, O(Δ))-coloring whose TDMA schedule is interference-free
// (Theorem 3), color classes take turns — one frame slot per class — and each
// node picks the smallest color in {0..Δ} not announced by any neighbor yet,
// then announces it in its own slot. The result is a (1, Δ+1)-coloring of G,
// obtained in frame_length extra slots.
#pragma once

#include <cstdint>

#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"
#include "mac/tdma.h"
#include "radio/message.h"
#include "sinr/params.h"

namespace sinrcolor::mac {

struct PaletteReductionResult {
  graph::Coloring reduced;       ///< the (1, Δ+1)-coloring
  radio::Slot slots_used = 0;    ///< frame_length slots
  std::uint64_t missed_deliveries = 0;  ///< 0 with a Theorem-3 schedule
  std::size_t palette = 0;       ///< distinct colors after reduction
  bool valid = false;            ///< (1,·)-validity against g
};

/// Runs the reduction over the SINR physical layer with the given schedule
/// (one slot per old color class). `max_degree_bound` is the Δ every node
/// knows; the new palette is {0, …, max_degree_bound}.
PaletteReductionResult reduce_palette_sinr(const graph::UnitDiskGraph& g,
                                           const sinr::SinrParams& phys,
                                           const TdmaSchedule& schedule,
                                           std::size_t max_degree_bound);

/// Centralized oracle with perfect deliveries (tests / expected output):
/// classes in slot order, each node takes the smallest free color in {0..Δ}.
graph::Coloring reduce_palette_reference(const graph::UnitDiskGraph& g,
                                         const TdmaSchedule& schedule,
                                         std::size_t max_degree_bound);

}  // namespace sinrcolor::mac
