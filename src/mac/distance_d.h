// Distance-d colorings via G^d (paper, Section V).
//
// A distance-1 coloring of G^d = (V, E', d·R_T) is a (d, ·)-coloring of G.
// Nodes obtain G^d by raising transmit power to d^α·P during initialization
// (handled here by deriving the protocol's physical layer from the scaled
// radius), then switch back to P for the MAC phase.
#pragma once

#include "core/mw_protocol.h"
#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::mac {

struct DistanceDColoringResult {
  graph::Coloring coloring;       ///< valid at distance d w.r.t. the base graph
  core::MwRunResult run;          ///< protocol execution details (on G^d)
  double d = 1.0;
  std::size_t scaled_max_degree = 0;  ///< Δ of G^d
};

/// Runs the MW protocol on G^d and returns the resulting (d, ·)-coloring of
/// the base graph. `d ≥ 1`. The run config's profile/tuning/seed apply to the
/// execution on G^d.
DistanceDColoringResult compute_distance_d_coloring(
    const graph::UnitDiskGraph& g, double d, const core::MwRunConfig& config = {});

/// The frame-slot pairing of Theorem 3: checks that `coloring` is a valid
/// (d+1, ·)-coloring of g for the MAC constant d = phys.mac_distance_d().
bool satisfies_theorem3_distance(const graph::UnitDiskGraph& g,
                                 const graph::Coloring& coloring,
                                 double alpha, double beta);

}  // namespace sinrcolor::mac
