// Uniform message-passing algorithms used by the Corollary-1 experiments.
//
// Each is deterministic given its construction inputs (LubyMis draws from a
// seeded per-node stream), so the reference point-to-point execution and the
// SINR TDMA simulation must produce bit-identical outputs when the MAC is
// interference-free — that equality is the experiment.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "common/rng.h"
#include "mac/message_passing.h"

namespace sinrcolor::mac {

/// Flooding from a source; computes hop distance and a canonical BFS parent
/// (smallest-id neighbor one hop closer). τ = eccentricity of the source.
class FloodingBfs final : public UniformAlgorithm {
 public:
  static constexpr std::uint32_t kUndiscovered =
      std::numeric_limits<std::uint32_t>::max();

  FloodingBfs(graph::NodeId id, graph::NodeId source)
      : id_(id), distance_(id == source ? 0 : kUndiscovered) {}

  std::optional<Payload> round_message(std::uint32_t round) override;
  void end_round(std::uint32_t round, const Inbox& inbox) override;
  bool terminated() const override { return done_; }

  std::uint32_t distance() const { return distance_; }
  graph::NodeId parent() const { return parent_; }

 private:
  graph::NodeId id_;
  std::uint32_t distance_;
  graph::NodeId parent_ = graph::kInvalidNode;
  bool done_ = false;
};

/// Luby's randomized MIS. Each phase is two rounds: (1) undecided nodes
/// broadcast a fresh random value (ties broken by id); a local minimum joins
/// the MIS; (2) new MIS members announce, neighbors become covered.
class LubyMis final : public UniformAlgorithm {
 public:
  LubyMis(graph::NodeId id, std::uint64_t seed)
      : id_(id), rng_(common::derive_seed(seed, id)) {}

  std::optional<Payload> round_message(std::uint32_t round) override;
  void end_round(std::uint32_t round, const Inbox& inbox) override;
  bool terminated() const override { return decided_; }

  bool in_mis() const { return in_mis_; }

 private:
  graph::NodeId id_;
  common::Rng rng_;
  bool decided_ = false;
  bool in_mis_ = false;
  bool joined_this_phase_ = false;
  std::int64_t draw_ = 0;
};

/// Randomized maximal matching in the *general* model: per phase (3 rounds),
/// unmatched nodes coin-flip into proposers/responders; proposers PROPOSE to
/// their smallest unmatched neighbor, responders ACCEPT their smallest
/// proposer, and fresh couples announce MATCHED to their other neighbors.
/// Message targets are individual neighbors — exactly what the general model
/// (and Corollary 1's second bullet) is about.
class RandomizedMatching final : public GeneralAlgorithm {
 public:
  RandomizedMatching(graph::NodeId id, const graph::UnitDiskGraph& g,
                     std::uint64_t seed);

  std::vector<std::pair<graph::NodeId, Payload>> round_messages(
      std::uint32_t round) override;
  void end_round(std::uint32_t round, const Inbox& inbox) override;
  bool terminated() const override { return terminated_; }

  bool matched() const { return partner_ != graph::kInvalidNode; }
  graph::NodeId partner() const { return partner_; }

 private:
  enum Kind : std::int64_t { kPropose = 0, kAccept = 1, kMatched = 2 };

  graph::NodeId id_;
  common::Rng rng_;
  std::vector<graph::NodeId> candidates_;  ///< neighbors believed unmatched
  graph::NodeId partner_ = graph::kInvalidNode;
  graph::NodeId proposal_target_ = graph::kInvalidNode;
  bool proposer_ = false;
  bool announce_pending_ = false;  ///< matched this phase, MATCHED not yet sent
  bool terminated_ = false;
};

/// Convergecast ("data aggregation" toward a sink) in the general model:
/// round 0 registers children with parents; afterwards each node sends its
/// subtree aggregate to its parent — a single, individually addressed
/// message — as soon as all children have reported. τ ≈ tree depth + 1.
class TreeAggregation final : public GeneralAlgorithm {
 public:
  /// `parent` from e.g. graph::bfs_parents (parent == id ⇒ root;
  /// parent == kInvalidNode ⇒ isolated, terminates with its own value).
  TreeAggregation(graph::NodeId id, graph::NodeId parent, std::int64_t value);

  std::vector<std::pair<graph::NodeId, Payload>> round_messages(
      std::uint32_t round) override;
  void end_round(std::uint32_t round, const Inbox& inbox) override;
  bool terminated() const override { return terminated_; }

  /// Subtree aggregate (the global sum at the root once terminated).
  std::int64_t total() const { return total_; }
  std::size_t children() const { return pending_children_ + reported_children_; }

 private:
  enum Kind : std::int64_t { kChild = 0, kAggregate = 1 };

  graph::NodeId id_;
  graph::NodeId parent_;
  std::int64_t total_;
  std::size_t pending_children_ = 0;
  std::size_t reported_children_ = 0;
  bool sent_ = false;
  bool terminated_ = false;
};

/// Gossip of the maximum node id for a fixed number of rounds (τ given by the
/// caller, usually the hop diameter); converges iff τ ≥ diameter.
class MaxIdGossip final : public UniformAlgorithm {
 public:
  MaxIdGossip(graph::NodeId id, std::uint32_t rounds)
      : best_(id), rounds_(rounds) {}

  std::optional<Payload> round_message(std::uint32_t round) override;
  void end_round(std::uint32_t round, const Inbox& inbox) override;
  bool terminated() const override { return completed_ >= rounds_; }

  graph::NodeId max_id() const { return static_cast<graph::NodeId>(best_); }

 private:
  std::int64_t best_;
  std::uint32_t rounds_;
  std::uint32_t completed_ = 0;
};

}  // namespace sinrcolor::mac
