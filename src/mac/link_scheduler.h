// Greedy SINR link scheduling — the centralized scheduling-complexity
// viewpoint (paper's related work: Hua/Lau, Goussevskaia et al.,
// Brar/Blough/Santi, Moscibroda/Wattenhofer/Zollinger).
//
// Given directed link requests (sender → receiver), partition them into the
// fewest slots such that every link in a slot satisfies the SINR condition
// against all simultaneous transmitters in that slot. The first-fit greedy
// below is the standard O(L²·k) heuristic; compared against the
// coloring-based TDMA frame it shows what a *global, centralized* scheduler
// buys over the paper's *distributed, topology-oblivious* one (bench X13).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/unit_disk_graph.h"
#include "sinr/params.h"

namespace sinrcolor::mac {

struct LinkRequest {
  graph::NodeId sender = graph::kInvalidNode;
  graph::NodeId receiver = graph::kInvalidNode;
};

struct LinkSchedule {
  /// slot_of[i] = slot assigned to request i.
  std::vector<std::uint32_t> slot_of;
  std::uint32_t slots = 0;
};

/// All (v, neighbor) pairs of the graph — the local-broadcast request set.
std::vector<LinkRequest> all_neighbor_links(const graph::UnitDiskGraph& g);

/// First-fit greedy: requests are processed in order; each goes into the
/// first slot that stays SINR-feasible (every link in the slot still decodes
/// with all the slot's transmitters, including the newcomer), else opens a
/// new slot. A node never transmits and receives in the same slot.
LinkSchedule greedy_link_schedule(const graph::UnitDiskGraph& g,
                                  const sinr::SinrParams& phys,
                                  const std::vector<LinkRequest>& requests);

/// Verifies feasibility: for every slot, every scheduled link decodes under
/// the full SINR condition. Returns the number of infeasible links (0 = ok).
std::size_t count_infeasible_links(const graph::UnitDiskGraph& g,
                                   const sinr::SinrParams& phys,
                                   const std::vector<LinkRequest>& requests,
                                   const LinkSchedule& schedule);

}  // namespace sinrcolor::mac
