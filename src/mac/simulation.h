// Single Round Simulation over the SINR TDMA MAC (paper, Corollary 1).
//
// Each message-passing round is mapped onto one TDMA frame: a node whose
// schedule slot is t transmits its round message in frame slot t; by
// Theorem 3 (schedule built from a (d+1, V)-coloring) every neighbor decodes
// it, so the round's semantics are preserved and each round costs V slots.
// Total: O(Δ)·τ slots for the rounds (plus the coloring's O(Δ log n) setup,
// accounted separately by the experiments).
#pragma once

#include "mac/message_passing.h"
#include "mac/tdma.h"
#include "obs/observation.h"
#include "sinr/params.h"

namespace sinrcolor::mac {

/// Executes `nodes` under SINR with the given TDMA schedule. Deliveries are
/// resolved with the full physical model each slot, so an insufficient
/// coloring (e.g. distance-2) degrades outputs measurably instead of
/// aborting: failed (sender, neighbor) deliveries are counted in
/// `missed_deliveries` and the affected inbox entries are simply absent.
/// Runs until all instances terminate or `max_rounds`.
///
/// `observation` (optional) receives tx/delivery/drop events stamped with
/// the global TDMA slot index plus the mac.* counters and the per-slot
/// concurrent-transmitter histogram.
ExecutionResult run_over_sinr_tdma(
    const graph::UnitDiskGraph& g, const sinr::SinrParams& phys,
    const TdmaSchedule& schedule,
    std::vector<std::unique_ptr<UniformAlgorithm>>& nodes,
    std::uint32_t max_rounds, obs::RunObservation* observation = nullptr);

/// How a general-model round is mapped onto TDMA frames (Corollary 1).
enum class GeneralStrategy : std::uint8_t {
  /// One frame per round; each node broadcasts all its per-neighbor messages
  /// as one bundle (receivers keep only entries addressed to them).
  /// Slots: τ·V; message size blows up by the bundle factor (reported in
  /// ExecutionResult::max_bundle_entries).
  kBundled,
  /// One frame per outgoing message: round r costs max_v(#messages_v(r))
  /// frames; in sub-frame k every node transmits its k-th outgoing message.
  /// Slots: O(Δ·V) per round (the corollary's O(Δ²τ) regime); message size
  /// stays O(s log n).
  kSequential,
};

/// Executes a general-model algorithm under SINR via the chosen strategy.
/// `observation` as in run_over_sinr_tdma.
ExecutionResult run_general_over_sinr_tdma(
    const graph::UnitDiskGraph& g, const sinr::SinrParams& phys,
    const TdmaSchedule& schedule,
    std::vector<std::unique_ptr<GeneralAlgorithm>>& nodes,
    std::uint32_t max_rounds, GeneralStrategy strategy,
    obs::RunObservation* observation = nullptr);

}  // namespace sinrcolor::mac
