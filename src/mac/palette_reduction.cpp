#include "mac/palette_reduction.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::mac {
namespace {

graph::Color smallest_free_color(const std::vector<bool>& taken) {
  for (std::size_t c = 0; c < taken.size(); ++c) {
    if (!taken[c]) return static_cast<graph::Color>(c);
  }
  // With ≤ Δ neighbors and Δ+1 candidates a free color always exists.
  SINRCOLOR_CHECK_MSG(false, "palette exhausted: degree bound violated");
  return graph::kUncolored;
}

}  // namespace

PaletteReductionResult reduce_palette_sinr(const graph::UnitDiskGraph& g,
                                           const sinr::SinrParams& phys,
                                           const TdmaSchedule& schedule,
                                           std::size_t max_degree_bound) {
  SINRCOLOR_CHECK(schedule.size() == g.size());
  SINRCOLOR_CHECK(max_degree_bound >= g.max_degree());
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");

  PaletteReductionResult result;
  result.reduced.color.assign(g.size(), graph::kUncolored);
  // taken[v][c]: some neighbor of v announced new color c.
  std::vector<std::vector<bool>> taken(
      g.size(), std::vector<bool>(max_degree_bound + 1, false));

  for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
    result.slots_used += 1;
    const auto senders = schedule.nodes_in_slot(t);
    std::vector<sinr::Transmitter> txs;
    txs.reserve(senders.size());
    for (graph::NodeId v : senders) {
      result.reduced.color[v] = smallest_free_color(taken[v]);
      txs.push_back({g.position(v)});
    }
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const graph::NodeId v = senders[i];
      const auto announced = static_cast<std::size_t>(result.reduced.color[v]);
      for (graph::NodeId u : g.neighbors(v)) {
        const bool u_silent = schedule.slot_of(u) != t;
        if (u_silent && sinr::decodes(phys, g.position(u), txs, i)) {
          taken[u][announced] = true;
        } else {
          ++result.missed_deliveries;
        }
      }
    }
  }

  result.palette = result.reduced.palette_size();
  result.valid = graph::is_valid_coloring(g, result.reduced);
  return result;
}

graph::Coloring reduce_palette_reference(const graph::UnitDiskGraph& g,
                                         const TdmaSchedule& schedule,
                                         std::size_t max_degree_bound) {
  SINRCOLOR_CHECK(schedule.size() == g.size());
  SINRCOLOR_CHECK(max_degree_bound >= g.max_degree());
  graph::Coloring reduced;
  reduced.color.assign(g.size(), graph::kUncolored);
  std::vector<std::vector<bool>> taken(
      g.size(), std::vector<bool>(max_degree_bound + 1, false));
  for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
    for (graph::NodeId v : schedule.nodes_in_slot(t)) {
      reduced.color[v] = smallest_free_color(taken[v]);
      for (graph::NodeId u : g.neighbors(v)) {
        taken[u][static_cast<std::size_t>(reduced.color[v])] = true;
      }
    }
  }
  return reduced;
}

}  // namespace sinrcolor::mac
