#include "mac/tdma.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/check.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace sinrcolor::mac {

TdmaSchedule TdmaSchedule::from_coloring(const graph::Coloring& coloring) {
  SINRCOLOR_CHECK_MSG(coloring.complete(),
                      "TDMA schedules need a complete coloring");
  // Compact the palette: colors in increasing order map to slots 0,1,2,...
  std::map<graph::Color, std::uint32_t> compact;
  for (graph::Color c : coloring.color) compact.emplace(c, 0);
  std::uint32_t next = 0;
  for (auto& [color, slot] : compact) slot = next++;

  TdmaSchedule schedule;
  schedule.frame_length_ = next;
  schedule.slot_.reserve(coloring.size());
  for (graph::Color c : coloring.color) schedule.slot_.push_back(compact.at(c));
  return schedule;
}

std::vector<graph::NodeId> TdmaSchedule::nodes_in_slot(std::uint32_t t) const {
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId v = 0; v < slot_.size(); ++v) {
    if (slot_[v] == t) nodes.push_back(v);
  }
  return nodes;
}

std::string TdmaAudit::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "frame=%u pairs=%llu/%llu (%.2f%%) full_senders=%zu/%zu",
                frame_length, static_cast<unsigned long long>(pairs_delivered),
                static_cast<unsigned long long>(pairs_total),
                delivery_rate() * 100.0, senders_fully_heard, senders_total);
  return buf;
}

TdmaAudit audit_tdma_sinr(const graph::UnitDiskGraph& g,
                          const sinr::SinrParams& phys,
                          const TdmaSchedule& schedule) {
  SINRCOLOR_CHECK(schedule.size() == g.size());
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");

  TdmaAudit audit;
  audit.frame_length = schedule.frame_length();
  audit.senders_total = g.size();
  for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
    const auto senders = schedule.nodes_in_slot(t);
    std::vector<sinr::Transmitter> txs;
    txs.reserve(senders.size());
    for (graph::NodeId v : senders) txs.push_back({g.position(v)});

    for (std::size_t i = 0; i < senders.size(); ++i) {
      bool fully_heard = true;
      for (graph::NodeId u : g.neighbors(senders[i])) {
        ++audit.pairs_total;
        // A neighbor scheduled in the same slot is itself transmitting and
        // cannot receive (half-duplex) — counted as a failed pair.
        const bool u_silent = schedule.slot_of(u) != t;
        if (u_silent && sinr::decodes(phys, g.position(u), txs, i)) {
          ++audit.pairs_delivered;
        } else {
          fully_heard = false;
        }
      }
      if (fully_heard) ++audit.senders_fully_heard;
    }
  }
  return audit;
}

TdmaAudit audit_tdma_graph_model(const graph::UnitDiskGraph& g,
                                 const TdmaSchedule& schedule) {
  SINRCOLOR_CHECK(schedule.size() == g.size());
  TdmaAudit audit;
  audit.frame_length = schedule.frame_length();
  audit.senders_total = g.size();
  // covering[u] = transmitting neighbors of u this slot: u decodes iff one.
  std::vector<std::uint32_t> covering(g.size());
  for (std::uint32_t t = 0; t < schedule.frame_length(); ++t) {
    const auto senders = schedule.nodes_in_slot(t);
    std::fill(covering.begin(), covering.end(), 0u);
    for (graph::NodeId v : senders) {
      for (graph::NodeId u : g.neighbors(v)) ++covering[u];
    }
    for (graph::NodeId v : senders) {
      bool fully_heard = true;
      for (graph::NodeId u : g.neighbors(v)) {
        ++audit.pairs_total;
        const bool u_silent = schedule.slot_of(u) != t;
        if (u_silent && covering[u] == 1) {
          ++audit.pairs_delivered;
        } else {
          fully_heard = false;
        }
      }
      if (fully_heard) ++audit.senders_fully_heard;
    }
  }
  return audit;
}

TdmaAudit audit_tdma_sinr_fading(const graph::UnitDiskGraph& g,
                                 const sinr::SinrParams& phys,
                                 const sinr::FadingSpec& fading,
                                 const TdmaSchedule& schedule,
                                 std::uint32_t frames) {
  SINRCOLOR_CHECK(schedule.size() == g.size());
  SINRCOLOR_CHECK(frames >= 1);
  phys.validate();
  SINRCOLOR_CHECK_MSG(std::abs(g.radius() - phys.r_t()) <= 1e-9 * phys.r_t(),
                      "UDG radius must equal the physical-layer R_T");

  TdmaAudit audit;
  audit.frame_length = schedule.frame_length();
  audit.senders_total = g.size();
  std::vector<bool> sender_always_heard(g.size(), true);

  std::int64_t slot = 0;
  for (std::uint32_t frame = 0; frame < frames; ++frame) {
    for (std::uint32_t t = 0; t < schedule.frame_length(); ++t, ++slot) {
      const auto senders = schedule.nodes_in_slot(t);
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const graph::NodeId v = senders[i];
        for (graph::NodeId u : g.neighbors(v)) {
          ++audit.pairs_total;
          if (schedule.slot_of(u) == t) {
            sender_always_heard[v] = false;  // half-duplex neighbor
            continue;
          }
          // Faded SINR of the v→u link against all same-slot transmitters.
          double signal = 0.0;
          double interference = 0.0;
          for (std::size_t j = 0; j < senders.size(); ++j) {
            const graph::NodeId w = senders[j];
            const double d_sq =
                geometry::distance_sq(g.position(u), g.position(w));
            SINRCOLOR_CHECK(d_sq > 0.0);
            const double power =
                phys.power * sinr::fade_factor(fading, slot, u, w) /
                sinr::pow_alpha_from_sq(d_sq, phys.alpha);
            (j == i ? signal : interference) += power;
          }
          if (signal >= phys.beta * (phys.noise + interference)) {
            ++audit.pairs_delivered;
          } else {
            sender_always_heard[v] = false;
          }
        }
      }
    }
  }
  for (bool heard : sender_always_heard) audit.senders_fully_heard += heard;
  return audit;
}

}  // namespace sinrcolor::mac
