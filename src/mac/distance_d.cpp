#include "mac/distance_d.h"

#include <cmath>

#include "common/check.h"
#include "sinr/params.h"

namespace sinrcolor::mac {

DistanceDColoringResult compute_distance_d_coloring(
    const graph::UnitDiskGraph& g, double d, const core::MwRunConfig& config) {
  SINRCOLOR_CHECK(d >= 1.0);
  DistanceDColoringResult result;
  result.d = d;

  // G^d: same nodes, range d·R_T (power scaled to d^α·P). The protocol's
  // parameters are re-derived for R_T' = d·R_T and Δ' = Δ_{G^d} automatically
  // by the driver, exactly as Section V prescribes.
  const graph::UnitDiskGraph scaled = g.scaled(d);
  result.scaled_max_degree = scaled.max_degree();
  result.run = core::run_mw_coloring(scaled, config);
  result.coloring = result.run.coloring;
  return result;
}

bool satisfies_theorem3_distance(const graph::UnitDiskGraph& g,
                                 const graph::Coloring& coloring, double alpha,
                                 double beta) {
  sinr::SinrParams phys;
  phys.alpha = alpha;
  phys.beta = beta;
  const double d = phys.mac_distance_d();
  return graph::is_valid_coloring(g, coloring, d + 1.0);
}

}  // namespace sinrcolor::mac
