// TDMA MAC scheduling from a node coloring (paper, Section V).
//
// Associating each color c with a frame slot t_c yields a schedule where all
// nodes of one color transmit simultaneously. Theorem 3: if the coloring is a
// (d+1, V)-coloring for d = (32·(α−1)/(α−2)·β)^{1/α}, then every node's
// broadcast reaches all of its UDG neighbors — an interference-free MAC with
// frame length V. A distance-2 coloring (sufficient in the graph model) is
// NOT sufficient under SINR; the audit below measures exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"
#include "sinr/fading.h"
#include "sinr/params.h"

namespace sinrcolor::mac {

/// A frame schedule: node v may transmit exactly in frame slot slot_of(v).
class TdmaSchedule {
 public:
  /// Builds a schedule from a complete coloring; the (possibly sparse)
  /// palette is compacted so the frame has exactly palette_size() slots.
  static TdmaSchedule from_coloring(const graph::Coloring& coloring);

  std::uint32_t frame_length() const { return frame_length_; }
  std::uint32_t slot_of(graph::NodeId v) const { return slot_[v]; }
  std::size_t size() const { return slot_.size(); }

  /// Nodes transmitting in frame slot t (sorted by id).
  std::vector<graph::NodeId> nodes_in_slot(std::uint32_t t) const;

 private:
  std::vector<std::uint32_t> slot_;
  std::uint32_t frame_length_ = 0;
};

/// Result of auditing one full frame in which every node broadcasts once.
struct TdmaAudit {
  std::uint32_t frame_length = 0;
  std::uint64_t pairs_total = 0;      ///< (sender, neighbor) pairs
  std::uint64_t pairs_delivered = 0;  ///< pairs whose delivery succeeded
  std::size_t senders_fully_heard = 0;  ///< senders heard by every neighbor
  std::size_t senders_total = 0;

  double delivery_rate() const {
    return pairs_total == 0
               ? 1.0
               : static_cast<double>(pairs_delivered) /
                     static_cast<double>(pairs_total);
  }
  bool interference_free() const { return pairs_delivered == pairs_total; }
  std::string summary() const;
};

/// Audits the schedule under the SINR physical model: in each frame slot all
/// scheduled nodes transmit; each sender's UDG neighbors either decode it or
/// not per the SINR rule. `g.radius()` must equal `phys.r_t()`.
TdmaAudit audit_tdma_sinr(const graph::UnitDiskGraph& g,
                          const sinr::SinrParams& phys,
                          const TdmaSchedule& schedule);

/// Same audit under the graph-based collision model (a listener decodes iff
/// exactly one neighbor transmits in the slot) — the model in which a
/// distance-2 coloring is already sufficient.
TdmaAudit audit_tdma_graph_model(const graph::UnitDiskGraph& g,
                                 const TdmaSchedule& schedule);

/// Audit under a *fading* SINR channel over `frames` consecutive frames
/// (slot numbering is continuous so per-slot fades vary between frames).
/// Theorem 3's 100% guarantee assumes deterministic path loss; this measures
/// how much of it survives Rayleigh / log-normal channels.
TdmaAudit audit_tdma_sinr_fading(const graph::UnitDiskGraph& g,
                                 const sinr::SinrParams& phys,
                                 const sinr::FadingSpec& fading,
                                 const TdmaSchedule& schedule,
                                 std::uint32_t frames);

}  // namespace sinrcolor::mac
