// The classical point-to-point message-passing model (paper, Section V).
//
// Rounds: in every round each node may broadcast one message to all its
// neighbors (the *uniform* model) and receives every neighbor's message of
// that round. The paper's Corollary 1 simulates such algorithms in the SINR
// model via the coloring-based TDMA MAC; this header defines the algorithm
// interface and the *reference* executor (ideal point-to-point channels),
// whose outputs the SINR simulation must reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/unit_disk_graph.h"
#include "radio/message.h"

namespace sinrcolor::mac {

/// Message body: a small vector of integers (the framework does not
/// interpret it). Size figures into Corollary 1's bit bounds only.
using Payload = std::vector<std::int64_t>;

/// One round's received messages, sorted by sender id (deterministic order so
/// reference and simulated executions are comparable bit-for-bit).
struct Inbox {
  std::vector<std::pair<graph::NodeId, Payload>> messages;

  const Payload* from(graph::NodeId sender) const;
};

/// A node-local algorithm in the uniform message-passing model.
class UniformAlgorithm {
 public:
  virtual ~UniformAlgorithm() = default;

  /// Message to broadcast in `round` (nullopt = stay silent).
  virtual std::optional<Payload> round_message(std::uint32_t round) = 0;

  /// All messages received in `round`, delivered at the round boundary.
  virtual void end_round(std::uint32_t round, const Inbox& inbox) = 0;

  /// True once the node's output is final (it may still relay if asked).
  virtual bool terminated() const = 0;
};

/// Constructs the per-node algorithm instances; `v` is the node id.
using AlgorithmFactory = std::function<std::unique_ptr<UniformAlgorithm>(
    graph::NodeId v, const graph::UnitDiskGraph& g)>;

/// A node-local algorithm in the *general* model (paper, Section V): in each
/// round a node may send a DIFFERENT message to each neighbor. Corollary 1
/// simulates these under SINR either by bundling all per-neighbor messages
/// into one broadcast (O(sΔ log n) bits, O(Δ(log n + τ)) slots) or by
/// serializing them (O(s log n) bits, O(Δ log n + Δ²τ) slots).
class GeneralAlgorithm {
 public:
  virtual ~GeneralAlgorithm() = default;

  /// Messages to send this round, one entry per addressed neighbor
  /// (unlisted neighbors receive nothing). Addressing a non-neighbor aborts.
  virtual std::vector<std::pair<graph::NodeId, Payload>> round_messages(
      std::uint32_t round) = 0;

  /// Messages addressed to this node this round (sorted by sender).
  virtual void end_round(std::uint32_t round, const Inbox& inbox) = 0;

  virtual bool terminated() const = 0;
};

using GeneralFactory = std::function<std::unique_ptr<GeneralAlgorithm>(
    graph::NodeId v, const graph::UnitDiskGraph& g)>;

struct ExecutionResult {
  std::uint32_t rounds = 0;          ///< rounds executed (τ)
  bool all_terminated = false;
  radio::Slot slots_used = 0;        ///< radio slots (0 for the reference run)
  std::uint64_t messages_sent = 0;
  std::uint64_t deliveries = 0;
  /// (sender, neighbor) pairs whose delivery failed — always 0 for the
  /// reference executor; 0 under SINR iff the schedule is interference-free.
  std::uint64_t missed_deliveries = 0;
  /// General model, bundled strategy: largest number of per-neighbor entries
  /// carried by one broadcast (the Corollary-1 message-size blowup factor).
  std::size_t max_bundle_entries = 0;

  std::string summary() const;
};

/// Builds one algorithm instance per node.
std::vector<std::unique_ptr<UniformAlgorithm>> instantiate(
    const graph::UnitDiskGraph& g, const AlgorithmFactory& factory);

/// Ideal point-to-point execution: every round message reaches every
/// neighbor. Runs until all instances terminate or `max_rounds`.
ExecutionResult run_reference(
    const graph::UnitDiskGraph& g,
    std::vector<std::unique_ptr<UniformAlgorithm>>& nodes,
    std::uint32_t max_rounds);

/// Builds one general-model algorithm instance per node.
std::vector<std::unique_ptr<GeneralAlgorithm>> instantiate_general(
    const graph::UnitDiskGraph& g, const GeneralFactory& factory);

/// Ideal point-to-point execution of a general-model algorithm.
ExecutionResult run_reference_general(
    const graph::UnitDiskGraph& g,
    std::vector<std::unique_ptr<GeneralAlgorithm>>& nodes,
    std::uint32_t max_rounds);

}  // namespace sinrcolor::mac
