// Structured, slot-stamped event tracing for protocol runs.
//
// A TraceEvent is a small POD describing one thing that happened at one slot
// to one node: a transmission, a decoded delivery, a collision/SINR drop, a
// state-machine edge, a failure/join, a color decision. Events are recorded
// into a fixed-capacity ring buffer (Tracer) owned by the harness; emitters
// hold a nullable Tracer* and pay only a pointer test when no sink is
// attached, so tracing never perturbs an unobserved run (and never touches
// the RNG stream — see tests/determinism_test.cpp).
//
// This layer deliberately depends on nothing above src/common: radio, core,
// robust and mac all emit into it, so it sits below them in the dependency
// order (common -> obs -> ... -> radio -> core).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_safety.h"

namespace sinrcolor::obs {

/// Mirrors radio::Slot / graph::NodeId without including those headers
/// (checked by static_asserts at the emission sites).
using Slot = std::int64_t;
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class EventKind : std::uint8_t {
  kWake,            ///< radio on per the wake-up schedule
  kJoin,            ///< dynamic join: late arrival into the network
  kRevival,         ///< rejoin after a crash (die-then-rejoin churn)
  kFailure,         ///< crash-stop death
  kTx,              ///< transmission: peer=target, a=MessageKind, b=payload
  kDelivery,        ///< decoded reception: peer=sender, a=MessageKind, b=payload
  kDrop,            ///< in range of >=1 transmitter but decoded nothing:
                    ///< peer=one interferer, a=transmitting-neighbor count
  kMwTransition,    ///< MW automaton edge: a=from, b=to (MwStateKind values)
  kJoinTransition,  ///< fast-join automaton edge: a=from, b=to (JoinPhase)
  kLeaderElected,   ///< node entered C_0
  kColorFinalized,  ///< node decided: b=final color
  kFailover,        ///< self-healing leader failover: a=failover ordinal
  kIndependenceViolation,  ///< peer=conflicting neighbor, b=shared color
  kFaultDrop,       ///< delivery suppressed by injected fault: peer=sender
  kInvariantViolation,     ///< runtime monitor: peer=counterpart,
                           ///< a=invariant id (0 legality, 1 tx-independence,
                           ///< 2 feasibility), b=offending color
  kConflictRepaired,       ///< a monitored coloring conflict closed:
                           ///< peer=counterpart, b=duration in slots
};

inline constexpr std::size_t kEventKindCount = 16;

/// Stable wire name of the kind ("tx", "mw_transition", ...), used by the
/// JSONL exporter and the schema checker in tools/lint/.
const char* to_string(EventKind kind);

/// Inverse of to_string; returns false on an unknown name.
bool event_kind_from_string(const std::string& name, EventKind& out);

/// State names for the two traced automata. These must stay in lockstep with
/// core::to_string(MwStateKind) and robust::SelfHealingNode's JoinPhase
/// (asserted by tests/obs_test.cpp); obs cannot include those headers
/// without inverting the layering.
const char* mw_state_name(std::int64_t state);
const char* join_phase_name(std::int64_t phase);

struct TraceEvent {
  Slot slot = 0;
  NodeId node = kNoNode;  ///< subject of the event
  NodeId peer = kNoNode;  ///< counterpart (sender, target, neighbor) or none
  std::int32_t a = 0;     ///< kind-specific small payload (see EventKind)
  std::int64_t b = 0;     ///< kind-specific wide payload (see EventKind)
  EventKind kind = EventKind::kWake;

  bool operator==(const TraceEvent&) const = default;
};

/// Fixed-capacity ring buffer of trace events. Overflow policy: drop-OLDEST
/// (the freshest events are the ones that explain a stall at the end of a
/// run); the number of overwritten events is reported via dropped().
///
/// Thread safety: the ring is internally synchronized (a shared-state sink —
/// the coming spatially-sharded engine will emit from resolve shards), so
/// concurrent record() calls are safe and never lose an event. The per-event
/// lock is paid only when a sink is attached; the SINRCOLOR_TRACE fast path
/// for unobserved runs stays a single pointer test. NOTE: concurrent
/// emitters make the ring ORDER nondeterministic — byte-compared artifacts
/// must come from single-threaded emission (today's simulator slot loop), as
/// tests/determinism_test.cpp pins.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = std::size_t{1} << 20);

  void record(const TraceEvent& event) SINRCOLOR_EXCLUDES(mutex_);
  void record(Slot slot, EventKind kind, NodeId node, NodeId peer = kNoNode,
              std::int32_t a = 0, std::int64_t b = 0) {
    record(TraceEvent{slot, node, peer, a, b, kind});
  }

  /// Events currently held, in emission order (oldest surviving first).
  std::vector<TraceEvent> events() const SINRCOLOR_EXCLUDES(mutex_);

  std::size_t size() const SINRCOLOR_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (survivors + dropped).
  std::uint64_t recorded() const SINRCOLOR_EXCLUDES(mutex_);
  /// Events overwritten by the drop-oldest overflow policy.
  std::uint64_t dropped() const SINRCOLOR_EXCLUDES(mutex_);

  void clear() SINRCOLOR_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;  ///< immutable after construction
  mutable common::Mutex mutex_;
  std::vector<TraceEvent> ring_ SINRCOLOR_GUARDED_BY(mutex_);
  /// Next write position once the ring is full.
  std::size_t head_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
};

/// Emission macro: a single pointer test when no sink is attached. The
/// arguments after the tracer are forwarded to Tracer::record and are NOT
/// evaluated when the tracer is null, so emission sites may compute payloads
/// inline without cost in the unobserved case.
#define SINRCOLOR_TRACE(tracer_ptr, ...)   \
  do {                                     \
    if ((tracer_ptr) != nullptr) {         \
      (tracer_ptr)->record(__VA_ARGS__);   \
    }                                      \
  } while (0)

}  // namespace sinrcolor::obs
