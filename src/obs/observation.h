// RunObservation bundles the sinks a harness attaches to an observed run:
// the event trace, the metrics registry, and (opt-in) the slot-phase
// profiler. Drivers take a nullable RunObservation* — null means "run dark"
// and costs one pointer test per would-be emission. The profiler is a second
// opt-in inside an observation: it stays null until enable_profiler(), so
// traced-but-unprofiled runs skip the clock reads entirely.
#pragma once

#include <memory>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace sinrcolor::obs {

struct RunObservation {
  explicit RunObservation(std::size_t trace_capacity = std::size_t{1} << 20)
      : trace(trace_capacity) {}

  /// Installs the slot-phase profiler (idempotent). Call before the run
  /// starts; drivers latch the pointer when they attach the observation.
  Profiler& enable_profiler() {
    if (profiler == nullptr) profiler = std::make_unique<Profiler>();
    return *profiler;
  }

  Tracer trace;
  MetricsRegistry metrics;
  std::unique_ptr<Profiler> profiler;  ///< null = profiling off
};

}  // namespace sinrcolor::obs
