// RunObservation bundles the two sinks a harness attaches to an observed
// run: the event trace and the metrics registry. Drivers take a nullable
// RunObservation* — null means "run dark" and costs one pointer test per
// would-be emission.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sinrcolor::obs {

struct RunObservation {
  explicit RunObservation(std::size_t trace_capacity = std::size_t{1} << 20)
      : trace(trace_capacity) {}

  Tracer trace;
  MetricsRegistry metrics;
};

}  // namespace sinrcolor::obs
