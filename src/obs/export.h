// Trace exporters and analyzers.
//
//   JSONL        — one flat JSON object per line, first line a meta header;
//                  lossless (read_jsonl round-trips every event bit-exactly),
//                  greppable, and validated in CI by
//                  tools/lint/trace_schema_check.py.
//   Chrome trace — the chrome://tracing / Perfetto "trace event" format: one
//                  thread per node whose track shows the node's state
//                  intervals (wake -> listening -> ... -> colored) with
//                  tx/delivery/drop/failure instants overlaid.
//   Digest       — per-node lifecycle summary (wake, decision, color, death,
//                  traffic counts) reconstructed purely from the event
//                  stream; decision slots match radio::RunMetrics exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sinrcolor::obs {

/// Run-level header written as the first JSONL line.
struct TraceMeta {
  std::string schema = "sinrcolor.trace.v1";
  std::uint64_t node_count = 0;
  std::uint64_t seed = 0;
  std::string scenario;        ///< free-form ("color", "recover", ...)
  std::uint64_t recorded = 0;  ///< events emitted (survivors + dropped)
  std::uint64_t dropped = 0;   ///< events lost to ring-buffer overflow

  bool operator==(const TraceMeta&) const = default;
};

void write_jsonl(const TraceMeta& meta, std::span<const TraceEvent> events,
                 std::ostream& out);

/// Parses a JSONL trace (header + events). Returns false and sets `error`
/// (when non-null) on malformed input; `meta`/`events` are then unspecified.
bool read_jsonl(std::istream& in, TraceMeta& meta,
                std::vector<TraceEvent>& events, std::string* error = nullptr);

class Profiler;

/// Chrome trace-event JSON ({"traceEvents":[...]}): open in chrome://tracing
/// or https://ui.perfetto.dev. One slot maps to one microsecond of trace
/// time; pid 0 is the run, tid v is node v. A non-null `profiler` adds a
/// second process (pid 1) with one track per recorded phase: an aggregate
/// slice carrying count/total/self/p50/p95 in its args plus a counter track
/// of the phase's total microseconds.
void write_chrome_trace(const TraceMeta& meta,
                        std::span<const TraceEvent> events, std::ostream& out,
                        const Profiler* profiler = nullptr);

/// Per-node lifecycle reconstructed from the event stream alone.
struct NodeDigest {
  NodeId node = kNoNode;
  Slot first_wake = -1;      ///< first wake/join/revival, -1 if never woke
  Slot last_wake = -1;       ///< last wake/join/revival (revivals move it)
  Slot decision_slot = -1;   ///< first color_finalized at/after last_wake
  std::int64_t final_color = -1;  ///< last finalized color, -1 if undecided
  Slot death_slot = -1;      ///< last failure not followed by a revival
  bool leader = false;
  std::uint64_t tx_count = 0;
  std::uint64_t delivery_count = 0;
  std::uint64_t drop_count = 0;
  std::uint64_t transition_count = 0;  ///< MW + join automaton edges
  std::uint64_t failover_count = 0;
  std::int64_t last_mw_state = -1;     ///< MwStateKind value, -1 if none seen
  std::int64_t last_join_phase = -1;   ///< JoinPhase value, -1 if none seen
};

std::vector<NodeDigest> build_digest(std::span<const TraceEvent> events,
                                     std::size_t node_count);

/// Human-readable digest table (one row per node; `only_node` filters to a
/// single node when >= 0).
std::string render_digest(const std::vector<NodeDigest>& digest,
                          std::int64_t only_node = -1);

}  // namespace sinrcolor::obs
