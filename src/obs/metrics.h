// Named-metrics registry: counters and fixed-bucket histograms that the
// simulator, the protocol drivers and the MAC layer register into during an
// observed run. The registry is ordered (std::map) so that exported JSON is
// byte-stable across same-seed runs — sinrlint R1 territory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sinrcolor::common {
class JsonWriter;
}

namespace sinrcolor::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram over doubles. `edges` are strictly increasing
/// upper bounds: bucket i counts samples x with edges[i-1] < x <= edges[i];
/// bucket edges.size() is the overflow bucket (x > edges.back()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void record(double x);

  /// edges().size() + 1 (the last bucket is the overflow bucket).
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  const std::vector<double>& edges() const { return edges_; }

  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  ///< 0 when empty
  double max() const { return max_; }  ///< 0 when empty
  double mean() const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named counter.
  Counter& counter(const std::string& name);

  /// Finds or creates the named histogram. Re-registering an existing name
  /// with different edges aborts (two subsystems disagreeing on a metric's
  /// shape is a wiring bug, not a runtime condition).
  Histogram& histogram(const std::string& name, std::vector<double> edges);

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// {"counters":{name:value,...},"histograms":{name:{edges,counts,...}}}
  void write_json(common::JsonWriter& json) const;
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sinrcolor::obs
