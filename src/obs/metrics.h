// Named-metrics registry: counters and fixed-bucket histograms that the
// simulator, the protocol drivers and the MAC layer register into during an
// observed run. The registry is ordered (std::map) so that exported JSON is
// byte-stable across same-seed runs — sinrlint R1 territory.
//
// Thread contract (checked by clang -Wthread-safety via the annotations
// below, and under TSan by tests/concurrency_stress_test.cpp):
//   * registration/lookup (counter(), histogram()) is internally
//     synchronized — concurrent threads may register freely; std::map node
//     stability keeps every handed-out reference valid forever;
//   * Counter::add is a relaxed atomic increment — safe from any thread, and
//     byte-stable under concurrency because addition is commutative;
//   * Histogram::record is NOT thread-safe: its running float sum is
//     order-sensitive, so concurrent recording would break byte-identity
//     even if made race-free. Record into a histogram from one thread only
//     (today: the simulator slot loop / post-merge driver code).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_safety.h"

namespace sinrcolor::common {
class JsonWriter;
}

namespace sinrcolor::obs {

/// Monotone event counter. add() is safe from any thread (relaxed atomic —
/// counts are commutative, so the total never depends on thread order).
class Counter {
 public:
  Counter() = default;
  // std::atomic is not copyable; copying a Counter snapshots its value
  // (needed so registries stay copyable aggregate members).
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram over doubles. `edges` are strictly increasing
/// upper bounds: bucket i counts samples x with edges[i-1] < x <= edges[i];
/// bucket edges.size() is the overflow bucket (x > edges.back()).
/// Externally synchronized: record() from one thread at a time (see the
/// registry thread contract above).
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void record(double x);

  /// edges().size() + 1 (the last bucket is the overflow bucket).
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  const std::vector<double>& edges() const { return edges_; }

  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  ///< 0 when empty
  double max() const { return max_; }  ///< 0 when empty
  double mean() const;

  /// Upper bound of the bucket holding the q-quantile (0 < q <= 1): the
  /// smallest edge whose cumulative count reaches ceil(q * total). Samples
  /// in the overflow bucket report max(); an empty histogram reports 0.
  /// Coarse by construction (bucket resolution), but cheap and allocation-
  /// free — the profiler's p50/p95 come from here.
  double quantile_upper_bound(double q) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named counter. Thread-safe; the reference stays
  /// valid for the registry's lifetime (std::map nodes never move).
  Counter& counter(const std::string& name) SINRCOLOR_EXCLUDES(mutex_);

  /// Finds or creates the named histogram. Thread-safe for registration;
  /// recording into the result is single-threaded (see Histogram).
  /// Re-registering an existing name with different edges aborts (two
  /// subsystems disagreeing on a metric's shape is a wiring bug, not a
  /// runtime condition).
  Histogram& histogram(const std::string& name, std::vector<double> edges)
      SINRCOLOR_EXCLUDES(mutex_);

  bool empty() const SINRCOLOR_EXCLUDES(mutex_);

  /// Quiescent-state accessors for the export/report path: call only after
  /// every emitting thread has finished (the analysis is waived because the
  /// returned reference outlives any lock scope; TSan still checks misuse).
  const std::map<std::string, Counter>& counters() const
      SINRCOLOR_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const
      SINRCOLOR_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  /// {"counters":{name:value,...},"histograms":{name:{edges,counts,...}}}
  void write_json(common::JsonWriter& json) const SINRCOLOR_EXCLUDES(mutex_);
  std::string to_json() const SINRCOLOR_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, Counter> counters_ SINRCOLOR_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ SINRCOLOR_GUARDED_BY(mutex_);
};

}  // namespace sinrcolor::obs
