#include "obs/profiler.h"

#include <algorithm>
#include <string>

#include "common/json.h"

namespace sinrcolor::obs {
namespace {

// Log-spaced microsecond bucket edges shared by every phase: 1us .. ~0.5s
// doubling per bucket, plus the implicit overflow bucket. Coarse quantiles
// at near-zero record cost — the same Histogram machinery MetricsRegistry
// hands out.
std::vector<double> phase_bucket_edges() {
  std::vector<double> edges;
  edges.reserve(20);
  for (double e = 1.0; e <= 524288.0; e *= 2.0) edges.push_back(e);
  return edges;
}

constexpr const char* kPhaseNames[kPhaseCount] = {
    "trial",         // kTrial
    "run",           // kRun
    "slot",          // kSlot
    "fault_inject",  // kFaultInject
    "tx_decide",     // kTxDecide
    "resolve",       // kResolve
    "field_accum",   // kFieldAccum
    "naive_resolve", // kNaiveResolve
    "deliver",       // kDeliver
    "protocol_step", // kProtocolStep
    "recovery",      // kRecovery
    "end_slot",      // kEndSlot
};

}  // namespace

const char* to_string(Phase phase) {
  const auto i = static_cast<std::size_t>(phase);
  return i < kPhaseCount ? kPhaseNames[i] : "?";
}

Profiler::PhaseStats::PhaseStats() : hist(phase_bucket_edges()) {}

Profiler::Profiler() = default;

void Profiler::record(Phase phase, std::uint64_t total_us,
                      std::uint64_t self_us) {
  common::MutexLock lock(mutex_);
  PhaseStats& stats = phases_[static_cast<std::size_t>(phase)];
  ++stats.count;
  stats.total_us += total_us;
  stats.self_us += self_us;
  stats.max_us = std::max(stats.max_us, total_us);
  stats.hist.record(static_cast<double>(total_us));
}

Profiler::Snapshot Profiler::stats(Phase phase) const {
  common::MutexLock lock(mutex_);
  const PhaseStats& stats = phases_[static_cast<std::size_t>(phase)];
  Snapshot snap;
  snap.count = stats.count;
  snap.total_us = stats.total_us;
  snap.self_us = stats.self_us;
  snap.max_us = stats.max_us;
  snap.p50_us = stats.hist.quantile_upper_bound(0.50);
  snap.p95_us = stats.hist.quantile_upper_bound(0.95);
  return snap;
}

std::uint64_t Profiler::recorded() const {
  common::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const PhaseStats& stats : phases_) total += stats.count;
  return total;
}

void Profiler::write_json(common::JsonWriter& json) const {
  common::MutexLock lock(mutex_);
  json.begin_object();
  json.key("phases");
  json.begin_object();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& stats = phases_[i];
    if (stats.count == 0) continue;
    json.key(to_string(static_cast<Phase>(i)));
    json.begin_object();
    json.field("count", stats.count);
    json.field("total_us", stats.total_us);
    json.field("self_us", stats.self_us);
    json.field("max_us", stats.max_us);
    json.field("p50_us", stats.hist.quantile_upper_bound(0.50));
    json.field("p95_us", stats.hist.quantile_upper_bound(0.95));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::string Profiler::to_json() const {
  common::JsonWriter json;
  write_json(json);
  return json.str();
}

}  // namespace sinrcolor::obs
