// Hierarchical slot-phase profiler: where does a slot's time actually go?
//
// A driver that wants phase timing enables the Profiler on its
// RunObservation; instrumented code brackets each phase with a RAII
// PhaseScope (via SINRCOLOR_PROFILE). Scopes nest through a thread-local
// frame stack, so every phase accumulates both TOTAL time (scope entry to
// exit) and SELF time (total minus the time spent in enclosed scopes) —
// kSlot's self time is the slot-loop overhead left after kTxDecide /
// kResolve / kDeliver / kEndSlot are subtracted out.
//
// Null-guard discipline (same as SINRCOLOR_TRACE): with a null Profiler* the
// scope constructor is one pointer test — no clock read, no stack push, no
// lock. Profiler-off runs stay within the ≤2% overhead budget measured on
// x2_time_vs_n (docs/OBSERVABILITY.md).
//
// Determinism: the profiler only ever READS clocks and writes its own
// sidecar-bound stats; it never touches an RNG stream or a result artifact.
// Profiled and unprofiled same-seed runs are byte-identical
// (tests/profiler_test.cpp). Wall time lives ONLY here, in sidecars and on
// stdout — the steady_clock use is allowlisted under sinrlint R7.
//
// Thread contract (PR 7 regime, checked by clang -Wthread-safety):
//   * record() is internally synchronized (mutex_) — FieldEngine shards call
//     it concurrently from TaskPool workers;
//   * the frame stack is thread_local, so nesting is tracked per thread: a
//     worker-thread scope roots its own stack and its time is NOT subtracted
//     from the main thread's enclosing scope (documented, not a bug — the
//     enclosing kResolve total still covers the wall time of its shards);
//   * snapshot accessors (stats(), write_json()) lock the same mutex and may
//     run concurrently with record(), but the usual call site is quiescent
//     (after the run).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_safety.h"
#include "obs/metrics.h"

namespace sinrcolor::common {
class JsonWriter;
}

namespace sinrcolor::obs {

/// The phase taxonomy (docs/OBSERVABILITY.md). Values are wire order: the
/// JSON `profile` block and the Perfetto tracks list phases in this order.
enum class Phase : std::uint8_t {
  kTrial,         ///< one SweepEngine trial body (recorded by MetricsSidecar)
  kRun,           ///< MwInstance / RecoveryInstance::run end to end
  kSlot,          ///< one radio::Simulator slot iteration
  kFaultInject,   ///< FaultEngine work: disturbance query + delivery drops
  kTxDecide,      ///< failures/joins/wakes + every protocol begin_slot
  kResolve,       ///< InterferenceModel::resolve (either path)
  kFieldAccum,    ///< one FieldEngine shard: F(u) sums + candidate resolve
  kNaiveResolve,  ///< the naive per-(sender, listener) oracle loops
  kDeliver,       ///< delivery dispatch: on_receive + drop attribution
  kProtocolStep,  ///< one MwNode::begin_slot (inside kTxDecide)
  kRecovery,      ///< one SelfHealingNode::begin_slot (wraps kProtocolStep)
  kEndSlot,       ///< end_slot transitions + end-of-slot observers
};

inline constexpr std::size_t kPhaseCount = 12;

/// Stable wire name ("slot", "field_accum", ...); "?" for out-of-range.
const char* to_string(Phase phase);

/// Thread-safe per-phase accumulator. One instance per observed run,
/// owned by RunObservation (null pointer = profiling off).
class Profiler {
 public:
  Profiler();

  /// One closed scope of `phase`: `total_us` entry-to-exit, `self_us` with
  /// enclosed scopes subtracted. Safe from any thread.
  void record(Phase phase, std::uint64_t total_us, std::uint64_t self_us)
      SINRCOLOR_EXCLUDES(mutex_);

  /// Copyable snapshot of one phase's stats. Quantiles are bucket upper
  /// bounds from the shared log-spaced microsecond histogram
  /// (Histogram::quantile_upper_bound — the MetricsRegistry machinery).
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t self_us = 0;
    std::uint64_t max_us = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
  };
  Snapshot stats(Phase phase) const SINRCOLOR_EXCLUDES(mutex_);

  /// Scopes recorded across all phases (0 = nothing was profiled).
  std::uint64_t recorded() const SINRCOLOR_EXCLUDES(mutex_);

  /// {"phases":{"slot":{count,total_us,self_us,max_us,p50_us,p95_us},...}}
  /// in Phase declaration order; phases with no samples are omitted.
  void write_json(common::JsonWriter& json) const SINRCOLOR_EXCLUDES(mutex_);
  std::string to_json() const SINRCOLOR_EXCLUDES(mutex_);

 private:
  struct PhaseStats {
    PhaseStats();
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t self_us = 0;
    std::uint64_t max_us = 0;
    Histogram hist;  ///< log-spaced microsecond buckets (shared edges)
  };

  mutable common::Mutex mutex_;
  std::array<PhaseStats, kPhaseCount> phases_ SINRCOLOR_GUARDED_BY(mutex_);
};

namespace detail {

/// Per-thread nesting stack: each open scope tracks the summed duration of
/// its already-closed children so the parent can report self time. Fixed
/// depth — deeper nesting still records totals, just without the self-time
/// split for the overflowing frames.
struct ProfileStack {
  static constexpr std::size_t kMaxDepth = 16;
  std::uint64_t child_us[kMaxDepth];
  std::size_t depth = 0;
};

inline ProfileStack& profile_stack() {
  thread_local ProfileStack stack;
  return stack;
}

}  // namespace detail

/// RAII phase bracket. A null profiler costs one pointer test and nothing
/// else (no clock read) — the SINRCOLOR_TRACE discipline.
class PhaseScope {
 public:
  PhaseScope(Profiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ == nullptr) return;
    phase_ = phase;
    auto& stack = detail::profile_stack();
    if (stack.depth < detail::ProfileStack::kMaxDepth) {
      stack.child_us[stack.depth] = 0;
      depth_ = ++stack.depth;
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~PhaseScope() {
    if (profiler_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto total_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    std::uint64_t child_us = 0;
    if (depth_ > 0) {
      auto& stack = detail::profile_stack();
      child_us = stack.child_us[depth_ - 1];
      stack.depth = depth_ - 1;
      if (depth_ > 1) stack.child_us[depth_ - 2] += total_us;
    }
    profiler_->record(phase_, total_us,
                      total_us >= child_us ? total_us - child_us : 0);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Profiler* const profiler_;
  Phase phase_{};
  std::size_t depth_ = 0;  ///< 1-based frame index; 0 = stack overflowed
  std::chrono::steady_clock::time_point start_{};
};

#define SINRCOLOR_PROFILE_CAT2(a, b) a##b
#define SINRCOLOR_PROFILE_CAT(a, b) SINRCOLOR_PROFILE_CAT2(a, b)

/// Brackets the rest of the enclosing block as one `phase` scope of
/// `profiler_ptr` (may be null — see the null-guard discipline above).
#define SINRCOLOR_PROFILE(profiler_ptr, phase)                 \
  ::sinrcolor::obs::PhaseScope SINRCOLOR_PROFILE_CAT(          \
      sinrcolor_profile_scope_, __LINE__)((profiler_ptr), (phase))

}  // namespace sinrcolor::obs
