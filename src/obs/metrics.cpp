#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/json.h"

namespace sinrcolor::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  SINRCOLOR_CHECK_MSG(!edges_.empty(), "Histogram needs at least one edge");
  SINRCOLOR_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()) &&
                          std::adjacent_find(edges_.begin(), edges_.end()) ==
                              edges_.end(),
                      "Histogram edges must be strictly increasing");
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::record(double x) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  sum_ += x;
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::quantile_upper_bound(double q) const {
  if (total_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      return i < edges_.size() ? edges_[i] : max_;
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  common::MutexLock lock(mutex_);
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges) {
  common::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    SINRCOLOR_CHECK_MSG(it->second.edges() == edges,
                        "histogram re-registered with different edges");
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(edges))).first->second;
}

bool MetricsRegistry::empty() const {
  common::MutexLock lock(mutex_);
  return counters_.empty() && histograms_.empty();
}

void MetricsRegistry::write_json(common::JsonWriter& json) const {
  common::MutexLock lock(mutex_);
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) {
    json.field(name, c.value());
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name);
    json.begin_object();
    json.key("edges");
    json.begin_array();
    for (double e : h.edges()) json.value(e);
    json.end_array();
    json.key("counts");
    json.begin_array();
    for (std::size_t i = 0; i < h.bucket_count(); ++i) json.value(h.bucket(i));
    json.end_array();
    json.field("total", h.total());
    json.field("sum", h.sum());
    json.field("min", h.min());
    json.field("max", h.max());
    json.field("mean", h.mean());
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::string MetricsRegistry::to_json() const {
  common::JsonWriter json;
  write_json(json);
  return json.str();
}

}  // namespace sinrcolor::obs
