#include "obs/trace.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::obs {

namespace {

constexpr const char* kEventKindNames[kEventKindCount] = {
    "wake",           "join",           "revival",
    "failure",        "tx",             "delivery",
    "drop",           "mw_transition",  "join_transition",
    "leader_elected", "color_finalized", "failover",
    "independence_violation", "fault_drop", "invariant_violation",
    "conflict_repaired",
};

constexpr const char* kMwStateNames[] = {"asleep",     "listening", "competing",
                                         "requesting", "leader",    "colored"};

constexpr const char* kJoinPhaseNames[] = {"inactive", "listening", "confirming",
                                           "confirmed"};

}  // namespace

const char* to_string(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kEventKindCount ? kEventKindNames[i] : "?";
}

bool event_kind_from_string(const std::string& name, EventKind& out) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (name == kEventKindNames[i]) {
      out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

const char* mw_state_name(std::int64_t state) {
  return state >= 0 && state < 6 ? kMwStateNames[state] : "?";
}

const char* join_phase_name(std::int64_t phase) {
  return phase >= 0 && phase < 4 ? kJoinPhaseNames[phase] : "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  SINRCOLOR_CHECK_MSG(capacity_ > 0, "Tracer needs a positive capacity");
  ring_.reserve(std::min<std::size_t>(capacity_, std::size_t{1} << 16));
}

void Tracer::record(const TraceEvent& event) {
  common::MutexLock lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Ring is full: overwrite the oldest event.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  common::MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

std::size_t Tracer::size() const {
  common::MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::recorded() const {
  common::MutexLock lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  common::MutexLock lock(mutex_);
  return recorded_ - static_cast<std::uint64_t>(ring_.size());
}

void Tracer::clear() {
  common::MutexLock lock(mutex_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

}  // namespace sinrcolor::obs
