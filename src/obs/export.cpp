#include "obs/export.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/json.h"
#include "common/table.h"
#include "obs/profiler.h"

namespace sinrcolor::obs {

namespace {

void write_event_line(common::JsonWriter& json, const TraceEvent& e) {
  json.begin_object();
  json.field("slot", static_cast<std::int64_t>(e.slot));
  json.field("kind", to_string(e.kind));
  json.field("node", static_cast<std::uint64_t>(e.node));
  json.field("peer", static_cast<std::uint64_t>(e.peer));
  json.field("a", static_cast<std::int64_t>(e.a));
  json.field("b", e.b);
  json.end_object();
}

/// Parses one flat JSON object ({"k":v,...}, no nesting) into raw key/value
/// strings. String values are unescaped (the subset JsonWriter::escape
/// emits); numeric values keep their literal text.
bool parse_flat_object(const std::string& line,
                       std::map<std::string, std::string>& kv,
                       std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::size_t i = 0;
  const std::size_t n = line.size();
  const auto skip_ws = [&] {
    while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& out) {
    if (i >= n || line[i] != '"') return false;
    ++i;
    out.clear();
    while (i < n && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < n) {
        ++i;
        switch (line[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: out += line[i]; break;
        }
      } else {
        out += line[i];
      }
      ++i;
    }
    if (i >= n) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= n || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < n && line[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return fail("expected a quoted key");
    skip_ws();
    if (i >= n || line[i] != ':') return fail("expected ':' after key");
    ++i;
    skip_ws();
    std::string value;
    if (i < n && line[i] == '"') {
      if (!parse_string(value)) return fail("unterminated string value");
    } else {
      const std::size_t start = i;
      while (i < n && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) return fail("empty value");
    }
    kv[key] = value;
    skip_ws();
    if (i < n && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < n && line[i] == '}') return true;
    return fail("expected ',' or '}'");
  }
}

bool get_int(const std::map<std::string, std::string>& kv,
             const std::string& key, std::int64_t& out) {
  const auto it = kv.find(key);
  if (it == kv.end()) return false;
  char* end = nullptr;
  out = std::strtoll(it->second.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !it->second.empty();
}

bool get_uint(const std::map<std::string, std::string>& kv,
              const std::string& key, std::uint64_t& out) {
  const auto it = kv.find(key);
  if (it == kv.end()) return false;
  char* end = nullptr;
  out = std::strtoull(it->second.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !it->second.empty();
}

}  // namespace

void write_jsonl(const TraceMeta& meta, std::span<const TraceEvent> events,
                 std::ostream& out) {
  {
    common::JsonWriter json;
    json.begin_object();
    json.field("schema", meta.schema);
    json.field("n", meta.node_count);
    json.field("seed", meta.seed);
    json.field("scenario", meta.scenario);
    json.field("recorded", meta.recorded);
    json.field("dropped", meta.dropped);
    json.end_object();
    out << json.str() << '\n';
  }
  for (const TraceEvent& e : events) {
    common::JsonWriter json;
    write_event_line(json, e);
    out << json.str() << '\n';
  }
}

bool read_jsonl(std::istream& in, TraceMeta& meta,
                std::vector<TraceEvent>& events, std::string* error) {
  const auto fail = [&](std::size_t lineno, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  events.clear();
  std::string line;
  std::size_t lineno = 0;
  bool have_meta = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::map<std::string, std::string> kv;
    std::string parse_error;
    if (!parse_flat_object(line, kv, &parse_error)) {
      return fail(lineno, parse_error);
    }
    if (!have_meta) {
      if (kv.find("schema") == kv.end()) {
        return fail(lineno, "first line must be the trace meta header");
      }
      meta.schema = kv["schema"];
      if (meta.schema != "sinrcolor.trace.v1") {
        return fail(lineno, "unknown schema '" + meta.schema + "'");
      }
      meta.scenario = kv.count("scenario") != 0 ? kv["scenario"] : "";
      if (!get_uint(kv, "n", meta.node_count) ||
          !get_uint(kv, "seed", meta.seed) ||
          !get_uint(kv, "recorded", meta.recorded) ||
          !get_uint(kv, "dropped", meta.dropped)) {
        return fail(lineno, "meta header missing n/seed/recorded/dropped");
      }
      have_meta = true;
      continue;
    }
    TraceEvent e;
    std::int64_t slot = 0, a = 0, b = 0;
    std::uint64_t node = 0, peer = 0;
    const auto kind_it = kv.find("kind");
    if (kind_it == kv.end() ||
        !event_kind_from_string(kind_it->second, e.kind)) {
      return fail(lineno, "missing or unknown event kind");
    }
    if (!get_int(kv, "slot", slot) || !get_uint(kv, "node", node) ||
        !get_uint(kv, "peer", peer) || !get_int(kv, "a", a) ||
        !get_int(kv, "b", b)) {
      return fail(lineno, "event missing slot/node/peer/a/b");
    }
    e.slot = slot;
    e.node = static_cast<NodeId>(node);
    e.peer = static_cast<NodeId>(peer);
    e.a = static_cast<std::int32_t>(a);
    e.b = b;
    events.push_back(e);
  }
  if (!have_meta) return fail(lineno, "empty trace (no meta header)");
  return true;
}

void write_chrome_trace(const TraceMeta& meta,
                        std::span<const TraceEvent> events, std::ostream& out,
                        const Profiler* profiler) {
  common::JsonWriter json;
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents");
  json.begin_array();

  const auto metadata = [&](const char* what, std::uint64_t tid,
                            const std::string& name) {
    json.begin_object();
    json.field("name", what);
    json.field("ph", "M");
    json.field("pid", 0);
    json.field("tid", tid);
    json.key("args");
    json.begin_object();
    json.field("name", name);
    json.end_object();
    json.end_object();
  };
  metadata("process_name", 0,
           "sinrcolor " + meta.scenario + " (n=" +
               std::to_string(meta.node_count) + ", seed=" +
               std::to_string(meta.seed) + ")");

  // Only nodes that appear in the trace get a named track (a 10^5-node run
  // with a ring-buffered tail should not emit 10^5 empty threads).
  std::vector<bool> seen(meta.node_count, false);
  for (const TraceEvent& e : events) {
    if (e.node < seen.size() && !seen[e.node]) {
      seen[e.node] = true;
      metadata("thread_name", e.node, "node " + std::to_string(e.node));
    }
  }

  const auto complete = [&](NodeId tid, const std::string& name, Slot start,
                            Slot end) {
    if (end <= start) return;
    json.begin_object();
    json.field("name", name);
    json.field("ph", "X");
    json.field("ts", static_cast<std::int64_t>(start));
    json.field("dur", static_cast<std::int64_t>(end - start));
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(tid));
    json.end_object();
  };
  const auto instant = [&](NodeId tid, const char* name, Slot ts,
                           const TraceEvent& e, bool with_payload) {
    json.begin_object();
    json.field("name", name);
    json.field("ph", "i");
    json.field("s", "t");
    json.field("ts", static_cast<std::int64_t>(ts));
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(tid));
    if (with_payload) {
      json.key("args");
      json.begin_object();
      json.field("peer", static_cast<std::uint64_t>(e.peer));
      json.field("a", static_cast<std::int64_t>(e.a));
      json.field("b", e.b);
      json.end_object();
    }
    json.end_object();
  };

  // Per-node open state interval, closed by the next automaton edge (or the
  // end of the trace).
  struct Open {
    std::string name;
    Slot start = 0;
  };
  std::map<NodeId, Open> open;
  Slot max_slot = 0;
  const auto close_open = [&](NodeId v, Slot at) {
    const auto it = open.find(v);
    if (it == open.end()) return;
    complete(v, it->second.name, it->second.start, at);
    open.erase(it);
  };

  for (const TraceEvent& e : events) {
    max_slot = std::max(max_slot, e.slot);
    switch (e.kind) {
      case EventKind::kMwTransition:
        close_open(e.node, e.slot);
        if (mw_state_name(e.b) != std::string("asleep")) {
          open[e.node] = {mw_state_name(e.b), e.slot};
        }
        break;
      case EventKind::kJoinTransition:
        close_open(e.node, e.slot);
        if (e.b != 0) {  // JoinPhase::kInactive opens nothing
          open[e.node] = {std::string("join:") + join_phase_name(e.b), e.slot};
        }
        break;
      case EventKind::kFailure:
        close_open(e.node, e.slot);
        open[e.node] = {"dead", e.slot};
        instant(e.node, "failure", e.slot, e, false);
        break;
      case EventKind::kWake:
      case EventKind::kJoin:
      case EventKind::kRevival:
        close_open(e.node, e.slot);
        instant(e.node, to_string(e.kind), e.slot, e, false);
        break;
      case EventKind::kTx:
        instant(e.node, "tx", e.slot, e, true);
        break;
      case EventKind::kDelivery:
        instant(e.node, "rx", e.slot, e, true);
        break;
      case EventKind::kDrop:
        instant(e.node, "drop", e.slot, e, true);
        break;
      case EventKind::kLeaderElected:
        instant(e.node, "leader_elected", e.slot, e, false);
        break;
      case EventKind::kColorFinalized:
        instant(e.node, "color_finalized", e.slot, e, true);
        break;
      case EventKind::kFailover:
        instant(e.node, "failover", e.slot, e, true);
        break;
      case EventKind::kIndependenceViolation:
        instant(e.node, "independence_violation", e.slot, e, true);
        break;
      case EventKind::kFaultDrop:
        instant(e.node, "fault_drop", e.slot, e, true);
        break;
      case EventKind::kInvariantViolation:
        instant(e.node, "invariant_violation", e.slot, e, true);
        break;
      case EventKind::kConflictRepaired:
        instant(e.node, "conflict_repaired", e.slot, e, true);
        break;
    }
  }
  // Close every interval one slot past the last event so terminal states
  // (leader/colored/dead) stay visible.
  for (const auto& [v, interval] : std::map<NodeId, Open>(open)) {
    complete(v, interval.name, interval.start, max_slot + 1);
  }

  // Profiler tracks: a second process (pid 1) so phase timing never
  // interleaves with the slot-time node tracks (real microseconds vs the
  // slot==microsecond convention above). One tid per recorded phase: an
  // aggregate "X" slice carrying the stats and a "C" counter of total_us.
  if (profiler != nullptr && profiler->recorded() > 0) {
    json.begin_object();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", 1);
    json.field("tid", 0);
    json.key("args");
    json.begin_object();
    json.field("name", "profiler (phase totals, us)");
    json.end_object();
    json.end_object();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const Phase phase = static_cast<Phase>(i);
      const Profiler::Snapshot snap = profiler->stats(phase);
      if (snap.count == 0) continue;
      const std::string name = to_string(phase);
      json.begin_object();
      json.field("name", "thread_name");
      json.field("ph", "M");
      json.field("pid", 1);
      json.field("tid", static_cast<std::uint64_t>(i));
      json.key("args");
      json.begin_object();
      json.field("name", "phase " + name);
      json.end_object();
      json.end_object();
      json.begin_object();
      json.field("name", name);
      json.field("ph", "X");
      json.field("ts", 0);
      json.field("dur", snap.total_us);
      json.field("pid", 1);
      json.field("tid", static_cast<std::uint64_t>(i));
      json.key("args");
      json.begin_object();
      json.field("count", snap.count);
      json.field("total_us", snap.total_us);
      json.field("self_us", snap.self_us);
      json.field("max_us", snap.max_us);
      json.field("p50_us", snap.p50_us);
      json.field("p95_us", snap.p95_us);
      json.end_object();
      json.end_object();
      json.begin_object();
      json.field("name", "phase_total_us:" + name);
      json.field("ph", "C");
      json.field("ts", 0);
      json.field("pid", 1);
      json.field("tid", static_cast<std::uint64_t>(i));
      json.key("args");
      json.begin_object();
      json.field("total_us", snap.total_us);
      json.end_object();
      json.end_object();
    }
  }

  json.end_array();
  json.end_object();
  out << json.str() << '\n';
}

std::vector<NodeDigest> build_digest(std::span<const TraceEvent> events,
                                     std::size_t node_count) {
  std::vector<NodeDigest> digest(node_count);
  for (std::size_t v = 0; v < node_count; ++v) {
    digest[v].node = static_cast<NodeId>(v);
  }
  for (const TraceEvent& e : events) {
    SINRCOLOR_CHECK_MSG(e.node < node_count,
                        "trace event for a node beyond node_count");
    NodeDigest& d = digest[e.node];
    switch (e.kind) {
      case EventKind::kWake:
      case EventKind::kJoin:
      case EventKind::kRevival:
        if (d.first_wake < 0) d.first_wake = e.slot;
        d.last_wake = e.slot;
        // A revival voids any pre-crash decision (the simulator resets the
        // node's decision slot the same way).
        d.decision_slot = -1;
        d.final_color = -1;
        d.death_slot = -1;
        d.leader = false;
        break;
      case EventKind::kFailure:
        d.death_slot = e.slot;
        break;
      case EventKind::kTx:
        ++d.tx_count;
        break;
      case EventKind::kDelivery:
        ++d.delivery_count;
        break;
      case EventKind::kDrop:
        ++d.drop_count;
        break;
      case EventKind::kMwTransition:
        ++d.transition_count;
        d.last_mw_state = e.b;
        break;
      case EventKind::kJoinTransition:
        ++d.transition_count;
        d.last_join_phase = e.b;
        break;
      case EventKind::kLeaderElected:
        d.leader = true;
        break;
      case EventKind::kColorFinalized:
        if (d.decision_slot < 0) d.decision_slot = e.slot;
        d.final_color = e.b;
        break;
      case EventKind::kFailover:
        ++d.failover_count;
        break;
      case EventKind::kIndependenceViolation:
        break;
      case EventKind::kFaultDrop:
        ++d.drop_count;  // lost delivery, whatever the cause
        break;
      case EventKind::kInvariantViolation:
      case EventKind::kConflictRepaired:
        break;
    }
  }
  return digest;
}

std::string render_digest(const std::vector<NodeDigest>& digest,
                          std::int64_t only_node) {
  common::Table table({"node", "wake", "decided", "latency", "color", "state",
                       "death", "tx", "rx", "drops", "failovers"});
  const auto slot_str = [](Slot s) {
    return s < 0 ? std::string("-")
                 : std::to_string(static_cast<long long>(s));
  };
  for (const NodeDigest& d : digest) {
    if (only_node >= 0 && d.node != static_cast<NodeId>(only_node)) continue;
    std::string state = "-";
    if (d.death_slot >= 0) {
      state = "dead";
    } else if (d.last_mw_state >= 0 &&
               (d.last_join_phase <= 0 || d.last_mw_state > 0)) {
      state = mw_state_name(d.last_mw_state);
      if (d.leader) state = "leader";
    } else if (d.last_join_phase >= 0) {
      state = std::string("join:") + join_phase_name(d.last_join_phase);
    }
    const Slot latency = d.decision_slot >= 0 && d.last_wake >= 0
                             ? d.decision_slot - d.last_wake
                             : -1;
    table.add_row(
        {std::to_string(d.node), slot_str(d.first_wake),
         slot_str(d.decision_slot), slot_str(latency),
         d.final_color < 0 ? "-" : std::to_string(d.final_color), state,
         slot_str(d.death_slot), std::to_string(d.tx_count),
         std::to_string(d.delivery_count), std::to_string(d.drop_count),
         std::to_string(d.failover_count)});
  }
  std::ostringstream out;
  table.print(out);
  return out.str();
}

}  // namespace sinrcolor::obs
