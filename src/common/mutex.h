// Capability-annotated synchronization primitives.
//
// libstdc++'s std::mutex / std::lock_guard carry no Clang capability
// attributes, so code locking them is invisible to -Wthread-safety: every
// GUARDED_BY access would be diagnosed as unlocked no matter how carefully
// the locks are taken. These thin wrappers restore visibility:
//
//   Mutex      std::mutex with the capability attribute and annotated
//              lock()/unlock()/try_lock().
//   MutexLock  scoped guard (SCOPED_CAPABILITY) with annotated re-lockable
//              unlock()/lock(), which the analysis tracks across the body —
//              the ONLY sanctioned way to lock a Mutex (sinrlint R6 bans
//              bare .lock()/.unlock() outside this file).
//   CondVar    condition variable waitable on a Mutex. wait() adopts the
//              Mutex's native handle for the duration of the wait, so the
//              caller keeps using MutexLock and the analysis keeps treating
//              the capability as held across the wait (the standard modeling
//              compromise: the transient unlock inside wait() is invisible,
//              which is sound as long as callers re-check their predicate —
//              enforced here by only exposing predicate-free wait() meant
//              for while-loops).
//
// These wrappers add no state and no branches over the std types; a
// non-Clang build compiles to exactly the std::mutex code it replaced.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_safety.h"

namespace sinrcolor::common {

class SINRCOLOR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SINRCOLOR_ACQUIRE() { m_.lock(); }
  void unlock() SINRCOLOR_RELEASE() { m_.unlock(); }
  bool try_lock() SINRCOLOR_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped handle, for CondVar's adopt-wait only.
  std::mutex& native_handle() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex. Supports the TaskPool lock-passing pattern: unlock()
/// releases mid-scope, lock() reacquires, and the destructor releases only
/// if currently held. The thread-safety analysis tracks all three.
class SINRCOLOR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SINRCOLOR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SINRCOLOR_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() SINRCOLOR_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }
  void lock() SINRCOLOR_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable for Mutex-guarded state. No predicate overloads on
/// purpose: a lambda predicate is a separate function to the thread-safety
/// analysis and would be diagnosed for reading guarded members, so callers
/// write the standard `while (!predicate) cv.wait(mutex);` loop inline,
/// where the reads are visibly under the lock.
class CondVar {
 public:
  /// Atomically releases `mutex` (which the caller must hold), blocks until
  /// notified, and reacquires before returning. Spurious wakeups happen;
  /// always re-check the predicate in a loop.
  void wait(Mutex& mutex) SINRCOLOR_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking, so the annotated
    // Mutex stays held from the caller's (and the analysis') view.
    std::unique_lock<std::mutex> native(mutex.native_handle(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sinrcolor::common
