#include "common/task_pool.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::common {

TaskPool::TaskPool(std::size_t threads) : threads_(std::max<std::size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::pair<std::size_t, std::size_t> TaskPool::shard_range(std::size_t total,
                                                          std::size_t shards,
                                                          std::size_t s) {
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;
  const std::size_t begin = s * base + std::min(s, extra);
  return {begin, begin + base + (s < extra ? 1 : 0)};
}

// Lock-passing dance: the caller's scoped guard is released around each
// fn(s) call and reacquired after. The analysis cannot associate a MutexLock
// received by reference with mutex_, so the body is exempted; the REQUIRES
// contract on the declaration is still enforced at every call site, and the
// TSan tier exercises this exact interleaving under load.
void TaskPool::drain_job(MutexLock& lock) SINRCOLOR_NO_THREAD_SAFETY_ANALYSIS {
  while (next_shard_ < job_shards_) {
    const std::size_t s = next_shard_++;
    // Read the job pointer while still locked; it stays valid unlocked
    // because run_shards keeps it installed until remaining_ hits zero.
    const std::function<void(std::size_t)>* job = job_;
    lock.unlock();
    (*job)(s);
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void TaskPool::run_shards(std::size_t shards,
                          const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (workers_.empty() || shards == 1) {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  MutexLock lock(mutex_);
  SINRCOLOR_CHECK_MSG(job_ == nullptr, "TaskPool::run_shards is not reentrant");
  job_ = &fn;
  job_shards_ = shards;
  next_shard_ = 0;
  remaining_ = shards;
  ++generation_;
  work_cv_.notify_all();
  drain_job(lock);
  while (remaining_ != 0) done_cv_.wait(mutex_);
  job_ = nullptr;
  job_shards_ = 0;
}

void TaskPool::worker_loop() {
  MutexLock lock(mutex_);
  std::uint64_t seen = 0;
  while (true) {
    while (!stop_ && generation_ == seen) work_cv_.wait(mutex_);
    if (stop_) return;
    seen = generation_;
    drain_job(lock);
  }
}

}  // namespace sinrcolor::common
