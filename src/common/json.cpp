#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace sinrcolor::common {

void JsonWriter::prefix_for_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;  // value follows "key":
  }
  if (!stack_.empty()) {
    SINRCOLOR_CHECK_MSG(stack_.back() == Frame::kArray,
                        "object members need a key() first");
    if (!first_in_frame_.back()) out_ += ',';
    first_in_frame_.back() = false;
  }
}

void JsonWriter::begin_object() {
  prefix_for_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_object() {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  SINRCOLOR_CHECK_MSG(!expecting_value_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::begin_array() {
  prefix_for_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_array() {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  SINRCOLOR_CHECK_MSG(!expecting_value_, "two keys in a row");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::value(const std::string& v) {
  prefix_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  prefix_for_value();
  SINRCOLOR_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite");
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  prefix_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  prefix_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  prefix_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  prefix_for_value();
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  SINRCOLOR_CHECK_MSG(stack_.empty(), "unclosed JSON containers");
  return out_;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (const char raw_ch : raw) {
    const auto ch = static_cast<unsigned char>(raw_ch);
    switch (ch) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          escaped += buf;
        } else {
          escaped += static_cast<char>(ch);
        }
    }
  }
  return escaped;
}

// --- JsonValue ---

bool JsonValue::as_bool() const {
  SINRCOLOR_CHECK_MSG(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  SINRCOLOR_CHECK_MSG(kind_ == Kind::kNumber, "JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_double();
  const auto i = static_cast<std::int64_t>(v);
  SINRCOLOR_CHECK_MSG(static_cast<double>(i) == v,
                      "JsonValue: number is not integral");
  return i;
}

const std::string& JsonValue::as_string() const {
  SINRCOLOR_CHECK_MSG(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  SINRCOLOR_CHECK_MSG(kind_ == Kind::kArray, "JsonValue: not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  SINRCOLOR_CHECK_MSG(kind_ == Kind::kObject, "JsonValue: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::make_shared<Array>(std::move(v));
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::make_shared<Object>(std::move(v));
  return out;
}

// --- parser ---

namespace {

/// Recursive-descent RFC-8259 parser over a string view. Errors carry the
/// byte offset so a CLI user can locate the problem in their file.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = at() + "trailing characters after the document";
      }
      return false;
    }
    out = std::move(value);
    return true;
  }

 private:
  std::string at() const { return "offset " + std::to_string(pos_) + ": "; }

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = at() + message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue();
        return true;
      default: return parse_number(out);
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return fail(std::string("invalid literal (expected ") + word + ")");
    }
    pos_ += len;
    return true;
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      members[std::move(key)] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}')) return false;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']')) return false;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected a string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rejected:
          // no plan field legitimately needs astral characters).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return fail("invalid number '" + token + "'");
    }
    out = JsonValue::make_number(v);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string* error) {
  return JsonParser(text).parse(out, error);
}

}  // namespace sinrcolor::common
