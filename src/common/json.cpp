#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace sinrcolor::common {

void JsonWriter::prefix_for_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;  // value follows "key":
  }
  if (!stack_.empty()) {
    SINRCOLOR_CHECK_MSG(stack_.back() == Frame::kArray,
                        "object members need a key() first");
    if (!first_in_frame_.back()) out_ += ',';
    first_in_frame_.back() = false;
  }
}

void JsonWriter::begin_object() {
  prefix_for_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_object() {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  SINRCOLOR_CHECK_MSG(!expecting_value_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::begin_array() {
  prefix_for_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_array() {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  SINRCOLOR_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  SINRCOLOR_CHECK_MSG(!expecting_value_, "two keys in a row");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::value(const std::string& v) {
  prefix_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  prefix_for_value();
  SINRCOLOR_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite");
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  prefix_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  prefix_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  prefix_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  prefix_for_value();
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  SINRCOLOR_CHECK_MSG(stack_.empty(), "unclosed JSON containers");
  return out_;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (const char raw_ch : raw) {
    const auto ch = static_cast<unsigned char>(raw_ch);
    switch (ch) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          escaped += buf;
        } else {
          escaped += static_cast<char>(ch);
        }
    }
  }
  return escaped;
}

}  // namespace sinrcolor::common
