#include "common/csv.h"

#include "common/check.h"

namespace sinrcolor::common {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  SINRCOLOR_CHECK(!header.empty());
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  SINRCOLOR_CHECK(cells.size() == width_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace sinrcolor::common
