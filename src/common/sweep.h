// Deterministic parallel trial-sweep engine.
//
// The unit of real work in this repo is not one protocol run but the *trial
// sweep*: every figure the paper's w.h.p. bounds justify is a many-seed
// aggregate, and every experiment harness (bench/x*) runs dozens of
// independent (topology, protocol, seed) trials. Trials are embarrassingly
// parallel; what makes naive parallelism unacceptable here is
// nondeterminism. The engine runs trials concurrently on a common::TaskPool
// while keeping results BYTE-IDENTICAL for every thread count:
//
//   1. Trial i's randomness derives from (base_seed, i) alone — trial_seed()
//      is a splitmix-style derivation, so the stream is independent of how
//      many trials run, which thread claims trial i, and in what order
//      trials execute (tests/sweep_test.cpp pins all three).
//   2. Each trial writes only to its own pre-sized result slot; trials share
//      no mutable state (read-only topology sharing is fine —
//      graph::TopologyCache hands out shared_ptr<const UnitDiskGraph>).
//   3. Reduction happens AFTER the join, in trial-index order, so even
//      order-sensitive float accumulation matches a serial sweep exactly.
//
// Wall-clock timing is the ONLY nondeterministic output (SweepTiming); keep
// it out of byte-compared files — CSV/JSON artifacts must carry only trial
// results. This is the same determinism contract the per-slot resolve shards
// established (docs/PERFORMANCE.md), lifted to the trial level.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/task_pool.h"

namespace sinrcolor::common {

/// Independent child seed for trial `trial_index` of a sweep rooted at
/// `base_seed`. Domain-separated from derive_seed(seed, node) — a trial
/// stream can never collide with a per-node stream of the same seed — and a
/// pure function of its two arguments.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index);

/// What a trial callback learns about its identity. `seed` is
/// trial_seed(base_seed, index); trials must draw all randomness from it.
struct TrialContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// Per-trial wall clock (steady_clock microseconds), in trial order, plus
/// the sweep's overall wall time. Reporting only — never byte-compared.
struct SweepTiming {
  std::vector<std::uint64_t> trial_us;
  std::uint64_t total_us = 0;  ///< whole-sweep wall time (not the trial sum)

  std::uint64_t sum_us() const;
  double mean_us() const;
  /// Exact empirical quantile over trial_us (nearest rank), q in [0, 1].
  std::uint64_t quantile_us(double q) const;
  std::uint64_t p50_us() const { return quantile_us(0.5); }
  std::uint64_t p95_us() const { return quantile_us(0.95); }
  std::uint64_t max_us() const;
};

/// Runs independent trials concurrently and merges in trial order.
/// `threads` = 1 (the default everywhere) executes inline with no pool and
/// no synchronization, so serial sweeps cost nothing extra.
///
/// Thread contract: the engine itself holds no lock-guarded state — both
/// members are set in the constructor and immutable afterwards; all
/// synchronization lives in the owned TaskPool (annotated in task_pool.h).
/// Trials write only to their pre-sized result slot (`results[i]`), which is
/// race-free by construction: slots are disjoint and the pool's job join
/// provides the happens-before edge back to the caller. What the trial
/// callback does is the caller's obligation — share nothing mutable except
/// internally-synchronized sinks (obs::Tracer, obs::Counter,
/// graph::TopologyCache); tests/concurrency_stress_test.cpp runs exactly
/// that pattern under TSan.
class SweepEngine {
 public:
  explicit SweepEngine(std::size_t threads);

  std::size_t thread_count() const { return threads_; }

  /// Invokes fn(TrialContext) for trials 0..count-1, possibly concurrently,
  /// and returns the results indexed by trial. fn must not throw and must
  /// not touch shared mutable state; its result type must be default-
  /// constructible and movable. `timing`, when non-null, receives per-trial
  /// and total wall microseconds.
  template <typename Fn>
  auto run(std::size_t count, std::uint64_t base_seed, Fn&& fn,
           SweepTiming* timing = nullptr)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const TrialContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const TrialContext&>>;
    std::vector<R> results(count);
    if (timing != nullptr) timing->trial_us.assign(count, 0);
    const auto sweep_start = std::chrono::steady_clock::now();
    run_trials(count, [&](std::size_t i) {
      const TrialContext ctx{i, trial_seed(base_seed, i)};
      const auto trial_start = std::chrono::steady_clock::now();
      results[i] = fn(ctx);
      if (timing != nullptr) {
        timing->trial_us[i] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - trial_start)
                .count());
      }
    });
    if (timing != nullptr) {
      timing->total_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - sweep_start)
              .count());
    }
    return results;
  }

 private:
  /// One TaskPool shard per trial (fn runs exactly once per index; only the
  /// trial-to-worker assignment varies between runs, never any result).
  void run_trials(std::size_t count,
                  const std::function<void(std::size_t)>& fn);

  std::size_t threads_;
  std::unique_ptr<TaskPool> pool_;  ///< null when threads_ == 1
};

}  // namespace sinrcolor::common
