// Tiny command-line flag parser used by examples and experiment binaries.
// Supports "--name=value" and "--name value"; unknown flags are an error so
// typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sinrcolor::common {

class Cli {
 public:
  /// Parses argv; aborts with a usage message on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& default_value) const;
  std::int64_t get_int(const std::string& name, std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  /// get_int / get_double with a validated lower bound: a value below `min`
  /// (e.g. "--threads 0", a negative slot count) exits with the usage error
  /// instead of misbehaving deep inside a run. The default itself is not
  /// checked — callers pass defaults that satisfy their own bound.
  std::int64_t get_int_at_least(const std::string& name,
                                std::int64_t default_value,
                                std::int64_t min) const;
  double get_double_at_least(const std::string& name, double default_value,
                             double min) const;
  bool get_bool(const std::string& name, bool default_value) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t default_value) const;

  /// Names consumed via get*(); call after all reads to reject unknown flags.
  void reject_unknown() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace sinrcolor::common
