#include "common/stats.h"

#include <limits>
#include <numeric>

namespace sinrcolor::common {

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Samples::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Samples::quantile(double q) const {
  SINRCOLOR_CHECK(q >= 0.0 && q <= 1.0);
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto n = values_.size();
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(n)),
                       static_cast<double>(n)));
  return values_[rank == 0 ? 0 : rank - 1];
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  SINRCOLOR_CHECK(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;

  const double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace sinrcolor::common
