// Minimal CSV writer so experiment output can be post-processed/plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sinrcolor::common {

/// Writes rows of a CSV file with proper quoting. The file is created on
/// construction and flushed on destruction (RAII).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  bool ok() const { return static_cast<bool>(out_); }

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace sinrcolor::common
