#include "common/sweep.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sinrcolor::common {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  // Domain tag "trial\0\0\0" separates sweep-level streams from the per-node
  // streams derive_seed(seed, node_id) hands out inside each trial: even if a
  // trial index collides numerically with a node id, the tagged base differs,
  // so the two splitmix walks are unrelated.
  constexpr std::uint64_t kTrialDomain = 0x0000006c61697274ULL;  // "trial"
  return derive_seed(base_seed ^ kTrialDomain, trial_index);
}

std::uint64_t SweepTiming::sum_us() const {
  std::uint64_t sum = 0;
  for (std::uint64_t us : trial_us) sum += us;
  return sum;
}

double SweepTiming::mean_us() const {
  if (trial_us.empty()) return 0.0;
  return static_cast<double>(sum_us()) / static_cast<double>(trial_us.size());
}

std::uint64_t SweepTiming::quantile_us(double q) const {
  if (trial_us.empty()) return 0;
  SINRCOLOR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::uint64_t> sorted = trial_us;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::uint64_t SweepTiming::max_us() const {
  if (trial_us.empty()) return 0;
  return *std::max_element(trial_us.begin(), trial_us.end());
}

SweepEngine::SweepEngine(std::size_t threads)
    : threads_(std::max<std::size_t>(threads, 1)) {
  if (threads_ > 1) pool_ = std::make_unique<TaskPool>(threads_);
}

void SweepEngine::run_trials(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->run_shards(count, fn);
}

}  // namespace sinrcolor::common
