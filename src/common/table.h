// Console table rendering for experiment harnesses. Benches print the same
// rows/series the paper's claims describe; this keeps them aligned/readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sinrcolor::common {

/// A simple right-aligned text table. Usage:
///   Table t({"n", "Delta", "slots"});
///   t.add_row({"64", "12", "5321"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }
  void print(std::ostream& os) const;

  /// Writes header + rows as CSV (for plotting); returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Formatting helpers for cells.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between experiment tables.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace sinrcolor::common
