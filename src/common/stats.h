// Streaming statistics accumulators used by the experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace sinrcolor::common {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. Use for per-run metrics
/// (node decision times, frame delays) where sample counts are modest.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact empirical quantile, q in [0, 1]; nearest-rank method.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Ordinary least squares fit y = a + b*x; reports slope, intercept and R².
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace sinrcolor::common
