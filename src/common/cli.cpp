#include "common/cli.h"

#include <cstdio>
#include <cstdlib>

namespace sinrcolor::common {
namespace {

[[noreturn]] void usage_error(const std::string& program, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", program.c_str(), message.c_str());
  std::exit(2);
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      usage_error(program_, "positional arguments are not supported: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  consumed_[name] = true;
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& default_value) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t default_value) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    usage_error(program_, "flag --" + name + " expects an integer, got '" + raw + "'");
  }
  return v;
}

double Cli::get_double(const std::string& name, double default_value) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    usage_error(program_, "flag --" + name + " expects a number, got '" + raw + "'");
  }
  return v;
}

std::int64_t Cli::get_int_at_least(const std::string& name,
                                   std::int64_t default_value,
                                   std::int64_t min) const {
  const std::int64_t v = get_int(name, default_value);
  if (has(name) && v < min) {
    usage_error(program_, "flag --" + name + " must be at least " +
                              std::to_string(min) + ", got " +
                              std::to_string(v));
  }
  return v;
}

double Cli::get_double_at_least(const std::string& name, double default_value,
                                double min) const {
  const double v = get_double(name, default_value);
  if (has(name) && v < min) {
    char msg[128];
    std::snprintf(msg, sizeof msg, "flag --%s must be at least %g, got %g",
                  name.c_str(), min, v);
    usage_error(program_, msg);
  }
  return v;
}

bool Cli::get_bool(const std::string& name, bool default_value) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return default_value;
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  usage_error(program_, "flag --" + name + " expects a boolean, got '" + raw + "'");
}

std::uint64_t Cli::get_seed(const std::string& name, std::uint64_t default_value) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return default_value;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    usage_error(program_, "flag --" + name + " expects a seed, got '" + raw + "'");
  }
  return v;
}

void Cli::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (consumed_.find(name) == consumed_.end()) {
      usage_error(program_, "unknown flag --" + name);
    }
  }
}

}  // namespace sinrcolor::common
