// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows from a single 64-bit seed. Per-node /
// per-purpose streams are derived with SplitMix64 so that adding a consumer
// never perturbs the stream of another (important for reproducible
// experiments across code revisions). The core generator is xoshiro256++,
// which is much faster than std::mt19937_64 and has identical output on every
// platform (std distributions are not portable; ours are hand-rolled).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace sinrcolor::common {

/// SplitMix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent child seed from (seed, stream_id).
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream_id) {
  std::uint64_t s = seed ^ (0x6a09e667f3bcc909ULL + stream_id * 0x3c6ef372fe94f82bULL);
  // Two splitmix rounds to decorrelate nearby stream ids.
  (void)splitmix64(s);
  return splitmix64(s);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) {
    SINRCOLOR_CHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SINRCOLOR_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Derive a child generator with an independent stream.
  Rng fork(std::uint64_t stream_id) {
    return Rng{derive_seed((*this)(), stream_id)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle with our deterministic generator.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const auto n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i + 1));
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace sinrcolor::common
