#include "common/alloc_counter.h"

#include <cstdlib>
#include <new>

// The counting operator new/delete replacements live in this translation
// unit. Referencing thread_heap_allocs() (the simulator does) pulls the
// object file out of the static library, and with it the replacements — no
// separate registration step needed.

namespace sinrcolor::common {

#ifdef SINRCOLOR_COUNT_ALLOCS

namespace {
// Zero-initialized before any dynamic initialization runs, so counting is
// correct even for allocations made during static init.
thread_local std::uint64_t t_heap_allocs = 0;
}  // namespace

bool alloc_counting_enabled() { return true; }
std::uint64_t thread_heap_allocs() { return t_heap_allocs; }

namespace detail {
inline void* counted_alloc(std::size_t size) {
  ++t_heap_allocs;
  // malloc(0) may return null legally; operator new must not.
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++t_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace detail

#else  // !SINRCOLOR_COUNT_ALLOCS

bool alloc_counting_enabled() { return false; }
std::uint64_t thread_heap_allocs() { return 0; }

#endif

}  // namespace sinrcolor::common

#ifdef SINRCOLOR_COUNT_ALLOCS

// Replaceable global allocation functions ([new.delete]): plain, array,
// nothrow and aligned forms all route through the counters above. Every
// delete form frees with std::free, which is valid for both malloc and
// posix_memalign storage.

void* operator new(std::size_t size) {
  return sinrcolor::common::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return sinrcolor::common::detail::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return sinrcolor::common::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return sinrcolor::common::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return sinrcolor::common::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return sinrcolor::common::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // SINRCOLOR_COUNT_ALLOCS
