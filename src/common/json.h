// Minimal JSON writer (no DOM, no parsing): experiment and run results are
// exported for downstream tooling. Emits valid RFC-8259 documents; numbers
// are finite doubles/integers, strings are escaped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sinrcolor::common {

/// Streaming JSON builder. Usage:
///   JsonWriter json;
///   json.begin_object();
///   json.key("n"); json.value(42);
///   json.key("colors"); json.begin_array(); json.value(1); ... json.end_array();
///   json.end_object();
///   std::string doc = json.str();
/// Nesting is validated with asserts; values/keys must alternate correctly.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value/container.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// Convenience: key + value.
  template <typename T>
  void field(const std::string& name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// The finished document; only valid once all containers are closed.
  const std::string& str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void prefix_for_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool expecting_value_ = false;  // a key was just written
};

}  // namespace sinrcolor::common
