// Minimal JSON support: a streaming writer (experiment and run results are
// exported for downstream tooling) and a small recursive-descent parser
// (declarative inputs such as fault plans are read back in). The writer
// emits valid RFC-8259 documents; numbers are finite doubles/integers,
// strings are escaped. The parser accepts strict RFC-8259 (no comments, no
// trailing commas) and reports errors with a byte offset instead of
// aborting, so malformed user-supplied files fail with a message.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sinrcolor::common {

/// Streaming JSON builder. Usage:
///   JsonWriter json;
///   json.begin_object();
///   json.key("n"); json.value(42);
///   json.key("colors"); json.begin_array(); json.value(1); ... json.end_array();
///   json.end_object();
///   std::string doc = json.str();
/// Nesting is validated with asserts; values/keys must alternate correctly.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value/container.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// Convenience: key + value.
  template <typename T>
  void field(const std::string& name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// The finished document; only valid once all containers are closed.
  const std::string& str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void prefix_for_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool expecting_value_ = false;  // a key was just written
};

/// Parsed JSON document node. Objects keep their members in a sorted map
/// (key order is irrelevant to every consumer; iteration is deterministic).
/// All numbers are held as double — the integer accessors round-trip exactly
/// up to 2^53, far beyond any slot count or node id this repo handles.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each aborts (CHECK) when the kind does not match —
  /// callers validate kinds first (FaultPlan::from_json does).
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< as_double, CHECKed integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; null when absent or when this is not an object.
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirection keeps JsonValue movable/copyable without recursive layout.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document (with optional surrounding whitespace). Returns
/// false and fills `error` (when non-null) with "offset N: message" on
/// malformed input; `out` is untouched in that case.
bool parse_json(const std::string& text, JsonValue& out, std::string* error);

}  // namespace sinrcolor::common
