// Narrow-contract checking utilities.
//
// SINRCOLOR_CHECK is an always-on invariant check (simulator correctness is a
// deliverable of this reproduction, so we do not compile checks out in release
// builds); SINRCOLOR_DCHECK is a debug-only variant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sinrcolor::common {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace sinrcolor::common

#define SINRCOLOR_CHECK(expr)                                                     \
  do {                                                                            \
    if (!(expr)) ::sinrcolor::common::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SINRCOLOR_CHECK_MSG(expr, msg)                                              \
  do {                                                                              \
    if (!(expr)) ::sinrcolor::common::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define SINRCOLOR_DCHECK(expr) \
  do {                         \
  } while (false)
#else
#define SINRCOLOR_DCHECK(expr) SINRCOLOR_CHECK(expr)
#endif
