// Deterministic fork-join worker pool for per-slot parallel resolves and the
// tiled slot engine.
//
// A job is a fixed number of independent shards. Work is never stolen or
// re-partitioned: callers split their data into contiguous shards themselves
// and shard s is fully processed by exactly one fn(s) call, so a 1-thread
// and an N-thread run perform identical per-shard arithmetic, and any merge
// done in shard order afterwards is byte-identical. Workers claim shard
// indices from a shared counter — only the ASSIGNMENT of shard to worker
// varies between runs, never the work or the merged result
// (tests/determinism_test.cpp holds the simulator to this).
//
// run_shards takes the job by const reference and stores only a pointer for
// the workers, so a steady-state caller should keep ONE persistent
// std::function alive and pass it every time (the simulator's tile_job_
// pattern): rebuilding a capturing lambda into a std::function per call can
// heap-allocate past the small-buffer optimization and break zero-allocation
// loops. The pool is not reentrant — a shard function must never call
// run_shards on the same pool; nested parallelism uses separate pools (the
// simulator's slot pool and the interference model's resolve pool are
// disjoint and never nest: resolve is dispatched from the slot-loop thread,
// outside any tile shard).
//
// Lock discipline (checked by clang -Wthread-safety via the annotations
// below, and hammered under TSan by tests/concurrency_stress_test.cpp):
// every mutable member is guarded by mutex_; shard functions run with the
// mutex RELEASED (drain_job's lock-passing contract), reading the job
// pointer into a local while still locked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_safety.h"

namespace sinrcolor::common {

class TaskPool {
 public:
  /// `threads` is clamped to ≥ 1. A 1-thread pool spawns no workers and
  /// run_shards executes inline, so the default configuration costs nothing.
  /// The calling thread always participates in a job, so `threads` counts it
  /// (threads = 4 ⇒ 3 workers + the caller).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Invokes fn(s) exactly once for every shard s in [0, shards), possibly
  /// concurrently, and blocks until every call returned. fn must not throw;
  /// shards must not share mutable state. Not reentrant.
  void run_shards(std::size_t shards,
                  const std::function<void(std::size_t)>& fn)
      SINRCOLOR_EXCLUDES(mutex_);

  /// Contiguous [begin, end) range of shard `s` when `total` items are split
  /// into `shards` near-equal chunks (the remainder spreads over the first
  /// chunks). Pure function — the partition never depends on timing.
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                         std::size_t shards,
                                                         std::size_t s);

 private:
  void worker_loop() SINRCOLOR_EXCLUDES(mutex_);
  /// Claims and runs shards until none remain. `lock` owns mutex_ on entry
  /// and exit but releases it around each fn(s) call — the caller's scoped
  /// guard is threaded through so the unlock/relock stays visible to it.
  void drain_job(MutexLock& lock) SINRCOLOR_REQUIRES(mutex_);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(std::size_t)>* job_ SINRCOLOR_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_shards_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  std::size_t next_shard_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  std::size_t remaining_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  bool stop_ SINRCOLOR_GUARDED_BY(mutex_) = false;
};

}  // namespace sinrcolor::common
