// Thread-local heap-allocation counter behind the zero-allocation slot-loop
// contract (docs/PERFORMANCE.md, "Zero-allocation slot loop").
//
// When the build replaces the global allocation functions
// (SINRCOLOR_COUNT_ALLOCS, on by default, auto-disabled under the
// sanitizers), every operator new on a thread bumps that thread's counter.
// The simulator reads the counter at slot boundaries to attribute
// allocations to slots: a steady-state slot must observe a delta of zero.
// The counter is a plain thread_local increment — cheap enough to leave on
// in release builds — and reading it never allocates, so instrumented and
// uninstrumented runs execute identical protocol work (the counter can not
// perturb results; it only observes).
//
// When the counting build is off, thread_heap_allocs() is constant 0 and
// every derived metric reports "no allocations observed"; gate assertions on
// alloc_counting_enabled().
#pragma once

#include <cstdint>

namespace sinrcolor::common {

/// True when this build counts heap allocations (SINRCOLOR_COUNT_ALLOCS).
bool alloc_counting_enabled();

/// Heap allocations performed by the CALLING thread since it started
/// (monotone; 0 forever when the counting build is off). Read it before and
/// after a region and subtract — deltas are immune to other threads.
std::uint64_t thread_heap_allocs();

}  // namespace sinrcolor::common
