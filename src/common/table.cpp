#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"
#include "common/csv.h"

namespace sinrcolor::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SINRCOLOR_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SINRCOLOR_CHECK_MSG(cells.size() == header_.size(),
                      "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << " |\n";
  };

  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

bool Table::write_csv(const std::string& path) const {
  CsvWriter csv(path, header_);
  if (!csv.ok()) return false;
  for (const auto& row : rows_) csv.add_row(row);
  return true;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace sinrcolor::common
