#include "common/rng.h"

// Header-only; this TU exists so the module has a linkable archive member and
// a place for future non-inline helpers.
namespace sinrcolor::common {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);

}  // namespace sinrcolor::common
