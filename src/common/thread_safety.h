// Clang thread-safety-analysis capability macros (no-ops elsewhere).
//
// The parallel engine's byte-identity claim rests on a small, explicit
// concurrency surface: common::TaskPool, common::SweepEngine,
// graph::TopologyCache, the obs sinks and faults::FaultEngine. These macros
// let each class declare its lock discipline in the type system —
// which mutex guards which field, which private helpers require the lock —
// so `clang++ -Wthread-safety -Wthread-safety-beta` (the CI thread-safety
// job, under SINRCOLOR_WERROR) rejects any access that bypasses it, instead
// of leaving the discipline to hand audits. GCC and MSVC see empty macros
// and compile the identical code.
//
// Use the annotated primitives in common/mutex.h (common::Mutex,
// common::MutexLock, common::CondVar) rather than std::mutex directly:
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes, so
// the analysis cannot see them (sinrlint R6 enforces this tree-wide).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SINRCOLOR_NO_THREAD_SAFETY_ANNOTATIONS)
#define SINRCOLOR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SINRCOLOR_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// On a class: instances are capabilities (lockable objects). `x` is the
/// capability kind shown in diagnostics, e.g. "mutex".
#define SINRCOLOR_CAPABILITY(x) SINRCOLOR_THREAD_ANNOTATION_(capability(x))

/// On a class: RAII object that acquires a capability at construction and
/// releases it at destruction (common::MutexLock).
#define SINRCOLOR_SCOPED_CAPABILITY SINRCOLOR_THREAD_ANNOTATION_(scoped_lockable)

/// On a data member: reads and writes require holding `x`.
#define SINRCOLOR_GUARDED_BY(x) SINRCOLOR_THREAD_ANNOTATION_(guarded_by(x))

/// On a pointer member: dereferences require holding `x` (the pointer itself
/// is not guarded).
#define SINRCOLOR_PT_GUARDED_BY(x) SINRCOLOR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// On a function: callers must hold the listed capabilities on entry (and
/// still hold them on exit).
#define SINRCOLOR_REQUIRES(...) \
  SINRCOLOR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// On a function: acquires the listed capabilities (held on exit, not entry).
#define SINRCOLOR_ACQUIRE(...) \
  SINRCOLOR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// On a function: releases the listed capabilities (held on entry, not exit).
#define SINRCOLOR_RELEASE(...) \
  SINRCOLOR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// On a function returning bool: acquires the capability iff the return
/// value equals the first argument.
#define SINRCOLOR_TRY_ACQUIRE(...) \
  SINRCOLOR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the listed capabilities (deadlock
/// guard for functions that acquire them internally).
#define SINRCOLOR_EXCLUDES(...) \
  SINRCOLOR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// On a function: returns a reference to the capability guarding its result.
#define SINRCOLOR_RETURN_CAPABILITY(x) \
  SINRCOLOR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function body. Every use must
/// carry a comment explaining why the pattern is beyond the analysis (e.g.
/// TaskPool::drain_job's lock-passing dance around job execution).
#define SINRCOLOR_NO_THREAD_SAFETY_ANALYSIS \
  SINRCOLOR_THREAD_ANNOTATION_(no_thread_safety_analysis)
