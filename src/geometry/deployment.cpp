#include "geometry/deployment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geometry/grid_index.h"

namespace sinrcolor::geometry {
namespace {

// Coincident radios are physically meaningless (zero distance ⇒ unbounded
// received power), so generators must never emit exact duplicates. Clamping
// to the world square (clustered/grid jitter) is the one code path that can
// collide; nudge duplicates apart deterministically.
void deduplicate(std::vector<Point>& points, double side, common::Rng& rng) {
  for (int pass = 0; pass < 8; ++pass) {
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[a].x != points[b].x ? points[a].x < points[b].x
                                        : points[a].y < points[b].y;
    });
    bool any = false;
    for (std::size_t k = 1; k < order.size(); ++k) {
      Point& p = points[order[k]];
      if (p == points[order[k - 1]]) {
        const double eps = side * 1e-9 * static_cast<double>(1 + pass);
        p.x = std::clamp(p.x + rng.uniform(-eps, eps), 0.0, side);
        p.y = std::clamp(p.y + rng.uniform(-eps, eps), 0.0, side);
        any = true;
      }
    }
    if (!any) return;
  }
}

}  // namespace

Deployment uniform_deployment(std::size_t n, double side, common::Rng& rng) {
  SINRCOLOR_CHECK(side > 0.0);
  Deployment d;
  d.side = side;
  d.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.points.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  deduplicate(d.points, side, rng);
  return d;
}

Deployment grid_deployment(std::size_t n, double side, double jitter,
                           common::Rng& rng) {
  SINRCOLOR_CHECK(side > 0.0);
  SINRCOLOR_CHECK(jitter >= 0.0);
  Deployment d;
  d.side = side;
  d.points.reserve(n);
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const double step = side / static_cast<double>(cols);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = i / cols;
    const auto col = i % cols;
    double x = (static_cast<double>(col) + 0.5) * step;
    double y = (static_cast<double>(row) + 0.5) * step;
    if (jitter > 0.0) {
      x += rng.uniform(-jitter, jitter);
      y += rng.uniform(-jitter, jitter);
    }
    d.points.push_back({std::clamp(x, 0.0, side), std::clamp(y, 0.0, side)});
  }
  deduplicate(d.points, side, rng);
  return d;
}

Deployment clustered_deployment(std::size_t n, double side, std::size_t clusters,
                                double spread, common::Rng& rng) {
  SINRCOLOR_CHECK(side > 0.0);
  SINRCOLOR_CHECK(clusters > 0);
  SINRCOLOR_CHECK(spread > 0.0);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (std::size_t i = 0; i < clusters; ++i) {
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  Deployment d;
  d.side = side;
  d.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.below(clusters)];
    // Uniform in disc of radius `spread` via rejection-free polar sampling.
    const double r = spread * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    d.points.push_back({std::clamp(c.x + r * std::cos(theta), 0.0, side),
                        std::clamp(c.y + r * std::sin(theta), 0.0, side)});
  }
  deduplicate(d.points, side, rng);
  return d;
}

Deployment line_deployment(std::size_t n, double spacing) {
  SINRCOLOR_CHECK(spacing > 0.0);
  Deployment d;
  d.side = spacing * static_cast<double>(n > 0 ? n : 1);
  d.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.points.push_back({spacing * static_cast<double>(i), 0.0});
  }
  return d;
}

Deployment poisson_disk_deployment(std::size_t n, double side, double min_spacing,
                                   common::Rng& rng) {
  SINRCOLOR_CHECK(side > 0.0);
  SINRCOLOR_CHECK(min_spacing > 0.0);
  Deployment d;
  d.side = side;
  // Dart throwing with a grid accelerator; cap attempts so saturated squares
  // terminate (the caller observes the reduced size).
  GridIndex index(side, min_spacing);
  const std::size_t max_attempts = 64 * std::max<std::size_t>(n, 1);
  std::size_t attempts = 0;
  while (d.points.size() < n && attempts < max_attempts) {
    ++attempts;
    const Point candidate{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    bool clear = true;
    index.for_each_within(candidate, min_spacing,
                          [&](std::size_t /*id*/, const Point& /*p*/) {
                            clear = false;
                          });
    if (clear) {
      index.insert(d.points.size(), candidate);
      d.points.push_back(candidate);
    }
  }
  return d;
}

}  // namespace sinrcolor::geometry
