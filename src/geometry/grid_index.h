// Uniform-grid spatial index over [0, side]^2.
//
// Radius queries ("all points within r of q") dominate both unit-disk-graph
// construction and per-slot SINR bookkeeping; bucketing by cells of width
// `cell` makes them O(points in the (⌈r/cell⌉)-ring of cells).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "geometry/point.h"

namespace sinrcolor::geometry {

class GridIndex {
 public:
  /// `side` is the extent of the square world; `cell` the bucket width
  /// (typically the dominant query radius).
  GridIndex(double side, double cell);

  /// Builds an index over an existing point set (ids are indices into it).
  GridIndex(const std::vector<Point>& points, double side, double cell);

  void insert(std::size_t id, const Point& p);
  std::size_t size() const { return count_; }

  /// Invokes fn(id, point) for every indexed point with δ(q, point) ≤ r.
  /// (A point exactly at distance r is included, matching δ(u,v) ≤ R_T.)
  template <typename Fn>
  void for_each_within(const Point& q, double r, Fn&& fn) const {
    SINRCOLOR_DCHECK(r >= 0.0);
    const double r_sq = r * r;
    const long lo_cx = cell_coord(q.x - r);
    const long hi_cx = cell_coord(q.x + r);
    const long lo_cy = cell_coord(q.y - r);
    const long hi_cy = cell_coord(q.y + r);
    for (long cy = lo_cy; cy <= hi_cy; ++cy) {
      for (long cx = lo_cx; cx <= hi_cx; ++cx) {
        const auto& bucket = buckets_[bucket_of(cx, cy)];
        for (const auto& entry : bucket) {
          if (distance_sq(q, entry.point) <= r_sq) {
            fn(entry.id, entry.point);
          }
        }
      }
    }
  }

  /// All ids within r of q (convenience wrapper; allocation per call).
  std::vector<std::size_t> within(const Point& q, double r) const;

  /// Heap footprint of the index (bucket headers + entry capacities), feeding
  /// the simulator's bytes/node accounting.
  std::size_t memory_bytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& bucket : buckets_) {
      bytes += bucket.capacity() * sizeof(Entry);
    }
    return bytes;
  }

 private:
  struct Entry {
    std::size_t id;
    Point point;
  };

  long cell_coord(double v) const;
  std::size_t bucket_of(long cx, long cy) const;

  double cell_;
  long cells_per_side_;
  std::size_t count_ = 0;
  std::vector<std::vector<Entry>> buckets_;
};

}  // namespace sinrcolor::geometry
