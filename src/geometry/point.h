// 2-D Euclidean points. The paper places nodes arbitrarily in the plane and
// all model quantities (R_T, R_I, SINR path loss) are functions of pairwise
// Euclidean distance.
#pragma once

#include <cmath>

namespace sinrcolor::geometry {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
};

/// Squared Euclidean distance; prefer this in hot paths (no sqrt).
constexpr double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distance_sq(a, b));
}

/// δ(u,v) ≤ r, computed without sqrt.
constexpr bool within(const Point& a, const Point& b, double r) {
  return distance_sq(a, b) <= r * r;
}

}  // namespace sinrcolor::geometry
