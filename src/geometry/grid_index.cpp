#include "geometry/grid_index.h"

#include <algorithm>
#include <cmath>

namespace sinrcolor::geometry {

GridIndex::GridIndex(double side, double cell) : cell_(cell) {
  SINRCOLOR_CHECK(side > 0.0);
  SINRCOLOR_CHECK(cell > 0.0);
  cells_per_side_ =
      std::max<long>(1, static_cast<long>(std::ceil(side / cell)));
  buckets_.resize(static_cast<std::size_t>(cells_per_side_ * cells_per_side_));
}

GridIndex::GridIndex(const std::vector<Point>& points, double side, double cell)
    : GridIndex(side, cell) {
  for (std::size_t i = 0; i < points.size(); ++i) insert(i, points[i]);
}

void GridIndex::insert(std::size_t id, const Point& p) {
  buckets_[bucket_of(cell_coord(p.x), cell_coord(p.y))].push_back({id, p});
  ++count_;
}

long GridIndex::cell_coord(double v) const {
  const long c = static_cast<long>(std::floor(v / cell_));
  return std::clamp<long>(c, 0, cells_per_side_ - 1);
}

std::size_t GridIndex::bucket_of(long cx, long cy) const {
  SINRCOLOR_DCHECK(cx >= 0 && cx < cells_per_side_);
  SINRCOLOR_DCHECK(cy >= 0 && cy < cells_per_side_);
  return static_cast<std::size_t>(cy * cells_per_side_ + cx);
}

std::vector<std::size_t> GridIndex::within(const Point& q, double r) const {
  std::vector<std::size_t> result;
  for_each_within(q, r, [&](std::size_t id, const Point&) { result.push_back(id); });
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace sinrcolor::geometry
