// Node deployment generators.
//
// The paper assumes arbitrary placement in the plane; experiments use a few
// canonical random and structured deployments so that claims can be checked
// both on "nice" (uniform) and adversarial (clustered, linear) topologies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"

namespace sinrcolor::geometry {

/// An immutable set of node positions inside [0, side] x [0, side].
struct Deployment {
  std::vector<Point> points;
  double side = 0.0;

  std::size_t size() const { return points.size(); }
};

/// n points i.i.d. uniform in the square [0, side]^2.
Deployment uniform_deployment(std::size_t n, double side, common::Rng& rng);

/// sqrt(n) x sqrt(n)-ish grid with per-point uniform jitter in
/// [-jitter, jitter]^2 (clamped to the square). jitter = 0 gives an exact grid.
Deployment grid_deployment(std::size_t n, double side, double jitter,
                           common::Rng& rng);

/// `clusters` cluster centers uniform in the square; each point is placed
/// Gaussian-ish (uniform-in-disc of radius `spread`) around a random center.
/// Produces the dense-hotspot topologies that stress the Δ-dependence.
Deployment clustered_deployment(std::size_t n, double side, std::size_t clusters,
                                double spread, common::Rng& rng);

/// n points on a horizontal line with `spacing` between consecutive points
/// (collinear chain; an adversarial case for disc-packing arguments).
Deployment line_deployment(std::size_t n, double spacing);

/// Poisson-disk ("blue noise") deployment: points uniform in the square but
/// no two closer than `min_spacing` (dart throwing). The returned size can be
/// smaller than `n` if the square saturates.
Deployment poisson_disk_deployment(std::size_t n, double side, double min_spacing,
                                   common::Rng& rng);

}  // namespace sinrcolor::geometry
