#include "faults/fault_engine.h"

#include "common/check.h"
#include "common/rng.h"
#include "geometry/point.h"

namespace sinrcolor::faults {
namespace {

/// Domain tag of the engine's drop stream (cf. 0xdead failures, 0x901d
/// joins, 0xbeef wakeups in the drivers — distinct by construction).
constexpr std::uint64_t kDropStream = 0xfa017ULL;

/// Uniform [0,1) draw as a pure hash of the key — no generator state, so
/// the answer for a given (seed, slot, link, window) never depends on
/// evaluation order or thread count.
double hash_uniform(std::uint64_t seed, radio::Slot slot, graph::NodeId sender,
                    graph::NodeId listener, std::size_t window) {
  std::uint64_t state =
      seed ^ (static_cast<std::uint64_t>(slot) * 0xd1342543de82ef95ULL) ^
      ((static_cast<std::uint64_t>(sender) << 32 |
        static_cast<std::uint64_t>(listener)) *
       0xaf251af3b0f025b5ULL) ^
      (static_cast<std::uint64_t>(window) * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t bits = common::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool in_window(radio::Slot slot, radio::Slot from, radio::Slot to) {
  return slot >= from && (to == -1 || slot <= to);
}

}  // namespace

FaultEngine::FaultEngine(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      drop_seed_(common::derive_seed(common::derive_seed(seed, kDropStream),
                                     plan_.seed_salt)) {
  active_jammers_.reserve(plan_.jammers.size());
}

void FaultEngine::install(radio::Simulator& sim) {
  const std::string problem = plan_.validate(sim.graph().size());
  SINRCOLOR_CHECK_MSG(problem.empty(), "invalid fault plan (validate first)");
  for (const JammerSpec& j : plan_.jammers) {
    for (graph::NodeId v = 0; v < sim.graph().size(); ++v) {
      SINRCOLOR_CHECK_MSG(
          geometry::distance_sq(j.position, sim.graph().position(v)) > 0.0,
          "jammer coincides with a node position");
    }
  }
  for (const CrashEvent& c : plan_.crashes) {
    sim.set_failure_slot(c.node, c.slot);
    if (c.restart != -1) sim.set_join_slot(c.node, c.restart);
  }
  sim.set_fault_injector(this);
}

const radio::ChannelDisturbance* FaultEngine::channel_disturbance(
    radio::Slot slot) {
  double factor = 1.0;
  for (const NoiseWindow& w : plan_.noise) {
    if (in_window(slot, w.from, w.to)) factor *= w.factor;
  }
  active_jammers_.clear();
  for (const JammerSpec& j : plan_.jammers) {
    if (j.active(slot)) {
      active_jammers_.push_back({j.position, j.power, j.radius});
    }
  }
  if (factor == 1.0 && active_jammers_.empty()) return nullptr;
  if (factor != 1.0) ++stats_.noisy_slots;
  stats_.jammer_slots += active_jammers_.size();
  disturbance_.noise_factor = factor;
  disturbance_.jammers = active_jammers_;
  return &disturbance_;
}

bool FaultEngine::receiver_disabled(radio::Slot slot, graph::NodeId v) const {
  for (const DeafnessWindow& d : plan_.deafness) {
    if (d.node == v && in_window(slot, d.from, d.to)) return true;
  }
  return false;
}

bool FaultEngine::drop_delivery(radio::Slot slot, graph::NodeId sender,
                                graph::NodeId listener) const {
  for (std::size_t i = 0; i < plan_.drops.size(); ++i) {
    const DropWindow& w = plan_.drops[i];
    if (!in_window(slot, w.from, w.to) || w.probability <= 0.0) continue;
    if (hash_uniform(drop_seed_, slot, sender, listener, i) < w.probability) {
      ++stats_.dropped_deliveries;
      return true;
    }
  }
  return false;
}

}  // namespace sinrcolor::faults
