#include "faults/invariant_monitor.h"

#include <algorithm>

#include "common/check.h"
#include "geometry/point.h"
#include "obs/observation.h"

namespace sinrcolor::faults {
namespace {

std::uint64_t pack_edge(graph::NodeId u, graph::NodeId v) {
  if (u > v) std::swap(u, v);
  return static_cast<std::uint64_t>(u) << 32 | v;
}

}  // namespace

const char* InvariantMonitor::check_name(std::size_t check) {
  switch (check) {
    case 0: return "legality";
    case 1: return "tx_independence";
    case 2: return "feasibility";
    default: return "?";
  }
}

void InvariantMonitor::note_violation(std::size_t check, radio::Slot slot) {
  if (check_first_[check] < 0) check_first_[check] = slot;
  check_last_[check] = slot;
}

InvariantMonitor::InvariantMonitor(const graph::UnitDiskGraph& graph,
                                   ColorFn color, Options options)
    : graph_(graph), color_(std::move(color)), options_(options) {
  SINRCOLOR_CHECK(color_ != nullptr);
  feasibility_flagged_.assign(graph_.size(), 0);
}

InvariantMonitor::InvariantMonitor(const graph::UnitDiskGraph& graph,
                                   ColorFn color)
    : InvariantMonitor(graph, std::move(color), Options{}) {}

void InvariantMonitor::attach(radio::Simulator& sim) {
  SINRCOLOR_CHECK_MSG(sim_ == nullptr, "monitor already attached");
  SINRCOLOR_CHECK(&sim.graph() == &graph_);
  sim_ = &sim;
  sim.add_end_observer([this](radio::Slot slot) { scan_end_of_slot(slot); });
  if (options_.check_tx_independence) {
    sim.add_observer(
        [this](radio::Slot slot, std::span<const radio::TxRecord> txs) {
          scan_transmissions(slot, txs);
        });
  }
}

void InvariantMonitor::scan_end_of_slot(radio::Slot slot) {
  last_slot_ = slot;
  obs::RunObservation* observation = sim_->observation();

  if (options_.check_legality) {
    // Pass 1 — open an episode for every conflicting live edge not already
    // tracked. The scan is O(m) per slot; the monitor is an opt-in
    // diagnostic, not part of the protocol's hot path.
    for (graph::NodeId v = 0; v < graph_.size(); ++v) {
      if (sim_->node_dead(v)) continue;
      const graph::Color mine = color_(v);
      if (mine == graph::kUncolored) continue;
      for (graph::NodeId u : graph_.neighbors(v)) {
        if (u <= v || sim_->node_dead(u) || color_(u) != mine) continue;
        const auto [it, fresh] = open_.emplace(pack_edge(v, u), slot);
        if (fresh) {
          ++legality_violations_;
          note_violation(0, slot);
          if (observation != nullptr) {
            observation->trace.record(slot,
                                      obs::EventKind::kInvariantViolation, v,
                                      u, 0, static_cast<std::int64_t>(mine));
          }
        }
      }
    }
    // Pass 2 — close episodes whose edge no longer conflicts (one side was
    // repaired to a different color, reverted to undecided, or died).
    for (auto it = open_.begin(); it != open_.end();) {
      const auto u = static_cast<graph::NodeId>(it->first >> 32);
      const auto v = static_cast<graph::NodeId>(it->first & 0xffffffffULL);
      const bool conflicting = !sim_->node_dead(u) && !sim_->node_dead(v) &&
                               color_(u) != graph::kUncolored &&
                               color_(u) == color_(v);
      if (conflicting) {
        ++it;
        continue;
      }
      const radio::Slot duration = slot - it->second;
      durations_.push_back(duration);
      if (observation != nullptr) {
        observation->trace.record(slot, obs::EventKind::kConflictRepaired, u,
                                  v, 0, static_cast<std::int64_t>(duration));
      }
      it = open_.erase(it);
    }
  }

  if (options_.max_color >= 0) {
    for (graph::NodeId v = 0; v < graph_.size(); ++v) {
      if (feasibility_flagged_[v] != 0 || sim_->node_dead(v)) continue;
      const graph::Color c = color_(v);
      if (c == graph::kUncolored || c <= options_.max_color) continue;
      feasibility_flagged_[v] = 1;
      ++feasibility_violations_;
      note_violation(2, slot);
      if (observation != nullptr) {
        observation->trace.record(slot, obs::EventKind::kInvariantViolation,
                                  v, obs::kNoNode, 2,
                                  static_cast<std::int64_t>(c));
      }
    }
  }
}

void InvariantMonitor::scan_transmissions(
    radio::Slot slot, std::span<const radio::TxRecord> txs) {
  // Two adjacent nodes beaconing the SAME claimed color in the same slot:
  // the on-air face of an independence violation. Beacon kinds only —
  // compete/request traffic does not claim a color.
  obs::RunObservation* observation = sim_->observation();
  const auto claimed = [](const radio::Message& m) {
    const bool beacon = m.kind == radio::MessageKind::kColorBeacon ||
                        m.kind == radio::MessageKind::kJoinBeacon;
    return beacon ? m.color_class : graph::kUncolored;
  };
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const graph::Color ci = claimed(txs[i].message);
    if (ci == graph::kUncolored) continue;
    for (std::size_t j = i + 1; j < txs.size(); ++j) {
      if (claimed(txs[j].message) != ci) continue;
      const graph::NodeId a = txs[i].sender;
      const graph::NodeId b = txs[j].sender;
      if (!geometry::within(graph_.position(a), graph_.position(b),
                            graph_.radius())) {
        continue;
      }
      ++tx_independence_violations_;
      note_violation(1, slot);
      if (observation != nullptr) {
        observation->trace.record(slot, obs::EventKind::kInvariantViolation,
                                  a, b, 1, static_cast<std::int64_t>(ci));
      }
    }
  }
}

InvariantMonitor::Report InvariantMonitor::report() const {
  Report r;
  r.legality_violations = legality_violations_;
  r.tx_independence_violations = tx_independence_violations_;
  r.feasibility_violations = feasibility_violations_;
  r.conflicts_repaired = durations_.size();
  r.open_conflicts = open_.size();
  for (const radio::Slot d : durations_) {
    r.max_conflict_duration = std::max(r.max_conflict_duration, d);
  }
  r.check[0] = {legality_violations_, check_first_[0], check_last_[0]};
  r.check[1] = {tx_independence_violations_, check_first_[1], check_last_[1]};
  r.check[2] = {feasibility_violations_, check_first_[2], check_last_[2]};
  r.open_range.count = open_.size();
  for (const auto& [edge, onset] : open_) {
    if (r.open_range.first_slot < 0 || onset < r.open_range.first_slot) {
      r.open_range.first_slot = onset;
    }
    r.open_range.last_slot = std::max(r.open_range.last_slot, onset);
  }
  return r;
}

}  // namespace sinrcolor::faults
