#include "faults/fault_plan.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sinrcolor::faults {
namespace {

using common::JsonValue;

constexpr const char* kSchema = "sinrcolor.faults.v1";

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string at(const char* section, std::size_t index) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s[%zu]", section, index);
  return buf;
}

/// Strict-key check: a typo'd key must fail loudly, not silently disable a
/// fault.
bool only_keys(const JsonValue& object,
               std::initializer_list<const char*> allowed,
               const std::string& where, std::string* error) {
  for (const auto& [key, value] : object.as_object()) {
    bool known = false;
    for (const char* k : allowed) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) return fail(error, where + ": unknown key \"" + key + "\"");
  }
  return true;
}

bool read_double(const JsonValue& object, const char* key, double& out,
                 bool required, const std::string& where, std::string* error) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) {
    return required ? fail(error, where + ": missing \"" + key + "\"") : true;
  }
  if (!v->is_number()) {
    return fail(error, where + ": \"" + key + "\" must be a number");
  }
  out = v->as_double();
  return true;
}

bool read_int(const JsonValue& object, const char* key, std::int64_t& out,
              bool required, const std::string& where, std::string* error) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) {
    return required ? fail(error, where + ": missing \"" + key + "\"") : true;
  }
  if (!v->is_number()) {
    return fail(error, where + ": \"" + key + "\" must be a number");
  }
  const double d = v->as_double();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    return fail(error, where + ": \"" + key + "\" must be an integer");
  }
  out = i;
  return true;
}

/// Fetches section `key` as an array of objects; absent ⇒ empty (ok).
bool read_section(const JsonValue& doc, const char* key,
                  const JsonValue*& out, std::string* error) {
  out = doc.find(key);
  if (out == nullptr) return true;
  if (!out->is_array()) {
    return fail(error, std::string(key) + " must be an array");
  }
  for (std::size_t i = 0; i < out->as_array().size(); ++i) {
    if (!out->as_array()[i].is_object()) {
      return fail(error, at(key, i) + " must be an object");
    }
  }
  return true;
}

}  // namespace

std::string FaultPlan::validate(std::size_t n) const {
  char buf[160];
  const auto bad = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    return std::string(buf);
  };
  const auto node_ok = [n](graph::NodeId v) {
    return v != graph::kInvalidNode && static_cast<std::size_t>(v) < n;
  };
  const auto window_ok = [](radio::Slot from, radio::Slot to) {
    return from >= 0 && (to == -1 || to >= from);
  };
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashEvent& c = crashes[i];
    if (!node_ok(c.node))
      return bad("crashes[%zu]: node %u out of range (n=%zu)", i, c.node, n);
    if (c.slot < 0) return bad("crashes[%zu]: negative slot", i);
    if (c.restart != -1 && c.restart < c.slot)
      return bad("crashes[%zu]: restart before the crash slot", i);
  }
  for (std::size_t i = 0; i < deafness.size(); ++i) {
    const DeafnessWindow& d = deafness[i];
    if (!node_ok(d.node))
      return bad("deafness[%zu]: node %u out of range (n=%zu)", i, d.node, n);
    if (!window_ok(d.from, d.to)) return bad("deafness[%zu]: bad window", i);
  }
  for (std::size_t i = 0; i < jammers.size(); ++i) {
    const JammerSpec& j = jammers[i];
    if (!window_ok(j.from, j.to)) return bad("jammers[%zu]: bad window", i);
    if (!(j.power > 0.0) || !std::isfinite(j.power))
      return bad("jammers[%zu]: power must be finite and > 0", i);
    if (j.period < 0 || j.duty < 0 || (j.period > 0 && j.duty > j.period))
      return bad("jammers[%zu]: need 0 <= duty <= period", i);
    if (j.radius < 0.0 || !std::isfinite(j.radius))
      return bad("jammers[%zu]: radius must be finite and >= 0", i);
    if (!std::isfinite(j.position.x) || !std::isfinite(j.position.y))
      return bad("jammers[%zu]: non-finite position", i);
  }
  for (std::size_t i = 0; i < noise.size(); ++i) {
    const NoiseWindow& w = noise[i];
    if (!window_ok(w.from, w.to)) return bad("noise[%zu]: bad window", i);
    if (!(w.factor > 0.0) || !std::isfinite(w.factor))
      return bad("noise[%zu]: factor must be finite and > 0", i);
  }
  for (std::size_t i = 0; i < drops.size(); ++i) {
    const DropWindow& w = drops[i];
    if (!window_ok(w.from, w.to)) return bad("drops[%zu]: bad window", i);
    if (!(w.probability >= 0.0 && w.probability <= 1.0))
      return bad("drops[%zu]: probability must be in [0, 1]", i);
  }
  return "";
}

bool FaultPlan::from_json(const JsonValue& doc, FaultPlan& out,
                          std::string* error) {
  if (!doc.is_object()) return fail(error, "fault plan must be an object");
  if (!only_keys(doc,
                 {"schema", "seed_salt", "crashes", "deafness", "jammers",
                  "noise", "drops"},
                 "fault plan", error)) {
    return false;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    return fail(error,
                std::string("fault plan: \"schema\" must be \"") + kSchema +
                    "\"");
  }

  FaultPlan plan;
  std::int64_t salt = 0;
  if (!read_int(doc, "seed_salt", salt, false, "fault plan", error)) {
    return false;
  }
  plan.seed_salt = static_cast<std::uint64_t>(salt);

  const JsonValue* section = nullptr;
  if (!read_section(doc, "crashes", section, error)) return false;
  if (section != nullptr) {
    for (std::size_t i = 0; i < section->as_array().size(); ++i) {
      const JsonValue& entry = section->as_array()[i];
      const std::string where = at("crashes", i);
      if (!only_keys(entry, {"node", "slot", "restart"}, where, error)) {
        return false;
      }
      CrashEvent c;
      std::int64_t node = 0, slot = 0, restart = -1;
      if (!read_int(entry, "node", node, true, where, error) ||
          !read_int(entry, "slot", slot, true, where, error) ||
          !read_int(entry, "restart", restart, false, where, error)) {
        return false;
      }
      if (node < 0) return fail(error, where + ": negative node");
      c.node = static_cast<graph::NodeId>(node);
      c.slot = slot;
      c.restart = restart;
      plan.crashes.push_back(c);
    }
  }

  if (!read_section(doc, "deafness", section, error)) return false;
  if (section != nullptr) {
    for (std::size_t i = 0; i < section->as_array().size(); ++i) {
      const JsonValue& entry = section->as_array()[i];
      const std::string where = at("deafness", i);
      if (!only_keys(entry, {"node", "from", "to"}, where, error)) {
        return false;
      }
      DeafnessWindow d;
      std::int64_t node = 0, from = 0, to = -1;
      if (!read_int(entry, "node", node, true, where, error) ||
          !read_int(entry, "from", from, true, where, error) ||
          !read_int(entry, "to", to, false, where, error)) {
        return false;
      }
      if (node < 0) return fail(error, where + ": negative node");
      d.node = static_cast<graph::NodeId>(node);
      d.from = from;
      d.to = to;
      plan.deafness.push_back(d);
    }
  }

  if (!read_section(doc, "jammers", section, error)) return false;
  if (section != nullptr) {
    for (std::size_t i = 0; i < section->as_array().size(); ++i) {
      const JsonValue& entry = section->as_array()[i];
      const std::string where = at("jammers", i);
      if (!only_keys(entry,
                     {"x", "y", "from", "to", "power", "period", "duty",
                      "radius"},
                     where, error)) {
        return false;
      }
      JammerSpec j;
      std::int64_t from = 0, to = -1, period = 0, duty = 0;
      if (!read_double(entry, "x", j.position.x, true, where, error) ||
          !read_double(entry, "y", j.position.y, true, where, error) ||
          !read_int(entry, "from", from, true, where, error) ||
          !read_int(entry, "to", to, false, where, error) ||
          !read_double(entry, "power", j.power, false, where, error) ||
          !read_int(entry, "period", period, false, where, error) ||
          !read_int(entry, "duty", duty, false, where, error) ||
          !read_double(entry, "radius", j.radius, false, where, error)) {
        return false;
      }
      j.from = from;
      j.to = to;
      j.period = period;
      j.duty = duty;
      plan.jammers.push_back(j);
    }
  }

  if (!read_section(doc, "noise", section, error)) return false;
  if (section != nullptr) {
    for (std::size_t i = 0; i < section->as_array().size(); ++i) {
      const JsonValue& entry = section->as_array()[i];
      const std::string where = at("noise", i);
      if (!only_keys(entry, {"from", "to", "factor"}, where, error)) {
        return false;
      }
      NoiseWindow w;
      std::int64_t from = 0, to = -1;
      if (!read_int(entry, "from", from, true, where, error) ||
          !read_int(entry, "to", to, false, where, error) ||
          !read_double(entry, "factor", w.factor, true, where, error)) {
        return false;
      }
      w.from = from;
      w.to = to;
      plan.noise.push_back(w);
    }
  }

  if (!read_section(doc, "drops", section, error)) return false;
  if (section != nullptr) {
    for (std::size_t i = 0; i < section->as_array().size(); ++i) {
      const JsonValue& entry = section->as_array()[i];
      const std::string where = at("drops", i);
      if (!only_keys(entry, {"from", "to", "probability"}, where, error)) {
        return false;
      }
      DropWindow w;
      std::int64_t from = 0, to = -1;
      if (!read_int(entry, "from", from, true, where, error) ||
          !read_int(entry, "to", to, false, where, error) ||
          !read_double(entry, "probability", w.probability, true, where,
                       error)) {
        return false;
      }
      w.from = from;
      w.to = to;
      plan.drops.push_back(w);
    }
  }

  out = std::move(plan);
  return true;
}

bool FaultPlan::from_string(const std::string& text, FaultPlan& out,
                            std::string* error) {
  JsonValue doc;
  if (!common::parse_json(text, doc, error)) return false;
  return from_json(doc, out, error);
}

bool FaultPlan::load(const std::string& path, FaultPlan& out,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open fault plan \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  return from_string(text.str(), out, error);
}

std::string FaultPlan::to_json() const {
  common::JsonWriter json;
  json.begin_object();
  json.field("schema", kSchema);
  if (seed_salt != 0) json.field("seed_salt", seed_salt);
  json.key("crashes");
  json.begin_array();
  for (const CrashEvent& c : crashes) {
    json.begin_object();
    json.field("node", static_cast<std::int64_t>(c.node));
    json.field("slot", c.slot);
    if (c.restart != -1) json.field("restart", c.restart);
    json.end_object();
  }
  json.end_array();
  json.key("deafness");
  json.begin_array();
  for (const DeafnessWindow& d : deafness) {
    json.begin_object();
    json.field("node", static_cast<std::int64_t>(d.node));
    json.field("from", d.from);
    json.field("to", d.to);
    json.end_object();
  }
  json.end_array();
  json.key("jammers");
  json.begin_array();
  for (const JammerSpec& j : jammers) {
    json.begin_object();
    json.field("x", j.position.x);
    json.field("y", j.position.y);
    json.field("from", j.from);
    json.field("to", j.to);
    json.field("power", j.power);
    if (j.period > 0) {
      json.field("period", j.period);
      json.field("duty", j.duty);
    }
    if (j.radius > 0.0) json.field("radius", j.radius);
    json.end_object();
  }
  json.end_array();
  json.key("noise");
  json.begin_array();
  for (const NoiseWindow& w : noise) {
    json.begin_object();
    json.field("from", w.from);
    json.field("to", w.to);
    json.field("factor", w.factor);
    json.end_object();
  }
  json.end_array();
  json.key("drops");
  json.begin_array();
  for (const DropWindow& w : drops) {
    json.begin_object();
    json.field("from", w.from);
    json.field("to", w.to);
    json.field("probability", w.probability);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace sinrcolor::faults
