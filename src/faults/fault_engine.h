// Deterministic executor of a FaultPlan (the radio::FaultInjector).
//
// The engine is the bridge between the declarative plan and the simulator's
// slot loop: crashes/restarts are installed as the simulator's existing
// failure/join schedule, and the transient faults (jammers, noise, deafness,
// per-link drops) are answered through the narrow FaultInjector interface
// the simulator and the interference media query each slot.
//
// Determinism contract: every answer is a pure function of (plan, seed,
// slot, node ids) — per-link drops hash (seed, salt, slot, sender, listener,
// window) through SplitMix64 instead of drawing from any node's RNG stream.
// Consequences: a plan's fault pattern is byte-identical at any --threads,
// and enabling faults never perturbs the protocol's own coin flips (a node
// that survives untouched behaves exactly as in the clean run up to the
// first fault it observes).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.h"
#include "radio/fault_injection.h"
#include "radio/simulator.h"

namespace sinrcolor::faults {

class FaultEngine final : public radio::FaultInjector {
 public:
  /// Copies the plan; `seed` is the run seed (the engine derives its own
  /// domain-separated stream from it, further separated by plan.seed_salt).
  FaultEngine(FaultPlan plan, std::uint64_t seed);

  /// Installs the plan into the simulator: crash/restart schedule plus this
  /// engine as the fault injector. CHECKs that the plan validates against
  /// the simulator's node count and that no jammer coincides with a node
  /// position (the interference field requires positive distances).
  /// Call before Simulator::run().
  void install(radio::Simulator& sim);

  // --- radio::FaultInjector ---
  const radio::ChannelDisturbance* channel_disturbance(
      radio::Slot slot) override;
  bool receiver_disabled(radio::Slot slot, graph::NodeId v) const override;
  bool drop_delivery(radio::Slot slot, graph::NodeId sender,
                     graph::NodeId listener) const override;

  /// Counters of fault activity actually exercised (all deterministic).
  struct Stats {
    std::uint64_t dropped_deliveries = 0;  ///< drop_delivery() returned true
    std::uint64_t jammer_slots = 0;        ///< slot × active-jammer pairs
    std::uint64_t noisy_slots = 0;         ///< slots with noise_factor ≠ 1
  };
  const Stats& stats() const { return stats_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  // Thread contract: the engine is thread-COMPATIBLE, not thread-safe — it
  // needs no mutex because the simulator calls every mutating entry point
  // (channel_disturbance, drop_delivery's stats bump) from the slot loop
  // thread, strictly between the TaskPool resolve phases. The resolve shards
  // see only the immutable plan_/drop_seed_ and the per-slot disturbance_
  // snapshot, which is written before the shards fork and read-only while
  // they run. Do NOT call the FaultInjector interface from inside a shard;
  // tests/concurrency_stress_test.cpp and the tsan-smoke CI job hold the
  // threaded chaos path to zero TSan reports under this contract.
  const FaultPlan plan_;
  const std::uint64_t drop_seed_;
  radio::ChannelDisturbance disturbance_;     ///< slot-loop thread only
  std::vector<radio::Jammer> active_jammers_;  ///< reused per slot
  mutable Stats stats_;  ///< mutable: drop_delivery() is const in the API
};

}  // namespace sinrcolor::faults
