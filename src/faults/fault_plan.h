// Declarative, slot-indexed fault plans (schema "sinrcolor.faults.v1").
//
// A FaultPlan is plain data describing WHAT goes wrong and WHEN — node
// crashes (with optional restart), transient receiver deafness, external
// jammer transmitters injected into the interference field, noise-floor
// drift/bursts, and probabilistic per-link message drops. Executing a plan
// is faults::FaultEngine's job; keeping the description declarative means a
// plan can be parsed, validated, serialized and diffed independently of any
// run, and the same plan byte-reproduces the same faults at any thread
// count (docs/ROBUSTNESS.md, "Fault model").
//
// All slot windows are INCLUSIVE on both ends ([from, to]); `to = -1` means
// "until the end of the run".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "geometry/point.h"
#include "graph/unit_disk_graph.h"
#include "radio/message.h"

namespace sinrcolor::faults {

/// Crash-stop failure of one node, with an optional revival. Maps onto
/// radio::Simulator::set_failure_slot / set_join_slot (a restarted node
/// re-enters via on_wake; plain core::MwNode does not tolerate that — run
/// restarts under robust::SelfHealingNode).
struct CrashEvent {
  graph::NodeId node = graph::kInvalidNode;
  radio::Slot slot = 0;      ///< death slot
  radio::Slot restart = -1;  ///< revival slot; -1 = stays dead
};

/// Transient deafness: the node's receiver is off during [from, to] (it
/// still transmits and advances — only reception is lost).
struct DeafnessWindow {
  graph::NodeId node = graph::kInvalidNode;
  radio::Slot from = 0;
  radio::Slot to = -1;
};

/// An external jammer: a transmitter at a fixed position that is not a
/// protocol node. Under the SINR media it contributes `power` (same units
/// as sinr::SinrParams::power, default 1.0 = node transmit power) to every
/// listener's interference sum; under the graph medium it blanks listeners
/// within `radius` (0 = the graph's UDG radius). `period`/`duty` give a
/// duty-cycled burst jammer: active in the first `duty` slots of every
/// `period`-slot cycle (period 0 = continuously on inside the window).
struct JammerSpec {
  geometry::Point position;
  radio::Slot from = 0;
  radio::Slot to = -1;
  double power = 1.0;
  radio::Slot period = 0;
  radio::Slot duty = 0;
  double radius = 0.0;

  /// True iff the jammer transmits in `slot` (window + duty cycle).
  bool active(radio::Slot slot) const {
    if (slot < from || (to >= 0 && slot > to)) return false;
    if (period <= 0) return true;
    return (slot - from) % period < duty;
  }
};

/// Noise-floor drift: the ambient noise N is multiplied by `factor` during
/// [from, to]. Overlapping windows multiply.
struct NoiseWindow {
  radio::Slot from = 0;
  radio::Slot to = -1;
  double factor = 1.0;
};

/// Probabilistic per-link message loss: inside [from, to] every resolved
/// delivery is independently suppressed with probability `probability`.
/// Draws are a pure hash of (plan seed, slot, sender, listener), never the
/// node RNG streams — so the drop pattern is identical at any thread count
/// and adding drops does not perturb the protocol's own coin flips.
struct DropWindow {
  radio::Slot from = 0;
  radio::Slot to = -1;
  double probability = 0.0;
};

struct FaultPlan {
  /// Extra domain separation folded into the drop-hash seed, so two plans
  /// that differ only in salt produce independent drop patterns.
  std::uint64_t seed_salt = 0;

  std::vector<CrashEvent> crashes;
  std::vector<DeafnessWindow> deafness;
  std::vector<JammerSpec> jammers;
  std::vector<NoiseWindow> noise;
  std::vector<DropWindow> drops;

  bool empty() const {
    return crashes.empty() && deafness.empty() && jammers.empty() &&
           noise.empty() && drops.empty();
  }

  /// Semantic validation against an instance of n nodes: node ids in range,
  /// windows ordered, probabilities in [0,1], factors/powers positive,
  /// duty ≤ period. Returns "" when valid, else a human-readable reason.
  std::string validate(std::size_t n) const;

  /// Parses a "sinrcolor.faults.v1" document. Unknown top-level or entry
  /// keys are rejected (typos must not silently disable a fault). On
  /// failure returns false and fills `error`; `out` is untouched.
  static bool from_json(const common::JsonValue& doc, FaultPlan& out,
                        std::string* error);
  /// parse_json + from_json.
  static bool from_string(const std::string& text, FaultPlan& out,
                          std::string* error);
  /// Reads + parses a plan file.
  static bool load(const std::string& path, FaultPlan& out,
                   std::string* error);

  /// Serializes back to a canonical "sinrcolor.faults.v1" document
  /// (round-trips through from_string).
  std::string to_json() const;
};

}  // namespace sinrcolor::faults
