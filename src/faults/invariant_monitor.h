// Runtime invariant monitor: checks the protocol's safety properties every
// slot while a (possibly fault-injected) run executes.
//
// Three invariants are watched (ids match EventKind::kInvariantViolation's
// `a` payload):
//   0 coloring legality    — no two live adjacent nodes hold the same final
//                            color at the end of any slot. Violations are
//                            tracked as conflict EPISODES: the onset slot is
//                            recorded, and when the conflict disappears (a
//                            repair, or one side dies) its duration lands in
//                            conflict_durations() and a kConflictRepaired
//                            event fires — the chaos harness gates on every
//                            injected conflict being repaired in bounded
//                            time.
//   1 tx independence      — two adjacent nodes never simultaneously beacon
//                            the SAME claimed color (kColorBeacon /
//                            kJoinBeacon). This is Theorem 1's invariant
//                            observed on the air rather than on final state.
//   2 schedule feasibility — every finalized color fits the palette bound
//                            (at most max_color), so the coloring stays
//                            usable as a TDMA schedule of that many frames.
//
// The monitor is an opt-in observer: it attaches to the simulator's slot
// hooks, never touches the RNG streams, and a monitored run is
// byte-identical to an unmonitored one. Its own bookkeeping allocates, so
// it is not part of the zero-allocation slot-loop contract (the alloc gate
// measures unmonitored runs; docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"
#include "radio/simulator.h"

namespace sinrcolor::faults {

class InvariantMonitor {
 public:
  /// Current final color of node v (graph::kUncolored while undecided).
  using ColorFn = std::function<graph::Color(graph::NodeId)>;

  struct Options {
    bool check_legality = true;
    bool check_tx_independence = true;
    /// Feasibility bound: colors must lie in [0, max_color]. -1 skips the
    /// check (the bound depends on protocol parameters the monitor does not
    /// derive itself).
    graph::Color max_color = -1;
  };

  InvariantMonitor(const graph::UnitDiskGraph& graph, ColorFn color,
                   Options options);
  /// Default options (all checks on, feasibility skipped).
  InvariantMonitor(const graph::UnitDiskGraph& graph, ColorFn color);

  /// Hooks the monitor into the simulator (end-of-slot legality scan +
  /// transmission observer). The simulator must outlive the monitor's use;
  /// violations are additionally traced through the simulator's attached
  /// observation, when any. Call before Simulator::run().
  void attach(radio::Simulator& sim);

  /// Check ids (EventKind::kInvariantViolation `a` payload, Report::check
  /// index): 0 legality, 1 tx independence, 2 feasibility.
  static constexpr std::size_t kCheckCount = 3;
  /// Stable check name ("legality", "tx_independence", "feasibility").
  static const char* check_name(std::size_t check);

  struct Report {
    /// Per-check firing count plus the slot range the firings span, so a
    /// dirty verdict can say WHICH invariant broke and WHEN without
    /// replaying the trace. Slots are -1 while the count is 0.
    struct CheckRange {
      std::size_t count = 0;
      radio::Slot first_slot = -1;
      radio::Slot last_slot = -1;
    };

    /// Conflict episodes opened (distinct (edge, onset) pairs).
    std::size_t legality_violations = 0;
    /// Adjacent same-color beacon pairs on the air.
    std::size_t tx_independence_violations = 0;
    /// Nodes whose finalized color exceeded the feasibility bound.
    std::size_t feasibility_violations = 0;
    /// Conflict episodes that closed (repair or death of one side).
    std::size_t conflicts_repaired = 0;
    /// Conflict episodes still open when the run ended.
    std::size_t open_conflicts = 0;
    radio::Slot max_conflict_duration = 0;
    /// Indexed by check id (see check_name); counts match the totals above.
    CheckRange check[kCheckCount];
    /// Onset-slot range of the conflicts still open at end of run.
    CheckRange open_range;

    /// No invariant ever fired — the expected outcome of a fault-free run.
    bool clean() const {
      return legality_violations == 0 && tx_independence_violations == 0 &&
             feasibility_violations == 0 && open_conflicts == 0;
    }
  };

  /// Aggregated results so far (valid during and after the run).
  Report report() const;

  /// Durations (slots from onset to close) of all repaired conflicts.
  const std::vector<radio::Slot>& conflict_durations() const {
    return durations_;
  }

 private:
  void scan_end_of_slot(radio::Slot slot);
  void scan_transmissions(radio::Slot slot,
                          std::span<const radio::TxRecord> txs);
  /// Stamps the check's firing-slot range (every violation site calls this
  /// exactly once per counted violation).
  void note_violation(std::size_t check, radio::Slot slot);

  const graph::UnitDiskGraph& graph_;
  const ColorFn color_;
  const Options options_;
  radio::Simulator* sim_ = nullptr;

  /// Open conflicts: packed edge key (min<<32|max) → onset slot.
  std::map<std::uint64_t, radio::Slot> open_;
  std::vector<std::uint8_t> feasibility_flagged_;  ///< once per node
  std::vector<radio::Slot> durations_;
  std::size_t legality_violations_ = 0;
  std::size_t tx_independence_violations_ = 0;
  std::size_t feasibility_violations_ = 0;
  /// First/last slot each check fired (index = check id); -1 until it does.
  radio::Slot check_first_[kCheckCount] = {-1, -1, -1};
  radio::Slot check_last_[kCheckCount] = {-1, -1, -1};
  radio::Slot last_slot_ = 0;
};

}  // namespace sinrcolor::faults
