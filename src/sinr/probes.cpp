#include "sinr/probes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sinrcolor::sinr {

double probabilistic_interference_outside(
    const SinrParams& params, const geometry::Point& at,
    std::span<const geometry::Point> positions, std::span<const double> probs,
    double radius, std::size_t self) {
  SINRCOLOR_CHECK(positions.size() == probs.size());
  const double r_sq = radius * radius;
  double total = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i == self) continue;
    const double d_sq = geometry::distance_sq(at, positions[i]);
    if (d_sq <= r_sq) continue;
    total += params.power * probs[i] / std::pow(d_sq, params.alpha / 2.0);
  }
  return total;
}

void BoundProbe::record(double value) {
  max_ = std::max(max_, value);
  sum_ += value;
  ++count_;
  if (value > bound_) ++violations_;
}

}  // namespace sinrcolor::sinr
