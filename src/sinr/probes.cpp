#include "sinr/probes.h"

#include <algorithm>

#include "common/check.h"
#include "sinr/medium_field.h"

namespace sinrcolor::sinr {

double probabilistic_interference_outside(
    const SinrParams& params, const geometry::Point& at,
    std::span<const geometry::Point> positions, std::span<const double> probs,
    double radius, std::size_t self) {
  SINRCOLOR_CHECK(positions.size() == probs.size());
  const double r_sq = radius * radius;
  double total = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i == self) continue;
    const double d_sq = geometry::distance_sq(at, positions[i]);
    if (d_sq <= r_sq) continue;
    // Shared δ^α fast path so probes agree bit-for-bit with the resolve
    // kernels on the specialized α profiles (3, 4, 6).
    total += params.power * probs[i] / pow_alpha_from_sq(d_sq, params.alpha);
  }
  return total;
}

void BoundProbe::record(double value) {
  max_ = std::max(max_, value);
  sum_ += value;
  ++count_;
  if (value > bound_) ++violations_;
}

}  // namespace sinrcolor::sinr
