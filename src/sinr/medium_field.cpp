#include "sinr/medium_field.h"

#include <cmath>

#include "common/check.h"

namespace sinrcolor::sinr {

double interference_at(const SinrParams& params, const geometry::Point& at,
                       std::span<const Transmitter> transmitters,
                       std::size_t exclude) {
  double total = 0.0;
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    if (i == exclude) continue;
    const double d_sq = geometry::distance_sq(at, transmitters[i].position);
    SINRCOLOR_CHECK_MSG(d_sq > 0.0,
                        "transmitter coincides with measurement point");
    total += params.power / pow_alpha_from_sq(d_sq, params.alpha);
  }
  return total;
}

double sinr_at(const SinrParams& params, const geometry::Point& at,
               std::span<const Transmitter> transmitters, std::size_t sender) {
  SINRCOLOR_CHECK(sender < transmitters.size());
  const double d_sq = geometry::distance_sq(at, transmitters[sender].position);
  SINRCOLOR_CHECK_MSG(d_sq > 0.0, "sender coincides with receiver");
  const double signal = params.power / pow_alpha_from_sq(d_sq, params.alpha);
  const double interference =
      interference_at(params, at, transmitters, sender);
  return signal / (params.noise + interference);
}

double interference_outside(const SinrParams& params, const geometry::Point& at,
                            std::span<const Transmitter> transmitters,
                            double radius) {
  const double r_sq = radius * radius;
  double total = 0.0;
  for (const auto& tx : transmitters) {
    const double d_sq = geometry::distance_sq(at, tx.position);
    if (d_sq > r_sq) {
      total += params.power / pow_alpha_from_sq(d_sq, params.alpha);
    }
  }
  return total;
}

}  // namespace sinrcolor::sinr
