// Per-slot reception resolution under the SINR rule.
//
// Given the positions of this slot's transmitters and a listener, decide
// which (unique, since β ≥ 1) transmitter it decodes, if any, subject to the
// paper's extra gate δ(u,v) ≤ R_T.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "geometry/point.h"
#include "sinr/field_engine.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"

namespace sinrcolor::sinr {

/// True iff listener at `at` decodes transmitters[sender] under SINR and the
/// range gate δ ≤ R_T.
bool decodes(const SinrParams& params, const geometry::Point& at,
             std::span<const Transmitter> transmitters, std::size_t sender);

/// Index of the unique transmitter the listener decodes, or nullopt.
/// Checks only candidates within R_T (others cannot pass the range gate).
/// With β ≥ 1 at most one transmitter can satisfy the SINR condition at a
/// given listener; this invariant is asserted.
///
/// Runs the interference-field fast path (sinr/field_engine.h): the total
/// received field is summed ONCE with Kahan compensation and each in-range
/// candidate resolves against F − signal in O(1), i.e. O(T) per call instead
/// of the naive O(T · candidates). `kind` selects the evaluation path:
/// kField (default) the scalar loop, kSimd the SoA batch kernel
/// (docs/KERNELS.md), kNaive the per-candidate oracle below.
std::optional<std::size_t> resolve_reception(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters,
    ResolveKind kind = ResolveKind::kField);

/// Reference oracle for resolve_reception: the original per-candidate loop
/// that re-sums interference excluding the candidate. Kept for the A/B
/// equivalence suite and the micro-benchmarks; both paths must produce the
/// same winner (tests/field_equivalence_test.cpp).
std::optional<std::size_t> resolve_reception_naive(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters);

}  // namespace sinrcolor::sinr
