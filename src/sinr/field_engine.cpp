#include "sinr/field_engine.h"

namespace sinrcolor::sinr {

const char* to_string(ResolveKind kind) {
  switch (kind) {
    case ResolveKind::kNaive:
      return "naive";
    case ResolveKind::kField:
      return "field";
    case ResolveKind::kSimd:
      return "simd";
  }
  return "?";
}

bool resolve_kind_from_string(const std::string& name, ResolveKind& out) {
  if (name == "naive") {
    out = ResolveKind::kNaive;
    return true;
  }
  if (name == "field") {
    out = ResolveKind::kField;
    return true;
  }
  if (name == "simd") {
    out = ResolveKind::kSimd;
    return true;
  }
  return false;
}

}  // namespace sinrcolor::sinr
