#include "sinr/reception.h"

#include "common/check.h"

namespace sinrcolor::sinr {

bool decodes(const SinrParams& params, const geometry::Point& at,
             std::span<const Transmitter> transmitters, std::size_t sender) {
  SINRCOLOR_CHECK(sender < transmitters.size());
  if (!geometry::within(at, transmitters[sender].position, params.r_t())) {
    return false;
  }
  return sinr_at(params, at, transmitters, sender) >= params.beta;
}

std::optional<std::size_t> resolve_reception(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters) {
  std::optional<std::size_t> winner;
  const double r_t = params.r_t();
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    if (!geometry::within(at, transmitters[i].position, r_t)) continue;
    if (sinr_at(params, at, transmitters, i) >= params.beta) {
      SINRCOLOR_CHECK_MSG(!winner.has_value(),
                          "two senders decodable at one listener with beta>=1");
      winner = i;
    }
  }
  return winner;
}

}  // namespace sinrcolor::sinr
