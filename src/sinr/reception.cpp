#include "sinr/reception.h"

#include "common/check.h"
#include "sinr/field_engine.h"

namespace sinrcolor::sinr {

bool decodes(const SinrParams& params, const geometry::Point& at,
             std::span<const Transmitter> transmitters, std::size_t sender) {
  SINRCOLOR_CHECK(sender < transmitters.size());
  if (!geometry::within(at, transmitters[sender].position, params.r_t())) {
    return false;
  }
  return sinr_at(params, at, transmitters, sender) >= params.beta;
}

std::optional<std::size_t> resolve_reception(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters) {
  // Field fast path: one O(T) pass computes the total field plus every
  // in-range candidate's signal; each candidate then resolves in O(1)
  // against F − signal instead of re-summing the other T−1 transmitters.
  std::vector<FieldCandidate> candidates;
  const double field =
      field_at(params, at, transmitters, params.r_t(), UnitGain{}, candidates);
  return resolve_from_field(params, field, candidates);
}

std::optional<std::size_t> resolve_reception_naive(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters) {
  std::optional<std::size_t> winner;
  const double r_t = params.r_t();
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    if (!geometry::within(at, transmitters[i].position, r_t)) continue;
    if (sinr_at(params, at, transmitters, i) >= params.beta) {
      SINRCOLOR_CHECK_MSG(!winner.has_value(),
                          "two senders decodable at one listener with beta>=1");
      winner = i;
    }
  }
  return winner;
}

}  // namespace sinrcolor::sinr
