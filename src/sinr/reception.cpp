#include "sinr/reception.h"

#include "common/check.h"
#include "sinr/field_engine.h"

namespace sinrcolor::sinr {

bool decodes(const SinrParams& params, const geometry::Point& at,
             std::span<const Transmitter> transmitters, std::size_t sender) {
  SINRCOLOR_CHECK(sender < transmitters.size());
  if (!geometry::within(at, transmitters[sender].position, params.r_t())) {
    return false;
  }
  return sinr_at(params, at, transmitters, sender) >= params.beta;
}

std::optional<std::size_t> resolve_reception(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters, ResolveKind kind) {
  if (kind == ResolveKind::kNaive) {
    return resolve_reception_naive(params, at, transmitters);
  }
  if (kind == ResolveKind::kSimd) {
    // One-shot SoA staging (this probe-style entry point has no scratch to
    // reuse; the batch engine path amortizes these buffers across a run).
    const std::size_t n = transmitters.size();
    std::vector<double> xs(n);
    std::vector<double> ys(n);
    std::vector<double> ws(n);
    for (std::size_t j = 0; j < n; ++j) {
      xs[j] = transmitters[j].position.x;
      ys[j] = transmitters[j].position.y;
      ws[j] = params.power;
    }
    const AlphaProfile profile = classify_alpha(params.alpha);
    const double half_alpha = params.alpha / 2.0;
    const double field = field_kernel_for(profile)(
        xs.data(), ys.data(), ws.data(), n, at.x, at.y, half_alpha);
    SINRCOLOR_CHECK_MSG(std::isfinite(field) || n == 0,
                        "transmitter coincides with listener");
    const FieldContribFn contrib = field_contrib_for(profile);
    std::vector<FieldCandidate> candidates;
    const double r_sq = params.r_t() * params.r_t();
    for (std::size_t j = 0; j < n; ++j) {
      if (geometry::distance_sq(at, transmitters[j].position) <= r_sq) {
        candidates.push_back(
            {static_cast<std::uint32_t>(j),
             contrib(xs.data(), ys.data(), ws.data(), j, at.x, at.y,
                     half_alpha)});
      }
    }
    return resolve_from_field(params, field, candidates);
  }
  // Field fast path: one O(T) pass computes the total field plus every
  // in-range candidate's signal; each candidate then resolves in O(1)
  // against F − signal instead of re-summing the other T−1 transmitters.
  std::vector<FieldCandidate> candidates;
  const double field =
      field_at(params, at, transmitters, params.r_t(), UnitGain{}, candidates);
  return resolve_from_field(params, field, candidates);
}

std::optional<std::size_t> resolve_reception_naive(
    const SinrParams& params, const geometry::Point& at,
    std::span<const Transmitter> transmitters) {
  std::optional<std::size_t> winner;
  const double r_t = params.r_t();
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    if (!geometry::within(at, transmitters[i].position, r_t)) continue;
    if (sinr_at(params, at, transmitters, i) >= params.beta) {
      SINRCOLOR_CHECK_MSG(!winner.has_value(),
                          "two senders decodable at one listener with beta>=1");
      winner = i;
    }
  }
  return winner;
}

}  // namespace sinrcolor::sinr
