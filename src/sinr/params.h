// SINR physical-model parameters and the paper's derived radii/constants.
//
// Reception rule (paper, Section II): receiver u decodes sender v iff
//
//        P / δ(u,v)^α
//   ───────────────────────────────── ≥ β ,
//   N + Σ_{w transmitting, w≠v} P / δ(u,w)^α
//
// with path-loss exponent α > 2, threshold β ≥ 1, ambient noise N > 0 and a
// uniform transmit power P. The paper additionally requires δ(u,v) ≤ R_T,
// with R_T = (P / 2Nβ)^{1/α} < R_max = (P / Nβ)^{1/α}.
#pragma once

#include <string>

namespace sinrcolor::sinr {

struct SinrParams {
  double power = 1.0;     ///< P — uniform transmit power.
  double noise = 1e-6;    ///< N — ambient noise (> 0).
  double alpha = 4.0;     ///< α — path-loss exponent (> 2).
  double beta = 1.5;      ///< β — decoding threshold (≥ 1).
  double rho = 1.5;       ///< ρ — Markov slack constant (> 1), Lemma 3.

  /// Validates the model constraints above; aborts on violation.
  void validate() const;

  /// R_max = (P / (N·β))^{1/α}: maximum decoding distance without competition.
  double r_max() const;

  /// R_T = (P / (2·N·β))^{1/α}: the paper's transmission range.
  double r_t() const;

  /// R_I = 2·R_T·(96·ρ·β·(α-1)/(α-2))^{1/(α-2)}: the interference-disk radius
  /// of Lemma 3. Satisfies R_I ≥ 2·R_T for any admissible ρ, β, α.
  double r_i() const;

  /// Lemma 3's bound on the probabilistic far interference: P / (2·ρ·β·R_T^α).
  double lemma3_interference_bound() const;

  /// Theorem 3's MAC constant d = (32·(α-1)/(α-2)·β)^{1/α}; a (d+1, V)-coloring
  /// schedules an interference-free TDMA frame of length V.
  double mac_distance_d() const;

  /// Scale transmit power by s^α so that the effective range becomes s·R_T
  /// (Section V's construction for coloring G^d).
  SinrParams with_range_scaled(double s) const;

  std::string to_string() const;
};

/// Received signal strength P/δ^α for one link of length `dist`.
double received_power(const SinrParams& p, double dist);

}  // namespace sinrcolor::sinr
