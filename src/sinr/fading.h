// Stochastic channel fading — a beyond-the-paper robustness substrate.
//
// The paper assumes deterministic path loss P/δ^α. Real channels fade; the
// two standard models are Rayleigh (multipath; power gain ~ Exp(1)) and
// log-normal shadowing (obstacles; gain = 10^{X/10}, X ~ N(0, σ_dB²)).
// Fades can be redrawn every slot (fast fading) or fixed per link
// (quasi-static shadowing). All draws are pure functions of
// (seed, slot, link), so simulations stay bit-reproducible regardless of
// evaluation order.
//
// Note: with β ≥ 1 the "at most one decodable sender per listener" invariant
// survives fading — SINR_i ≥ 1 forces the faded signal i to carry more than
// half of the total received power, which at most one sender can do.
#pragma once

#include <cstdint>

namespace sinrcolor::sinr {

enum class FadingKind : std::uint8_t {
  kNone,       ///< deterministic path loss (the paper's model)
  kRayleigh,   ///< multiplicative power gain ~ Exp(1), unit mean
  kLogNormal,  ///< gain = 10^{X/10}, X ~ N(0, sigma_db²), unit-MEDIAN
};

struct FadingSpec {
  FadingKind kind = FadingKind::kNone;
  double sigma_db = 6.0;        ///< shadowing std-dev (kLogNormal only)
  bool static_per_link = false; ///< true: one draw per link, frozen over time
  std::uint64_t seed = 0x5eedfade;

  bool enabled() const { return kind != FadingKind::kNone; }
};

/// Multiplicative power gain for the (a, b) link in `slot` (ignored when
/// static_per_link). Symmetric in (a, b); strictly positive; equal to 1 when
/// fading is disabled.
double fade_factor(const FadingSpec& spec, std::int64_t slot, std::uint32_t a,
                   std::uint32_t b);

}  // namespace sinrcolor::sinr
