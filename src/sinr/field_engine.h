// The shared interference-field engine — the fast path behind every SINR
// resolve (the radio media and sinr::resolve_reception).
//
// Naive resolution asks, per (sender, listener) pair, for the full
// interference sum at the listener: O(T²·Δ) per slot for T transmitters.
// But the SINR denominator depends only on the TOTAL received field
//
//     F(u) = Σ_j  P·g(u,j) / δ(u, t_j)^α
//
// which is independent of which sender is being decoded: sender i achieves
//
//     SINR_i(u) = s_i(u) / (N + F(u) − s_i(u)),  s_i(u) = P·g(u,i)/δ(u,t_i)^α,
//
// so one O(T) pass per covered listener replaces one O(T) pass per
// (sender, listener) pair — O(T·coverage) per slot. This is the same
// structure Lemma 3 exploits analytically: far transmitters contribute a
// globally bounded total to F(u) and never need to be enumerated per sender.
//
// Determinism: F(u) is accumulated with Kahan compensation in ascending
// transmitter order, so it is a pure function of (params, listener,
// transmitter sequence) — independent of thread count, shard boundaries and
// attached observation sinks. Batch resolves shard the sorted covered-
// listener list into contiguous ranges over a common::TaskPool and merge
// per-shard results in shard order, so 1-thread and N-thread runs are
// byte-identical (tests/determinism_test.cpp). The naive per-pair loops are
// kept as A/B oracles (ResolveKind::kNaive); the equivalence suite
// (tests/field_equivalence_test.cpp) holds the two paths to identical
// deliveries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/task_pool.h"
#include "geometry/grid_index.h"
#include "geometry/point.h"
#include "obs/profiler.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"

namespace sinrcolor::sinr {

/// Which reception-resolution path a medium runs.
enum class ResolveKind : std::uint8_t {
  kNaive,  ///< per-(sender, listener) interference sums — the reference oracle
  kField,  ///< shared per-listener field F(u), resolved per candidate in O(1)
};

const char* to_string(ResolveKind kind);
/// Parses "naive" / "field"; returns false (leaving `out` untouched) otherwise.
bool resolve_kind_from_string(const std::string& name, ResolveKind& out);

/// Kahan-compensated summation: the error of each add is carried into the
/// next one, keeping the total's error O(ε) instead of O(T·ε) over T terms.
/// Order-sensitive like any float sum — callers must fix the add order.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - carry_;
    const double t = sum_ + y;
    carry_ = (t - sum_) - y;
    sum_ = t;
  }
  double total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double carry_ = 0.0;
};

/// Gain functor for the non-fading media: every link has unit power gain.
/// (P · 1.0 is bitwise P, so the field path matches the naive path's
/// per-term arithmetic exactly.)
struct UnitGain {
  double operator()(std::size_t /*tx*/) const { return 1.0; }
};

/// A transmitter within decoding range of the listener under evaluation.
struct FieldCandidate {
  std::uint32_t tx;  ///< index into the transmitter span
  double signal;     ///< its received power at the listener
};

/// One listener's field evaluation: returns the Kahan-compensated total
/// F = Σ_j P·gain(j)/δ^α over ALL transmitters (ascending j) and fills
/// `candidates` with the transmitters within `candidate_radius` (the δ ≤ R_T
/// gate) and their signal powers. Aborts if a transmitter coincides with
/// `at`, mirroring interference_at.
template <typename GainFn>
double field_at(const SinrParams& params, const geometry::Point& at,
                std::span<const Transmitter> txs, double candidate_radius,
                GainFn&& gain, std::vector<FieldCandidate>& candidates) {
  const double r_sq = candidate_radius * candidate_radius;
  KahanSum field;
  candidates.clear();
  for (std::size_t j = 0; j < txs.size(); ++j) {
    const double d_sq = geometry::distance_sq(at, txs[j].position);
    SINRCOLOR_CHECK_MSG(d_sq > 0.0, "transmitter coincides with listener");
    const double power =
        params.power * gain(j) / pow_alpha_from_sq(d_sq, params.alpha);
    field.add(power);
    if (d_sq <= r_sq) {
      candidates.push_back({static_cast<std::uint32_t>(j), power});
    }
  }
  return field.total();
}

/// The unique candidate (if any) whose signal clears the SINR threshold
/// against the shared field: signal ≥ β·(N + F − signal). With β ≥ 1 at most
/// one candidate can carry more than half the received power; asserted.
/// Returns the winning transmitter index; writes the decode margin
/// (achieved SINR over β) through `margin` when non-null.
inline std::optional<std::size_t> resolve_from_field(
    const SinrParams& params, double field,
    std::span<const FieldCandidate> candidates, double* margin = nullptr) {
  std::optional<std::size_t> winner;
  for (const FieldCandidate& c : candidates) {
    const double threshold =
        params.beta * (params.noise + (field - c.signal));
    if (c.signal >= threshold) {
      SINRCOLOR_CHECK_MSG(!winner.has_value(),
                          "beta >= 1 forbids two decodable senders");
      winner = c.tx;
      if (margin != nullptr) *margin = c.signal / threshold;
    }
  }
  return winner;
}

/// Batch per-slot resolver with reusable scratch. Enumerates the listeners
/// covered by any transmitter through the spatial index, evaluates F(u) once
/// per covered listener, and reports every successful decode sorted by
/// listener id. Listeners shard contiguously over `pool` (null or 1 thread
/// ⇒ inline); per-listener work is independent and merged in shard order, so
/// the output never depends on the thread count.
class FieldEngine {
 public:
  struct Decode {
    std::uint32_t listener;
    std::uint32_t tx;    ///< index into the transmitter span
    double margin;       ///< achieved SINR over β
  };

  /// Pre-sizes every scratch buffer to its structural bound (`nodes`
  /// listeners / transmitters, `shard_count` pool shards) so resolve_slot
  /// never allocates afterwards — amortized growth would otherwise spike on
  /// whichever late slot happens to set a coverage record, breaking the
  /// zero-allocation steady-state contract. ~28 bytes per node per shard.
  void reserve(std::size_t nodes, std::size_t shard_count) {
    if (touched_.size() < nodes) touched_.resize(nodes, 0);
    covered_.reserve(nodes);
    shards_.resize(std::max({shards_.size(), shard_count, std::size_t{1}}));
    for (Shard& shard : shards_) {
      shard.candidates.reserve(nodes);
      shard.decodes.reserve(nodes);
    }
  }

  /// `positions[u]` is listener u's location; `listening[u]` gates
  /// eligibility (transmitting or asleep nodes are skipped). `index` must be
  /// built over the same positions with the same ids. `gain_for(u)` returns
  /// the per-transmitter gain functor for listener u (UnitGain factory for
  /// the non-fading media). Results land in `decodes`, cleared first.
  template <typename GainForListener>
  void resolve_slot(const SinrParams& params, std::span<const Transmitter> txs,
                    const geometry::GridIndex& index,
                    std::span<const geometry::Point> positions,
                    const std::vector<bool>& listening, double candidate_radius,
                    GainForListener&& gain_for, common::TaskPool* pool,
                    std::vector<Decode>& decodes) {
    decodes.clear();
    if (txs.empty()) return;
    collect_covered(txs, index, listening, candidate_radius);

    const std::size_t shard_count = std::max<std::size_t>(
        1, std::min(pool != nullptr ? pool->thread_count() : 1,
                    covered_.size()));
    shards_.resize(std::max(shards_.size(), shard_count));
    const auto shard_body = [&](std::size_t s) {
      Shard& shard = shards_[s];
      shard.decodes.clear();
      const auto [begin, end] =
          common::TaskPool::shard_range(covered_.size(), shard_count, s);
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t u = covered_[k];
        auto gain = gain_for(u);
        const double field = field_at(params, positions[u], txs,
                                      candidate_radius, gain,
                                      shard.candidates);
        double margin = 0.0;
        const auto winner =
            resolve_from_field(params, field, shard.candidates, &margin);
        if (winner.has_value()) {
          shard.decodes.push_back(
              {u, static_cast<std::uint32_t>(*winner), margin});
        }
      }
    };
    // One kFieldAccum scope per shard when profiling. The scope lives in this
    // wrapper — NOT inside shard_body — so the unprofiled path runs the hot
    // loop with no scope object bracketing it (a live non-trivial destructor
    // around the loop measurably pessimizes its codegen). Profiler::record is
    // internally synchronized, and a worker-thread scope roots its own
    // thread-local stack — it never perturbs the caller's nesting.
    const auto run_shard = [&](std::size_t s) {
      if (profiler_ == nullptr) {
        shard_body(s);
      } else {
        SINRCOLOR_PROFILE(profiler_, obs::Phase::kFieldAccum);
        shard_body(s);
      }
    };
    if (shard_count == 1) {
      run_shard(0);
    } else {
      pool->run_shards(shard_count, run_shard);
    }
    // Shards are contiguous ranges of the ascending covered list, so a
    // shard-order merge yields listener-ascending decodes for ANY count.
    for (std::size_t s = 0; s < shard_count; ++s) {
      decodes.insert(decodes.end(), shards_[s].decodes.begin(),
                     shards_[s].decodes.end());
    }
  }

  /// Attaches the slot-phase profiler (null = off); one kFieldAccum scope is
  /// recorded per shard per resolve. Timing only — decodes are unaffected.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

 private:
  void collect_covered(std::span<const Transmitter> txs,
                       const geometry::GridIndex& index,
                       const std::vector<bool>& listening,
                       double candidate_radius) {
    if (touched_.size() < listening.size()) touched_.resize(listening.size(), 0);
    ++epoch_;
    covered_.clear();
    for (const Transmitter& t : txs) {
      index.for_each_within(
          t.position, candidate_radius,
          [&](std::size_t u, const geometry::Point& p) {
            // Half-duplex: the node at the transmitter's own position is the
            // transmitter itself and cannot hear its own slot (the naive path
            // excludes self by iterating UDG neighborhoods).
            if (geometry::distance_sq(t.position, p) == 0.0) return;
            if (!listening[u] || touched_[u] == epoch_) return;
            touched_[u] = epoch_;
            covered_.push_back(static_cast<std::uint32_t>(u));
          });
    }
    std::sort(covered_.begin(), covered_.end());
  }

  struct Shard {
    std::vector<FieldCandidate> candidates;
    std::vector<Decode> decodes;
  };

  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> touched_;
  std::vector<std::uint32_t> covered_;
  std::vector<Shard> shards_;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace sinrcolor::sinr
