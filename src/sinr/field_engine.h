// The shared interference-field engine — the fast path behind every SINR
// resolve (the radio media and sinr::resolve_reception).
//
// Naive resolution asks, per (sender, listener) pair, for the full
// interference sum at the listener: O(T²·Δ) per slot for T transmitters.
// But the SINR denominator depends only on the TOTAL received field
//
//     F(u) = Σ_j  P·g(u,j) / δ(u, t_j)^α
//
// which is independent of which sender is being decoded: sender i achieves
//
//     SINR_i(u) = s_i(u) / (N + F(u) − s_i(u)),  s_i(u) = P·g(u,i)/δ(u,t_i)^α,
//
// so one O(T) pass per covered listener replaces one O(T) pass per
// (sender, listener) pair — O(T·coverage) per slot. This is the same
// structure Lemma 3 exploits analytically: far transmitters contribute a
// globally bounded total to F(u) and never need to be enumerated per sender.
//
// Determinism: F(u) is accumulated with Kahan compensation in ascending
// transmitter order, so it is a pure function of (params, listener,
// transmitter sequence) — independent of thread count, shard boundaries and
// attached observation sinks. Batch resolves shard the sorted covered-
// listener list into contiguous ranges over a common::TaskPool and merge
// per-shard results in shard order, so 1-thread and N-thread runs are
// byte-identical (tests/determinism_test.cpp). The naive per-pair loops are
// kept as A/B oracles (ResolveKind::kNaive); the equivalence suite
// (tests/field_equivalence_test.cpp) holds the two paths to identical
// deliveries.
//
// ResolveKind::kSimd swaps the per-listener scalar loop for the SoA batch
// kernel (field_accumulate_lanes): contiguous x/y/weight arrays, a fused
// branch-free distance→δ^α→contribution loop the compiler vectorizes, and a
// batched Kahan reduction over kKahanLanes fixed strided chains. The lane
// split changes the rounding sequence, so F(u) may differ from the scalar
// field path by ulps — but per-term signals are bitwise identical, decode
// thresholds are continuous in F, and the threshold-equality set is measure
// zero, so deliveries (and full run JSON) match kField in practice; the
// equivalence suite and the x18 three-way harness enforce exactly that. The
// lane count is fixed (never ISA-dependent), so kSimd is as deterministic
// across thread counts and builds as kField. See docs/KERNELS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/task_pool.h"
#include "geometry/grid_index.h"
#include "geometry/point.h"
#include "obs/profiler.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"

namespace sinrcolor::sinr {

/// Which reception-resolution path a medium runs.
enum class ResolveKind : std::uint8_t {
  kNaive,  ///< per-(sender, listener) interference sums — the reference oracle
  kField,  ///< shared per-listener field F(u), resolved per candidate in O(1)
  kSimd,   ///< SoA batch kernel: fused δ^α loop, 8-lane batched Kahan
};

const char* to_string(ResolveKind kind);
/// Parses "naive" / "field" / "simd"; returns false (leaving `out` untouched)
/// otherwise.
bool resolve_kind_from_string(const std::string& name, ResolveKind& out);

/// Kahan-compensated summation: the error of each add is carried into the
/// next one, keeping the total's error O(ε) instead of O(T·ε) over T terms.
/// Order-sensitive like any float sum — callers must fix the add order.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - carry_;
    const double t = sum_ + y;
    carry_ = (t - sum_) - y;
    sum_ = t;
  }
  double total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double carry_ = 0.0;
};

/// Path-loss profile of the exponent α, mirroring the scalar fast paths in
/// pow_alpha_from_sq. The simd kernel is instantiated once per profile so the
/// δ^α computation in the fused loop is branch-free multiplies (plus one
/// vectorizable sqrt for α=3); kGeneral falls back to the same scalar
/// std::pow(d², α/2) call the scalar path makes, keeping per-term bits equal.
enum class AlphaProfile : std::uint8_t {
  kCube,     ///< α = 3:  δ³  = d²·√d²
  kQuartic,  ///< α = 4:  δ⁴  = d²·d²
  kSextic,   ///< α = 6:  δ⁶  = d²·d²·d²
  kGeneral,  ///< any other α: std::pow(d², α/2)
};

constexpr AlphaProfile classify_alpha(double alpha) {
  if (alpha == 3.0) return AlphaProfile::kCube;
  if (alpha == 4.0) return AlphaProfile::kQuartic;
  if (alpha == 6.0) return AlphaProfile::kSextic;
  return AlphaProfile::kGeneral;
}

/// δ^α from δ² for one profile; `half_alpha` = α/2 is only read by kGeneral.
/// Associativity matters: each specialization multiplies in the same order as
/// its pow_alpha_from_sq twin, so the two produce bitwise-equal results.
template <AlphaProfile P>
inline double pow_alpha_profiled(double d_sq, double half_alpha) {
  if constexpr (P == AlphaProfile::kCube) {
    return d_sq * std::sqrt(d_sq);
  } else if constexpr (P == AlphaProfile::kQuartic) {
    return d_sq * d_sq;
  } else if constexpr (P == AlphaProfile::kSextic) {
    return d_sq * d_sq * d_sq;
  } else {
    return std::pow(d_sq, half_alpha);
  }
}

/// Lane count of the batched Kahan reduction. Part of the numerical spec, not
/// a tuning knob: F(u) is defined as 8 strided compensated chains combined in
/// fixed lane order, so the value must never vary with the target ISA (8
/// doubles = one zmm register on AVX-512, two ymm on AVX2, four xmm on SSE2 —
/// all profitable; 16 spills the SSE2 register file).
inline constexpr std::size_t kKahanLanes = 8;

/// One transmitter's contribution P·g/δ^α from SoA arrays — the scalar twin
/// of the kernel's loop body (same expressions, same association, so the
/// same bits). The simd resolve path recomputes only its ~Δ·p candidates
/// through this instead of storing all T per-element contributions, keeping
/// the hot loop store-free.
template <AlphaProfile P>
inline double contribution_at(const double* x, const double* y,
                              const double* w, std::size_t j, double ux,
                              double uy, double half_alpha) {
  const double dx = ux - x[j];
  const double dy = uy - y[j];
  const double d_sq = dx * dx + dy * dy;
  return w[j] / pow_alpha_profiled<P>(d_sq, half_alpha);
}

/// The fused SoA accumulation kernel: one pass over contiguous x/y/w arrays
/// computes distance → δ^α → contribution and folds each contribution into
/// one of kKahanLanes independent Kahan chains (lane l takes elements
/// j ≡ l mod 8). The loop body is branch-free, store-free and carries no
/// loop-wide serial dependency — each lane's chain advances once per 8
/// elements — so the compiler vectorizes it (`#pragma omp simd`; see
/// docs/KERNELS.md for the -fopt-info-vec recipe). Returns the lane partials
/// combined in fixed order: Kahan over s₀..s₇ then -c₀..-c₇ — a pure
/// function of the element sequence, independent of thread count and ISA.
template <AlphaProfile P>
double field_accumulate_lanes(const double* x, const double* y,
                              const double* w, std::size_t count, double ux,
                              double uy, double half_alpha) {
  double sum[kKahanLanes] = {0.0};
  double carry[kKahanLanes] = {0.0};
  std::size_t j = 0;
  for (; j + kKahanLanes <= count; j += kKahanLanes) {
#pragma omp simd
    for (std::size_t l = 0; l < kKahanLanes; ++l) {
      const double p = contribution_at<P>(x, y, w, j + l, ux, uy, half_alpha);
      const double yk = p - carry[l];
      const double t = sum[l] + yk;
      carry[l] = (t - sum[l]) - yk;
      sum[l] = t;
    }
  }
  // Tail: the last count % 8 elements continue the round-robin lane
  // assignment, exactly as a scalar replay of the spec would.
  for (; j < count; ++j) {
    const std::size_t l = j % kKahanLanes;
    const double p = contribution_at<P>(x, y, w, j, ux, uy, half_alpha);
    const double yk = p - carry[l];
    const double t = sum[l] + yk;
    carry[l] = (t - sum[l]) - yk;
    sum[l] = t;
  }
  KahanSum total;
  for (std::size_t l = 0; l < kKahanLanes; ++l) total.add(sum[l]);
  for (std::size_t l = 0; l < kKahanLanes; ++l) total.add(-carry[l]);
  return total.total();
}

using FieldKernelFn = double (*)(const double*, const double*, const double*,
                                 std::size_t, double, double, double);
using FieldContribFn = double (*)(const double*, const double*, const double*,
                                  std::size_t, double, double, double);

/// The α-specialization table: one pre-instantiated kernel per profile,
/// selected once per slot (never inside the hot loop). Extending the kernel
/// to a new α fast path = add an AlphaProfile entry, a pow_alpha_profiled
/// branch, its pow_alpha_from_sq twin, and a row here.
inline FieldKernelFn field_kernel_for(AlphaProfile profile) {
  static constexpr FieldKernelFn kTable[] = {
      &field_accumulate_lanes<AlphaProfile::kCube>,
      &field_accumulate_lanes<AlphaProfile::kQuartic>,
      &field_accumulate_lanes<AlphaProfile::kSextic>,
      &field_accumulate_lanes<AlphaProfile::kGeneral>,
  };
  return kTable[static_cast<std::size_t>(profile)];
}

/// Companion table for the scalar per-candidate recompute.
inline FieldContribFn field_contrib_for(AlphaProfile profile) {
  static constexpr FieldContribFn kTable[] = {
      &contribution_at<AlphaProfile::kCube>,
      &contribution_at<AlphaProfile::kQuartic>,
      &contribution_at<AlphaProfile::kSextic>,
      &contribution_at<AlphaProfile::kGeneral>,
  };
  return kTable[static_cast<std::size_t>(profile)];
}

/// Gain functor for the non-fading media: every link has unit power gain.
/// (P · 1.0 is bitwise P, so the field path matches the naive path's
/// per-term arithmetic exactly.)
struct UnitGain {
  double operator()(std::size_t /*tx*/) const { return 1.0; }
};

/// Coverage functor for callers without precomputed adjacency: every
/// transmitter's candidate listeners come from the grid query.
struct NoCoverage {
  std::optional<std::span<const std::uint32_t>> operator()(
      std::size_t /*tx*/) const {
    return std::nullopt;
  }
};

/// A transmitter within decoding range of the listener under evaluation.
struct FieldCandidate {
  std::uint32_t tx;  ///< index into the transmitter span
  double signal;     ///< its received power at the listener
};

/// One listener's field evaluation: returns the Kahan-compensated total
/// F = Σ_j P·gain(j)/δ^α over ALL transmitters (ascending j) and fills
/// `candidates` with the transmitters within `candidate_radius` (the δ ≤ R_T
/// gate) and their signal powers. Aborts if a transmitter coincides with
/// `at`, mirroring interference_at.
template <typename GainFn>
double field_at(const SinrParams& params, const geometry::Point& at,
                std::span<const Transmitter> txs, double candidate_radius,
                GainFn&& gain, std::vector<FieldCandidate>& candidates) {
  const double r_sq = candidate_radius * candidate_radius;
  KahanSum field;
  candidates.clear();
  for (std::size_t j = 0; j < txs.size(); ++j) {
    const double d_sq = geometry::distance_sq(at, txs[j].position);
    SINRCOLOR_CHECK_MSG(d_sq > 0.0, "transmitter coincides with listener");
    const double power =
        params.power * gain(j) / pow_alpha_from_sq(d_sq, params.alpha);
    field.add(power);
    if (d_sq <= r_sq) {
      candidates.push_back({static_cast<std::uint32_t>(j), power});
    }
  }
  return field.total();
}

/// The unique candidate (if any) whose signal clears the SINR threshold
/// against the shared field: signal ≥ β·(N + F − signal). With β ≥ 1 at most
/// one candidate can carry more than half the received power; asserted.
/// Returns the winning transmitter index; writes the decode margin
/// (achieved SINR over β) through `margin` when non-null.
inline std::optional<std::size_t> resolve_from_field(
    const SinrParams& params, double field,
    std::span<const FieldCandidate> candidates, double* margin = nullptr) {
  std::optional<std::size_t> winner;
  for (const FieldCandidate& c : candidates) {
    const double threshold =
        params.beta * (params.noise + (field - c.signal));
    if (c.signal >= threshold) {
      SINRCOLOR_CHECK_MSG(!winner.has_value(),
                          "beta >= 1 forbids two decodable senders");
      winner = c.tx;
      if (margin != nullptr) *margin = c.signal / threshold;
    }
  }
  return winner;
}

/// Batch per-slot resolver with reusable scratch. Enumerates the listeners
/// covered by any transmitter through the spatial index, evaluates F(u) once
/// per covered listener, and reports every successful decode sorted by
/// listener id. Listeners shard contiguously over `pool` (null or 1 thread
/// ⇒ inline); per-listener work is independent and merged in shard order, so
/// the output never depends on the thread count.
class FieldEngine {
 public:
  struct Decode {
    std::uint32_t listener;
    std::uint32_t tx;    ///< index into the transmitter span
    double margin;       ///< achieved SINR over β
  };

  /// Pre-sizes every scratch buffer to its structural bound (`nodes`
  /// listeners / transmitters, `shard_count` pool shards) so resolve_slot
  /// never allocates afterwards — amortized growth would otherwise spike on
  /// whichever late slot happens to set a coverage record, breaking the
  /// zero-allocation steady-state contract. ~28 bytes per node per shard.
  /// `candidate_pairs` bounds the simd path's (listener, tx) pair arena:
  /// every pair has δ ≤ R_T, so Σ_tx |coverage(tx)| ≤ n·(Δ+1) when every
  /// node transmits — callers pass n·(max_degree+1).
  void reserve(std::size_t nodes, std::size_t shard_count,
               std::size_t candidate_pairs = 0) {
    if (touched_.size() < nodes) touched_.resize(nodes, 0);
    covered_.reserve(nodes);
    soa_x_.reserve(nodes);
    soa_y_.reserve(nodes);
    soa_w_.reserve(nodes);
    if (cand_begin_.size() < nodes) {
      cand_begin_.resize(nodes, 0);
      cand_count_.resize(nodes, 0);
    }
    pairs_.reserve(candidate_pairs);
    cand_idx_.reserve(candidate_pairs);
    shards_.resize(std::max({shards_.size(), shard_count, std::size_t{1}}));
    for (Shard& shard : shards_) {
      shard.candidates.reserve(nodes);
      shard.decodes.reserve(nodes);
      shard.weights.reserve(nodes);
    }
  }

  /// `positions[u]` is listener u's location; `listening[u]` gates
  /// eligibility (transmitting or asleep nodes are skipped). `index` must be
  /// built over the same positions with the same ids. `gain_for(u)` returns
  /// the per-transmitter gain functor for listener u (UnitGain factory for
  /// the non-fading media); `gain_listener_invariant` declares that every
  /// listener's functor returns the same gains (true for the non-fading
  /// media, including jammed ones), letting the simd path build its weight
  /// array once per slot instead of once per listener. `coverage_for(j)`
  /// optionally returns transmitter j's precomputed candidate-listener span
  /// (the UDG neighborhood of a node transmitter — δ ≤ R_T is exactly
  /// adjacency when the graph radius equals R_T, the same structural fact
  /// the naive path iterates); nullopt falls back to a grid query (jammers,
  /// or callers without a graph). Only the simd path consumes it — the
  /// scalar field path keeps its banked grid-pass behavior. `kind` selects
  /// the per-listener evaluation: kField runs the scalar field_at, kSimd the
  /// SoA batch kernel (kNaive is handled by the media, not here). Results
  /// land in `decodes`, cleared first.
  template <typename GainForListener, typename CoverageFor>
  void resolve_slot(const SinrParams& params, std::span<const Transmitter> txs,
                    const geometry::GridIndex& index,
                    std::span<const geometry::Point> positions,
                    const std::vector<bool>& listening, double candidate_radius,
                    GainForListener&& gain_for, bool gain_listener_invariant,
                    CoverageFor&& coverage_for, ResolveKind kind,
                    common::TaskPool* pool, std::vector<Decode>& decodes) {
    decodes.clear();
    if (txs.empty()) return;
    const bool simd = kind == ResolveKind::kSimd;
    collect_covered(txs, index, listening, candidate_radius, coverage_for,
                    /*record_pairs=*/simd);

    const std::size_t shard_count = std::max<std::size_t>(
        1, std::min(pool != nullptr ? pool->thread_count() : 1,
                    covered_.size()));
    shards_.resize(std::max(shards_.size(), shard_count));
    if (simd && !covered_.empty()) {
      build_candidate_csr();
      // SoA snapshot of the transmitter batch. Weights fold power·gain so the
      // kernel body is a single divide; with listener-invariant gains they are
      // computed once here, otherwise per listener into shard scratch.
      soa_x_.clear();
      soa_y_.clear();
      for (const Transmitter& t : txs) {
        soa_x_.push_back(t.position.x);
        soa_y_.push_back(t.position.y);
      }
      if (gain_listener_invariant) {
        auto gain = gain_for(covered_.front());
        soa_w_.clear();
        for (std::size_t j = 0; j < txs.size(); ++j) {
          soa_w_.push_back(params.power * gain(j));
        }
      }
    }
    const auto shard_body_field = [&](std::size_t s) {
      Shard& shard = shards_[s];
      shard.decodes.clear();
      const auto [begin, end] =
          common::TaskPool::shard_range(covered_.size(), shard_count, s);
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t u = covered_[k];
        auto gain = gain_for(u);
        const double field = field_at(params, positions[u], txs,
                                      candidate_radius, gain,
                                      shard.candidates);
        double margin = 0.0;
        const auto winner =
            resolve_from_field(params, field, shard.candidates, &margin);
        if (winner.has_value()) {
          shard.decodes.push_back(
              {u, static_cast<std::uint32_t>(*winner), margin});
        }
      }
    };
    const auto shard_body_simd = [&](std::size_t s) {
      Shard& shard = shards_[s];
      shard.decodes.clear();
      const auto [begin, end] =
          common::TaskPool::shard_range(covered_.size(), shard_count, s);
      const AlphaProfile profile = classify_alpha(params.alpha);
      const FieldKernelFn kernel = field_kernel_for(profile);
      const FieldContribFn contrib = field_contrib_for(profile);
      const double half_alpha = params.alpha / 2.0;
      const double* x = soa_x_.data();
      const double* y = soa_y_.data();
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t u = covered_[k];
        const double* w = soa_w_.data();
        if (!gain_listener_invariant) {
          auto gain = gain_for(u);
          if (shard.weights.size() < txs.size()) {
            shard.weights.resize(txs.size());
          }
          for (std::size_t j = 0; j < txs.size(); ++j) {
            shard.weights[j] = params.power * gain(j);
          }
          w = shard.weights.data();
        }
        const double ux = positions[u].x;
        const double uy = positions[u].y;
        const double field =
            kernel(x, y, w, txs.size(), ux, uy, half_alpha);
        // The kernel body is branch-free; a coincident transmitter shows up
        // here as δ² = 0 ⇒ p = ∞ ⇒ F = ∞/NaN, mirroring field_at's abort.
        SINRCOLOR_CHECK_MSG(std::isfinite(field),
                            "transmitter coincides with listener");
        // Candidate pass over the coverage CSR (ascending tx order); each
        // candidate's signal is recomputed through the kernel's scalar twin
        // — the same bits the fused loop folded into F.
        double margin = 0.0;
        std::optional<std::uint32_t> winner;
        const std::uint32_t cb = cand_begin_[u];
        for (std::uint32_t i = 0; i < cand_count_[u]; ++i) {
          const std::uint32_t j = cand_idx_[cb + i];
          const double signal = contrib(x, y, w, j, ux, uy, half_alpha);
          const double threshold =
              params.beta * (params.noise + (field - signal));
          if (signal >= threshold) {
            SINRCOLOR_CHECK_MSG(!winner.has_value(),
                                "beta >= 1 forbids two decodable senders");
            winner = j;
            margin = signal / threshold;
          }
        }
        if (winner.has_value()) {
          shard.decodes.push_back({u, *winner, margin});
        }
      }
    };
    const auto shard_body = [&](std::size_t s) {
      if (simd) {
        shard_body_simd(s);
      } else {
        shard_body_field(s);
      }
    };
    // One kFieldAccum scope per shard when profiling. The scope lives in this
    // wrapper — NOT inside shard_body — so the unprofiled path runs the hot
    // loop with no scope object bracketing it (a live non-trivial destructor
    // around the loop measurably pessimizes its codegen). Profiler::record is
    // internally synchronized, and a worker-thread scope roots its own
    // thread-local stack — it never perturbs the caller's nesting.
    const auto run_shard = [&](std::size_t s) {
      if (profiler_ == nullptr) {
        shard_body(s);
      } else {
        SINRCOLOR_PROFILE(profiler_, obs::Phase::kFieldAccum);
        shard_body(s);
      }
    };
    if (shard_count == 1) {
      run_shard(0);
    } else {
      pool->run_shards(shard_count, run_shard);
    }
    // Shards are contiguous ranges of the ascending covered list, so a
    // shard-order merge yields listener-ascending decodes for ANY count.
    for (std::size_t s = 0; s < shard_count; ++s) {
      decodes.insert(decodes.end(), shards_[s].decodes.begin(),
                     shards_[s].decodes.end());
    }
  }

  /// Attaches the slot-phase profiler (null = off); one kFieldAccum scope is
  /// recorded per shard per resolve. Timing only — decodes are unaffected.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Heap footprint of the engine's scratch (capacities, all buffers),
  /// feeding the simulator's bytes/node accounting.
  std::size_t memory_bytes() const {
    std::size_t bytes =
        touched_.capacity() * sizeof(std::uint64_t) +
        covered_.capacity() * sizeof(std::uint32_t) +
        (soa_x_.capacity() + soa_y_.capacity() + soa_w_.capacity()) *
            sizeof(double) +
        pairs_.capacity() * sizeof(CandidatePair) +
        (cand_begin_.capacity() + cand_count_.capacity() +
         cand_idx_.capacity()) *
            sizeof(std::uint32_t) +
        shards_.capacity() * sizeof(Shard);
    for (const Shard& shard : shards_) {
      bytes += shard.candidates.capacity() * sizeof(FieldCandidate) +
               shard.decodes.capacity() * sizeof(Decode) +
               shard.weights.capacity() * sizeof(double);
    }
    return bytes;
  }

 private:
  template <typename CoverageFor>
  void collect_covered(std::span<const Transmitter> txs,
                       const geometry::GridIndex& index,
                       const std::vector<bool>& listening,
                       double candidate_radius, CoverageFor&& coverage_for,
                       bool record_pairs) {
    if (touched_.size() < listening.size()) touched_.resize(listening.size(), 0);
    ++epoch_;
    covered_.clear();
    pairs_.clear();
    for (std::uint32_t tx_id = 0; tx_id < txs.size(); ++tx_id) {
      if (record_pairs) {
        // Fast coverage for the simd path: a node transmitter's candidate
        // listeners are exactly its UDG neighbors (same δ ≤ R_T gate, same
        // d² bits at graph-build time), already materialized as a sorted
        // CSR span — no cell scan, no distance recomputation.
        const auto span = coverage_for(std::size_t{tx_id});
        if (span.has_value()) {
          for (const std::uint32_t u : *span) {
            if (!listening[u]) continue;
            pairs_.push_back({u, tx_id});
            if (touched_[u] == epoch_) continue;
            touched_[u] = epoch_;
            covered_.push_back(u);
          }
          continue;
        }
      }
      const Transmitter& t = txs[tx_id];
      index.for_each_within(
          t.position, candidate_radius,
          [&](std::size_t u, const geometry::Point& p) {
            // Half-duplex: the node at the transmitter's own position is the
            // transmitter itself and cannot hear its own slot (the naive path
            // excludes self by iterating UDG neighborhoods).
            if (geometry::distance_sq(t.position, p) == 0.0) return;
            if (!listening[u]) return;
            // The grid gate is the δ ≤ R_T candidate gate (same d² bits:
            // distance_sq is symmetric under IEEE negation), so this pass
            // doubles as the simd path's candidate enumeration — recorded
            // per (listener, tx) BEFORE the first-coverage dedup below.
            if (record_pairs) {
              pairs_.push_back({static_cast<std::uint32_t>(u), tx_id});
            }
            if (touched_[u] == epoch_) return;
            touched_[u] = epoch_;
            covered_.push_back(static_cast<std::uint32_t>(u));
          });
    }
    std::sort(covered_.begin(), covered_.end());
  }

  /// Scatters the coverage pairs into per-listener candidate lists (CSR over
  /// cand_idx_). pairs_ is tx-ascending per listener (outer loop order) and
  /// the counting-sort scatter is stable, so each listener's list replays
  /// field_at's ascending candidate order exactly.
  void build_candidate_csr() {
    const std::size_t nodes = touched_.size();
    if (cand_begin_.size() < nodes) {
      cand_begin_.resize(nodes, 0);
      cand_count_.resize(nodes, 0);
    }
    for (const std::uint32_t u : covered_) cand_count_[u] = 0;
    for (const CandidatePair& pair : pairs_) ++cand_count_[pair.listener];
    std::uint32_t offset = 0;
    for (const std::uint32_t u : covered_) {
      cand_begin_[u] = offset;
      offset += cand_count_[u];
      cand_count_[u] = 0;
    }
    if (cand_idx_.size() < offset) cand_idx_.resize(offset);
    for (const CandidatePair& pair : pairs_) {
      cand_idx_[cand_begin_[pair.listener] + cand_count_[pair.listener]++] =
          pair.tx;
    }
  }

  struct CandidatePair {
    std::uint32_t listener;
    std::uint32_t tx;
  };

  struct Shard {
    std::vector<FieldCandidate> candidates;
    std::vector<Decode> decodes;
    std::vector<double> weights;  ///< simd: per-listener P·g(j) (fading only)
  };

  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> touched_;
  std::vector<std::uint32_t> covered_;
  // Simd-path scratch: SoA transmitter snapshot plus the coverage-pair CSR.
  std::vector<double> soa_x_;
  std::vector<double> soa_y_;
  std::vector<double> soa_w_;
  std::vector<CandidatePair> pairs_;
  std::vector<std::uint32_t> cand_begin_;
  std::vector<std::uint32_t> cand_count_;
  std::vector<std::uint32_t> cand_idx_;
  std::vector<Shard> shards_;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace sinrcolor::sinr
