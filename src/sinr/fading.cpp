#include "sinr/fading.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sinrcolor::sinr {
namespace {

// Two independent uniforms in (0, 1) from a link/slot-keyed hash chain.
struct TwoUniforms {
  double u1;
  double u2;
};

TwoUniforms link_uniforms(const FadingSpec& spec, std::int64_t slot,
                          std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  std::uint64_t key = spec.seed;
  key = common::derive_seed(key, (static_cast<std::uint64_t>(lo) << 32) | hi);
  if (!spec.static_per_link) {
    key = common::derive_seed(key, static_cast<std::uint64_t>(slot));
  }
  std::uint64_t state = key;
  const auto to_unit = [](std::uint64_t bits) {
    // (0, 1): never exactly 0 so log() below stays finite.
    return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
  };
  const double u1 = to_unit(common::splitmix64(state));
  const double u2 = to_unit(common::splitmix64(state));
  return {u1, u2};
}

}  // namespace

double fade_factor(const FadingSpec& spec, std::int64_t slot, std::uint32_t a,
                   std::uint32_t b) {
  switch (spec.kind) {
    case FadingKind::kNone:
      return 1.0;
    case FadingKind::kRayleigh: {
      // Power gain of a Rayleigh-faded link is exponential with unit mean.
      const auto [u1, u2] = link_uniforms(spec, slot, a, b);
      (void)u2;
      return -std::log(u1);
    }
    case FadingKind::kLogNormal: {
      SINRCOLOR_CHECK(spec.sigma_db >= 0.0);
      const auto [u1, u2] = link_uniforms(spec, slot, a, b);
      // Box–Muller; gain = 10^{X/10} with X ~ N(0, sigma_db²).
      const double gauss =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      return std::pow(10.0, spec.sigma_db * gauss / 10.0);
    }
  }
  return 1.0;
}

}  // namespace sinrcolor::sinr
