// Interference probes for the Lemma-3 experiment (bench X5).
//
// Lemma 3 bounds the *probabilistic* interference at u caused by nodes
// outside I_u: Ψ_u^{v∉I_u} = P·Σ_{v∉I_u} p_v/δ(u,v)^α ≤ P/(2ρβR_T^α).
// The probe evaluates both that expectation (from per-node sending
// probabilities) and the realized per-slot interference from actual
// transmitter draws, so the bound and its Markov-slack usage can be measured.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"

namespace sinrcolor::sinr {

/// Ψ_u^{v∉disc(radius)}: expected (probabilistic) interference at `at` when
/// node i at positions[i] transmits independently with probability probs[i].
/// The node co-located with `at` (if any) must be excluded via `self`.
double probabilistic_interference_outside(
    const SinrParams& params, const geometry::Point& at,
    std::span<const geometry::Point> positions, std::span<const double> probs,
    double radius, std::size_t self);

/// Running max/mean of probe measurements against a fixed bound.
class BoundProbe {
 public:
  explicit BoundProbe(double bound) : bound_(bound) {}

  void record(double value);

  double bound() const { return bound_; }
  double max_observed() const { return max_; }
  double mean_observed() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::size_t samples() const { return count_; }
  std::size_t violations() const { return violations_; }
  /// max observed / bound; < 1 means the bound held with margin.
  double worst_ratio() const { return bound_ > 0.0 ? max_ / bound_ : 0.0; }

 private:
  double bound_;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::size_t count_ = 0;
  std::size_t violations_ = 0;
};

}  // namespace sinrcolor::sinr
