#include "sinr/params.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "sinr/medium_field.h"

namespace sinrcolor::sinr {

void SinrParams::validate() const {
  SINRCOLOR_CHECK_MSG(power > 0.0, "transmit power P must be positive");
  SINRCOLOR_CHECK_MSG(noise > 0.0, "ambient noise N must be positive");
  SINRCOLOR_CHECK_MSG(alpha > 2.0, "path-loss exponent alpha must exceed 2");
  SINRCOLOR_CHECK_MSG(beta >= 1.0, "SINR threshold beta must be at least 1");
  SINRCOLOR_CHECK_MSG(rho > 1.0, "Markov constant rho must exceed 1");
}

double SinrParams::r_max() const {
  return std::pow(power / (noise * beta), 1.0 / alpha);
}

double SinrParams::r_t() const {
  return std::pow(power / (2.0 * noise * beta), 1.0 / alpha);
}

double SinrParams::r_i() const {
  const double base = 96.0 * rho * beta * (alpha - 1.0) / (alpha - 2.0);
  return 2.0 * r_t() * std::pow(base, 1.0 / (alpha - 2.0));
}

double SinrParams::lemma3_interference_bound() const {
  return power / (2.0 * rho * beta * std::pow(r_t(), alpha));
}

double SinrParams::mac_distance_d() const {
  return std::pow(32.0 * (alpha - 1.0) / (alpha - 2.0) * beta, 1.0 / alpha);
}

SinrParams SinrParams::with_range_scaled(double s) const {
  SINRCOLOR_CHECK(s > 0.0);
  SinrParams scaled = *this;
  scaled.power = power * std::pow(s, alpha);
  return scaled;
}

std::string SinrParams::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "SinrParams{P=%g, N=%g, alpha=%g, beta=%g, rho=%g, R_T=%.4g, "
                "R_I=%.4g, d=%.4g}",
                power, noise, alpha, beta, rho, r_t(), r_i(), mac_distance_d());
  return buf;
}

double received_power(const SinrParams& p, double dist) {
  SINRCOLOR_CHECK(dist > 0.0);
  // δ^α via the shared fast path (δ² route), matching the per-term
  // arithmetic of every resolve kernel on the specialized α ∈ {3,4,6}.
  return p.power / pow_alpha_from_sq(dist * dist, p.alpha);
}

}  // namespace sinrcolor::sinr
