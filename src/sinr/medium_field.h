// The additive interference field: total received power at a point from a
// set of simultaneous transmitters.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "sinr/params.h"

namespace sinrcolor::sinr {

/// A transmitter: a position (its index identifies it to callers).
struct Transmitter {
  geometry::Point position;
};

/// δ^α computed from the squared distance, with fast paths for the common
/// even/odd integer exponents (α = 4 is the library default and per-slot
/// reception resolution calls this in a tight loop).
inline double pow_alpha_from_sq(double d_sq, double alpha) {
  if (alpha == 4.0) return d_sq * d_sq;
  if (alpha == 3.0) return d_sq * std::sqrt(d_sq);
  if (alpha == 6.0) return d_sq * d_sq * d_sq;
  return std::pow(d_sq, alpha / 2.0);
}

/// Σ over transmitters of P/δ(at, tx)^α, skipping any transmitter whose index
/// equals `exclude` (pass SIZE_MAX to include all). Transmitters co-located
/// with `at` contribute P/ε^α-style blowups; callers must exclude the node
/// itself. Aborts if a non-excluded transmitter coincides with `at`.
double interference_at(const SinrParams& params, const geometry::Point& at,
                       std::span<const Transmitter> transmitters,
                       std::size_t exclude = static_cast<std::size_t>(-1));

/// SINR of the link from transmitters[sender] to the point `at`, given every
/// other transmitter interferes.
double sinr_at(const SinrParams& params, const geometry::Point& at,
               std::span<const Transmitter> transmitters, std::size_t sender);

/// Interference at `at` from transmitters strictly farther than `radius`
/// (used by the Lemma-3 probes, which split the field at R_I).
double interference_outside(const SinrParams& params, const geometry::Point& at,
                            std::span<const Transmitter> transmitters,
                            double radius);

}  // namespace sinrcolor::sinr
