// Pluggable per-slot reception semantics.
//
// SinrInterferenceModel — the paper's physical model: listener u decodes
//   sender v iff δ(u,v) ≤ R_T and P/δ^α ≥ β(N + Σ_{w≠v} P/δ(u,w)^α).
// GraphInterferenceModel — the simplified graph-based model the original MW
//   algorithm assumes: u decodes iff exactly one UDG-neighbor transmits.
//
// Both honour half-duplex: only nodes in `listening` can receive.
//
// The SINR media run one of two resolve paths (ResolveOptions::kind):
//   kField — the shared interference-field engine (sinr/field_engine.h):
//            F(u) is summed once per covered listener, every candidate
//            resolves in O(1) against F − signal, and listeners shard over a
//            deterministic common::TaskPool (ResolveOptions::threads).
//   kNaive — the original per-(sender, listener) loops, kept as the A/B
//            oracle; deliveries must match the field path exactly
//            (tests/field_equivalence_test.cpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/task_pool.h"
#include "graph/unit_disk_graph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "radio/fault_injection.h"
#include "radio/message.h"
#include "sinr/fading.h"
#include "sinr/field_engine.h"
#include "sinr/params.h"

namespace sinrcolor::radio {

/// How a SINR medium resolves receptions. Defaults run the field fast path
/// single-threaded; `threads` > 1 shards covered listeners over a
/// deterministic pool (byte-identical results for any count). kSimd swaps the
/// per-listener scalar loop for the SoA batch kernel (docs/KERNELS.md) with
/// the same delivery semantics; kNaive keeps the per-pair reference oracle.
struct ResolveOptions {
  sinr::ResolveKind kind = sinr::ResolveKind::kField;
  std::size_t threads = 1;
};

/// Asserts that the UDG is the reachability graph of the physical layer:
/// `graph.radius()` must equal `params.r_t()` (within 1e-9 relative). Every
/// SINR medium and the MAC executors share this constructor-time contract.
void check_radius_matches_phys(const graph::UnitDiskGraph& graph,
                               const sinr::SinrParams& params);

class InterferenceModel {
 public:
  virtual ~InterferenceModel() = default;

  /// Fills deliveries[v] with the message node v decodes in `slot` (nullopt
  /// if none). `listening[v]` is false for asleep or transmitting nodes.
  /// `deliveries` must be pre-sized to the node count and cleared by caller.
  /// `slot` keys any stochastic channel state (fading draws).
  virtual void resolve(Slot slot, const std::vector<TxRecord>& transmissions,
                       const std::vector<bool>& listening,
                       std::vector<std::optional<Message>>& deliveries) const = 0;

  virtual const char* name() const = 0;

  /// Attaches a histogram that receives the SINR margin (achieved SINR
  /// divided by β) of every successful decode, in both SINR media (plain and
  /// fading) and under both resolve paths. Models without a physical layer
  /// (GraphInterferenceModel) record nothing. Null detaches.
  void set_margin_histogram(obs::Histogram* histogram) {
    margin_histogram_ = histogram;
  }

  /// The channel-level disturbance of the NEXT resolve (set by the simulator
  /// each slot when a fault injector is installed; null = clean channel).
  /// SINR media scale the noise floor by noise_factor and inject every
  /// jammer into the interference field (both resolve paths, delivery-
  /// equivalent); the graph medium blanks listeners inside a jammer's
  /// blocking radius. The pointed-to data must stay valid through resolve().
  void set_disturbance(const ChannelDisturbance* disturbance) {
    disturbance_ = disturbance;
  }

  /// Attaches the slot-phase profiler (null detaches — the default). The
  /// simulator latches this at run() start; SINR media forward it to their
  /// field engine so per-shard kFieldAccum scopes land in the same sink.
  virtual void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Bytes of model-owned scratch (engine buffers, per-slot arrays), measured
  /// from container capacities. Feeds the simulator's bytes/node accounting;
  /// 0 = unreported.
  virtual std::size_t memory_bytes() const { return 0; }

 protected:
  obs::Histogram* margin_histogram_ = nullptr;
  const ChannelDisturbance* disturbance_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

class SinrInterferenceModel final : public InterferenceModel {
 public:
  /// `graph.radius()` must equal `params.r_t()` (the UDG is the reachability
  /// graph of the physical layer); checked at construction.
  SinrInterferenceModel(const graph::UnitDiskGraph& graph,
                        sinr::SinrParams params, ResolveOptions options = {});

  void resolve(Slot slot, const std::vector<TxRecord>& transmissions,
               const std::vector<bool>& listening,
               std::vector<std::optional<Message>>& deliveries) const override;

  const char* name() const override { return "sinr"; }
  const sinr::SinrParams& params() const { return params_; }
  const ResolveOptions& options() const { return options_; }

  void set_profiler(obs::Profiler* profiler) override {
    InterferenceModel::set_profiler(profiler);
    engine_.set_profiler(profiler);
  }

  std::size_t memory_bytes() const override {
    return sizeof(*this) + engine_.memory_bytes() +
           decodes_.capacity() * sizeof(sinr::FieldEngine::Decode) +
           txs_.capacity() * sizeof(sinr::Transmitter);
  }

 private:
  void resolve_naive(const std::vector<TxRecord>& transmissions,
                     const std::vector<bool>& listening,
                     std::vector<std::optional<Message>>& deliveries) const;

  const graph::UnitDiskGraph& graph_;
  sinr::SinrParams params_;
  ResolveOptions options_;
  std::unique_ptr<common::TaskPool> pool_;
  mutable sinr::FieldEngine engine_;
  mutable std::vector<sinr::FieldEngine::Decode> decodes_;
  /// Slot scratch (positions of this slot's transmitters). Grows to the max
  /// concurrent-tx count within the first few slots, then stays put — resolve
  /// is allocation-free in steady state.
  mutable std::vector<sinr::Transmitter> txs_;
};

/// SINR medium with stochastic per-link fading (sinr/fading.h): the received
/// power of every (transmitter, listener) pair — signal AND interference —
/// is scaled by its fade factor. With β ≥ 1 at most one sender remains
/// decodable per listener (see fading.h), so the invariant check stays.
class FadingSinrInterferenceModel final : public InterferenceModel {
 public:
  FadingSinrInterferenceModel(const graph::UnitDiskGraph& graph,
                              sinr::SinrParams params, sinr::FadingSpec fading,
                              ResolveOptions options = {});

  void resolve(Slot slot, const std::vector<TxRecord>& transmissions,
               const std::vector<bool>& listening,
               std::vector<std::optional<Message>>& deliveries) const override;

  const char* name() const override { return "sinr+fading"; }
  const sinr::FadingSpec& fading() const { return fading_; }
  const ResolveOptions& options() const { return options_; }

  void set_profiler(obs::Profiler* profiler) override {
    InterferenceModel::set_profiler(profiler);
    engine_.set_profiler(profiler);
  }

  std::size_t memory_bytes() const override {
    return sizeof(*this) + engine_.memory_bytes() +
           decodes_.capacity() * sizeof(sinr::FieldEngine::Decode) +
           tx_ids_.capacity() * sizeof(graph::NodeId) +
           txs_.capacity() * sizeof(sinr::Transmitter);
  }

 private:
  void resolve_naive(Slot slot, const std::vector<TxRecord>& transmissions,
                     const std::vector<bool>& listening,
                     std::vector<std::optional<Message>>& deliveries) const;

  const graph::UnitDiskGraph& graph_;
  sinr::SinrParams params_;
  sinr::FadingSpec fading_;
  ResolveOptions options_;
  std::unique_ptr<common::TaskPool> pool_;
  mutable sinr::FieldEngine engine_;
  mutable std::vector<sinr::FieldEngine::Decode> decodes_;
  mutable std::vector<graph::NodeId> tx_ids_;
  mutable std::vector<sinr::Transmitter> txs_;  ///< slot scratch, see above
};

class GraphInterferenceModel final : public InterferenceModel {
 public:
  explicit GraphInterferenceModel(const graph::UnitDiskGraph& graph)
      : graph_(graph),
        covering_(graph.size(), 0),
        candidate_tx_(graph.size(), 0) {}

  void resolve(Slot slot, const std::vector<TxRecord>& transmissions,
               const std::vector<bool>& listening,
               std::vector<std::optional<Message>>& deliveries) const override;

  const char* name() const override { return "graph"; }

  std::size_t memory_bytes() const override {
    return sizeof(*this) + covering_.capacity() * sizeof(std::uint8_t) +
           candidate_tx_.capacity() * sizeof(std::size_t);
  }

 private:
  const graph::UnitDiskGraph& graph_;
  /// Per-slot scratch, sized once at construction (zero-alloc resolve):
  /// covering_[u] = transmitting neighbors of u (saturating at 2),
  /// candidate_tx_[u] = index of the last one (valid iff covering_[u] == 1).
  mutable std::vector<std::uint8_t> covering_;
  mutable std::vector<std::size_t> candidate_tx_;
};

}  // namespace sinrcolor::radio
