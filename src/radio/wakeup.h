// Wake-up schedules. The paper's model lets nodes wake up asynchronously and
// spontaneously; experiments exercise simultaneous storms, uniform windows
// and staggered patterns.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "radio/message.h"

namespace sinrcolor::radio {

/// wake[v] = slot in which node v wakes up (first slot it participates in).
using WakeupSchedule = std::vector<Slot>;

/// All nodes wake in slot 0 (synchronized storm; worst case for contention).
WakeupSchedule simultaneous_wakeup(std::size_t n);

/// Each node wakes uniformly at random in [0, window].
WakeupSchedule uniform_wakeup(std::size_t n, Slot window, common::Rng& rng);

/// Node v wakes at slot v * interval (deterministic stagger).
WakeupSchedule staggered_wakeup(std::size_t n, Slot interval);

/// Latest wake-up slot in the schedule (0 for empty schedules).
Slot last_wakeup(const WakeupSchedule& schedule);

}  // namespace sinrcolor::radio
