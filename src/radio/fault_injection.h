// Fault-injection hook points of the radio layer.
//
// The simulator and the interference media know nothing about fault PLANS —
// they only consume this narrow interface, queried once per slot. The
// declarative plan format, its SplitMix64-derived randomness and all
// bookkeeping live one layer up in src/faults (FaultEngine implements
// FaultInjector). Keeping the interface here lets radio stay below faults in
// the dependency order while both SINR resolve paths honour the same
// channel-level disturbance.
//
// Determinism contract: every query is a pure function of (slot, ids) and
// the injector's own construction-time state. Injectors must not consume
// the per-node RNG streams and must not depend on thread count — the same
// plan + seed is byte-identical at any --threads (tests/faults_test.cpp).
#pragma once

#include <span>

#include "geometry/point.h"
#include "graph/unit_disk_graph.h"
#include "radio/message.h"

namespace sinrcolor::radio {

/// An external transmitter injected into the interference field for one
/// slot. Under the SINR media it contributes power/δ^α to every listener's
/// interference sum (and is never decodable as a message); under the graph
/// medium it blanks every listener within `radius`.
struct Jammer {
  geometry::Point position;
  double power = 1.0;   ///< transmit power (SINR media)
  double radius = 0.0;  ///< blocking radius (graph medium)
};

/// Channel-level disturbance of one slot, shared by every listener.
/// A null disturbance pointer means a clean channel (the common case pays
/// one pointer test per slot).
struct ChannelDisturbance {
  /// Multiplies the medium's noise floor N (drift ≥ 1 raises it; bursts are
  /// windows with a large factor). Must be > 0.
  double noise_factor = 1.0;
  /// Jammers active this slot. Positions must not coincide with any node
  /// position (the SINR field arithmetic treats a zero distance as a
  /// contract violation, exactly as for real transmitters).
  std::span<const Jammer> jammers;
};

/// Per-slot fault queries the simulator and the media consult. All methods
/// must be cheap: they run inside the slot loop.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// The channel disturbance of `slot`, or nullptr for a clean channel.
  /// Called once per slot before transmission decisions; the returned
  /// pointer (and the jammer span inside) must stay valid for the slot.
  virtual const ChannelDisturbance* channel_disturbance(Slot slot) = 0;

  /// Transient deafness: true iff node v's receiver is off in `slot`. A deaf
  /// node transmits and advances normally but decodes nothing (its presence
  /// in the interference field is unchanged — deafness is a receiver fault).
  virtual bool receiver_disabled(Slot slot, graph::NodeId v) const = 0;

  /// Probabilistic per-link message loss, applied to an otherwise successful
  /// decode: true suppresses the delivery from `sender` to `listener`.
  virtual bool drop_delivery(Slot slot, graph::NodeId sender,
                             graph::NodeId listener) const = 0;
};

}  // namespace sinrcolor::radio
