#include "radio/wakeup.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::radio {

WakeupSchedule simultaneous_wakeup(std::size_t n) {
  return WakeupSchedule(n, 0);
}

WakeupSchedule uniform_wakeup(std::size_t n, Slot window, common::Rng& rng) {
  SINRCOLOR_CHECK(window >= 0);
  WakeupSchedule schedule(n);
  for (auto& slot : schedule) slot = rng.uniform_int(0, window);
  return schedule;
}

WakeupSchedule staggered_wakeup(std::size_t n, Slot interval) {
  SINRCOLOR_CHECK(interval >= 0);
  WakeupSchedule schedule(n);
  for (std::size_t v = 0; v < n; ++v) {
    schedule[v] = static_cast<Slot>(v) * interval;
  }
  return schedule;
}

Slot last_wakeup(const WakeupSchedule& schedule) {
  if (schedule.empty()) return 0;
  return *std::max_element(schedule.begin(), schedule.end());
}

}  // namespace sinrcolor::radio
