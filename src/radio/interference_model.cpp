#include "radio/interference_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sinr/medium_field.h"

namespace sinrcolor::radio {

namespace {

std::unique_ptr<common::TaskPool> make_pool(const ResolveOptions& options) {
  if (options.threads <= 1) return nullptr;
  return std::make_unique<common::TaskPool>(options.threads);
}

}  // namespace

void check_radius_matches_phys(const graph::UnitDiskGraph& graph,
                               const sinr::SinrParams& params) {
  const double mismatch = std::abs(graph.radius() - params.r_t());
  SINRCOLOR_CHECK_MSG(mismatch <= 1e-9 * params.r_t(),
                      "UDG radius must equal the physical-layer R_T");
}

SinrInterferenceModel::SinrInterferenceModel(const graph::UnitDiskGraph& graph,
                                             sinr::SinrParams params,
                                             ResolveOptions options)
    : graph_(graph),
      params_(params),
      options_(options),
      pool_(make_pool(options)) {
  params_.validate();
  check_radius_matches_phys(graph_, params_);
  engine_.reserve(graph_.size(), options_.threads);
  decodes_.reserve(graph_.size());
  txs_.reserve(graph_.size());
}

void SinrInterferenceModel::resolve(
    Slot /*slot*/, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  if (options_.kind == sinr::ResolveKind::kNaive) {
    resolve_naive(transmissions, listening, deliveries);
    return;
  }

  txs_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
  }
  engine_.resolve_slot(
      params_, txs_, graph_.index(), graph_.deployment().points, listening,
      graph_.radius(),
      [](graph::NodeId /*listener*/) { return sinr::UnitGain{}; }, pool_.get(),
      decodes_);
  for (const auto& d : decodes_) {
    SINRCOLOR_CHECK_MSG(!deliveries[d.listener].has_value(),
                        "beta >= 1 forbids two decodable senders");
    deliveries[d.listener] = transmissions[d.tx].message;
    if (margin_histogram_ != nullptr) {
      margin_histogram_->record(d.margin);
    }
  }
}

void SinrInterferenceModel::resolve_naive(
    const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  txs_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
  }

  // Only neighbors of some transmitter can pass the δ ≤ R_T gate, so it
  // suffices to examine each transmitter's UDG neighborhood.
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    const auto sender = transmissions[i].sender;
    for (graph::NodeId u : graph_.neighbors(sender)) {
      if (!listening[u]) continue;
      const double ratio = sinr::sinr_at(params_, graph_.position(u), txs_, i);
      if (ratio >= params_.beta) {
        SINRCOLOR_CHECK_MSG(!deliveries[u].has_value(),
                            "beta >= 1 forbids two decodable senders");
        deliveries[u] = transmissions[i].message;
        if (margin_histogram_ != nullptr) {
          margin_histogram_->record(ratio / params_.beta);
        }
      }
    }
  }
}

void GraphInterferenceModel::resolve(
    Slot /*slot*/, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  // A listener decodes iff exactly one neighbor transmits. candidate_tx_
  // needs no reset: it is read only where covering_[u] == 1, i.e. where it
  // was written this slot.
  std::fill(covering_.begin(), covering_.end(), std::uint8_t{0});
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    for (graph::NodeId u : graph_.neighbors(transmissions[i].sender)) {
      if (covering_[u] < 2) ++covering_[u];
      candidate_tx_[u] = i;
    }
  }
  for (const auto& t : transmissions) {
    for (graph::NodeId u : graph_.neighbors(t.sender)) {
      if (listening[u] && covering_[u] == 1 && !deliveries[u].has_value()) {
        deliveries[u] = transmissions[candidate_tx_[u]].message;
      }
    }
  }
}

FadingSinrInterferenceModel::FadingSinrInterferenceModel(
    const graph::UnitDiskGraph& graph, sinr::SinrParams params,
    sinr::FadingSpec fading, ResolveOptions options)
    : graph_(graph),
      params_(params),
      fading_(fading),
      options_(options),
      pool_(make_pool(options)) {
  params_.validate();
  check_radius_matches_phys(graph_, params_);
  engine_.reserve(graph_.size(), options_.threads);
  decodes_.reserve(graph_.size());
  txs_.reserve(graph_.size());
  tx_ids_.reserve(graph_.size());
}

void FadingSinrInterferenceModel::resolve(
    Slot slot, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  if (options_.kind == sinr::ResolveKind::kNaive) {
    resolve_naive(slot, transmissions, listening, deliveries);
    return;
  }

  txs_.clear();
  tx_ids_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
    tx_ids_.push_back(t.sender);
  }
  // Per-listener gain closure: every transmitter's contribution to F(u) is
  // scaled by its (seed, slot, link)-keyed fade, signal and interference
  // alike — identical arithmetic to the naive per-pair loop.
  engine_.resolve_slot(
      params_, txs_, graph_.index(), graph_.deployment().points, listening,
      graph_.radius(),
      [this, slot](graph::NodeId listener) {
        return [this, slot, listener](std::size_t j) {
          return sinr::fade_factor(fading_, slot, listener, tx_ids_[j]);
        };
      },
      pool_.get(), decodes_);
  for (const auto& d : decodes_) {
    SINRCOLOR_CHECK_MSG(!deliveries[d.listener].has_value(),
                        "beta >= 1 forbids two decodable senders");
    deliveries[d.listener] = transmissions[d.tx].message;
    if (margin_histogram_ != nullptr) {
      margin_histogram_->record(d.margin);
    }
  }
}

void FadingSinrInterferenceModel::resolve_naive(
    Slot slot, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  // The δ ≤ R_T gate is implied by iterating UDG neighborhoods.
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    const auto sender = transmissions[i].sender;
    for (graph::NodeId u : graph_.neighbors(sender)) {
      if (!listening[u]) continue;
      // Faded received powers of every transmitter at listener u.
      double signal = 0.0;
      double interference = 0.0;
      for (std::size_t j = 0; j < transmissions.size(); ++j) {
        const auto other = transmissions[j].sender;
        const double d_sq =
            geometry::distance_sq(graph_.position(u), graph_.position(other));
        SINRCOLOR_CHECK_MSG(d_sq > 0.0, "transmitter coincides with listener");
        const double gain = sinr::fade_factor(fading_, slot, u, other);
        const double power =
            params_.power * gain / sinr::pow_alpha_from_sq(d_sq, params_.alpha);
        if (j == i) {
          signal = power;
        } else {
          interference += power;
        }
      }
      const double threshold = params_.beta * (params_.noise + interference);
      if (signal >= threshold) {
        SINRCOLOR_CHECK_MSG(!deliveries[u].has_value(),
                            "beta >= 1 forbids two decodable senders");
        deliveries[u] = transmissions[i].message;
        if (margin_histogram_ != nullptr) {
          margin_histogram_->record(signal / threshold);
        }
      }
    }
  }
}

}  // namespace sinrcolor::radio
