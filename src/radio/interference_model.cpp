#include "radio/interference_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sinr/medium_field.h"

namespace sinrcolor::radio {

namespace {

std::unique_ptr<common::TaskPool> make_pool(const ResolveOptions& options) {
  if (options.threads <= 1) return nullptr;
  return std::make_unique<common::TaskPool>(options.threads);
}

/// Per-transmitter gain functor covering injected jammers: real transmitters
/// (index < real) keep unit gain, a jammer's gain scales the medium's base
/// power to the jammer's own (power · gain = jammer power). Used by the
/// field path; the naive path applies the identical expression per term.
struct JammerGain {
  std::size_t real;
  std::span<const Jammer> jammers;
  double base_power;

  double operator()(std::size_t j) const {
    return j < real ? 1.0 : jammers[j - real].power / base_power;
  }
};

}  // namespace

void check_radius_matches_phys(const graph::UnitDiskGraph& graph,
                               const sinr::SinrParams& params) {
  const double mismatch = std::abs(graph.radius() - params.r_t());
  SINRCOLOR_CHECK_MSG(mismatch <= 1e-9 * params.r_t(),
                      "UDG radius must equal the physical-layer R_T");
}

SinrInterferenceModel::SinrInterferenceModel(const graph::UnitDiskGraph& graph,
                                             sinr::SinrParams params,
                                             ResolveOptions options)
    : graph_(graph),
      params_(params),
      options_(options),
      pool_(make_pool(options)) {
  params_.validate();
  check_radius_matches_phys(graph_, params_);
  // n·(Δ+1) bounds the simd path's candidate-pair arena: each transmitter
  // covers at most its UDG neighborhood (δ ≤ R_T ⇔ adjacency).
  engine_.reserve(graph_.size(), options_.threads,
                  graph_.size() * (graph_.max_degree() + 1));
  decodes_.reserve(graph_.size());
  txs_.reserve(graph_.size());
}

void SinrInterferenceModel::resolve(
    Slot /*slot*/, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  if (options_.kind == sinr::ResolveKind::kNaive) {
    resolve_naive(transmissions, listening, deliveries);
    return;
  }

  txs_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
  }
  const std::size_t real = txs_.size();
  sinr::SinrParams phys = params_;
  if (disturbance_ != nullptr) {
    phys.noise *= disturbance_->noise_factor;
    for (const Jammer& jam : disturbance_->jammers) {
      txs_.push_back({jam.position});
    }
  }
  // Simd coverage: a node transmitter's δ ≤ R_T listeners are exactly its
  // UDG neighbors (check_radius_matches_phys pins radius == R_T); injected
  // jammers carry no node id and fall back to the grid query.
  const auto coverage_for =
      [&](std::size_t j) -> std::optional<std::span<const graph::NodeId>> {
    if (j < real) return graph_.neighbors(transmissions[j].sender);
    return std::nullopt;
  };
  if (txs_.size() == real) {
    engine_.resolve_slot(
        phys, txs_, graph_.index(), graph_.deployment().points, listening,
        graph_.radius(),
        [](graph::NodeId /*listener*/) { return sinr::UnitGain{}; },
        /*gain_listener_invariant=*/true, coverage_for, options_.kind,
        pool_.get(), decodes_);
  } else {
    const JammerGain gain{real, disturbance_->jammers, params_.power};
    engine_.resolve_slot(
        phys, txs_, graph_.index(), graph_.deployment().points, listening,
        graph_.radius(), [gain](graph::NodeId /*listener*/) { return gain; },
        /*gain_listener_invariant=*/true, coverage_for, options_.kind,
        pool_.get(), decodes_);
  }
  for (const auto& d : decodes_) {
    // A "decodable" jammer carries no message — the listener hears only
    // noise (and the jammer's field already drowned every real sender).
    if (d.tx >= real) continue;
    SINRCOLOR_CHECK_MSG(!deliveries[d.listener].has_value(),
                        "beta >= 1 forbids two decodable senders");
    deliveries[d.listener] = transmissions[d.tx].message;
    if (margin_histogram_ != nullptr) {
      margin_histogram_->record(d.margin);
    }
  }
}

void SinrInterferenceModel::resolve_naive(
    const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_PROFILE(profiler_, obs::Phase::kNaiveResolve);
  txs_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
  }
  const std::size_t real = txs_.size();
  sinr::SinrParams phys = params_;
  if (disturbance_ != nullptr) {
    phys.noise *= disturbance_->noise_factor;
    for (const Jammer& jam : disturbance_->jammers) {
      txs_.push_back({jam.position});
    }
  }
  const JammerGain gain{real, disturbance_ != nullptr
                                  ? disturbance_->jammers
                                  : std::span<const Jammer>{},
                        params_.power};

  // Only neighbors of some transmitter can pass the δ ≤ R_T gate, so it
  // suffices to examine each transmitter's UDG neighborhood. Jammers are
  // never decode candidates (i ranges over the real transmitters only) but
  // contribute to every interference sum.
  for (std::size_t i = 0; i < real; ++i) {
    const auto sender = transmissions[i].sender;
    for (graph::NodeId u : graph_.neighbors(sender)) {
      if (!listening[u]) continue;
      double ratio;
      if (txs_.size() == real) {
        ratio = sinr::sinr_at(phys, graph_.position(u), txs_, i);
      } else {
        double signal = 0.0;
        double interference = 0.0;
        for (std::size_t j = 0; j < txs_.size(); ++j) {
          const double d_sq =
              geometry::distance_sq(graph_.position(u), txs_[j].position);
          SINRCOLOR_CHECK_MSG(d_sq > 0.0,
                              "transmitter coincides with listener");
          const double power = phys.power * gain(j) /
                               sinr::pow_alpha_from_sq(d_sq, phys.alpha);
          if (j == i) {
            signal = power;
          } else {
            interference += power;
          }
        }
        ratio = signal / (phys.noise + interference);
      }
      if (ratio >= phys.beta) {
        SINRCOLOR_CHECK_MSG(!deliveries[u].has_value(),
                            "beta >= 1 forbids two decodable senders");
        deliveries[u] = transmissions[i].message;
        if (margin_histogram_ != nullptr) {
          margin_histogram_->record(ratio / phys.beta);
        }
      }
    }
  }
}

void GraphInterferenceModel::resolve(
    Slot /*slot*/, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  // A listener decodes iff exactly one neighbor transmits. candidate_tx_
  // needs no reset: it is read only where covering_[u] == 1, i.e. where it
  // was written this slot.
  std::fill(covering_.begin(), covering_.end(), std::uint8_t{0});
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    for (graph::NodeId u : graph_.neighbors(transmissions[i].sender)) {
      if (covering_[u] < 2) ++covering_[u];
      candidate_tx_[u] = i;
    }
  }
  // Injected jammers have no SINR arithmetic under this medium: a listener
  // within a jammer's blocking radius (plan radius, or R_T when unset)
  // simply decodes nothing this slot.
  const std::span<const Jammer> jammers =
      disturbance_ != nullptr ? disturbance_->jammers
                              : std::span<const Jammer>{};
  const auto jammed = [&](graph::NodeId u) {
    for (const Jammer& jam : jammers) {
      const double r = jam.radius > 0.0 ? jam.radius : graph_.radius();
      if (geometry::distance_sq(graph_.position(u), jam.position) <= r * r) {
        return true;
      }
    }
    return false;
  };
  for (const auto& t : transmissions) {
    for (graph::NodeId u : graph_.neighbors(t.sender)) {
      if (listening[u] && covering_[u] == 1 && !deliveries[u].has_value() &&
          (jammers.empty() || !jammed(u))) {
        deliveries[u] = transmissions[candidate_tx_[u]].message;
      }
    }
  }
}

FadingSinrInterferenceModel::FadingSinrInterferenceModel(
    const graph::UnitDiskGraph& graph, sinr::SinrParams params,
    sinr::FadingSpec fading, ResolveOptions options)
    : graph_(graph),
      params_(params),
      fading_(fading),
      options_(options),
      pool_(make_pool(options)) {
  params_.validate();
  check_radius_matches_phys(graph_, params_);
  engine_.reserve(graph_.size(), options_.threads,
                  graph_.size() * (graph_.max_degree() + 1));
  decodes_.reserve(graph_.size());
  txs_.reserve(graph_.size());
  tx_ids_.reserve(graph_.size());
}

void FadingSinrInterferenceModel::resolve(
    Slot slot, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_DCHECK(listening.size() == graph_.size());
  SINRCOLOR_DCHECK(deliveries.size() == graph_.size());
  if (transmissions.empty()) return;

  if (options_.kind == sinr::ResolveKind::kNaive) {
    resolve_naive(slot, transmissions, listening, deliveries);
    return;
  }

  txs_.clear();
  tx_ids_.clear();
  for (const auto& t : transmissions) {
    txs_.push_back({graph_.position(t.sender)});
    tx_ids_.push_back(t.sender);
  }
  const std::size_t real = txs_.size();
  sinr::SinrParams phys = params_;
  if (disturbance_ != nullptr) {
    phys.noise *= disturbance_->noise_factor;
    for (const Jammer& jam : disturbance_->jammers) {
      txs_.push_back({jam.position});
    }
  }
  const JammerGain jammer_gain{real, disturbance_ != nullptr
                                         ? disturbance_->jammers
                                         : std::span<const Jammer>{},
                               params_.power};
  // Per-listener gain closure: every REAL transmitter's contribution to
  // F(u) is scaled by its (seed, slot, link)-keyed fade, signal and
  // interference alike — identical arithmetic to the naive per-pair loop.
  // Jammers ride along unfaded (they carry no node id to key a fade draw;
  // docs/ROBUSTNESS.md).
  engine_.resolve_slot(
      phys, txs_, graph_.index(), graph_.deployment().points, listening,
      graph_.radius(),
      [this, slot, real, jammer_gain](graph::NodeId listener) {
        return [this, slot, listener, real, jammer_gain](std::size_t j) {
          return j < real
                     ? sinr::fade_factor(fading_, slot, listener, tx_ids_[j])
                     : jammer_gain(j);
        };
      },
      /*gain_listener_invariant=*/false,
      [&](std::size_t j) -> std::optional<std::span<const graph::NodeId>> {
        if (j < real) return graph_.neighbors(transmissions[j].sender);
        return std::nullopt;
      },
      options_.kind, pool_.get(), decodes_);
  for (const auto& d : decodes_) {
    if (d.tx >= real) continue;  // a jammer "decode" is noise, not a message
    SINRCOLOR_CHECK_MSG(!deliveries[d.listener].has_value(),
                        "beta >= 1 forbids two decodable senders");
    deliveries[d.listener] = transmissions[d.tx].message;
    if (margin_histogram_ != nullptr) {
      margin_histogram_->record(d.margin);
    }
  }
}

void FadingSinrInterferenceModel::resolve_naive(
    Slot slot, const std::vector<TxRecord>& transmissions,
    const std::vector<bool>& listening,
    std::vector<std::optional<Message>>& deliveries) const {
  SINRCOLOR_PROFILE(profiler_, obs::Phase::kNaiveResolve);
  const std::size_t real = transmissions.size();
  sinr::SinrParams phys = params_;
  const std::span<const Jammer> jammers =
      disturbance_ != nullptr ? disturbance_->jammers
                              : std::span<const Jammer>{};
  if (disturbance_ != nullptr) phys.noise *= disturbance_->noise_factor;
  // The δ ≤ R_T gate is implied by iterating UDG neighborhoods.
  for (std::size_t i = 0; i < real; ++i) {
    const auto sender = transmissions[i].sender;
    for (graph::NodeId u : graph_.neighbors(sender)) {
      if (!listening[u]) continue;
      // Faded received powers of every transmitter at listener u; jammers
      // (unfaded, own power) join every interference sum.
      double signal = 0.0;
      double interference = 0.0;
      for (std::size_t j = 0; j < real + jammers.size(); ++j) {
        const geometry::Point pos = j < real
                                        ? graph_.position(transmissions[j].sender)
                                        : jammers[j - real].position;
        const double d_sq = geometry::distance_sq(graph_.position(u), pos);
        SINRCOLOR_CHECK_MSG(d_sq > 0.0, "transmitter coincides with listener");
        const double gain =
            j < real
                ? sinr::fade_factor(fading_, slot, u, transmissions[j].sender)
                : jammers[j - real].power / params_.power;
        const double power =
            phys.power * gain / sinr::pow_alpha_from_sq(d_sq, phys.alpha);
        if (j == i) {
          signal = power;
        } else {
          interference += power;
        }
      }
      const double threshold = phys.beta * (phys.noise + interference);
      if (signal >= threshold) {
        SINRCOLOR_CHECK_MSG(!deliveries[u].has_value(),
                            "beta >= 1 forbids two decodable senders");
        deliveries[u] = transmissions[i].message;
        if (margin_histogram_ != nullptr) {
          margin_histogram_->record(signal / threshold);
        }
      }
    }
  }
}

}  // namespace sinrcolor::radio
