// Per-node protocol interface driven by the slotted simulator.
//
// Slot lifecycle, for every awake node:
//   1. begin_slot(slot, rng)  — advance per-slot bookkeeping (counter
//      increments in the MW algorithm) and decide whether to transmit.
//      Returning a message means the node transmits and cannot receive this
//      slot (half-duplex).
//   2. The medium resolves receptions for the listening nodes.
//   3. on_receive(slot, msg)  — at most one decoded message is delivered.
//   4. end_slot(slot)         — state transitions taking effect after the slot.
#pragma once

#include <cstddef>
#include <optional>

#include "common/rng.h"
#include "radio/message.h"

namespace sinrcolor::radio {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once, in the node's wake-up slot, before its first begin_slot.
  virtual void on_wake(Slot slot) = 0;

  /// Per-slot bookkeeping + transmission decision (nullopt = listen).
  virtual std::optional<Message> begin_slot(Slot slot, common::Rng& rng) = 0;

  /// Delivery of the (unique) message decoded this slot, if the node listened.
  virtual void on_receive(Slot slot, const Message& message) = 0;

  /// End-of-slot state transitions.
  virtual void end_slot(Slot slot) = 0;

  /// True once the node has produced its final output (e.g. decided a color).
  /// A decided node may keep transmitting (MW color beacons) until the whole
  /// protocol stops.
  virtual bool decided() const = 0;

  /// Bytes of state this node holds (sizeof(most-derived) plus owned heap
  /// capacities). Feeds the simulator's bytes/node accounting
  /// (RunMetrics::state_bytes); 0 = unreported, the default for protocols
  /// that opt out.
  virtual std::size_t memory_bytes() const { return 0; }
};

}  // namespace sinrcolor::radio
