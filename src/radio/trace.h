// Run metrics collected by the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "radio/message.h"

namespace sinrcolor::radio {

struct RunMetrics {
  Slot slots_executed = 0;
  /// True when every node that was still alive at the end had decided.
  bool all_decided = false;
  std::uint64_t total_transmissions = 0;
  std::uint64_t total_deliveries = 0;
  /// Slot with the most simultaneous transmissions.
  std::size_t max_concurrent_tx = 0;
  /// Nodes dead at the end of the run (a revived node leaves this count).
  std::size_t failed_nodes = 0;
  /// Living nodes that never decided (0 unless failures disturbed the run).
  std::size_t stalled_nodes = 0;
  /// Dynamic-join events fired (late arrivals plus revivals).
  std::size_t joined_nodes = 0;
  /// Deliveries suppressed by an installed fault injector (per-link drops);
  /// 0 without one.
  std::uint64_t fault_dropped_deliveries = 0;
  /// (node, slot) pairs in which a fault injector disabled a receiver that
  /// would otherwise have listened; 0 without one.
  std::uint64_t fault_deaf_slots = 0;
  /// Per-node slot of decision (relative to slot 0), -1 if undecided.
  std::vector<Slot> decision_slot;
  /// Per-node slot of death, -1 if alive at the end (revivals reset it).
  std::vector<Slot> death_slot;
  /// Per-node wake-up slot (copied from the schedule for convenience).
  std::vector<Slot> wake_slot;
  /// Per-node transmission count (energy accounting).
  std::vector<std::uint64_t> tx_count;
  /// Per-node awake-slot count: listening costs energy too.
  std::vector<std::uint64_t> awake_slots;
  /// Heap allocations observed inside the slot loop on the simulating thread
  /// (always 0 when the counting build is off —
  /// common::alloc_counting_enabled()). Deterministic for a given workload:
  /// allocation counts are a pure function of the execution path, so they
  /// are identical at any sweep thread count.
  std::uint64_t slot_heap_allocs = 0;
  /// Last slot whose execution performed any heap allocation; -1 if none.
  /// Every slot after it ran allocation-free — the steady state.
  Slot last_alloc_slot = -1;
  /// Resident footprint of the run's long-lived state in bytes (simulator
  /// scratch, RNG streams, protocol state, interference-model engine scratch,
  /// graph, tile engine, plus these per-node metric arrays), measured from
  /// container capacities by Simulator::memory_bytes(). NOT serialized into
  /// run JSON: tile-engine scratch varies with the configured thread count
  /// while results do not, and run JSON must stay byte-identical across
  /// thread counts.
  std::size_t state_bytes = 0;

  /// state_bytes normalized per node; 0.0 for an empty run.
  double bytes_per_node() const {
    return wake_slot.empty()
               ? 0.0
               : static_cast<double>(state_bytes) /
                     static_cast<double>(wake_slot.size());
  }

  /// Maximum over nodes of (decision slot − wake slot); the paper's time
  /// complexity measure ("time slots a node spends before deciding").
  Slot max_decision_latency() const;
  double mean_decision_latency() const;

  /// The zero-allocation slot-loop contract: the run's entire second half
  /// performed no heap allocation (0 allocations per steady-state slot).
  /// Vacuously true when the counting build is off.
  bool steady_state_alloc_free() const {
    return last_alloc_slot < slots_executed / 2;
  }

  std::string summary() const;
};

/// Radio energy model (units are arbitrary; defaults reflect the usual
/// sensor-radio regime where transmitting costs ~1.5-2x idle listening).
struct EnergyModel {
  double tx_cost = 1.8;      ///< per transmission slot
  double listen_cost = 1.0;  ///< per awake (non-transmitting) slot

  /// Energy spent by node v under `metrics`.
  double node_energy(const RunMetrics& metrics, std::size_t v) const;
  double total_energy(const RunMetrics& metrics) const;
  double max_node_energy(const RunMetrics& metrics) const;
};

}  // namespace sinrcolor::radio
