#include "radio/simulator.h"

#include <algorithm>
#include <type_traits>

#include "common/alloc_counter.h"
#include "common/check.h"

namespace sinrcolor::radio {

// obs mirrors these types without including radio/graph headers; a drift
// here would silently truncate slots or node ids in traces.
static_assert(std::is_same_v<obs::Slot, Slot>);
static_assert(std::is_same_v<obs::NodeId, graph::NodeId>);

namespace {

/// Signed merge into an unsigned aggregate (tile counters carry revival
/// decrements). The intermediate int64 never overflows: every delta is
/// bounded by the node count.
void apply_delta(std::size_t& target, std::int64_t delta) {
  target = static_cast<std::size_t>(static_cast<std::int64_t>(target) + delta);
}

}  // namespace

Simulator::Simulator(const graph::UnitDiskGraph& graph,
                     std::unique_ptr<InterferenceModel> model,
                     WakeupSchedule wakeups, std::uint64_t seed)
    : graph_(graph), model_(std::move(model)), wakeups_(std::move(wakeups)) {
  SINRCOLOR_CHECK(model_ != nullptr);
  SINRCOLOR_CHECK(wakeups_.size() == graph_.size());
  failure_slot_.assign(graph_.size(), -1);
  join_slot_.assign(graph_.size(), -1);
  protocols_.assign(graph_.size(), nullptr);
  owned_.resize(graph_.size());
  rngs_.reserve(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    rngs_.emplace_back(common::derive_seed(seed, v));
  }
  // The whole slot-loop working set is carved out here, before any slot
  // runs; `transmissions` gets full-n capacity because any subset of nodes
  // may transmit in one slot and a late record spike must not allocate.
  const std::size_t n = graph_.size();
  scratch_.awake.assign(n, 0);
  scratch_.dead.assign(n, 0);
  scratch_.schedule_suppressed.assign(n, 0);
  scratch_.listening_u8.assign(n, 0);
  scratch_.listening.assign(n, false);
  scratch_.transmissions.reserve(n);
  scratch_.deliveries.assign(n, std::nullopt);
  scratch_.covered.reserve(n);
  // The persistent tile job: captures only `this`, dispatches on the phase
  // latched by for_tiles. Built once so the slot loop never constructs a
  // std::function (zero-allocation contract).
  tile_job_ = [this](std::size_t t) {
    switch (tile_phase_) {
      case TilePhase::kTxDecide:
        tile_tx_decide(t);
        break;
      case TilePhase::kDeliver:
        tile_deliver(t);
        break;
      case TilePhase::kEndSlot:
        tile_end_slot(t);
        break;
    }
  };
  configure_tiles(/*parallel=*/false);
}

void Simulator::set_protocol(graph::NodeId v, std::unique_ptr<Protocol> protocol) {
  SINRCOLOR_CHECK(v < protocols_.size());
  SINRCOLOR_CHECK(protocol != nullptr);
  owned_[v] = std::move(protocol);
  protocols_[v] = owned_[v].get();
}

void Simulator::set_protocol(graph::NodeId v, Protocol* protocol) {
  SINRCOLOR_CHECK(v < protocols_.size());
  SINRCOLOR_CHECK(protocol != nullptr);
  owned_[v].reset();
  protocols_[v] = protocol;
}

void Simulator::set_slot_threads(std::size_t threads) {
  SINRCOLOR_CHECK_MSG(!ran_, "set the slot thread count before run()");
  slot_threads_ = std::max<std::size_t>(1, threads);
  configure_tiles(slot_threads_ > 1);
}

void Simulator::configure_tiles(bool parallel) {
  const std::size_t n = graph_.size();
  if (parallel) {
    tiles_ = graph::TilePartition::spatial(
        graph_, graph::TilePartition::default_tile_count(n));
    slot_pool_ = std::make_unique<common::TaskPool>(slot_threads_);
  } else {
    tiles_ = graph::TilePartition::identity(n);
    slot_pool_.reset();
  }
  tile_scratch_.resize(tiles_.tile_count());
  for (std::size_t t = 0; t < tiles_.tile_count(); ++t) {
    // A tile's tx buffer holds at most its own nodes — full-tile capacity
    // means no reallocation no matter which subset transmits.
    tile_scratch_[t].tx.reserve(tiles_.tile(t).size());
    tile_scratch_[t].counters.reset();
  }
}

void Simulator::set_failure_slot(graph::NodeId v, Slot slot) {
  SINRCOLOR_CHECK(v < failure_slot_.size());
  SINRCOLOR_CHECK_MSG(!ran_, "failures must be scheduled before run()");
  SINRCOLOR_CHECK(slot >= 0);
  failure_slot_[v] = slot;
}

void Simulator::set_join_slot(graph::NodeId v, Slot slot) {
  SINRCOLOR_CHECK(v < join_slot_.size());
  SINRCOLOR_CHECK_MSG(!ran_, "joins must be scheduled before run()");
  SINRCOLOR_CHECK(slot >= 0);
  join_slot_[v] = slot;
}

void Simulator::set_fault_injector(FaultInjector* injector) {
  SINRCOLOR_CHECK_MSG(!ran_, "install the fault injector before run()");
  fault_injector_ = injector;
  if (injector != nullptr) {
    scratch_.fault_dropped.assign(graph_.size(), 0);
  }
}

void Simulator::set_observation(obs::RunObservation* observation) {
  SINRCOLOR_CHECK_MSG(!ran_, "attach observation before run()");
  observation_ = observation;
  model_->set_margin_histogram(
      observation == nullptr
          ? nullptr
          : &observation->metrics.histogram(
                "radio.sinr_margin",
                {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0}));
}

// Phase 1 of one tile: failures, joins, wake-ups and transmission decisions.
// Every touched datum is node-local (per-node flag bytes, per-node metric
// entries, the node's own protocol and RNG stream) or tile-local (the tx
// buffer and the counters), so concurrent tiles never race; the per-tile
// outputs are merged in tile order by run().
void Simulator::tile_tx_decide(std::size_t t) {
  RunMetrics& metrics = *run_metrics_;
  obs::Tracer* const tracer = run_tracer_;
  const Slot slot = run_slot_;
  auto& awake = scratch_.awake;
  auto& dead = scratch_.dead;
  auto& listening = scratch_.listening_u8;
  auto& schedule_suppressed = scratch_.schedule_suppressed;
  TileScratch& ts = tile_scratch_[t];
  TileCounters& c = ts.counters;
  c.reset();
  ts.tx.clear();
  for (const graph::NodeId v : tiles_.tile(t)) {
    if (!dead[v] && failure_slot_[v] == slot) {
      dead[v] = 1;
      metrics.death_slot[v] = slot;
      ++c.failed;
      // A dead node can no longer decide; stop waiting for it.
      if (metrics.decision_slot[v] < 0) --c.undecided;
      SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kFailure, v);
    }
    if (join_slot_[v] == slot) {
      --c.joins_pending;
      ++c.joined;
      SINRCOLOR_TRACE(tracer, slot,
                      dead[v] ? obs::EventKind::kRevival : obs::EventKind::kJoin,
                      v);
      if (dead[v]) {
        // Revival: the node rejoins fresh. It leaves the failed count and
        // any earlier decision is void, so it is counted exactly once in
        // whichever of failed/stalled/decided it ends the run as. Its
        // death decremented `undecided` (directly if it died undecided,
        // via its decision otherwise), so the rejoin re-increments.
        dead[v] = 0;
        metrics.death_slot[v] = -1;
        --c.failed;
        metrics.decision_slot[v] = -1;
        ++c.undecided;
      } else {
        // A late arrival was never awake and still counts as undecided
        // from initialization; nothing to rebalance.
        SINRCOLOR_CHECK_MSG(!awake[v], "join slot hit an awake node");
      }
      awake[v] = 1;
      protocols_[v]->on_wake(slot);
    }
    if (dead[v]) {
      listening[v] = 0;
      continue;
    }
    if (!awake[v]) {
      if (wakeups_[v] == slot && !schedule_suppressed[v]) {
        awake[v] = 1;
        SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kWake, v);
        protocols_[v]->on_wake(slot);
      } else {
        listening[v] = 0;
        continue;
      }
    }
    ++metrics.awake_slots[v];
    auto tx = protocols_[v]->begin_slot(slot, rngs_[v]);
    if (tx.has_value()) {
      tx->sender = v;
      ts.tx.push_back({v, *tx});
      listening[v] = 0;
      ++metrics.tx_count[v];
      SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kTx, v, tx->target,
                      static_cast<std::int32_t>(tx->kind), tx->color_class);
    } else {
      listening[v] = 1;
      // Transient deafness: the receiver is off, but the node still ran
      // its slot (protocol state and the interference field are
      // unaffected — deafness is a pure receiver fault). An installed
      // injector pins the run to the sequential engine, so this query
      // always happens on the slot-loop thread (FaultEngine's contract).
      if (fault_injector_ != nullptr &&
          fault_injector_->receiver_disabled(slot, v)) {
        listening[v] = 0;
        ++c.deaf;
      }
    }
  }
}

void Simulator::tile_deliver(std::size_t t) {
  obs::Tracer* const tracer = run_tracer_;
  const Slot slot = run_slot_;
  auto& deliveries = scratch_.deliveries;
  TileCounters& c = tile_scratch_[t].counters;
  for (const graph::NodeId v : tiles_.tile(t)) {
    if (deliveries[v].has_value()) {
      SINRCOLOR_DCHECK(scratch_.listening[v]);
      SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kDelivery, v,
                      deliveries[v]->sender,
                      static_cast<std::int32_t>(deliveries[v]->kind),
                      deliveries[v]->color_class);
      protocols_[v]->on_receive(slot, *deliveries[v]);
      ++c.delivered;
    }
  }
}

void Simulator::tile_end_slot(std::size_t t) {
  RunMetrics& metrics = *run_metrics_;
  const Slot slot = run_slot_;
  TileCounters& c = tile_scratch_[t].counters;
  for (const graph::NodeId v : tiles_.tile(t)) {
    if (!scratch_.awake[v] || scratch_.dead[v]) continue;
    protocols_[v]->end_slot(slot);
    if (metrics.decision_slot[v] < 0 && protocols_[v]->decided()) {
      metrics.decision_slot[v] = slot;
      ++c.decided;
    }
  }
}

void Simulator::for_tiles(TilePhase phase, bool parallel) {
  tile_phase_ = phase;
  const std::size_t count = tiles_.tile_count();
  if (parallel && count > 1) {
    slot_pool_->run_shards(count, tile_job_);
  } else {
    for (std::size_t t = 0; t < count; ++t) tile_job_(t);
  }
}

RunMetrics Simulator::run(Slot max_slots) {
  SINRCOLOR_CHECK_MSG(!ran_, "Simulator::run may only be called once");
  ran_ = true;
  const std::size_t n = graph_.size();
  for (std::size_t v = 0; v < n; ++v) {
    SINRCOLOR_CHECK_MSG(protocols_[v] != nullptr, "node missing a protocol");
  }

  RunMetrics metrics;
  metrics.wake_slot = wakeups_;
  metrics.decision_slot.assign(n, -1);
  metrics.death_slot.assign(n, -1);
  metrics.tx_count.assign(n, 0);
  metrics.awake_slots.assign(n, 0);

  auto& listening = scratch_.listening;
  auto& listening_u8 = scratch_.listening_u8;
  auto& transmissions = scratch_.transmissions;
  auto& deliveries = scratch_.deliveries;

  obs::Tracer* const tracer =
      observation_ != nullptr ? &observation_->trace : nullptr;
  // Latch the profiler here (not in set_observation) so enabling it at any
  // point before run() works; the model forwards it to the field engine.
  obs::Profiler* const profiler =
      observation_ != nullptr ? observation_->profiler.get() : nullptr;
  model_->set_profiler(profiler);
  obs::Histogram* concurrent_tx_hist = nullptr;
  obs::Counter* drop_counter = nullptr;
  if (observation_ != nullptr) {
    concurrent_tx_hist = &observation_->metrics.histogram(
        "radio.concurrent_tx_per_slot",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
    drop_counter = &observation_->metrics.counter("radio.drops");
  }
  // Engine selection: the parallel spatial engine needs an untraced run
  // (trace event order is part of the sequential contract) and no fault
  // injector (FaultEngine is thread-compatible, not thread-safe). Either
  // attachment downgrades to the sequential identity engine; results are
  // byte-identical in both engines, only event ORDER within a phase is
  // pinned by the sequential one.
  if (slot_pool_ != nullptr && (tracer != nullptr || fault_injector_ != nullptr)) {
    configure_tiles(/*parallel=*/false);
  }
  const bool parallel = slot_pool_ != nullptr;
  const std::size_t tile_count = tiles_.tile_count();
  run_metrics_ = &metrics;
  run_tracer_ = tracer;

  // Scratch for collision attribution (kDrop): per listener, how many
  // transmitters cover it this slot and one sample interferer. Only
  // maintained when a tracer is attached (unobserved runs never touch it).
  auto& cover_count = scratch_.cover_count;
  auto& cover_sample = scratch_.cover_sample;
  auto& covered = scratch_.covered;
  if (tracer != nullptr) {
    cover_count.assign(n, 0);
    cover_sample.assign(n, graph::kInvalidNode);
  }
  std::size_t undecided = n;
  std::size_t joins_pending = 0;
  // A join slot replaces the schedule entry unless the node must first live
  // through an earlier failure (revival; see set_join_slot precedence).
  auto& schedule_suppressed = scratch_.schedule_suppressed;
  for (std::size_t v = 0; v < n; ++v) {
    if (join_slot_[v] < 0) continue;
    ++joins_pending;
    schedule_suppressed[v] =
        (failure_slot_[v] < 0 || failure_slot_[v] >= join_slot_[v]) ? 1 : 0;
  }

  Slot settle_left = settle_slots_;
  for (Slot slot = 0; slot < max_slots &&
                      (undecided > 0 || joins_pending > 0 || settle_left > 0);
       ++slot) {
    SINRCOLOR_PROFILE(profiler, obs::Phase::kSlot);
    metrics.slots_executed = slot + 1;
    const std::uint64_t allocs_at_slot_start = common::thread_heap_allocs();
    run_slot_ = slot;

    // 0. Channel-level faults: one disturbance query per slot, forwarded to
    // the medium (null = clean channel, the zero-cost common case).
    if (fault_injector_ != nullptr) {
      SINRCOLOR_PROFILE(profiler, obs::Phase::kFaultInject);
      model_->set_disturbance(fault_injector_->channel_disturbance(slot));
    }

    // 1. Failures, joins, wake-ups and transmission decisions, tile by tile,
    // then the ordered merge: tile tx buffers are concatenated in tile order
    // and — under the spatial engine — re-sorted by sender, restoring the
    // exact id-ascending transmitter sequence the sequential engine emits
    // (the Kahan field sum is order-sensitive, so resolve must see the same
    // sequence at every thread count).
    {
      SINRCOLOR_PROFILE(profiler, obs::Phase::kTxDecide);
      for_tiles(TilePhase::kTxDecide, parallel);
      transmissions.clear();
      for (std::size_t t = 0; t < tile_count; ++t) {
        const auto& tile_tx = tile_scratch_[t].tx;
        transmissions.insert(transmissions.end(), tile_tx.begin(),
                             tile_tx.end());
        const TileCounters& c = tile_scratch_[t].counters;
        apply_delta(undecided, c.undecided);
        apply_delta(joins_pending, c.joins_pending);
        apply_delta(metrics.failed_nodes, c.failed);
        metrics.joined_nodes += static_cast<std::size_t>(c.joined);
        metrics.fault_deaf_slots += c.deaf;
      }
      if (parallel) {
        std::sort(transmissions.begin(), transmissions.end(),
                  [](const TxRecord& a, const TxRecord& b) {
                    return a.sender < b.sender;
                  });
      }
    }
    metrics.total_transmissions += transmissions.size();
    metrics.max_concurrent_tx =
        std::max(metrics.max_concurrent_tx, transmissions.size());
    if (concurrent_tx_hist != nullptr) {
      concurrent_tx_hist->record(static_cast<double>(transmissions.size()));
    }

    for (const auto& observer : observers_) {
      observer(slot, std::span<const TxRecord>(transmissions));
    }

    // 2. Reception resolution and delivery.
    if (!transmissions.empty()) {
      // Pack the tile-written listener bytes into the vector<bool> the
      // InterferenceModel interface consumes (bit containers cannot take
      // concurrent per-node writes; the byte array can).
      for (std::size_t v = 0; v < n; ++v) listening[v] = listening_u8[v] != 0;
      std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
      {
        SINRCOLOR_PROFILE(profiler, obs::Phase::kResolve);
        model_->resolve(slot, transmissions, listening, deliveries);
      }
      // Per-link fault drops: an otherwise successful decode is suppressed
      // before the protocol sees it. Attributed to the fault (kFaultDrop),
      // not to interference (excluded from the kDrop pass below). Always on
      // the sequential engine (injector downgrade), hence slot-loop thread.
      if (fault_injector_ != nullptr) {
        SINRCOLOR_PROFILE(profiler, obs::Phase::kFaultInject);
        auto& fault_dropped = scratch_.fault_dropped;
        for (std::size_t v = 0; v < n; ++v) {
          if (!deliveries[v].has_value()) continue;
          const graph::NodeId listener = static_cast<graph::NodeId>(v);
          if (fault_injector_->drop_delivery(slot, deliveries[v]->sender,
                                             listener)) {
            SINRCOLOR_TRACE(tracer, slot, obs::EventKind::kFaultDrop, listener,
                            deliveries[v]->sender,
                            static_cast<std::int32_t>(deliveries[v]->kind));
            deliveries[v].reset();
            fault_dropped[v] = 1;
            ++metrics.fault_dropped_deliveries;
          }
        }
      }
      {
        SINRCOLOR_PROFILE(profiler, obs::Phase::kDeliver);
        for_tiles(TilePhase::kDeliver, parallel);
        for (std::size_t t = 0; t < tile_count; ++t) {
          metrics.total_deliveries += tile_scratch_[t].counters.delivered;
        }
      }
      // Collision attribution: a listener covered by >= 1 transmitter that
      // decoded nothing lost every covering message to interference/SINR.
      if (tracer != nullptr) {
        covered.clear();
        for (const TxRecord& t : transmissions) {
          for (graph::NodeId u : graph_.neighbors(t.sender)) {
            if (!listening[u] || deliveries[u].has_value()) continue;
            if (fault_injector_ != nullptr && scratch_.fault_dropped[u]) {
              continue;  // lost to the injected fault, already traced
            }
            if (cover_count[u] == 0) {
              covered.push_back(u);
              cover_sample[u] = t.sender;
            }
            ++cover_count[u];
          }
        }
        for (graph::NodeId u : covered) {
          tracer->record(slot, obs::EventKind::kDrop, u, cover_sample[u],
                         static_cast<std::int32_t>(cover_count[u]));
          cover_count[u] = 0;
          cover_sample[u] = graph::kInvalidNode;
        }
        if (drop_counter != nullptr) drop_counter->add(covered.size());
      }
      if (fault_injector_ != nullptr) {
        std::fill(scratch_.fault_dropped.begin(), scratch_.fault_dropped.end(),
                  std::uint8_t{0});
      }
    }

    // 3. End-of-slot transitions and decision tracking.
    {
      SINRCOLOR_PROFILE(profiler, obs::Phase::kEndSlot);
      for_tiles(TilePhase::kEndSlot, parallel);
      for (std::size_t t = 0; t < tile_count; ++t) {
        apply_delta(undecided,
                    -static_cast<std::int64_t>(
                        tile_scratch_[t].counters.decided));
      }
      // This slot's state (colors, decisions) is now final: run the
      // end-of-slot observers (runtime invariant monitor).
      for (const auto& observer : end_observers_) observer(slot);
    }

    // Settle window: count down only while the run is quiescent; any
    // pending work (a revival re-incrementing `undecided`) rearms it.
    if (undecided == 0 && joins_pending == 0) {
      if (settle_left > 0) --settle_left;
    } else {
      settle_left = settle_slots_;
    }

    // Allocation attribution: a slot that allocated cannot be steady-state.
    // Two thread_local reads per slot; zero when the counting build is off.
    // (The counter is per-thread: it audits the slot-loop thread, the one
    // that owns every merge, pack and resolve dispatch. Worker-side tile
    // passes reuse pre-reserved buffers and are exercised by the identical
    // sequential engine, which this counter does see.)
    const std::uint64_t slot_allocs =
        common::thread_heap_allocs() - allocs_at_slot_start;
    if (slot_allocs > 0) {
      metrics.slot_heap_allocs += slot_allocs;
      metrics.last_alloc_slot = slot;
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (!scratch_.dead[v] && metrics.decision_slot[v] < 0) {
      ++metrics.stalled_nodes;
    }
  }
  metrics.all_decided = metrics.stalled_nodes == 0;
  // Bytes/node accounting: long-lived run state plus the metrics' own
  // per-node arrays. Measured capacities, not an RSS guess; reported via
  // RunMetrics::state_bytes (never serialized into run JSON — tile scratch
  // varies with the engine while results do not).
  metrics.state_bytes =
      memory_bytes() +
      metrics.decision_slot.capacity() * sizeof(Slot) +
      metrics.death_slot.capacity() * sizeof(Slot) +
      metrics.wake_slot.capacity() * sizeof(Slot) +
      metrics.tx_count.capacity() * sizeof(std::uint64_t) +
      metrics.awake_slots.capacity() * sizeof(std::uint64_t);
  if (observation_ != nullptr) {
    auto& m = observation_->metrics;
    m.counter("radio.slots").add(
        static_cast<std::uint64_t>(metrics.slots_executed));
    m.counter("radio.transmissions")
        .add(static_cast<std::uint64_t>(metrics.total_transmissions));
    m.counter("radio.deliveries")
        .add(static_cast<std::uint64_t>(metrics.total_deliveries));
    m.counter("radio.failures")
        .add(static_cast<std::uint64_t>(metrics.failed_nodes));
    m.counter("radio.joins")
        .add(static_cast<std::uint64_t>(metrics.joined_nodes));
    if (fault_injector_ != nullptr) {
      m.counter("radio.fault_drops").add(metrics.fault_dropped_deliveries);
      m.counter("radio.fault_deaf_slots").add(metrics.fault_deaf_slots);
    }
  }
  run_metrics_ = nullptr;
  run_tracer_ = nullptr;
  return metrics;
}

std::size_t Simulator::memory_bytes() const {
  const auto vec = [](const auto& v) {
    return v.capacity() *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t protocol_bytes = 0;
  for (const Protocol* p : protocols_) {
    if (p != nullptr) protocol_bytes += p->memory_bytes();
  }
  std::size_t tile_bytes = vec(tile_scratch_) + tiles_.memory_bytes();
  for (const TileScratch& ts : tile_scratch_) tile_bytes += vec(ts.tx);
  return sizeof(*this) + graph_.memory_bytes() + model_->memory_bytes() +
         protocol_bytes + tile_bytes + vec(wakeups_) + vec(failure_slot_) +
         vec(join_slot_) + vec(protocols_) + vec(owned_) + vec(rngs_) +
         vec(observers_) + vec(end_observers_) + vec(scratch_.awake) +
         vec(scratch_.dead) + vec(scratch_.schedule_suppressed) +
         vec(scratch_.listening_u8) + scratch_.listening.capacity() / 8 +
         vec(scratch_.transmissions) + vec(scratch_.deliveries) +
         vec(scratch_.cover_count) + vec(scratch_.cover_sample) +
         vec(scratch_.covered) + vec(scratch_.fault_dropped);
}

}  // namespace sinrcolor::radio
