// Wire messages of the MW protocol (paper, Figures 1–3).
//
// One POD covers the five message shapes:
//   M_A^i(v, c_v)      — competition message of a node in state A_i
//   M_C^i(v)           — "I hold color i" beacon (leaders idle-beacon with i=0)
//   M_C^0(v, w, tc)    — leader v assigns cluster color tc to node w
//   M_R(v, L(v))       — color request from v to its leader
//   M_J^i(v)           — tentative-color beacon of a late joiner (src/robust);
//                        beyond the paper, used by the self-healing layer
#pragma once

#include <cstdint>
#include <string>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::radio {

using Slot = std::int64_t;

enum class MessageKind : std::uint8_t {
  kCompete,      ///< M_A^i(v, c_v)
  kColorBeacon,  ///< M_C^i(v)
  kColorAssign,  ///< M_C^0(v, w, tc)
  kRequest,      ///< M_R(v, L(v))
  kJoinBeacon,   ///< M_J^i(v): tentative color of a joiner, not yet confirmed
};

struct Message {
  MessageKind kind = MessageKind::kCompete;
  graph::NodeId sender = graph::kInvalidNode;
  /// Addressee for kColorAssign (the requesting node) and kRequest (the
  /// leader); unused otherwise.
  graph::NodeId target = graph::kInvalidNode;
  /// Color class i for kCompete / kColorBeacon (leaders use 0).
  std::int32_t color_class = 0;
  /// Competition counter c_v for kCompete.
  std::int64_t counter = 0;
  /// Cluster color tc for kColorAssign.
  std::int32_t tc = 0;

  std::string to_string() const;
};

/// A transmission accepted by the medium in some slot.
struct TxRecord {
  graph::NodeId sender = graph::kInvalidNode;
  Message message;
};

inline std::string Message::to_string() const {
  switch (kind) {
    case MessageKind::kCompete:
      return "M_A^" + std::to_string(color_class) + "(" + std::to_string(sender) +
             ", c=" + std::to_string(counter) + ")";
    case MessageKind::kColorBeacon:
      return "M_C^" + std::to_string(color_class) + "(" + std::to_string(sender) + ")";
    case MessageKind::kColorAssign:
      return "M_C^0(" + std::to_string(sender) + ", " + std::to_string(target) +
             ", tc=" + std::to_string(tc) + ")";
    case MessageKind::kRequest:
      return "M_R(" + std::to_string(sender) + ", " + std::to_string(target) + ")";
    case MessageKind::kJoinBeacon:
      return "M_J^" + std::to_string(color_class) + "(" + std::to_string(sender) + ")";
  }
  return "M_?";
}

}  // namespace sinrcolor::radio
