// The slotted radio-network simulator.
//
// Time is divided into synchronized discrete slots (paper, Section II).
// Each slot the simulator: wakes due nodes, collects transmission decisions,
// resolves receptions through the interference model, delivers messages, and
// runs end-of-slot transitions. Execution is fully deterministic given the
// seed: node v draws from its own splitmix-derived stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/unit_disk_graph.h"
#include "obs/observation.h"
#include "radio/fault_injection.h"
#include "radio/interference_model.h"
#include "radio/protocol.h"
#include "radio/trace.h"
#include "radio/wakeup.h"

namespace sinrcolor::radio {

class Simulator {
 public:
  /// Observer invoked after each slot's transmissions are fixed but before
  /// delivery; used by interference probes and tests. `tx_probs[v]` is the
  /// probability with which node v would have transmitted this slot (0 for
  /// asleep/non-transmitting states), supplied by protocols that expose it.
  using SlotObserver =
      std::function<void(Slot, std::span<const TxRecord>)>;

  /// Observer invoked at the very end of each slot, after every protocol's
  /// end_slot and decision tracking — the point where this slot's state
  /// (colors, decisions) is final. Used by the runtime invariant monitor.
  using EndSlotObserver = std::function<void(Slot)>;

  Simulator(const graph::UnitDiskGraph& graph,
            std::unique_ptr<InterferenceModel> model, WakeupSchedule wakeups,
            std::uint64_t seed);

  /// Installs node v's protocol; all nodes need one before run().
  void set_protocol(graph::NodeId v, std::unique_ptr<Protocol> protocol);

  /// Injects a crash-stop failure: from `slot` on, node v neither transmits
  /// nor receives nor advances. A dead undecided node does not block run()'s
  /// "all decided" termination (it is counted in RunMetrics::stalled_nodes
  /// only if it was alive and undecided at the end — dead ones are counted
  /// in failed_nodes). Call before run().
  void set_failure_slot(graph::NodeId v, Slot slot);

  /// Schedules a dynamic join: node v's radio turns on at `slot` and it
  /// receives on_wake(slot) there (a late arrival into a possibly converged
  /// network). run() does not terminate while joins are still pending, even
  /// if every already-awake node has decided.
  ///
  /// Precedence vs. set_failure_slot and the wake-up schedule:
  ///  * join only — the node's wake-up-schedule entry is IGNORED; it sleeps
  ///    until the join slot (set_join_slot overrides the schedule).
  ///  * join ≤ failure — the node wakes at the join slot and dies at the
  ///    failure slot as usual.
  ///  * failure < join — revival: the node wakes from its ORIGINAL schedule
  ///    entry, dies at the failure slot, and rejoins at the join slot with a
  ///    second on_wake (the protocol must tolerate re-waking; plain MwNode
  ///    does not — use robust::SelfHealingNode). On revival the node leaves
  ///    failed_nodes, any earlier decision is discarded, and it counts as
  ///    undecided again, so it is never double-counted in failed_nodes or
  ///    stalled_nodes. Within one slot the failure fires first, so
  ///    join == failure means die-then-rejoin in that slot.
  /// Call before run().
  void set_join_slot(graph::NodeId v, Slot slot);

  void add_observer(SlotObserver observer) {
    observers_.push_back(std::move(observer));
  }

  void add_end_observer(EndSlotObserver observer) {
    end_observers_.push_back(std::move(observer));
  }

  /// Installs a fault injector (src/faults' FaultEngine; non-owning, must
  /// outlive run()). Per slot the simulator queries the channel disturbance
  /// once and forwards it to the interference model, silences deafened
  /// receivers, and suppresses per-link drops after reception resolution
  /// (traced as kFaultDrop, counted in RunMetrics::fault_dropped_deliveries).
  /// Null detaches. Call before run().
  void set_fault_injector(FaultInjector* injector);

  /// True iff node v is currently dead (crashed and not revived). Valid
  /// during and after run(); used by end-of-slot observers that must ignore
  /// dead nodes' stale state.
  bool node_dead(graph::NodeId v) const { return scratch_.dead[v] != 0; }

  /// True iff node v's radio is on (woken and not dead).
  bool node_awake(graph::NodeId v) const {
    return scratch_.awake[v] != 0 && scratch_.dead[v] == 0;
  }

  /// Attaches trace + metrics sinks (obs/observation.h). The simulator then
  /// emits wake/join/revival/failure, tx/delivery/drop events and registers
  /// the radio.* counters and per-slot histograms; the interference model
  /// records its SINR margin per decode. Null detaches. Observation never
  /// touches the per-node RNG streams, so a traced run is byte-identical to
  /// an untraced one (tests/determinism_test.cpp). Call before run().
  void set_observation(obs::RunObservation* observation);

  obs::RunObservation* observation() const { return observation_; }

  /// After every protocol has decided (and no joins are pending), keep the
  /// slot loop running this many extra slots before run() returns — air
  /// time for post-decision watches (late-conflict repair under injected
  /// message loss). A join or revival during the window resets it. 0 (the
  /// default) stops at the first all-decided slot, the original behavior.
  /// Call before run().
  void set_settle_slots(Slot settle) { settle_slots_ = settle; }

  /// Runs until every protocol reports decided() (plus the settle window,
  /// when one is set) or `max_slots` elapse. May be called once per
  /// simulator instance.
  RunMetrics run(Slot max_slots);

  const graph::UnitDiskGraph& graph() const { return graph_; }
  const InterferenceModel& model() const { return *model_; }
  Protocol& protocol(graph::NodeId v) { return *protocols_[v]; }
  const WakeupSchedule& wakeups() const { return wakeups_; }

 private:
  /// Per-slot working set, allocated once in the constructor and reused by
  /// every slot — the slot loop itself performs no heap allocation in steady
  /// state (RunMetrics::steady_state_alloc_free; the SINRCOLOR_COUNT_ALLOCS
  /// build asserts it). Hot per-node flags are byte arrays rather than
  /// vector<bool>: the wake/decide loops touch all n every slot and byte
  /// loads beat bit extraction there. `listening` stays vector<bool> because
  /// it crosses the InterferenceModel interface.
  struct SlotScratch {
    std::vector<std::uint8_t> awake;
    std::vector<std::uint8_t> dead;
    std::vector<std::uint8_t> schedule_suppressed;
    std::vector<bool> listening;
    std::vector<TxRecord> transmissions;
    std::vector<std::optional<Message>> deliveries;
    // Collision attribution (kDrop), maintained only under a tracer.
    std::vector<std::uint32_t> cover_count;
    std::vector<graph::NodeId> cover_sample;
    std::vector<graph::NodeId> covered;
    // Listeners whose delivery a fault injector suppressed this slot
    // (excluded from kDrop collision attribution — the loss is attributed
    // to the fault, not to interference). Maintained only with an injector.
    std::vector<std::uint8_t> fault_dropped;
  };

  const graph::UnitDiskGraph& graph_;
  std::unique_ptr<InterferenceModel> model_;
  WakeupSchedule wakeups_;
  std::vector<Slot> failure_slot_;  ///< -1 = never fails
  std::vector<Slot> join_slot_;     ///< -1 = no dynamic join
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<common::Rng> rngs_;
  std::vector<SlotObserver> observers_;
  std::vector<EndSlotObserver> end_observers_;
  SlotScratch scratch_;
  obs::RunObservation* observation_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  Slot settle_slots_ = 0;
  bool ran_ = false;
};

}  // namespace sinrcolor::radio
