// The slotted radio-network simulator.
//
// Time is divided into synchronized discrete slots (paper, Section II).
// Each slot the simulator: wakes due nodes, collects transmission decisions,
// resolves receptions through the interference model, delivers messages, and
// runs end-of-slot transitions. Execution is fully deterministic given the
// seed: node v draws from its own splitmix-derived stream.
//
// Tiled slot engine (docs/ARCHITECTURE.md): the per-node phases (tx decide,
// deliver, end-of-slot) run tile-by-tile over a graph::TilePartition. The
// default is the sequential identity engine — one tile, ids ascending,
// bit-for-bit the historical slot loop. set_slot_threads(N>1) switches to a
// spatial partition processed one tile per common::TaskPool shard, with
// per-tile transmission buffers and counters merged in tile order (and the
// merged transmissions re-sorted by sender), so an N-thread run produces
// byte-identical results to the 1-thread run: every phase touches only
// node-local state, and every cross-tile aggregate is merged in a fixed
// order. Attaching observation (trace event order) or a fault injector
// (FaultEngine is thread-compatible, not thread-safe) downgrades the run to
// the sequential engine — results are identical either way.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/task_pool.h"
#include "graph/tile_partition.h"
#include "graph/unit_disk_graph.h"
#include "obs/observation.h"
#include "radio/fault_injection.h"
#include "radio/interference_model.h"
#include "radio/protocol.h"
#include "radio/trace.h"
#include "radio/wakeup.h"

namespace sinrcolor::radio {

class Simulator {
 public:
  /// Observer invoked after each slot's transmissions are fixed but before
  /// delivery; used by interference probes and tests. `tx_probs[v]` is the
  /// probability with which node v would have transmitted this slot (0 for
  /// asleep/non-transmitting states), supplied by protocols that expose it.
  using SlotObserver =
      std::function<void(Slot, std::span<const TxRecord>)>;

  /// Observer invoked at the very end of each slot, after every protocol's
  /// end_slot and decision tracking — the point where this slot's state
  /// (colors, decisions) is final. Used by the runtime invariant monitor.
  using EndSlotObserver = std::function<void(Slot)>;

  Simulator(const graph::UnitDiskGraph& graph,
            std::unique_ptr<InterferenceModel> model, WakeupSchedule wakeups,
            std::uint64_t seed);

  /// Installs node v's protocol; all nodes need one before run().
  void set_protocol(graph::NodeId v, std::unique_ptr<Protocol> protocol);

  /// Non-owning variant: installs node v's protocol without transferring
  /// ownership. The caller keeps the storage alive through run() — used by
  /// contiguous node arenas (core::MwInstance) so a tile pass walks nodes
  /// laid out back-to-back in memory instead of chasing n separate heap
  /// blocks.
  void set_protocol(graph::NodeId v, Protocol* protocol);

  /// Worker threads for the tiled slot engine (clamped to >= 1; default 1 =
  /// the sequential identity engine). N > 1 builds a spatial TilePartition
  /// (tile count a pure function of n) and an owning TaskPool; per-slot
  /// phases then run one tile per shard. Results are byte-identical for any
  /// value — see the file comment for the determinism argument and the
  /// observation/fault-injector downgrade. Call before run().
  void set_slot_threads(std::size_t threads);

  std::size_t slot_threads() const { return slot_threads_; }

  /// Injects a crash-stop failure: from `slot` on, node v neither transmits
  /// nor receives nor advances. A dead undecided node does not block run()'s
  /// "all decided" termination (it is counted in RunMetrics::stalled_nodes
  /// only if it was alive and undecided at the end — dead ones are counted
  /// in failed_nodes). Call before run().
  void set_failure_slot(graph::NodeId v, Slot slot);

  /// Schedules a dynamic join: node v's radio turns on at `slot` and it
  /// receives on_wake(slot) there (a late arrival into a possibly converged
  /// network). run() does not terminate while joins are still pending, even
  /// if every already-awake node has decided.
  ///
  /// Precedence vs. set_failure_slot and the wake-up schedule:
  ///  * join only — the node's wake-up-schedule entry is IGNORED; it sleeps
  ///    until the join slot (set_join_slot overrides the schedule).
  ///  * join ≤ failure — the node wakes at the join slot and dies at the
  ///    failure slot as usual.
  ///  * failure < join — revival: the node wakes from its ORIGINAL schedule
  ///    entry, dies at the failure slot, and rejoins at the join slot with a
  ///    second on_wake (the protocol must tolerate re-waking; plain MwNode
  ///    does not — use robust::SelfHealingNode). On revival the node leaves
  ///    failed_nodes, any earlier decision is discarded, and it counts as
  ///    undecided again, so it is never double-counted in failed_nodes or
  ///    stalled_nodes. Within one slot the failure fires first, so
  ///    join == failure means die-then-rejoin in that slot.
  /// Call before run().
  void set_join_slot(graph::NodeId v, Slot slot);

  void add_observer(SlotObserver observer) {
    observers_.push_back(std::move(observer));
  }

  void add_end_observer(EndSlotObserver observer) {
    end_observers_.push_back(std::move(observer));
  }

  /// Installs a fault injector (src/faults' FaultEngine; non-owning, must
  /// outlive run()). Per slot the simulator queries the channel disturbance
  /// once and forwards it to the interference model, silences deafened
  /// receivers, and suppresses per-link drops after reception resolution
  /// (traced as kFaultDrop, counted in RunMetrics::fault_dropped_deliveries).
  /// Null detaches. Call before run(). An installed injector pins the run to
  /// the sequential engine (FaultEngine's thread contract).
  void set_fault_injector(FaultInjector* injector);

  /// True iff node v is currently dead (crashed and not revived). Valid
  /// during and after run(); used by end-of-slot observers that must ignore
  /// dead nodes' stale state.
  bool node_dead(graph::NodeId v) const { return scratch_.dead[v] != 0; }

  /// True iff node v's radio is on (woken and not dead).
  bool node_awake(graph::NodeId v) const {
    return scratch_.awake[v] != 0 && scratch_.dead[v] == 0;
  }

  /// Attaches trace + metrics sinks (obs/observation.h). The simulator then
  /// emits wake/join/revival/failure, tx/delivery/drop events and registers
  /// the radio.* counters and per-slot histograms; the interference model
  /// records its SINR margin per decode. Null detaches. Observation never
  /// touches the per-node RNG streams, so a traced run is byte-identical to
  /// an untraced one (tests/determinism_test.cpp). Call before run(). An
  /// attached observation pins the run to the sequential engine (stable
  /// trace event order).
  void set_observation(obs::RunObservation* observation);

  obs::RunObservation* observation() const { return observation_; }

  /// After every protocol has decided (and no joins are pending), keep the
  /// slot loop running this many extra slots before run() returns — air
  /// time for post-decision watches (late-conflict repair under injected
  /// message loss). A join or revival during the window resets it. 0 (the
  /// default) stops at the first all-decided slot, the original behavior.
  /// Call before run().
  void set_settle_slots(Slot settle) { settle_slots_ = settle; }

  /// Runs until every protocol reports decided() (plus the settle window,
  /// when one is set) or `max_slots` elapse. May be called once per
  /// simulator instance.
  RunMetrics run(Slot max_slots);

  /// Resident footprint of the run's long-lived state, in bytes: simulator
  /// scratch + RNG streams, protocol state (Protocol::memory_bytes), the
  /// interference model's engine scratch, the graph (CSR + grid index) and
  /// the tile engine's per-tile buffers. Measured from container capacities
  /// — an accounting of what the run actually reserved, not an RSS estimate.
  /// Stamped into RunMetrics::state_bytes at the end of run(); observer
  /// closures and trace sinks are excluded (reporting, not run state).
  std::size_t memory_bytes() const;

  const graph::UnitDiskGraph& graph() const { return graph_; }
  const InterferenceModel& model() const { return *model_; }
  Protocol& protocol(graph::NodeId v) { return *protocols_[v]; }
  const WakeupSchedule& wakeups() const { return wakeups_; }

 private:
  /// Per-slot working set, allocated once in the constructor and reused by
  /// every slot — the slot loop itself performs no heap allocation in steady
  /// state (RunMetrics::steady_state_alloc_free; the SINRCOLOR_COUNT_ALLOCS
  /// build asserts it). Hot per-node flags are byte arrays rather than
  /// vector<bool>: the wake/decide loops touch all n every slot, byte loads
  /// beat bit extraction there, and — decisive for the tiled engine —
  /// concurrent tiles can write disjoint byte elements without a data race,
  /// which vector<bool>'s packed bits cannot offer. `listening` is written
  /// as the `listening_u8` byte array by the tile passes and packed
  /// sequentially into the vector<bool> the InterferenceModel interface
  /// consumes, once per transmitting slot.
  struct SlotScratch {
    std::vector<std::uint8_t> awake;
    std::vector<std::uint8_t> dead;
    std::vector<std::uint8_t> schedule_suppressed;
    std::vector<std::uint8_t> listening_u8;
    std::vector<bool> listening;
    std::vector<TxRecord> transmissions;
    std::vector<std::optional<Message>> deliveries;
    // Collision attribution (kDrop), maintained only under a tracer.
    std::vector<std::uint32_t> cover_count;
    std::vector<graph::NodeId> cover_sample;
    std::vector<graph::NodeId> covered;
    // Listeners whose delivery a fault injector suppressed this slot
    // (excluded from kDrop collision attribution — the loss is attributed
    // to the fault, not to interference). Maintained only with an injector.
    std::vector<std::uint8_t> fault_dropped;
  };

  /// Cross-tile aggregates of one tile's phase pass, merged into the run's
  /// scalars in tile order after the phase. Signed deltas where revivals can
  /// decrement (failed) or re-increment (undecided).
  struct TileCounters {
    std::int64_t undecided = 0;
    std::int64_t joins_pending = 0;
    std::int64_t failed = 0;
    std::uint64_t joined = 0;
    std::uint64_t deaf = 0;
    std::uint64_t delivered = 0;
    std::uint64_t decided = 0;

    void reset() { *this = TileCounters{}; }
  };

  /// One tile's working set. 64-byte aligned so concurrent tiles never share
  /// a cache line through their counters or vector headers.
  struct alignas(64) TileScratch {
    std::vector<TxRecord> tx;
    TileCounters counters;
  };

  enum class TilePhase : std::uint8_t { kTxDecide, kDeliver, kEndSlot };

  /// Rebuilds tiles_ / slot_pool_ / tile_scratch_ for the current
  /// slot_threads_ (sequential = identity partition, no pool).
  void configure_tiles(bool parallel);
  /// Phase bodies, one tile each. Every write is node-local (per-node arrays,
  /// own protocol, own RNG stream) or lands in tile_scratch_[t].
  void tile_tx_decide(std::size_t t);
  void tile_deliver(std::size_t t);
  void tile_end_slot(std::size_t t);
  /// Runs the given phase over every tile — through the pool when the
  /// parallel engine is active, inline otherwise.
  void for_tiles(TilePhase phase, bool parallel);

  const graph::UnitDiskGraph& graph_;
  std::unique_ptr<InterferenceModel> model_;
  WakeupSchedule wakeups_;
  std::vector<Slot> failure_slot_;  ///< -1 = never fails
  std::vector<Slot> join_slot_;     ///< -1 = no dynamic join
  std::vector<Protocol*> protocols_;
  std::vector<std::unique_ptr<Protocol>> owned_;  ///< unique_ptr overload only
  std::vector<common::Rng> rngs_;
  std::vector<SlotObserver> observers_;
  std::vector<EndSlotObserver> end_observers_;
  SlotScratch scratch_;
  obs::RunObservation* observation_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  Slot settle_slots_ = 0;
  bool ran_ = false;

  // Tiled slot engine. tile_job_ is a persistent closure capturing only
  // `this` and dispatching on tile_phase_: run_shards takes it by const
  // reference, so the steady-state slot loop never constructs a
  // std::function (a fat per-slot lambda would heap-allocate past the SBO
  // and break the zero-allocation contract).
  std::size_t slot_threads_ = 1;
  graph::TilePartition tiles_;
  std::unique_ptr<common::TaskPool> slot_pool_;
  std::vector<TileScratch> tile_scratch_;
  std::function<void(std::size_t)> tile_job_;
  TilePhase tile_phase_ = TilePhase::kTxDecide;
  // Per-run context the tile bodies read (set by run(); tracer is non-null
  // only on the sequential engine).
  Slot run_slot_ = 0;
  RunMetrics* run_metrics_ = nullptr;
  obs::Tracer* run_tracer_ = nullptr;
};

}  // namespace sinrcolor::radio
