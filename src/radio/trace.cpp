#include "radio/trace.h"

#include <algorithm>
#include <cstdio>

namespace sinrcolor::radio {

Slot RunMetrics::max_decision_latency() const {
  Slot worst = 0;
  for (std::size_t v = 0; v < decision_slot.size(); ++v) {
    if (decision_slot[v] < 0) return -1;  // undecided node
    worst = std::max(worst, decision_slot[v] - wake_slot[v]);
  }
  return worst;
}

double RunMetrics::mean_decision_latency() const {
  if (decision_slot.empty()) return 0.0;
  double total = 0.0;
  std::size_t decided = 0;
  for (std::size_t v = 0; v < decision_slot.size(); ++v) {
    if (decision_slot[v] >= 0) {
      total += static_cast<double>(decision_slot[v] - wake_slot[v]);
      ++decided;
    }
  }
  return decided == 0 ? 0.0 : total / static_cast<double>(decided);
}

double EnergyModel::node_energy(const RunMetrics& metrics, std::size_t v) const {
  const double tx = static_cast<double>(metrics.tx_count[v]);
  const double awake = static_cast<double>(metrics.awake_slots[v]);
  // awake_slots counts every participating slot; transmissions upgrade the
  // slot's cost from listen_cost to tx_cost.
  return awake * listen_cost + tx * (tx_cost - listen_cost);
}

double EnergyModel::total_energy(const RunMetrics& metrics) const {
  double total = 0.0;
  for (std::size_t v = 0; v < metrics.tx_count.size(); ++v) {
    total += node_energy(metrics, v);
  }
  return total;
}

double EnergyModel::max_node_energy(const RunMetrics& metrics) const {
  double best = 0.0;
  for (std::size_t v = 0; v < metrics.tx_count.size(); ++v) {
    best = std::max(best, node_energy(metrics, v));
  }
  return best;
}

std::string RunMetrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "slots=%lld decided=%s tx=%llu rx=%llu max_latency=%lld "
                "mean_latency=%.1f",
                static_cast<long long>(slots_executed),
                all_decided ? "all" : "NOT ALL",
                static_cast<unsigned long long>(total_transmissions),
                static_cast<unsigned long long>(total_deliveries),
                static_cast<long long>(max_decision_latency()),
                mean_decision_latency());
  return buf;
}

}  // namespace sinrcolor::radio
