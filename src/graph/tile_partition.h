// Contiguous spatial tiling of a UDG's nodes for the tiled slot engine.
//
// The simulator's per-slot phases (tx decide, deliver, end-of-slot) are
// embarrassingly parallel per node — each node touches only its own protocol
// state, its own RNG stream and its own entries of the per-node metric
// arrays. A TilePartition fixes a node ORDER and splits it into contiguous
// tiles; the simulator processes one tile per common::TaskPool shard and
// merges per-tile outputs in tile order, the same fixed-shard/ordered-merge
// discipline that makes resolve and sweeps byte-identical at any thread
// count (docs/ARCHITECTURE.md, "Tiled slot engine").
//
// Two partitions exist:
//  * identity — one tile holding 0..n-1 ascending. The sequential engine:
//    bit-for-bit the historical slot loop, including trace event order.
//  * spatial  — nodes sorted by (cell_y, cell_x, id) over the same grid the
//    GridIndex buckets by (cell width = graph radius), split into near-equal
//    contiguous tiles via TaskPool::shard_range. Nodes of one tile are
//    spatially adjacent, so a tile pass walks a coherent region of the
//    deployment (cache locality for the SoA scratch arrays) and per-tile
//    transmission buffers stay dense.
//
// Determinism: both partitions are pure functions of (positions, radius, n,
// tile_count) — never of thread count or timing. The tile COUNT is chosen as
// a function of n alone (default_tile_count), so a run's tile structure is
// part of its deterministic configuration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

class TilePartition {
 public:
  /// Empty partition (0 nodes, 1 empty tile); assign a factory result over it.
  TilePartition() = default;

  /// One tile over 0..n-1 in ascending id order — the sequential engine.
  static TilePartition identity(std::size_t n);

  /// `tile_count` near-equal contiguous tiles over the nodes sorted by
  /// (cell_y, cell_x, id), cell width = g.radius() (the GridIndex bucket
  /// width). `tile_count` is clamped to [1, max(n, 1)].
  static TilePartition spatial(const UnitDiskGraph& g, std::size_t tile_count);

  /// Tile count for an n-node run: ~256 nodes per tile, capped at 64 tiles.
  /// A pure function of n (never of the thread count), so the tile structure
  /// — and with it any tile-merge order — is fixed per topology size.
  static std::size_t default_tile_count(std::size_t n);

  std::size_t size() const { return order_.size(); }
  std::size_t tile_count() const {
    return offsets_.empty() ? 1 : offsets_.size() - 1;
  }

  /// The node ids of tile `t`, in partition order.
  std::span<const NodeId> tile(std::size_t t) const;

  /// All node ids in partition order (tiles concatenated).
  std::span<const NodeId> order() const { return order_; }

  /// Heap footprint of the partition itself (bytes/node accounting).
  std::size_t memory_bytes() const;

 private:
  std::vector<NodeId> order_;
  std::vector<std::size_t> offsets_;  ///< tile t = order_[offsets_[t]..t+1)
};

}  // namespace sinrcolor::graph
