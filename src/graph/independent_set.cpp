#include "graph/independent_set.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::graph {

std::optional<std::pair<NodeId, NodeId>> find_independence_violation(
    const UnitDiskGraph& g, const std::vector<NodeId>& nodes) {
  std::vector<bool> member(g.size(), false);
  for (NodeId v : nodes) {
    SINRCOLOR_CHECK(v < g.size());
    member[v] = true;
  }
  for (NodeId v : nodes) {
    for (NodeId u : g.neighbors(v)) {
      if (u < v && member[u]) return std::make_pair(u, v);
    }
  }
  return std::nullopt;
}

bool is_independent_set(const UnitDiskGraph& g, const std::vector<NodeId>& nodes) {
  return !find_independence_violation(g, nodes).has_value();
}

bool is_maximal_independent_set(const UnitDiskGraph& g,
                                const std::vector<NodeId>& nodes) {
  if (!is_independent_set(g, nodes)) return false;
  std::vector<bool> covered(g.size(), false);
  for (NodeId v : nodes) {
    covered[v] = true;
    for (NodeId u : g.neighbors(v)) covered[u] = true;
  }
  return std::all_of(covered.begin(), covered.end(), [](bool b) { return b; });
}

std::vector<NodeId> greedy_mis(const UnitDiskGraph& g) {
  std::vector<NodeId> mis;
  std::vector<bool> blocked(g.size(), false);
  for (NodeId v = 0; v < g.size(); ++v) {
    if (blocked[v]) continue;
    mis.push_back(v);
    for (NodeId u : g.neighbors(v)) blocked[u] = true;
  }
  return mis;
}

}  // namespace sinrcolor::graph
