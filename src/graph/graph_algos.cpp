#include "graph/graph_algos.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace sinrcolor::graph {

std::vector<std::uint32_t> bfs_distances(const UnitDiskGraph& g, NodeId source) {
  SINRCOLOR_CHECK(source < g.size());
  std::vector<std::uint32_t> dist(g.size(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

std::vector<NodeId> bfs_parents(const UnitDiskGraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::vector<NodeId> parent(g.size(), kInvalidNode);
  parent[source] = source;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (v == source || dist[v] == kUnreachable) continue;
    // Smallest-id neighbor one hop closer; neighbors are sorted so the first
    // match is canonical.
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] + 1 == dist[v]) {
        parent[v] = u;
        break;
      }
    }
    SINRCOLOR_CHECK(parent[v] != kInvalidNode);
  }
  return parent;
}

std::vector<std::uint32_t> connected_components(const UnitDiskGraph& g) {
  std::vector<std::uint32_t> label(g.size(), kUnreachable);
  std::uint32_t next = 0;
  for (NodeId s = 0; s < g.size(); ++s) {
    if (label[s] != kUnreachable) continue;
    std::queue<NodeId> frontier;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        if (label[u] == kUnreachable) {
          label[u] = next;
          frontier.push(u);
        }
      }
    }
    ++next;
  }
  return label;
}

bool is_connected(const UnitDiskGraph& g) {
  if (g.size() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t hop_diameter(const UnitDiskGraph& g) {
  const auto labels = connected_components(g);
  // Find the largest component.
  std::vector<std::size_t> sizes;
  for (std::uint32_t l : labels) {
    if (l >= sizes.size()) sizes.resize(l + 1, 0);
    ++sizes[l];
  }
  std::uint32_t target = 0;
  for (std::uint32_t l = 0; l < sizes.size(); ++l) {
    if (sizes[l] > sizes[target]) target = l;
  }
  std::uint32_t diameter = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (labels[v] != target) continue;
    const auto dist = bfs_distances(g, v);
    for (NodeId u = 0; u < g.size(); ++u) {
      if (labels[u] == target) diameter = std::max(diameter, dist[u]);
    }
  }
  return diameter;
}

std::vector<NodeId> k_hop_neighborhood(const UnitDiskGraph& g, NodeId v,
                                       std::uint32_t k) {
  const auto dist = bfs_distances(g, v);
  std::vector<NodeId> result;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (u != v && dist[u] <= k) result.push_back(u);
  }
  return result;
}

}  // namespace sinrcolor::graph
