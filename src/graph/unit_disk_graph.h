// Unit disk graph G = (V, E, R_T) as defined in Section II of the paper:
// nodes are points in the plane; (u,v) ∈ E iff δ(u,v) ≤ R_T.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/deployment.h"
#include "geometry/grid_index.h"
#include "geometry/point.h"

namespace sinrcolor::graph {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class UnitDiskGraph {
 public:
  /// Builds the UDG of `deployment` with transmission range `radius`.
  UnitDiskGraph(geometry::Deployment deployment, double radius);

  std::size_t size() const { return deployment_.points.size(); }
  double radius() const { return radius_; }
  double side() const { return deployment_.side; }
  const geometry::Deployment& deployment() const { return deployment_; }
  const geometry::Point& position(NodeId v) const { return deployment_.points[v]; }

  /// Neighbors of v (nodes within R_T, excluding v), sorted by id.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::size_t degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  std::size_t max_degree() const { return max_degree_; }
  double average_degree() const;
  std::size_t edge_count() const { return adjacency_.size() / 2; }

  bool adjacent(NodeId u, NodeId v) const;

  double distance(NodeId u, NodeId v) const {
    return geometry::distance(position(u), position(v));
  }

  /// All node ids within Euclidean distance r of v's position (v excluded).
  std::vector<NodeId> nodes_within(NodeId v, double r) const;

  /// Spatial index over the node positions (cell width = radius), exposed for
  /// interference models that need their own radius queries.
  const geometry::GridIndex& index() const { return index_; }

  /// Same node set, different radius: the graph G^d of Section V
  /// (d-fold power scaling). `factor` > 0, usually the MAC constant d+1.
  UnitDiskGraph scaled(double factor) const;

  /// Heap footprint of the graph (positions, grid index, CSR arrays), feeding
  /// the simulator's bytes/node accounting.
  std::size_t memory_bytes() const {
    return deployment_.points.capacity() * sizeof(geometry::Point) +
           index_.memory_bytes() + offsets_.capacity() * sizeof(std::size_t) +
           adjacency_.capacity() * sizeof(NodeId);
  }

 private:
  geometry::Deployment deployment_;
  double radius_;
  geometry::GridIndex index_;
  std::vector<std::size_t> offsets_;   // CSR offsets, size n+1
  std::vector<NodeId> adjacency_;      // CSR neighbor lists, sorted per node
  std::size_t max_degree_ = 0;
};

}  // namespace sinrcolor::graph
