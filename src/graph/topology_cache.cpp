#include "graph/topology_cache.h"

#include <utility>

#include "common/check.h"

namespace sinrcolor::graph {

std::shared_ptr<const UnitDiskGraph> TopologyCache::get_or_build(
    const TopologyKey& key, const Builder& builder) {
  std::shared_ptr<Entry> entry;
  {
    common::MutexLock lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      ++misses_;
    } else {
      ++hits_;
    }
    entry = it->second;
  }
  // The build runs outside the cache lock: a slow builder never blocks
  // lookups of other keys, and exactly one caller per key executes it.
  std::call_once(entry->built, [&] {
    entry->graph = std::make_shared<const UnitDiskGraph>(builder());
  });
  SINRCOLOR_CHECK(entry->graph != nullptr);
  return entry->graph;
}

std::size_t TopologyCache::size() const {
  common::MutexLock lock(mutex_);
  return entries_.size();
}

std::uint64_t TopologyCache::hits() const {
  common::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t TopologyCache::misses() const {
  common::MutexLock lock(mutex_);
  return misses_;
}

void TopologyCache::clear() {
  common::MutexLock lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

TopologyCache& global_topology_cache() {
  static TopologyCache cache;
  return cache;
}

}  // namespace sinrcolor::graph
