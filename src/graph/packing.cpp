#include "graph/packing.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::graph {

double phi_upper_bound(double R, double R_T) {
  SINRCOLOR_CHECK(R >= 0.0);
  SINRCOLOR_CHECK(R_T > 0.0);
  const double ratio = 2.0 * R / R_T + 1.0;
  return ratio * ratio;
}

std::size_t empirical_phi(const UnitDiskGraph& g, double R) {
  SINRCOLOR_CHECK(R > 0.0);
  std::size_t best = 0;
  // For each center node, greedily pack nodes inside the disc of radius R:
  // scan candidates by id, keep those > R_T away from all kept nodes.
  for (NodeId center = 0; center < g.size(); ++center) {
    std::vector<NodeId> in_disc = g.nodes_within(center, R);
    in_disc.push_back(center);
    std::vector<NodeId> packed;
    for (NodeId v : in_disc) {
      const bool clear = std::none_of(
          packed.begin(), packed.end(), [&](NodeId u) {
            return g.distance(u, v) <= g.radius();
          });
      if (clear) packed.push_back(v);
    }
    best = std::max(best, packed.size());
  }
  return best;
}

std::size_t empirical_phi_2rt(const UnitDiskGraph& g) {
  return empirical_phi(g, 2.0 * g.radius());
}

std::size_t greedy_clique_lower_bound(const UnitDiskGraph& g) {
  std::size_t best = g.size() > 0 ? 1 : 0;
  std::vector<NodeId> clique;
  for (NodeId v = 0; v < g.size(); ++v) {
    clique.clear();
    clique.push_back(v);
    for (NodeId u : g.neighbors(v)) {
      const bool compatible = std::all_of(
          clique.begin(), clique.end(),
          [&](NodeId w) { return w == v || g.adjacent(u, w); });
      if (compatible) clique.push_back(u);
    }
    best = std::max(best, clique.size());
  }
  return best;
}

}  // namespace sinrcolor::graph
