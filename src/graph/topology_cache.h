// Shared read-only topology cache for trial sweeps.
//
// Building a UnitDiskGraph (deployment generation + GridIndex + CSR
// adjacency) is the dominant setup cost of a trial, yet ablation- and
// comparison-style sweeps (x10's 4 configs, x16's adaptive variants, x9's
// model comparison) run MANY protocol configurations over the SAME topology:
// the graph is a pure function of (generator, n, area, radius, seed). The
// cache builds each distinct topology exactly once and hands out
// shared_ptr<const UnitDiskGraph> aliases, so trials that vary only protocol
// knobs share one immutable graph — including across SweepEngine threads
// (UnitDiskGraph is never mutated after construction; concurrent reads are
// safe).
//
// Determinism: the cached graph is byte-for-byte the graph the builder
// would produce fresh — get_or_build never alters the builder's RNG
// consumption (the builder runs at most once per key, from its own seed),
// so cached and uncached sweeps produce identical results
// (tests/topology_cache_test.cpp pins this across the three SINR media).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/mutex.h"
#include "common/thread_safety.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

/// Identity of a topology: the full input of its (deterministic) builder.
/// `kind` names the generator family ("uniform", "uniform-density", "grid",
/// "clustered", ...); param1/param2 carry the family's extra knobs (average
/// degree, jitter, spread, ...) — unused ones stay 0. Two keys compare equal
/// iff the builder would produce identical graphs, so never reuse a kind
/// string across generators with different semantics.
struct TopologyKey {
  std::string kind;
  std::size_t n = 0;
  double side = 0.0;
  double radius = 1.0;
  std::uint64_t seed = 0;
  double param1 = 0.0;
  double param2 = 0.0;

  friend auto operator<=>(const TopologyKey&, const TopologyKey&) = default;
};

/// Thread-safe build-once cache. Distinct keys build concurrently; a key
/// requested by several threads at once is built by exactly one of them
/// (the rest block on that entry only, not on the whole cache).
class TopologyCache {
 public:
  using Builder = std::function<UnitDiskGraph()>;

  /// The topology for `key`, building it via `builder` on first request.
  /// `builder` must be a pure function of `key` (same key ⇒ same graph);
  /// it is invoked at most once per key for the cache's lifetime.
  std::shared_ptr<const UnitDiskGraph> get_or_build(const TopologyKey& key,
                                                    const Builder& builder)
      SINRCOLOR_EXCLUDES(mutex_);

  /// Distinct topologies currently cached.
  std::size_t size() const SINRCOLOR_EXCLUDES(mutex_);
  /// Requests served from an existing entry / requests that built one.
  std::uint64_t hits() const SINRCOLOR_EXCLUDES(mutex_);
  std::uint64_t misses() const SINRCOLOR_EXCLUDES(mutex_);

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void clear() SINRCOLOR_EXCLUDES(mutex_);

 private:
  /// A cache slot. The Entry pointer itself is guarded by mutex_; `graph` is
  /// published through `built` (std::call_once establishes the necessary
  /// happens-before), so the build runs OUTSIDE the cache lock — a slow
  /// builder never blocks lookups of other keys.
  struct Entry {
    std::once_flag built;
    std::shared_ptr<const UnitDiskGraph> graph;
  };

  mutable common::Mutex mutex_;
  std::map<TopologyKey, std::shared_ptr<Entry>> entries_
      SINRCOLOR_GUARDED_BY(mutex_);
  std::uint64_t hits_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
};

/// Process-wide cache used by the experiment harnesses and the CLI. Sweeps
/// within one process share topologies; separate processes (CI runs, the
/// determinism diffs) each build their own, which is exactly what the
/// byte-identity contract needs.
TopologyCache& global_topology_cache();

}  // namespace sinrcolor::graph
