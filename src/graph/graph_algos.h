// Centralized graph utilities: BFS, connectivity, distance-k neighborhoods.
// These serve as oracles for tests and as reference outputs for the
// message-passing simulation experiments (Corollary 1).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` (kUnreachable for disconnected nodes).
std::vector<std::uint32_t> bfs_distances(const UnitDiskGraph& g, NodeId source);

/// BFS parent of each node (source's parent is itself; unreachable nodes map
/// to kInvalidNode). Ties broken toward the smallest parent id, which gives a
/// canonical tree any correct distributed BFS with the same rule must match.
std::vector<NodeId> bfs_parents(const UnitDiskGraph& g, NodeId source);

/// Connected component label per node (labels are 0..k-1 by discovery order).
std::vector<std::uint32_t> connected_components(const UnitDiskGraph& g);

bool is_connected(const UnitDiskGraph& g);

/// Graph-theoretic eccentricity-based diameter in hops of the largest
/// component (exact; O(n · (n + m)), fine at experiment scales).
std::uint32_t hop_diameter(const UnitDiskGraph& g);

/// Nodes at hop distance exactly ≤ k from v (excluding v), sorted.
std::vector<NodeId> k_hop_neighborhood(const UnitDiskGraph& g, NodeId v,
                                       std::uint32_t k);

}  // namespace sinrcolor::graph
