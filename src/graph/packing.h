// Packing numbers φ(R).
//
// φ(R) is the size of the largest independent set (pairwise distance > R_T)
// inside any disc of radius R around any node (paper, Section II). The paper
// only needs an upper bound; footnote 5 gives φ(R) ≤ (2R/R_T + 1)².
// We provide both the analytic bound (used by the theory parameter profile)
// and empirical measurements on a concrete deployment (used to justify the
// much smaller practical constants).
#pragma once

#include <cstddef>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

/// Footnote-5 analytic upper bound: φ(R) ≤ (2R/R_T + 1)².
double phi_upper_bound(double R, double R_T);

/// Empirical packing number of a concrete deployment: the largest greedy
/// independent set found inside the disc of radius R around any node.
/// This is a lower bound on the true φ(R) of the instance, and for greedy
/// (maximal) packings is within the usual 1/5 factor of optimum on discs.
std::size_t empirical_phi(const UnitDiskGraph& g, double R);

/// Convenience: empirical φ(2·R_T), the constant bounding how many mutually
/// independent leaders can surround any node (used to size the color ranges).
std::size_t empirical_phi_2rt(const UnitDiskGraph& g);

/// Greedy clique lower bound on the chromatic number: for every node, grow a
/// clique inside its closed neighborhood (id order); the largest found clique
/// size lower-bounds χ(G), anchoring "the palette is O(Δ) and Ω(clique)" in
/// experiment X1. (In a UDG the true clique number is ≥ (Δ+1)/6-ish, so this
/// is a meaningful yardstick, not a formality.)
std::size_t greedy_clique_lower_bound(const UnitDiskGraph& g);

}  // namespace sinrcolor::graph
