// Colorings and their validators.
//
// A (d, V)-coloring (paper, Section II): an assignment of colors from a
// palette of at most V colors such that any two nodes u, v with
// δ(u,v) ≤ d·R_T receive different colors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

using Color = std::int32_t;
inline constexpr Color kUncolored = -1;

/// A (possibly partial) color assignment over the nodes of a graph.
struct Coloring {
  std::vector<Color> color;

  std::size_t size() const { return color.size(); }
  bool complete() const;
  /// Number of distinct colors used (uncolored nodes ignored).
  std::size_t palette_size() const;
  /// Largest color value used, or kUncolored if none.
  Color max_color() const;
};

/// One violation of the distance-d constraint.
struct ColoringViolation {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Color color = kUncolored;
  double distance = 0.0;

  std::string to_string() const;
};

/// Checks the (d, ·)-coloring property: every pair at Euclidean distance at
/// most d·R_T must differ in color. Returns all violations (empty == valid).
/// Uncolored nodes are reported as violations against themselves.
std::vector<ColoringViolation> find_coloring_violations(const UnitDiskGraph& g,
                                                        const Coloring& coloring,
                                                        double d = 1.0);

/// True iff `coloring` is a complete, valid (d, ·)-coloring of g.
bool is_valid_coloring(const UnitDiskGraph& g, const Coloring& coloring,
                       double d = 1.0);

/// The set of nodes holding `color` (sorted).
std::vector<NodeId> color_class(const Coloring& coloring, Color color);

/// Per-color-class sizes, indexed by color (0..max_color).
std::vector<std::size_t> color_histogram(const Coloring& coloring);

}  // namespace sinrcolor::graph
