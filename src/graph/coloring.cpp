#include "graph/coloring.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace sinrcolor::graph {

bool Coloring::complete() const {
  return std::all_of(color.begin(), color.end(),
                     [](Color c) { return c != kUncolored; });
}

std::size_t Coloring::palette_size() const {
  std::set<Color> used;
  for (Color c : color) {
    if (c != kUncolored) used.insert(c);
  }
  return used.size();
}

Color Coloring::max_color() const {
  Color best = kUncolored;
  for (Color c : color) best = std::max(best, c);
  return best;
}

std::string ColoringViolation::to_string() const {
  if (u == v) {
    return "node " + std::to_string(u) + " is uncolored";
  }
  return "nodes " + std::to_string(u) + " and " + std::to_string(v) +
         " share color " + std::to_string(color) + " at distance " +
         std::to_string(distance);
}

std::vector<ColoringViolation> find_coloring_violations(const UnitDiskGraph& g,
                                                        const Coloring& coloring,
                                                        double d) {
  SINRCOLOR_CHECK(coloring.size() == g.size());
  SINRCOLOR_CHECK(d > 0.0);
  std::vector<ColoringViolation> violations;
  const double range = d * g.radius();
  for (NodeId v = 0; v < g.size(); ++v) {
    if (coloring.color[v] == kUncolored) {
      violations.push_back({v, v, kUncolored, 0.0});
      continue;
    }
    g.index().for_each_within(
        g.position(v), range, [&](std::size_t u, const geometry::Point&) {
          // Visit each unordered pair once (u < v) and skip self.
          if (u >= v) return;
          const auto uid = static_cast<NodeId>(u);
          if (coloring.color[uid] != kUncolored &&
              coloring.color[uid] == coloring.color[v]) {
            violations.push_back(
                {uid, v, coloring.color[v], g.distance(uid, v)});
          }
        });
  }
  return violations;
}

bool is_valid_coloring(const UnitDiskGraph& g, const Coloring& coloring, double d) {
  return coloring.complete() && find_coloring_violations(g, coloring, d).empty();
}

std::vector<NodeId> color_class(const Coloring& coloring, Color color) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < coloring.size(); ++v) {
    if (coloring.color[v] == color) nodes.push_back(v);
  }
  return nodes;
}

std::vector<std::size_t> color_histogram(const Coloring& coloring) {
  const Color top = coloring.max_color();
  std::vector<std::size_t> histogram(top == kUncolored ? 0
                                                       : static_cast<std::size_t>(top) + 1,
                                     0);
  for (Color c : coloring.color) {
    if (c != kUncolored) ++histogram[static_cast<std::size_t>(c)];
  }
  return histogram;
}

}  // namespace sinrcolor::graph
