#include "graph/tile_partition.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/task_pool.h"

namespace sinrcolor::graph {

TilePartition TilePartition::identity(std::size_t n) {
  TilePartition p;
  p.order_.resize(n);
  for (std::size_t v = 0; v < n; ++v) p.order_[v] = static_cast<NodeId>(v);
  p.offsets_ = {0, n};
  return p;
}

TilePartition TilePartition::spatial(const UnitDiskGraph& g,
                                     std::size_t tile_count) {
  const std::size_t n = g.size();
  tile_count = std::clamp<std::size_t>(tile_count, 1,
                                       std::max<std::size_t>(n, 1));
  const double cell = g.radius();
  SINRCOLOR_CHECK(cell > 0.0);
  // Row-major cell rank: positions live in [0, side]^2, so cell coordinates
  // are non-negative and bounded by side/cell (+1 for points exactly on the
  // far edge). The rank only has to ORDER cells; it never indexes storage.
  const auto cells_per_row =
      static_cast<std::uint64_t>(std::floor(g.side() / cell)) + 2;
  std::vector<std::pair<std::uint64_t, NodeId>> keyed(n);
  for (std::size_t v = 0; v < n; ++v) {
    const geometry::Point& p = g.position(static_cast<NodeId>(v));
    const auto cx = static_cast<std::uint64_t>(std::floor(p.x / cell));
    const auto cy = static_cast<std::uint64_t>(std::floor(p.y / cell));
    keyed[v] = {cy * cells_per_row + cx, static_cast<NodeId>(v)};
  }
  // Pair comparison breaks cell-rank ties by node id — fully deterministic.
  std::sort(keyed.begin(), keyed.end());

  TilePartition p;
  p.order_.resize(n);
  for (std::size_t k = 0; k < n; ++k) p.order_[k] = keyed[k].second;
  p.offsets_.resize(tile_count + 1);
  for (std::size_t t = 0; t < tile_count; ++t) {
    p.offsets_[t] = common::TaskPool::shard_range(n, tile_count, t).first;
  }
  p.offsets_[tile_count] = n;
  return p;
}

std::size_t TilePartition::default_tile_count(std::size_t n) {
  return std::clamp<std::size_t>((n + 255) / 256, 1, 64);
}

std::span<const NodeId> TilePartition::tile(std::size_t t) const {
  SINRCOLOR_DCHECK(t + 1 < offsets_.size() || (offsets_.empty() && t == 0));
  if (offsets_.empty()) return {};
  return {order_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
}

std::size_t TilePartition::memory_bytes() const {
  return order_.capacity() * sizeof(NodeId) +
         offsets_.capacity() * sizeof(std::size_t);
}

}  // namespace sinrcolor::graph
