#include "graph/unit_disk_graph.h"

#include <algorithm>

#include "common/check.h"

namespace sinrcolor::graph {

UnitDiskGraph::UnitDiskGraph(geometry::Deployment deployment, double radius)
    : deployment_(std::move(deployment)),
      radius_(radius),
      index_(deployment_.points, std::max(deployment_.side, radius), radius) {
  SINRCOLOR_CHECK(radius > 0.0);
  const std::size_t n = deployment_.points.size();
  std::vector<std::vector<NodeId>> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    index_.for_each_within(
        deployment_.points[v], radius_, [&](std::size_t u, const geometry::Point&) {
          if (u != v) lists[v].push_back(static_cast<NodeId>(u));
        });
    std::sort(lists[v].begin(), lists[v].end());
  }

  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + lists[v].size();
  adjacency_.reserve(offsets_[n]);
  for (auto& list : lists) {
    adjacency_.insert(adjacency_.end(), list.begin(), list.end());
    max_degree_ = std::max(max_degree_, list.size());
  }
}

double UnitDiskGraph::average_degree() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(size());
}

bool UnitDiskGraph::adjacent(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<NodeId> UnitDiskGraph::nodes_within(NodeId v, double r) const {
  std::vector<NodeId> result;
  index_.for_each_within(position(v), r, [&](std::size_t u, const geometry::Point&) {
    if (u != v) result.push_back(static_cast<NodeId>(u));
  });
  std::sort(result.begin(), result.end());
  return result;
}

UnitDiskGraph UnitDiskGraph::scaled(double factor) const {
  SINRCOLOR_CHECK(factor > 0.0);
  return UnitDiskGraph(deployment_, radius_ * factor);
}

}  // namespace sinrcolor::graph
