// Independent sets in the geometric sense of the paper: I ⊆ V is independent
// iff every two members are more than R_T apart (i.e. non-adjacent in the UDG).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {

/// Returns a violating pair (u, v) with δ(u,v) ≤ R_T if `nodes` is not
/// independent, std::nullopt otherwise.
std::optional<std::pair<NodeId, NodeId>> find_independence_violation(
    const UnitDiskGraph& g, const std::vector<NodeId>& nodes);

bool is_independent_set(const UnitDiskGraph& g, const std::vector<NodeId>& nodes);

/// True iff `nodes` is a *maximal* independent set: independent, and every
/// node of g is in the set or adjacent to a member.
bool is_maximal_independent_set(const UnitDiskGraph& g,
                                const std::vector<NodeId>& nodes);

/// Greedy (first-fit by id) maximal independent set; the centralized oracle
/// used by tests and baselines.
std::vector<NodeId> greedy_mis(const UnitDiskGraph& g);

}  // namespace sinrcolor::graph
