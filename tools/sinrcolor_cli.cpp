// sinrcolor — command-line front end for the library.
//
//   sinrcolor_cli params   [--n=..] [--delta=..] [--alpha=..] [--beta=..]
//                          [--rho=..] [--profile=practical|theory]
//   sinrcolor_cli color    [--n=..] [--side=..] [--seed=..] [--deployment=..]
//                          [--wakeup=sync|uniform] [--resolve=field|simd|naive]
//                          [--threads=..] [--slot-threads=..] [--trials=..]
//                          [--faults=plan.json] [--json=out.json] [--quiet]
//   sinrcolor_cli sweep    [--n-list=64,128,..] [--trials=..] [--threads=..]
//                          [--avg-degree=..] [--seed=..] [--resolve=..]
//                          [--shared-topology] [--csv=out.csv] [--quiet]
//   sinrcolor_cli mac      [--n=..] [--side=..] [--seed=..]
//   sinrcolor_cli simulate [--n=..] [--side=..] [--seed=..] [--algorithm=..]
//   sinrcolor_cli recover  [--n=..] [--side=..] [--seed=..] [--deployment=..]
//                          [--fail-fraction=..] [--fail-window=..]
//                          [--join-fraction=..] [--join-at=..] [--join-window=..]
//                          [--retransmit-wait=..] [--retransmit-retries=..]
//                          [--degrade] [--faults=plan.json]
//                          [--resolve=field|simd|naive] [--threads=..]
//                          [--json=out.json] [--quiet]
//   sinrcolor_cli trace record   [--scenario=color|recover] [graph flags]
//                                [--out=trace.jsonl] [--chrome=trace.json]
//                                [--json=report.json] [--capacity=..] [--quiet]
//   sinrcolor_cli trace query    [--in=trace.jsonl] [--node=..] [--kind=..]
//                                [--from=..] [--to=..] [--limit=..]
//   sinrcolor_cli trace digest   [--in=trace.jsonl] [--node=..]
//   sinrcolor_cli trace timeline [--in=trace.jsonl] [--interval=..]
//                                [--columns=..]
//
// `params` prints the theory and practical constants side by side for an
// instance size; `color` runs the distributed coloring (optionally exporting
// the full run as JSON) — `--trials=N` repeats it over N seed streams
// derived from --seed, executed concurrently by --threads with byte-
// identical output for every thread count; `sweep` runs a whole
// (size × trials) grid through the same engine and prints one deterministic
// row per size; `mac` builds the Theorem-3 TDMA schedule and audits
// it; `simulate` runs a message-passing algorithm over the simulated MAC;
// `recover` runs the self-healing protocol (src/robust) under crash-stop
// failures and/or dynamic joins and reports the recovery metrics; with
// `--faults=plan.json` (color/recover) a declarative fault plan
// (docs/ROBUSTNESS.md) is injected and the runtime invariant monitor
// reports conflicts and their repair; `trace`
// records a run as a structured event trace (src/obs) and analyzes recorded
// traces: filtered event queries, per-node lifecycle digests and the
// state-population timeline, all reconstructed purely from the trace file.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "baseline/greedy_coloring.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/sweep.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "core/timeline.h"
#include "faults/fault_engine.h"
#include "faults/fault_plan.h"
#include "faults/invariant_monitor.h"
#include "geometry/deployment.h"
#include "graph/graph_algos.h"
#include "graph/topology_cache.h"
#include "mac/algorithms.h"
#include "mac/distance_d.h"
#include "mac/simulation.h"
#include "mac/tdma.h"
#include "obs/export.h"
#include "obs/observation.h"
#include "robust/recovery_protocol.h"

namespace {

using namespace sinrcolor;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sinrcolor_cli <params|color|sweep|mac|simulate|recover> "
               "[--flags]\n"
               "see the header of tools/sinrcolor_cli.cpp for details\n");
  std::exit(2);
}

graph::UnitDiskGraph build_graph(const common::Cli& cli) {
  const auto n = static_cast<std::size_t>(cli.get_int_at_least("n", 200, 1));
  const double side = cli.get_double_at_least("side", 5.0, 1e-9);
  const auto seed = cli.get_seed("seed", 1);
  const std::string kind = cli.get("deployment", "uniform");
  common::Rng rng(seed);
  geometry::Deployment dep;
  if (kind == "uniform") {
    dep = geometry::uniform_deployment(n, side, rng);
  } else if (kind == "clustered") {
    dep = geometry::clustered_deployment(n, side, 4, side / 5.0, rng);
  } else if (kind == "grid") {
    dep = geometry::grid_deployment(n, side, 0.2, rng);
  } else if (kind == "line") {
    dep = geometry::line_deployment(n, 0.8);
  } else {
    std::fprintf(stderr, "unknown --deployment=%s\n", kind.c_str());
    std::exit(2);
  }
  return {std::move(dep), cli.get_double_at_least("radius", 1.0, 1e-9)};
}

sinr::SinrParams phys_for(const graph::UnitDiskGraph& g) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(g.radius(), p.alpha));
  return p;
}

// --resolve=field|simd|naive picks the SINR reception path (field is the fast
// default; simd the SoA batch kernel — docs/KERNELS.md; naive the A/B
// oracle — docs/PERFORMANCE.md), --threads=N the worker count of the
// field/simd paths, --slot-threads=N the worker count of the simulator's
// tiled slot engine (docs/ARCHITECTURE.md). Every value is byte-identical.
void apply_resolve_flags(const common::Cli& cli, core::MwRunConfig& cfg) {
  const std::string resolve = cli.get("resolve", "field");
  if (!sinr::resolve_kind_from_string(resolve, cfg.resolve)) {
    std::fprintf(stderr, "unknown --resolve=%s (field|simd|naive)\n",
                 resolve.c_str());
    std::exit(2);
  }
  cfg.threads = static_cast<std::size_t>(cli.get_int_at_least("threads", 1, 1));
  cfg.slot_threads =
      static_cast<std::size_t>(cli.get_int_at_least("slot-threads", 1, 1));
}

/// Loads --faults=<plan.json> when present; exits 2 with the parse /
/// validation error otherwise (a typo'd plan must not silently run clean).
std::optional<faults::FaultPlan> load_fault_plan(const common::Cli& cli,
                                                 const graph::UnitDiskGraph& g) {
  const std::string path = cli.get("faults", "");
  if (path.empty()) return std::nullopt;
  faults::FaultPlan plan;
  std::string error;
  if (!faults::FaultPlan::load(path, plan, &error)) {
    std::fprintf(stderr, "--faults: %s\n", error.c_str());
    std::exit(2);
  }
  const std::string problem = plan.validate(g.size());
  if (!problem.empty()) {
    std::fprintf(stderr, "--faults: %s\n", problem.c_str());
    std::exit(2);
  }
  return plan;
}

/// Prints the fault-injection activity and the invariant monitor's verdict.
void print_fault_summary(const radio::RunMetrics& metrics,
                         const faults::FaultEngine& engine,
                         const faults::InvariantMonitor& monitor) {
  const auto inv = monitor.report();
  std::printf("faults: drops=%llu deaf_slots=%llu jammer_slots=%llu "
              "noisy_slots=%llu\n",
              static_cast<unsigned long long>(
                  metrics.fault_dropped_deliveries),
              static_cast<unsigned long long>(metrics.fault_deaf_slots),
              static_cast<unsigned long long>(engine.stats().jammer_slots),
              static_cast<unsigned long long>(engine.stats().noisy_slots));
  std::printf("invariants: conflicts=%zu repaired=%zu open=%zu "
              "tx_independence=%zu feasibility=%zu max_conflict_slots=%lld\n",
              inv.legality_violations, inv.conflicts_repaired,
              inv.open_conflicts, inv.tx_independence_violations,
              inv.feasibility_violations,
              static_cast<long long>(inv.max_conflict_duration));
}

int cmd_params(const common::Cli& cli) {
  core::MwConfig cfg;
  cfg.n = static_cast<std::size_t>(cli.get_int("n", 256));
  cfg.max_degree = static_cast<std::size_t>(cli.get_int("delta", 16));
  cfg.phys.alpha = cli.get_double("alpha", 4.0);
  cfg.phys.beta = cli.get_double("beta", 1.5);
  cfg.phys.rho = cli.get_double("rho", 1.5);
  cfg.phys.noise = 1e-6;
  cli.reject_unknown();

  const auto theory = core::MwParams::theory(cfg);
  const auto practical = core::MwParams::practical(cfg);
  std::printf("physical layer: %s\n\n", cfg.phys.to_string().c_str());

  common::Table t({"constant", "theory (paper Sec. II)", "practical profile"});
  auto row = [&](const char* name, double a, double b) {
    t.add_row({name, common::Table::num(a, 4), common::Table::num(b, 4)});
  };
  row("q_leader", theory.q_leader, practical.q_leader);
  row("q_small", theory.q_small, practical.q_small);
  row("listen slots", static_cast<double>(theory.listen_slots),
      static_cast<double>(practical.listen_slots));
  row("counter threshold", static_cast<double>(theory.counter_threshold),
      static_cast<double>(practical.counter_threshold));
  row("window (class 0)", static_cast<double>(theory.window_zero),
      static_cast<double>(practical.window_zero));
  row("window (class i>0)", static_cast<double>(theory.window_positive),
      static_cast<double>(practical.window_positive));
  row("assign slots", static_cast<double>(theory.assign_slots),
      static_cast<double>(practical.assign_slots));
  row("palette bound", static_cast<double>(theory.palette_bound()),
      static_cast<double>(practical.palette_bound()));
  t.print(std::cout);
  std::printf(
      "\n(the theory column is what the w.h.p. proofs demand — about %.0e "
      "slots of listen phase alone; the practical profile preserves every "
      "structural relation at simulation-friendly constants)\n",
      static_cast<double>(theory.listen_slots));
  return 0;
}

// `color --trials=N`: N independent protocol runs over ONE graph, each with
// its own splitmix-derived seed stream (common::trial_seed), executed
// through the sweep engine. `--threads` then parallelizes trials (each trial
// resolves single-threaded); the aggregate table and `--json` report are
// byte-identical for every thread count — wall time goes to stdout only.
int cmd_color_trials(const common::Cli& cli, const graph::UnitDiskGraph& g,
                     core::MwRunConfig base_cfg, std::size_t trials) {
  const std::string json_path = cli.get("json", "");
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  const std::size_t threads = base_cfg.threads;
  base_cfg.threads = 1;  // trial-level parallelism; no nested resolve pools
  base_cfg.slot_threads = 1;  // likewise for per-trial slot pools
  const std::uint64_t base_seed = base_cfg.seed;

  struct Trial {
    std::size_t colors = 0;
    std::size_t leaders = 0;
    double max_latency = 0.0;
    double mean_latency = 0.0;
    bool valid = false;
    bool steady_alloc_free = false;
  };
  common::SweepEngine engine(threads);
  common::SweepTiming timing;
  const auto results = engine.run(
      trials, base_seed,
      [&](const common::TrialContext& ctx) {
        core::MwRunConfig cfg = base_cfg;
        cfg.seed = ctx.seed;
        const auto r = core::run_mw_coloring(g, cfg);
        Trial t;
        t.colors = r.palette;
        t.leaders = r.leaders.size();
        t.max_latency = static_cast<double>(r.metrics.max_decision_latency());
        t.mean_latency = r.metrics.mean_decision_latency();
        t.valid = r.coloring_valid && r.metrics.all_decided;
        t.steady_alloc_free = r.metrics.steady_state_alloc_free();
        return t;
      },
      &timing);

  common::Accumulator colors, leaders, max_lat, mean_lat;
  bool all_valid = true;
  bool all_alloc_free = true;
  for (const Trial& t : results) {
    colors.add(static_cast<double>(t.colors));
    leaders.add(static_cast<double>(t.leaders));
    max_lat.add(t.max_latency);
    mean_lat.add(t.mean_latency);
    all_valid &= t.valid;
    all_alloc_free &= t.steady_alloc_free;
  }
  if (!quiet) {
    std::printf("graph: n=%zu Delta=%zu avg_deg=%.1f\n", g.size(),
                g.max_degree(), g.average_degree());
    std::printf("trials: %zu (base seed %llu, derived streams)\n", trials,
                static_cast<unsigned long long>(base_seed));
    std::printf("colors: mean=%.1f [%.0f, %.0f]\n", colors.mean(),
                colors.min(), colors.max());
    std::printf("leaders: mean=%.1f  max_latency: mean=%.0f  "
                "mean_latency: mean=%.0f\n",
                leaders.mean(), max_lat.mean(), mean_lat.mean());
    std::printf("valid: %s  steady-state alloc-free: %s\n",
                all_valid ? "all" : "NO",
                all_alloc_free ? "yes" : "NO");
    std::printf("wall: %.1f ms total, per-trial p50 %.1f ms / p95 %.1f ms "
                "(%zu threads)\n",
                static_cast<double>(timing.total_us) / 1000.0,
                static_cast<double>(timing.p50_us()) / 1000.0,
                static_cast<double>(timing.p95_us()) / 1000.0, threads);
  }
  if (!json_path.empty()) {
    // Deterministic trial report: results only, no wall times.
    common::JsonWriter json;
    json.begin_object();
    json.field("n", g.size());
    json.field("trials", trials);
    json.field("base_seed", base_seed);
    json.key("runs");
    json.begin_array();
    for (const Trial& t : results) {
      json.begin_object();
      json.field("colors", t.colors);
      json.field("leaders", t.leaders);
      json.field("max_latency", t.max_latency);
      json.field("mean_latency", t.mean_latency);
      json.field("valid", t.valid);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path);
    out << json.str() << '\n';
    if (!quiet) std::printf("report written to %s\n", json_path.c_str());
  }
  return all_valid ? 0 : 1;
}

int cmd_color(const common::Cli& cli) {
  const auto g = build_graph(cli);
  core::MwRunConfig cfg;
  cfg.seed = cli.get_seed("seed", 1);
  if (cli.get("wakeup", "sync") == "uniform") {
    cfg.wakeup = core::WakeupKind::kUniform;
    cfg.wakeup_window = cli.get_int_at_least("wakeup-window", 2000, 0);
  }
  apply_resolve_flags(cli, cfg);
  const auto trials = cli.get_int_at_least("trials", 1, 1);
  const auto plan = load_fault_plan(cli, g);
  if (trials > 1) {
    if (plan.has_value()) {
      std::fprintf(stderr, "--faults is incompatible with --trials > 1\n");
      std::exit(2);
    }
    return cmd_color_trials(cli, g, cfg, static_cast<std::size_t>(trials));
  }
  const std::string json_path = cli.get("json", "");
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  if (plan.has_value()) {
    // Fault-injected run: chaos engine + runtime invariant monitor. Crashed
    // nodes cannot decide, so the plain all-decided exit rule would punish
    // every crash plan — the verdict is the monitor's instead: every
    // coloring conflict the faults caused must have been repaired by the
    // end, and no color may exceed the palette bound.
    for (const faults::CrashEvent& c : plan->crashes) {
      if (c.restart != -1) {
        std::fprintf(stderr,
                     "--faults: crash restarts need the self-healing "
                     "protocol; use `recover`\n");
        std::exit(2);
      }
    }
    core::MwInstance instance(g, cfg);
    faults::FaultEngine engine(*plan, cfg.seed);
    engine.install(instance.simulator());
    faults::InvariantMonitor monitor(g, [&instance](graph::NodeId v) {
      return instance.nodes()[v]->final_color();
    });
    monitor.attach(instance.simulator());
    const auto result = instance.run();
    if (!quiet) {
      std::printf("graph: n=%zu Delta=%zu avg_deg=%.1f\n", g.size(),
                  g.max_degree(), g.average_degree());
      std::printf("params: %s\n", result.params.to_string().c_str());
      std::printf("result: %s\n", result.summary().c_str());
      print_fault_summary(result.metrics, engine, monitor);
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << core::to_json(result) << '\n';
      if (!quiet) std::printf("report written to %s\n", json_path.c_str());
    }
    const auto inv = monitor.report();
    return inv.open_conflicts == 0 && inv.feasibility_violations == 0 ? 0 : 1;
  }

  const auto result = core::run_mw_coloring(g, cfg);
  if (!quiet) {
    std::printf("graph: n=%zu Delta=%zu avg_deg=%.1f\n", g.size(),
                g.max_degree(), g.average_degree());
    std::printf("params: %s\n", result.params.to_string().c_str());
    std::printf("result: %s\n", result.summary().c_str());
    if (common::alloc_counting_enabled()) {
      std::printf("slot-loop allocs: %llu over %lld slots (last alloc in "
                  "slot %lld, steady-state %s)\n",
                  static_cast<unsigned long long>(
                      result.metrics.slot_heap_allocs),
                  static_cast<long long>(result.metrics.slots_executed),
                  static_cast<long long>(result.metrics.last_alloc_slot),
                  result.metrics.steady_state_alloc_free() ? "alloc-free"
                                                           : "ALLOCATING");
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << core::to_json(result) << '\n';
    if (!quiet) std::printf("report written to %s\n", json_path.c_str());
  }
  return result.coloring_valid && result.metrics.all_decided ? 0 : 1;
}

// `sweep`: a (size × trials) grid through the sweep engine — the CLI's
// front door to the same machinery the bench harnesses use. One
// deterministic row per size (byte-identical for every --threads value);
// wall times print separately. --shared-topology runs every trial of a size
// on ONE cache-built graph (protocol-variance view) instead of a fresh
// graph per trial (topology-variance view, the default).
int cmd_sweep(const common::Cli& cli) {
  const std::string n_list = cli.get("n-list", "64,128,256");
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 4));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  const double avg = cli.get_double("avg-degree", 10.0);
  const auto base_seed = cli.get_seed("seed", 1);
  const bool shared_topology = cli.get_bool("shared-topology", false);
  const std::string csv_path = cli.get("csv", "");
  const bool quiet = cli.get_bool("quiet", false);
  core::MwRunConfig base_cfg;
  {
    const std::string resolve = cli.get("resolve", "field");
    if (!sinr::resolve_kind_from_string(resolve, base_cfg.resolve)) {
      std::fprintf(stderr, "unknown --resolve=%s (field|simd|naive)\n",
                   resolve.c_str());
      std::exit(2);
    }
  }
  cli.reject_unknown();
  if (trials < 1 || threads < 1) {
    std::fprintf(stderr, "--trials and --threads must be >= 1\n");
    return 2;
  }

  // Parse "64,128,256" into sizes.
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < n_list.size()) {
    const std::size_t comma = n_list.find(',', pos);
    const std::string tok =
        n_list.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0) {
      std::fprintf(stderr, "bad --n-list entry '%s'\n", tok.c_str());
      return 2;
    }
    sizes.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  struct Trial {
    double colors = 0.0;
    double max_latency = 0.0;
    double delta = 0.0;
    bool valid = false;
  };
  const auto graph_for = [&](std::size_t n, std::uint64_t graph_seed) {
    const double side =
        std::sqrt(static_cast<double>(n) * M_PI / avg);
    graph::TopologyKey key;
    key.kind = "uniform-density";
    key.n = n;
    key.side = side;
    key.radius = 1.0;
    key.seed = graph_seed;
    key.param1 = avg;
    return graph::global_topology_cache().get_or_build(key, [&] {
      common::Rng rng(graph_seed);
      return graph::UnitDiskGraph(geometry::uniform_deployment(n, side, rng),
                                  1.0);
    });
  };

  common::SweepEngine engine(threads);
  common::Table table(
      {"n", "trials", "Delta", "colors", "max_latency", "valid"});
  bool all_valid = true;
  for (std::size_t n : sizes) {
    const std::uint64_t size_seed = common::derive_seed(base_seed, n);
    common::SweepTiming timing;
    const auto results = engine.run(
        trials, size_seed,
        [&](const common::TrialContext& ctx) {
          // Shared topology: one graph per size (seed from the size, not the
          // trial) reused read-only by every trial. Default: fresh graph per
          // trial from the trial's own stream.
          const auto g = graph_for(
              n, shared_topology ? common::derive_seed(size_seed, 0x67)
                                 : common::derive_seed(ctx.seed, 0x67));
          core::MwRunConfig cfg = base_cfg;
          cfg.seed = ctx.seed;
          const auto r = core::run_mw_coloring(*g, cfg);
          Trial t;
          t.colors = static_cast<double>(r.palette);
          t.max_latency =
              static_cast<double>(r.metrics.max_decision_latency());
          t.delta = static_cast<double>(g->max_degree());
          t.valid = r.coloring_valid && r.metrics.all_decided;
          return t;
        },
        &timing);
    common::Accumulator colors, max_lat, delta;
    for (const Trial& t : results) {
      colors.add(t.colors);
      max_lat.add(t.max_latency);
      delta.add(t.delta);
      all_valid &= t.valid;
    }
    table.add_row({common::Table::integer(static_cast<long long>(n)),
                   common::Table::integer(static_cast<long long>(trials)),
                   common::Table::num(delta.mean(), 1),
                   common::Table::num(colors.mean(), 1),
                   common::Table::num(max_lat.mean(), 0),
                   all_valid ? "yes" : "NO"});
    if (!quiet) {
      std::printf("n=%zu: %zu trials in %.1f ms (p50 %.1f / p95 %.1f ms per "
                  "trial, %zu threads)\n",
                  n, trials, static_cast<double>(timing.total_us) / 1000.0,
                  static_cast<double>(timing.p50_us()) / 1000.0,
                  static_cast<double>(timing.p95_us()) / 1000.0, threads);
    }
  }
  table.print(std::cout);
  if (shared_topology && !quiet) {
    std::printf("topology cache: %zu built, %llu reused\n",
                graph::global_topology_cache().size(),
                static_cast<unsigned long long>(
                    graph::global_topology_cache().hits()));
  }
  if (!csv_path.empty() && table.write_csv(csv_path)) {
    if (!quiet) std::printf("rows written to %s\n", csv_path.c_str());
  }
  return all_valid ? 0 : 1;
}

int cmd_mac(const common::Cli& cli) {
  const auto g = build_graph(cli);
  const auto phys = phys_for(g);
  const double d = phys.mac_distance_d();
  cli.reject_unknown();

  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
  const auto audit = mac::audit_tdma_sinr(g, phys, schedule);
  std::printf("d=%.3f, frame length V=%u\n", d, schedule.frame_length());
  std::printf("audit: %s\n", audit.summary().c_str());
  return audit.interference_free() ? 0 : 1;
}

int cmd_simulate(const common::Cli& cli) {
  const auto g = build_graph(cli);
  const auto phys = phys_for(g);
  const double d = phys.mac_distance_d();
  const std::string algorithm = cli.get("algorithm", "flooding");
  cli.reject_unknown();

  const auto schedule = mac::TdmaSchedule::from_coloring(
      baseline::greedy_distance_d_coloring(g, d + 1.0));

  if (algorithm == "flooding") {
    auto nodes = mac::instantiate(g, [](graph::NodeId v, const auto&) {
      return std::make_unique<mac::FloodingBfs>(v, 0);
    });
    const auto sim = mac::run_over_sinr_tdma(g, phys, schedule, nodes, 1000);
    const auto oracle = graph::bfs_distances(g, 0);
    std::size_t correct = 0, reachable = 0;
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      if (oracle[v] == graph::kUnreachable) continue;
      ++reachable;
      correct += static_cast<mac::FloodingBfs*>(nodes[v].get())->distance() ==
                 oracle[v];
    }
    std::printf("flooding over SINR TDMA: %s\n", sim.summary().c_str());
    std::printf("%zu/%zu reachable nodes at oracle distance\n", correct,
                reachable);
    return correct == reachable ? 0 : 1;
  }
  if (algorithm == "luby") {
    auto nodes = mac::instantiate(g, [](graph::NodeId v, const auto&) {
      return std::make_unique<mac::LubyMis>(v, 424242);
    });
    const auto sim = mac::run_over_sinr_tdma(g, phys, schedule, nodes, 1000);
    std::size_t mis = 0;
    for (const auto& node : nodes) {
      mis += static_cast<mac::LubyMis*>(node.get())->in_mis();
    }
    std::printf("luby-mis over SINR TDMA: %s\n", sim.summary().c_str());
    std::printf("MIS size: %zu\n", mis);
    return sim.all_terminated ? 0 : 1;
  }
  std::fprintf(stderr, "unknown --algorithm=%s (flooding|luby)\n",
               algorithm.c_str());
  return 2;
}

int cmd_recover(const common::Cli& cli) {
  const auto g = build_graph(cli);
  core::MwRunConfig cfg;
  cfg.seed = cli.get_seed("seed", 1);
  cfg.failure_fraction = cli.get_double_at_least("fail-fraction", 0.0, 0.0);
  cfg.failure_window = cli.get_int_at_least("fail-window", 0, 0);
  cfg.recovery.enabled = true;
  cfg.recovery.join_fraction =
      cli.get_double_at_least("join-fraction", 0.0, 0.0);
  cfg.recovery.join_at = cli.get_int_at_least("join-at", 0, 0);
  cfg.recovery.join_window = cli.get_int_at_least("join-window", 0, 0);
  if (cfg.failure_fraction > 1.0 || cfg.recovery.join_fraction > 1.0) {
    std::fprintf(stderr, "fractions must be in [0, 1]\n");
    std::exit(2);
  }
  // Robustness hardening knobs (docs/ROBUSTNESS.md): bounded request
  // retransmission and graceful degradation to a provisional color.
  cfg.recovery.retransmit.initial_wait =
      cli.get_int_at_least("retransmit-wait", 0, 0);
  cfg.recovery.retransmit.max_retries = static_cast<std::size_t>(
      cli.get_int_at_least("retransmit-retries", 6, 0));
  cfg.recovery.degrade_to_provisional = cli.get_bool("degrade", false);
  apply_resolve_flags(cli, cfg);
  const auto plan = load_fault_plan(cli, g);
  const std::string json_path = cli.get("json", "");
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  robust::RecoveryInstance instance(g, cfg);
  std::optional<faults::FaultEngine> engine;
  std::optional<faults::InvariantMonitor> monitor;
  if (plan.has_value()) {
    engine.emplace(*plan, cfg.seed);
    engine->install(instance.simulator());
    monitor.emplace(g, [&instance](graph::NodeId v) {
      return instance.nodes()[v]->final_color();
    });
    monitor->attach(instance.simulator());
  }
  const auto result = instance.run();
  if (!quiet) {
    std::printf("graph: n=%zu Delta=%zu avg_deg=%.1f\n", g.size(),
                g.max_degree(), g.average_degree());
    std::printf("params: %s\n", result.params.to_string().c_str());
    std::printf("recovery: %s\n", cfg.recovery.to_string().c_str());
    std::printf("result: %s\n", result.summary().c_str());
    std::printf("healing: %s\n", result.recovery.summary().c_str());
    if (engine.has_value()) {
      print_fault_summary(result.metrics, *engine, *monitor);
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << core::to_json(result) << '\n';
    if (!quiet) std::printf("report written to %s\n", json_path.c_str());
  }
  // Success = the LIVE coloring is valid and no survivor stalled (a corpse
  // cannot decide; result.metrics.all_decided would punish it unfairly).
  // Under a fault plan the invariant monitor's verdict joins the gate:
  // every conflict the faults caused must have been repaired by the end.
  bool ok = result.coloring_valid && result.metrics.stalled_nodes == 0;
  if (monitor.has_value()) {
    const auto inv = monitor->report();
    ok = ok && inv.open_conflicts == 0 && inv.feasibility_violations == 0;
  }
  return ok ? 0 : 1;
}

// --- trace subcommand -------------------------------------------------------

int trace_record(const common::Cli& cli) {
  const auto g = build_graph(cli);
  core::MwRunConfig cfg;
  cfg.seed = cli.get_seed("seed", 1);
  if (cli.get("wakeup", "sync") == "uniform") {
    cfg.wakeup = core::WakeupKind::kUniform;
    cfg.wakeup_window = cli.get_int_at_least("wakeup-window", 2000, 0);
  }
  cfg.failure_fraction = cli.get_double_at_least("fail-fraction", 0.0, 0.0);
  cfg.failure_window = cli.get_int_at_least("fail-window", 0, 0);
  cfg.recovery.join_fraction =
      cli.get_double_at_least("join-fraction", 0.0, 0.0);
  cfg.recovery.join_at = cli.get_int_at_least("join-at", 0, 0);
  cfg.recovery.join_window = cli.get_int_at_least("join-window", 0, 0);
  apply_resolve_flags(cli, cfg);
  const std::string scenario = cli.get("scenario", "color");
  const std::string out_path = cli.get("out", "trace.jsonl");
  const std::string chrome_path = cli.get("chrome", "");
  const std::string json_path = cli.get("json", "");
  const auto capacity =
      static_cast<std::size_t>(cli.get_int_at_least("capacity", 1 << 20, 1));
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  obs::RunObservation observation(capacity);
  const auto run_traced = [&]() -> core::MwRunResult {
    if (scenario == "recover") {
      cfg.recovery.enabled = true;
      robust::RecoveryInstance instance(g, cfg);
      instance.attach_observation(&observation);
      return instance.run();
    }
    if (scenario != "color") {
      std::fprintf(stderr, "unknown --scenario=%s (color|recover)\n",
                   scenario.c_str());
      std::exit(2);
    }
    core::MwInstance instance(g, cfg);
    instance.attach_observation(&observation);
    return instance.run();
  };
  const auto result = run_traced();

  obs::TraceMeta meta;
  meta.node_count = g.size();
  meta.seed = cfg.seed;
  meta.scenario = scenario;
  meta.recorded = observation.trace.recorded();
  meta.dropped = observation.trace.dropped();
  const auto events = observation.trace.events();
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    obs::write_jsonl(meta, events, out);
  }
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", chrome_path.c_str());
      return 2;
    }
    obs::write_chrome_trace(meta, events, out);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << core::to_json(result, observation, true) << '\n';
  }
  if (!quiet) {
    std::printf("graph: n=%zu Delta=%zu avg_deg=%.1f\n", g.size(),
                g.max_degree(), g.average_degree());
    std::printf("result: %s\n", result.summary().c_str());
    std::printf("trace: %llu events recorded, %llu dropped -> %s\n",
                static_cast<unsigned long long>(meta.recorded),
                static_cast<unsigned long long>(meta.dropped),
                out_path.c_str());
    if (!chrome_path.empty()) {
      std::printf("chrome trace (chrome://tracing, ui.perfetto.dev): %s\n",
                  chrome_path.c_str());
    }
    if (!json_path.empty()) {
      std::printf("report with observability summary: %s\n",
                  json_path.c_str());
    }
  }
  return result.coloring_valid && result.metrics.stalled_nodes == 0 ? 0 : 1;
}

/// Loads --in (default trace.jsonl); exits with an error message on failure.
void load_trace(const common::Cli& cli, obs::TraceMeta& meta,
                std::vector<obs::TraceEvent>& events) {
  const std::string in_path = cli.get("in", "trace.jsonl");
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
    std::exit(2);
  }
  std::string error;
  if (!obs::read_jsonl(in, meta, events, &error)) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), error.c_str());
    std::exit(2);
  }
}

int trace_query(const common::Cli& cli) {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
  load_trace(cli, meta, events);
  const std::int64_t node = cli.get_int("node", -1);
  const std::string kind_name = cli.get("kind", "");
  const std::int64_t from = cli.get_int("from", 0);
  const std::int64_t to = cli.get_int("to", -1);
  const auto limit = cli.get_int("limit", 0);  // 0 = unlimited
  cli.reject_unknown();

  obs::EventKind kind_filter = obs::EventKind::kWake;
  const bool has_kind = !kind_name.empty();
  if (has_kind && !obs::event_kind_from_string(kind_name, kind_filter)) {
    std::fprintf(stderr, "unknown --kind=%s\n", kind_name.c_str());
    return 2;
  }

  std::int64_t shown = 0;
  for (const obs::TraceEvent& e : events) {
    if (node >= 0 && e.node != static_cast<obs::NodeId>(node)) continue;
    if (has_kind && e.kind != kind_filter) continue;
    if (e.slot < from || (to >= 0 && e.slot > to)) continue;
    std::printf("slot=%-8lld %-22s node=%u", static_cast<long long>(e.slot),
                obs::to_string(e.kind), e.node);
    if (e.peer != obs::kNoNode) std::printf(" peer=%u", e.peer);
    switch (e.kind) {
      case obs::EventKind::kMwTransition:
        std::printf(" %s->%s", obs::mw_state_name(e.a),
                    obs::mw_state_name(e.b));
        break;
      case obs::EventKind::kJoinTransition:
        std::printf(" %s->%s", obs::join_phase_name(e.a),
                    obs::join_phase_name(e.b));
        break;
      case obs::EventKind::kColorFinalized:
      case obs::EventKind::kIndependenceViolation:
        std::printf(" color=%lld", static_cast<long long>(e.b));
        break;
      default:
        if (e.a != 0 || e.b != 0) {
          std::printf(" a=%d b=%lld", e.a, static_cast<long long>(e.b));
        }
        break;
    }
    std::printf("\n");
    if (limit > 0 && ++shown >= limit) break;
  }
  return 0;
}

int trace_digest(const common::Cli& cli) {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
  load_trace(cli, meta, events);
  const std::int64_t node = cli.get_int("node", -1);
  cli.reject_unknown();

  std::printf("trace: scenario=%s n=%llu seed=%llu events=%zu dropped=%llu\n",
              meta.scenario.c_str(),
              static_cast<unsigned long long>(meta.node_count),
              static_cast<unsigned long long>(meta.seed), events.size(),
              static_cast<unsigned long long>(meta.dropped));
  const auto digest =
      obs::build_digest(events, static_cast<std::size_t>(meta.node_count));
  std::fputs(obs::render_digest(digest, node).c_str(), stdout);
  return 0;
}

int trace_timeline(const common::Cli& cli) {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
  load_trace(cli, meta, events);
  const auto columns =
      static_cast<std::size_t>(cli.get_int("columns", 72));
  radio::Slot interval = cli.get_int("interval", 0);
  cli.reject_unknown();

  if (interval <= 0) {
    const radio::Slot last = events.empty() ? 0 : events.back().slot;
    interval = std::max<radio::Slot>(
        1, last / static_cast<radio::Slot>(columns));
  }
  const auto timeline = core::timeline_from_trace(
      events, static_cast<std::size_t>(meta.node_count), interval);
  std::fputs(timeline.render_ascii(columns).c_str(), stdout);
  const radio::Slot half = timeline.decided_fraction_slot(0.5);
  const radio::Slot all = timeline.decided_fraction_slot(1.0);
  std::printf("50%% decided by slot %lld, 100%% by %lld (-1 = not reached)\n",
              static_cast<long long>(half), static_cast<long long>(all));
  return 0;
}

int cmd_trace(int argc, char** argv) {
  // trace <mode> [--flags]; the mode may be omitted only for usage errors.
  if (argc < 3 || argv[2][0] == '-') usage();
  const std::string mode = argv[2];
  const common::Cli cli(argc - 2, argv + 2);
  if (mode == "record") return trace_record(cli);
  if (mode == "query") return trace_query(cli);
  if (mode == "digest") return trace_digest(cli);
  if (mode == "timeline") return trace_timeline(cli);
  std::fprintf(stderr, "unknown trace mode '%s' (record|query|digest|timeline)\n",
               mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "trace") return cmd_trace(argc, argv);
  const common::Cli cli(argc - 1, argv + 1);
  if (command == "params") return cmd_params(cli);
  if (command == "color") return cmd_color(cli);
  if (command == "sweep") return cmd_sweep(cli);
  if (command == "mac") return cmd_mac(cli);
  if (command == "simulate") return cmd_simulate(cli);
  if (command == "recover") return cmd_recover(cli);
  usage();
}
