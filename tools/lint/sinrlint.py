#!/usr/bin/env python3
"""sinrlint — project-specific static analysis for the sinrcolor tree.

Eight token/regex-level rules that the generic tools (clang-tidy, -W flags)
cannot express, each protecting the credibility of the simulation evidence
for the paper's Theorems 1-3 (see docs/STATIC_ANALYSIS.md for rationale):

  R1 determinism-unordered   no std::unordered_{map,set,...} anywhere results,
                             reports, colors or RNG draws could be fed from
                             iteration order (applied tree-wide: hash-order is
                             implementation-defined, so same-seed runs would
                             not be bit-stable).
  R2 state-guard             no direct writes to the guarded state-machine
                             fields (MwNode::state_, SelfHealingNode::
                             join_phase_) outside the sanctioned
                             transition_to() helper, which validates every
                             edge against the declared transition table.
  R3 rng-discipline          no rand(), srand(), std::random_device or
                             std::mt19937 outside src/common/rng.* — all
                             randomness must flow from the single seeded
                             xoshiro256++ stream.
  R4 contract-guard          every protocol entry point the simulator calls
                             (on_wake / begin_slot / on_receive definitions
                             under src/) guards its narrow contract with a
                             SINRCOLOR_CHECK.
  R5 float-accumulation      no `float` in SINR / interference arithmetic
                             (src/sinr, src/radio): power sums span many
                             orders of magnitude and float accumulation
                             changes reception outcomes.
  R6 lock-discipline         no raw std::mutex family in src/ (use the
                             annotated common::Mutex so clang -Wthread-safety
                             checks lock discipline), and no bare
                             .lock()/.unlock()/.try_lock() on a declared
                             mutex outside the RAII guards of
                             src/common/mutex.h.
  R7 no-wall-clock           no wall-clock reads (system_clock, steady_clock,
                             time(), clock(), ...) in src/ — results must be
                             pure functions of (topology, protocol, seed);
                             reporting-only timing is allowlisted per file.
  R8 shared-mutable-global   no mutable static/namespace-scope state in src/
                             that is not const, thread_local, atomic or an
                             allowlisted internally-synchronized singleton —
                             hidden shared globals break both thread safety
                             and the share-nothing determinism contract.

Findings can be suppressed through the allowlist file (one justified entry
per suppression; see tools/lint/allowlist.txt). `--prune-check` audits the
allowlist itself: an entry that no longer suppresses anything is stale and
must be removed. Exit status: 0 clean, 1 findings (or stale entries),
2 bad invocation / malformed allowlist.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
DEFAULT_SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
EXCLUDED_DIRS = ("tools/lint/fixtures",)

# R2: fields whose every assignment must happen inside SANCTIONED_FN.
GUARDED_FIELDS = ("state_", "join_phase_")
SANCTIONED_FN = "transition_to"

# R3: the only files allowed to touch raw randomness sources.
RNG_HOME = ("src/common/rng.h", "src/common/rng.cpp")

# R4: simulator-driven entry points with narrow contracts, and where the rule
# applies (test doubles outside src/ keep wide contracts on purpose).
ENTRY_POINTS = ("on_wake", "begin_slot", "on_receive")
R4_SCOPE = ("src/",)

# R5: subsystems doing SINR / interference arithmetic.
R5_SCOPE = ("src/sinr/", "src/radio/")

# R6: the annotated wrapper lives here and is the one place allowed to touch
# the raw std::mutex underneath; library code everywhere else must go through
# common::Mutex / common::MutexLock.
MUTEX_HOME = ("src/common/mutex.h",)
R6_SCOPE = ("src/",)
MUTEX_TYPES = r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex"

# R7: library code whose outputs are byte-compared across runs/threads.
# bench/ and tools/ print wall time on purpose; src/ must not read clocks
# except where the allowlist names reporting-only timing.
R7_SCOPE = ("src/",)

# R8: same scope — shared mutable globals hide cross-thread state.
R8_SCOPE = ("src/",)


@dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class AllowEntry:
    rule: str
    glob: str
    justification: str


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    Replaced characters become spaces so that byte offsets and line numbers
    of the surviving code are unchanged. Raw strings are handled; trigraphs
    and line continuations inside literals are not (absent from this tree).
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(start: int, end: int) -> None:
        for k in range(start, end):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(i, end)
            i = end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif ch == '"' and text[max(0, i - 1) : i + 1] == 'R"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1 : i + 20])
            if m:
                closer = f"){m.group(1)}\""
                end = text.find(closer, i + 1)
                end = n if end == -1 else end + len(closer)
                blank(i + 1, end)
                i = end
            else:
                i += 1
        elif ch in ('"', "'"):
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            blank(i + 1, end - 1)
            i = end
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_paren(text: str, open_idx: int) -> int:
    """Index just past the parenthesis group opening at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace block opening at open_idx, or len(text)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def function_body_spans(stripped: str, fn_name: str) -> list[tuple[int, int]]:
    """(start, end) byte spans of the bodies of every definition of fn_name."""
    spans = []
    for m in re.finditer(rf"\b{re.escape(fn_name)}\s*\(", stripped):
        after_params = match_paren(stripped, m.end() - 1)
        if after_params == -1:
            continue
        # Skip trailing qualifiers between the parameter list and the body.
        tail = re.match(r"(\s|const|noexcept|override|final|->[\w:<>&\s*]+)*\{",
                        stripped[after_params:])
        if not tail:
            continue  # declaration or call, not a definition
        body_open = after_params + tail.end() - 1
        spans.append((body_open, match_brace(stripped, body_open)))
    return spans


# --- rules -----------------------------------------------------------------


def rule_r1(path: str, stripped: str) -> list[Finding]:
    findings = []
    for m in re.finditer(r"\bstd::unordered_(map|set|multimap|multiset)\b", stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R1",
            f"std::unordered_{m.group(1)} iteration order is implementation-"
            "defined; use std::map/std::set or a sorted vector so same-seed "
            "runs stay bit-stable"))
    return findings


def rule_r2(path: str, stripped: str) -> list[Finding]:
    sanctioned = function_body_spans(stripped, SANCTIONED_FN)
    findings = []
    fields = "|".join(re.escape(f) for f in GUARDED_FIELDS)
    for m in re.finditer(
            rf"\b({fields})\s*(=(?!=)|\+=|-=|\|=|&=|\^=|\+\+|--)", stripped):
        if any(a <= m.start() < b for a, b in sanctioned):
            continue
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R2",
            f"direct write to guarded state field '{m.group(1)}' — route the "
            f"mutation through {SANCTIONED_FN}(), which validates the edge "
            "against the declared transition table"))
    return findings


def rule_r3(path: str, stripped: str) -> list[Finding]:
    if path in RNG_HOME:
        return []
    patterns = (
        (r"\bstd::random_device\b", "std::random_device"),
        (r"\bstd::mt19937(_64)?\b", "std::mt19937"),
        (r"(?<![A-Za-z0-9_:.>])s?rand\s*\(", "rand()/srand()"),
    )
    findings = []
    for pattern, what in patterns:
        for m in re.finditer(pattern, stripped):
            findings.append(Finding(
                path, line_of(stripped, m.start()), "R3",
                f"naked randomness source {what} — all randomness must flow "
                "from the seeded common::Rng stream (src/common/rng.h)"))
    return findings


def rule_r4(path: str, stripped: str) -> list[Finding]:
    if not any(path.startswith(scope) for scope in R4_SCOPE):
        return []
    findings = []
    for entry in ENTRY_POINTS:
        for start, end in function_body_spans(stripped, entry):
            if "SINRCOLOR_CHECK" in stripped[start:end]:
                continue
            findings.append(Finding(
                path, line_of(stripped, start), "R4",
                f"protocol entry point {entry}() does not guard its narrow "
                "contract with SINRCOLOR_CHECK / SINRCOLOR_CHECK_MSG"))
    return findings


def rule_r5(path: str, stripped: str) -> list[Finding]:
    if not any(path.startswith(scope) for scope in R5_SCOPE):
        return []
    findings = []
    for m in re.finditer(r"\bfloat\b", stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R5",
            "float in SINR/interference code — power sums span orders of "
            "magnitude; accumulate in double (Lemma 3 margins are tighter "
            "than float epsilon)"))
    return findings


def rule_r6(path: str, stripped: str) -> list[Finding]:
    if not any(path.startswith(scope) for scope in R6_SCOPE):
        return []
    if path in MUTEX_HOME:
        return []
    findings = []
    for m in re.finditer(rf"\b{MUTEX_TYPES}\b", stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R6",
            "raw std::mutex family — use common::Mutex "
            "(src/common/mutex.h), whose capability annotations let clang "
            "-Wthread-safety verify lock discipline"))
    # Bare .lock()/.unlock() on a variable declared as a mutex in this file:
    # manual pairing is exactly the bug class the RAII guards exist to kill
    # (early return between lock and unlock = deadlock; exception = leak).
    mutex_names = set(re.findall(
        rf"\b(?:(?:\w+::)*Mutex|{MUTEX_TYPES})\s+(\w+)\s*[;,)=]", stripped))
    for name in mutex_names:
        for m in re.finditer(
                rf"\b{re.escape(name)}\s*\.\s*(?:lock|unlock|try_lock)\s*\(",
                stripped):
            findings.append(Finding(
                path, line_of(stripped, m.start()), "R6",
                f"bare lock/unlock on mutex '{name}' — hold it through the "
                "RAII common::MutexLock guard so unlock is exception- and "
                "early-return-safe (and visible to -Wthread-safety)"))
    return findings


def rule_r7(path: str, stripped: str) -> list[Finding]:
    if not any(path.startswith(scope) for scope in R7_SCOPE):
        return []
    patterns = (
        (r"\bsystem_clock\b", "std::chrono::system_clock"),
        (r"\bsteady_clock\b", "std::chrono::steady_clock"),
        (r"(?<![A-Za-z0-9_.>])time\s*\(", "time()"),
        (r"(?<![A-Za-z0-9_.>])clock\s*\(", "clock()"),
        (r"\b(?:gettimeofday|clock_gettime|localtime|gmtime)\b",
         "POSIX wall-clock API"),
    )
    findings = []
    for pattern, what in patterns:
        for m in re.finditer(pattern, stripped):
            findings.append(Finding(
                path, line_of(stripped, m.start()), "R7",
                f"wall-clock read {what} in library code — results must be "
                "pure functions of (topology, protocol, seed); count slots "
                "instead, or allowlist reporting-only timing that never "
                "reaches a byte-compared artifact"))
    return findings


def rule_r8(path: str, stripped: str) -> list[Finding]:
    if not any(path.startswith(scope) for scope in R8_SCOPE):
        return []
    findings = []
    # `static` declarations with no parentheses before the terminating `;`
    # (parentheses mean a function declaration, which is stateless). The
    # keyword check below then exempts immutable (const*), per-thread
    # (thread_local) and raced-safely (atomic) declarations.
    for m in re.finditer(r"\bstatic\b((?:[^;{}()]|<[^;{}()]*>)*);", stripped):
        decl = m.group(1)
        if re.search(r"\b(?:const|constexpr|consteval|constinit|"
                     r"thread_local)\b", decl) or "atomic" in decl:
            continue
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R8",
            "shared mutable static state — make it const/constexpr, "
            "thread_local, std::atomic, or an internally-synchronized "
            "singleton with a justified allowlist entry; hidden globals "
            "break the share-nothing determinism contract"))
    return findings


RULES = (rule_r1, rule_r2, rule_r3, rule_r4, rule_r5, rule_r6, rule_r7,
         rule_r8)


# --- allowlist -------------------------------------------------------------


def parse_allowlist(path: str) -> list[AllowEntry]:
    entries = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: allowlist entry needs "
                    "'<rule> <path-glob> <justification>'")
            rule, glob, justification = parts
            if not re.fullmatch(r"R[1-8]", rule):
                raise ValueError(f"{path}:{lineno}: unknown rule '{rule}'")
            entries.append(AllowEntry(rule, glob, justification))
    return entries


def entry_matches(entry: AllowEntry, finding: Finding) -> bool:
    return entry.rule == finding.rule and fnmatch.fnmatch(finding.path,
                                                          entry.glob)


def allowed(finding: Finding, entries: list[AllowEntry]) -> bool:
    return any(entry_matches(e, finding) for e in entries)


def stale_entries(entries: list[AllowEntry],
                  raw_findings: list[Finding]) -> list[AllowEntry]:
    """Entries that suppress nothing in the current tree. A stale entry is a
    latent hole: it silently re-arms the day a NEW finding appears under its
    glob, so --prune-check fails the build until it is removed."""
    return [e for e in entries
            if not any(entry_matches(e, f) for f in raw_findings)]


# --- driver ----------------------------------------------------------------


def lint_file(path: str, text: str) -> list[Finding]:
    """All findings for one file; `path` must be repo-relative."""
    stripped = strip_comments_and_strings(text)
    findings = []
    for rule in RULES:
        findings.extend(rule(path, stripped))
    return findings


def collect_files(root: str, paths: list[str]) -> list[str]:
    if paths:
        rels = [os.path.relpath(p, root).replace(os.sep, "/") for p in paths]
        return sorted(r for r in rels if r.endswith(CXX_EXTENSIONS))
    rels = []
    for scan_dir in DEFAULT_SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, scan_dir)):
            for name in names:
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                if rel.endswith(CXX_EXTENSIONS) and not any(
                        rel.startswith(d + "/") for d in EXCLUDED_DIRS):
                    rels.append(rel)
    return sorted(rels)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: tools/lint/allowlist.txt)")
    parser.add_argument("--prune-check", action="store_true",
                        help="audit the allowlist: fail (exit 1) on entries "
                             "that no longer suppress any finding")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: the whole tree)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root or
                           os.path.join(os.path.dirname(__file__), "..", ".."))
    allowlist_path = args.allowlist or os.path.join(root, "tools/lint/allowlist.txt")
    try:
        entries = parse_allowlist(allowlist_path) if os.path.exists(allowlist_path) else []
    except ValueError as err:
        print(f"sinrlint: {err}", file=sys.stderr)
        return 2

    files = collect_files(root, args.paths)
    if not files:
        print("sinrlint: no C++ files to lint", file=sys.stderr)
        return 2

    raw_findings = []
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            raw_findings.extend(lint_file(rel, fh.read()))
    findings = [f for f in raw_findings if not allowed(f, entries)]

    if args.prune_check:
        stale = stale_entries(entries, raw_findings)
        for e in stale:
            print(f"sinrlint: stale allowlist entry '{e.rule} {e.glob}' "
                  f"({e.justification}) — suppresses nothing; remove it")
        if stale:
            print(f"sinrlint: {len(stale)} stale allowlist entr"
                  f"{'y' if len(stale) == 1 else 'ies'}", file=sys.stderr)
            return 1
        print(f"sinrlint: allowlist clean ({len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}, all live)",
              file=sys.stderr)
        return 0

    for finding in findings:
        print(finding)
    if findings:
        print(f"sinrlint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"sinrlint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
