#!/usr/bin/env python3
"""Unit tests for bench_schema_check and the shared check_util contract:
the checker must fire on the bad fixture, stay silent on the good one, and
run_checker must keep the 0/1/2 exit contract. Run directly or via ctest
(test name `benchschema.unit`)."""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_schema_check  # noqa: E402
import check_util  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def good_envelope():
    with open(fixture("bench_good.json"), encoding="utf-8") as fh:
        return json.load(fh)


def write_tmp(obj_or_text):
    fh = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
    with fh:
        if isinstance(obj_or_text, str):
            fh.write(obj_or_text)
        else:
            json.dump(obj_or_text, fh)
    return fh.name


class FixtureTest(unittest.TestCase):
    def test_good_fixture_clean(self):
        self.assertEqual(bench_schema_check.check_file(fixture("bench_good.json")), [])

    def test_bad_fixture_fires_per_field(self):
        errors = "\n".join(bench_schema_check.check_file(fixture("bench_bad.json")))
        self.assertIn("schema is 'sinrcolor.bench.v0'", errors)
        self.assertIn("experiment must be a non-empty string", errors)
        self.assertIn("host must be an object", errors)
        self.assertIn("threads must be an integer >= 1", errors)
        self.assertIn("payload must be a non-empty object", errors)


class FieldTest(unittest.TestCase):
    def check(self, envelope):
        path = write_tmp(envelope)
        try:
            return bench_schema_check.check_file(path)
        finally:
            os.unlink(path)

    def test_invalid_json(self):
        path = write_tmp("{not json")
        try:
            errors = bench_schema_check.check_file(path)
        finally:
            os.unlink(path)
        self.assertEqual(len(errors), 1)
        self.assertIn("not valid JSON", errors[0])

    def test_top_level_must_be_object(self):
        errors = self.check([1, 2, 3])
        self.assertEqual(len(errors), 1)
        self.assertIn("want an object", errors[0])

    def test_extra_or_missing_keys_rejected(self):
        extra = good_envelope()
        extra["wall_us"] = 5  # timing outside the payload: schema violation
        self.assertIn("top-level keys", self.check(extra)[0])
        missing = good_envelope()
        del missing["git_sha"]
        self.assertIn("top-level keys", self.check(missing)[0])

    def test_bool_thread_count_rejected(self):
        env = good_envelope()
        env["threads"] = True  # bool is an int subclass — still not a count
        self.assertTrue(any("threads" in e for e in self.check(env)))

    def test_host_cores_zero_rejected(self):
        env = good_envelope()
        env["host"]["cores"] = 0
        self.assertTrue(any("host.cores" in e for e in self.check(env)))

    def test_unknown_git_sha_placeholder_accepted(self):
        # Builds outside a git checkout stamp "unknown" — valid provenance.
        env = good_envelope()
        env["git_sha"] = "unknown"
        self.assertEqual(self.check(env), [])


class CheckUtilContractTest(unittest.TestCase):
    def run_checker(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = bench_schema_check.main(["bench_schema_check.py"] + argv)
        return code, out.getvalue(), err.getvalue()

    def test_no_arguments_exits_2_with_usage(self):
        code, _, err = self.run_checker([])
        self.assertEqual(code, 2)
        self.assertIn("Usage:", err)

    def test_missing_file_exits_2_one_stderr_line(self):
        code, _, err = self.run_checker(["/no/such/bench.json"])
        self.assertEqual(code, 2)
        self.assertEqual(err.count("\n"), 1)
        self.assertIn("no such file", err)

    def test_empty_file_exits_2(self):
        path = write_tmp("")
        try:
            code, _, err = self.run_checker([path])
        finally:
            os.unlink(path)
        self.assertEqual(code, 2)
        self.assertIn("empty file", err)

    def test_good_file_exits_0_with_ok_line(self):
        code, out, _ = self.run_checker([fixture("bench_good.json")])
        self.assertEqual(code, 0)
        self.assertIn("OK (x2_sweep_bench @ 0123abcd4567, 4 threads)", out)

    def test_bad_file_exits_1(self):
        code, out, _ = self.run_checker([fixture("bench_bad.json")])
        self.assertEqual(code, 1)
        self.assertIn("schema is", out)

    def test_precheck_accepts_readable_file(self):
        self.assertIsNone(
            check_util.precheck("t", fixture("bench_good.json")))


if __name__ == "__main__":
    unittest.main()
