#!/usr/bin/env python3
"""Validates sinrcolor.bench.v1 perf-artifact envelopes (bench/bench_util.h).

Usage: bench_schema_check.py BENCH.json [...]

Checks, per file:
  * the file is one JSON object with exactly the top-level keys
    {schema, experiment, git_sha, host, threads, payload};
  * schema == "sinrcolor.bench.v1"; experiment and git_sha are non-empty
    strings; host is exactly {name: non-empty str, cores: int >= 1};
    threads is an int >= 1;
  * payload is a non-empty object — its internal shape belongs to the
    emitting experiment, not to the envelope, so it is NOT validated here
    (bench_report.py flattens whatever is inside).

Exit status: the shared check_util contract — 0 clean, 1 schema violations
(one line per problem on stdout), 2 invocation problems (one-line stderr
diagnostic). Independent of the C++ writer on purpose — a second, dumber
parser is exactly what catches envelope regressions.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_util  # noqa: E402

SCHEMA = "sinrcolor.bench.v1"
TOP_KEYS = {"schema", "experiment", "git_sha", "host", "threads", "payload"}
HOST_KEYS = {"name", "cores"}


def _positive_int(value) -> bool:
    # bool is an int subclass in Python; `true` is not a thread count.
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


def check_file(path: str) -> list[str]:
    errors: list[str] = []

    def err(why: str) -> None:
        errors.append(f"{path}: {why}")

    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as e:
            return [f"{path}: not valid JSON: {e}"]
    if not isinstance(data, dict):
        return [f"{path}: top level is {type(data).__name__}, want an object"]
    if set(data) != TOP_KEYS:
        return [f"{path}: top-level keys are {sorted(data)}, "
                f"want {sorted(TOP_KEYS)}"]

    if data["schema"] != SCHEMA:
        err(f"schema is {data['schema']!r}, want {SCHEMA!r}")
    for key in ("experiment", "git_sha"):
        if not isinstance(data[key], str) or not data[key]:
            err(f"{key} must be a non-empty string")
    host = data["host"]
    if not isinstance(host, dict) or set(host) != HOST_KEYS:
        err(f"host must be an object with exactly {sorted(HOST_KEYS)}")
    else:
        if not isinstance(host["name"], str) or not host["name"]:
            err("host.name must be a non-empty string")
        if not _positive_int(host["cores"]):
            err("host.cores must be an integer >= 1")
    if not _positive_int(data["threads"]):
        err("threads must be an integer >= 1")
    if not isinstance(data["payload"], dict) or not data["payload"]:
        err("payload must be a non-empty object")
    return errors


def summarize(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return f"{data['experiment']} @ {data['git_sha']}, {data['threads']} threads"


def main(argv: list[str]) -> int:
    return check_util.run_checker("bench_schema_check",
                                  __doc__.strip().splitlines()[2], argv,
                                  check_file, summarize)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
