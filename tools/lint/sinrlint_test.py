#!/usr/bin/env python3
"""Unit tests for sinrlint: every rule must fire on its bad fixture and stay
silent on its good fixture, and the allowlist / comment-stripper machinery
must behave. Run directly or via ctest (test name `sinrlint_unit`)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import sinrlint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def fixture(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as fh:
        return fh.read()


def lint(name, as_path):
    """Lint fixture `name` as if it lived at repo-relative `as_path`."""
    return sinrlint.lint_file(as_path, fixture(name))


def rules_hit(findings):
    return sorted({f.rule for f in findings})


class RuleFixtureTest(unittest.TestCase):
    def test_r1_fires_on_unordered_containers(self):
        findings = [f for f in lint("r1_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R1"]
        self.assertEqual(len(findings), 2)

    def test_r1_silent_on_ordered_containers(self):
        self.assertEqual(lint("r1_good.cpp", "src/core/x.cpp"), [])

    def test_r2_fires_on_direct_state_writes(self):
        findings = [f for f in lint("r2_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R2"]
        self.assertEqual(len(findings), 2)
        self.assertTrue(all("transition_to" in f.message for f in findings))

    def test_r2_sanctions_transition_to_bodies(self):
        self.assertEqual(lint("r2_good.cpp", "src/core/x.cpp"), [])

    def test_r3_fires_on_naked_randomness(self):
        findings = [f for f in lint("r3_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R3"]
        self.assertEqual(len(findings), 4)

    def test_r3_silent_on_project_rng_and_lookalikes(self):
        self.assertEqual(lint("r3_good.cpp", "src/core/x.cpp"), [])

    def test_r3_exempts_rng_home(self):
        self.assertEqual(lint("r3_bad.cpp", "src/common/rng.cpp"), [])

    def test_r4_fires_on_unguarded_entry_points(self):
        findings = [f for f in lint("r4_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R4"]
        self.assertEqual(len(findings), 2)
        self.assertEqual(sorted("on_wake" in f.message or "on_receive" in f.message
                                for f in findings), [True, True])

    def test_r4_silent_on_guarded_entry_points(self):
        self.assertEqual(lint("r4_good.cpp", "src/core/x.cpp"), [])

    def test_r4_scoped_to_src(self):
        self.assertEqual(lint("r4_bad.cpp", "tests/x.cpp"), [])

    def test_r5_fires_on_float_in_sinr_scope(self):
        findings = [f for f in lint("r5_bad.cpp", "src/sinr/x.cpp")
                    if f.rule == "R5"]
        self.assertGreaterEqual(len(findings), 3)
        findings = [f for f in lint("r5_bad.cpp", "src/radio/x.cpp")
                    if f.rule == "R5"]
        self.assertGreaterEqual(len(findings), 3)

    def test_r5_silent_on_double_and_out_of_scope(self):
        self.assertEqual(lint("r5_good.cpp", "src/sinr/x.cpp"), [])
        self.assertEqual([f for f in lint("r5_bad.cpp", "src/graph/x.cpp")
                          if f.rule == "R5"], [])


class StripperTest(unittest.TestCase):
    def test_strips_line_and_block_comments(self):
        text = "int a; // std::unordered_map\n/* rand( */ int b;\n"
        stripped = sinrlint.strip_comments_and_strings(text)
        self.assertNotIn("unordered_map", stripped)
        self.assertNotIn("rand(", stripped)
        self.assertIn("int a;", stripped)
        self.assertIn("int b;", stripped)

    def test_strips_string_literals_preserving_lines(self):
        text = 'const char* s = "std::mt19937\\n rand(";\nint c;\n'
        stripped = sinrlint.strip_comments_and_strings(text)
        self.assertNotIn("mt19937", stripped)
        self.assertEqual(text.count("\n"), stripped.count("\n"))

    def test_line_numbers_survive_stripping(self):
        text = "// comment\n\nstd::unordered_set<int> s;\n"
        findings = sinrlint.lint_file("src/core/x.cpp", text)
        self.assertEqual([f.line for f in findings if f.rule == "R1"], [3])


class AllowlistTest(unittest.TestCase):
    def test_allow_entry_suppresses_matching_rule_and_path(self):
        entries = [sinrlint.AllowEntry("R1", "src/legacy/*", "third-party idiom")]
        finding = sinrlint.Finding("src/legacy/old.cpp", 3, "R1", "m")
        other_rule = sinrlint.Finding("src/legacy/old.cpp", 3, "R2", "m")
        other_path = sinrlint.Finding("src/core/new.cpp", 3, "R1", "m")
        self.assertTrue(sinrlint.allowed(finding, entries))
        self.assertFalse(sinrlint.allowed(other_rule, entries))
        self.assertFalse(sinrlint.allowed(other_path, entries))

    def test_malformed_allowlist_rejected(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as fh:
            fh.write("R1 src/foo.cpp\n")  # missing justification
            path = fh.name
        try:
            with self.assertRaises(ValueError):
                sinrlint.parse_allowlist(path)
        finally:
            os.unlink(path)

    def test_repo_allowlist_parses(self):
        repo_allowlist = os.path.join(os.path.dirname(FIXTURES), "allowlist.txt")
        sinrlint.parse_allowlist(repo_allowlist)  # must not raise


if __name__ == "__main__":
    unittest.main()
