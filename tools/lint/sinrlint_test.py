#!/usr/bin/env python3
"""Unit tests for sinrlint: every rule must fire on its bad fixture and stay
silent on its good fixture, and the allowlist / comment-stripper machinery
must behave. Run directly or via ctest (test name `sinrlint_unit`)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import sinrlint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def fixture(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as fh:
        return fh.read()


def lint(name, as_path):
    """Lint fixture `name` as if it lived at repo-relative `as_path`."""
    return sinrlint.lint_file(as_path, fixture(name))


def rules_hit(findings):
    return sorted({f.rule for f in findings})


class RuleFixtureTest(unittest.TestCase):
    def test_r1_fires_on_unordered_containers(self):
        findings = [f for f in lint("r1_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R1"]
        self.assertEqual(len(findings), 2)

    def test_r1_silent_on_ordered_containers(self):
        self.assertEqual(lint("r1_good.cpp", "src/core/x.cpp"), [])

    def test_r2_fires_on_direct_state_writes(self):
        findings = [f for f in lint("r2_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R2"]
        self.assertEqual(len(findings), 2)
        self.assertTrue(all("transition_to" in f.message for f in findings))

    def test_r2_sanctions_transition_to_bodies(self):
        self.assertEqual(lint("r2_good.cpp", "src/core/x.cpp"), [])

    def test_r3_fires_on_naked_randomness(self):
        findings = [f for f in lint("r3_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R3"]
        self.assertEqual(len(findings), 4)

    def test_r3_silent_on_project_rng_and_lookalikes(self):
        self.assertEqual(lint("r3_good.cpp", "src/core/x.cpp"), [])

    def test_r3_exempts_rng_home(self):
        self.assertEqual(lint("r3_bad.cpp", "src/common/rng.cpp"), [])

    def test_r4_fires_on_unguarded_entry_points(self):
        findings = [f for f in lint("r4_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R4"]
        self.assertEqual(len(findings), 2)
        self.assertEqual(sorted("on_wake" in f.message or "on_receive" in f.message
                                for f in findings), [True, True])

    def test_r4_silent_on_guarded_entry_points(self):
        self.assertEqual(lint("r4_good.cpp", "src/core/x.cpp"), [])

    def test_r4_scoped_to_src(self):
        self.assertEqual(lint("r4_bad.cpp", "tests/x.cpp"), [])

    def test_r5_fires_on_float_in_sinr_scope(self):
        findings = [f for f in lint("r5_bad.cpp", "src/sinr/x.cpp")
                    if f.rule == "R5"]
        self.assertGreaterEqual(len(findings), 3)
        findings = [f for f in lint("r5_bad.cpp", "src/radio/x.cpp")
                    if f.rule == "R5"]
        self.assertGreaterEqual(len(findings), 3)

    def test_r5_silent_on_double_and_out_of_scope(self):
        self.assertEqual(lint("r5_good.cpp", "src/sinr/x.cpp"), [])
        self.assertEqual([f for f in lint("r5_bad.cpp", "src/graph/x.cpp")
                          if f.rule == "R5"], [])

    def test_r6_fires_on_raw_mutex_and_bare_lock_calls(self):
        findings = [f for f in lint("r6_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R6"]
        # 2 raw std::mutex-family members + 4 bare lock/unlock/try_lock calls
        self.assertEqual(len(findings), 6)
        self.assertEqual(sum("raw std::mutex" in f.message for f in findings), 2)
        self.assertEqual(sum("bare lock/unlock" in f.message for f in findings), 4)

    def test_r6_silent_on_annotated_wrapper_and_guard_relock(self):
        self.assertEqual(lint("r6_good.cpp", "src/core/x.cpp"), [])

    def test_r6_exempts_mutex_home_and_non_src(self):
        self.assertEqual(lint("r6_bad.cpp", "src/common/mutex.h"), [])
        self.assertEqual(lint("r6_bad.cpp", "tools/x.cpp"), [])

    def test_r7_fires_on_wall_clock_reads(self):
        findings = [f for f in lint("r7_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R7"]
        # system_clock, steady_clock, std::time(), std::clock()
        self.assertEqual(len(findings), 4)

    def test_r7_silent_on_slot_logic_and_lookalike_names(self):
        self.assertEqual(lint("r7_good.cpp", "src/core/x.cpp"), [])

    def test_r7_scoped_to_src(self):
        self.assertEqual(lint("r7_bad.cpp", "bench/x.cpp"), [])

    def test_r8_fires_on_mutable_statics(self):
        findings = [f for f in lint("r8_bad.cpp", "src/core/x.cpp")
                    if f.rule == "R8"]
        # two namespace-scope globals + one function-local static
        self.assertEqual(len(findings), 3)

    def test_r8_silent_on_const_thread_local_atomic_and_functions(self):
        self.assertEqual(lint("r8_good.cpp", "src/core/x.cpp"), [])

    def test_r8_scoped_to_src(self):
        self.assertEqual(lint("r8_bad.cpp", "tests/x.cpp"), [])


class StripperTest(unittest.TestCase):
    def test_strips_line_and_block_comments(self):
        text = "int a; // std::unordered_map\n/* rand( */ int b;\n"
        stripped = sinrlint.strip_comments_and_strings(text)
        self.assertNotIn("unordered_map", stripped)
        self.assertNotIn("rand(", stripped)
        self.assertIn("int a;", stripped)
        self.assertIn("int b;", stripped)

    def test_strips_string_literals_preserving_lines(self):
        text = 'const char* s = "std::mt19937\\n rand(";\nint c;\n'
        stripped = sinrlint.strip_comments_and_strings(text)
        self.assertNotIn("mt19937", stripped)
        self.assertEqual(text.count("\n"), stripped.count("\n"))

    def test_line_numbers_survive_stripping(self):
        text = "// comment\n\nstd::unordered_set<int> s;\n"
        findings = sinrlint.lint_file("src/core/x.cpp", text)
        self.assertEqual([f.line for f in findings if f.rule == "R1"], [3])


class AllowlistTest(unittest.TestCase):
    def test_allow_entry_suppresses_matching_rule_and_path(self):
        entries = [sinrlint.AllowEntry("R1", "src/legacy/*", "third-party idiom")]
        finding = sinrlint.Finding("src/legacy/old.cpp", 3, "R1", "m")
        other_rule = sinrlint.Finding("src/legacy/old.cpp", 3, "R2", "m")
        other_path = sinrlint.Finding("src/core/new.cpp", 3, "R1", "m")
        self.assertTrue(sinrlint.allowed(finding, entries))
        self.assertFalse(sinrlint.allowed(other_rule, entries))
        self.assertFalse(sinrlint.allowed(other_path, entries))

    def test_malformed_allowlist_rejected(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as fh:
            fh.write("R1 src/foo.cpp\n")  # missing justification
            path = fh.name
        try:
            with self.assertRaises(ValueError):
                sinrlint.parse_allowlist(path)
        finally:
            os.unlink(path)

    def test_repo_allowlist_parses(self):
        repo_allowlist = os.path.join(os.path.dirname(FIXTURES), "allowlist.txt")
        sinrlint.parse_allowlist(repo_allowlist)  # must not raise

    def test_rules_r6_to_r8_accepted_in_allowlist(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as fh:
            fh.write("R6 src/foo.cpp legacy-lock\n"
                     "R7 src/bar.h reporting-only\n"
                     "R8 src/baz.cpp annotated-singleton\n"
                     "R9 src/no.cpp no-such-rule\n")
            path = fh.name
        try:
            with self.assertRaises(ValueError):  # R9 is rejected
                sinrlint.parse_allowlist(path)
        finally:
            os.unlink(path)
        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as fh:
            fh.write("R6 src/foo.cpp legacy-lock\n"
                     "R7 src/bar.h reporting-only\n"
                     "R8 src/baz.cpp annotated-singleton\n")
            path = fh.name
        try:
            entries = sinrlint.parse_allowlist(path)
        finally:
            os.unlink(path)
        self.assertEqual([e.rule for e in entries], ["R6", "R7", "R8"])

    def test_allowlist_suppresses_r7_finding(self):
        entries = [sinrlint.AllowEntry("R7", "src/common/sweep.h",
                                       "reporting-only")]
        finding = sinrlint.Finding("src/common/sweep.h", 100, "R7", "m")
        elsewhere = sinrlint.Finding("src/core/mw_node.cpp", 4, "R7", "m")
        self.assertTrue(sinrlint.allowed(finding, entries))
        self.assertFalse(sinrlint.allowed(elsewhere, entries))


class PruneCheckTest(unittest.TestCase):
    def test_stale_entries_are_those_suppressing_nothing(self):
        live = sinrlint.AllowEntry("R7", "src/common/sweep.h", "reporting")
        stale = sinrlint.AllowEntry("R1", "src/legacy/*", "gone")
        raw = [sinrlint.Finding("src/common/sweep.h", 100, "R7", "m")]
        self.assertEqual(sinrlint.stale_entries([live, stale], raw), [stale])

    def test_no_entries_means_nothing_stale(self):
        raw = [sinrlint.Finding("src/a.cpp", 1, "R1", "m")]
        self.assertEqual(sinrlint.stale_entries([], raw), [])

    def test_entry_matching_any_raw_finding_is_live_even_if_rule_differs_elsewhere(self):
        entry = sinrlint.AllowEntry("R8", "src/graph/*", "singleton")
        raw = [sinrlint.Finding("src/graph/topology_cache.cpp", 55, "R8", "m"),
               sinrlint.Finding("src/graph/topology_cache.cpp", 55, "R6", "m")]
        self.assertEqual(sinrlint.stale_entries([entry], raw), [])


if __name__ == "__main__":
    unittest.main()
