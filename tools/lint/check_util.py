#!/usr/bin/env python3
"""Shared plumbing for the tools/lint/*_check.py artifact validators.

Every checker (trace_schema_check, bench_schema_check, ...) honours the same
exit contract so CI steps can be wired identically:

  0  every file validates (one "PATH: OK (...)" line per file on stdout);
  1  schema violations (one line per problem on stdout, checker-capped);
  2  invocation problems — no arguments, or an artifact that is missing,
     unreadable or empty. Exactly ONE diagnostic line on stderr: a vanished
     artifact is a harness wiring bug, not a schema bug, and CI must not
     report it as one.

Checkers supply a `check_file(path) -> list[str]` (empty list = clean) and
optionally a `summarize(path) -> str` for the OK line's parenthetical.
"""

from __future__ import annotations

import os
import sys
from typing import Callable


def precheck(tool: str, path: str) -> str | None:
    """One-line diagnostic if `path` is not a readable, non-empty file."""
    if not os.path.exists(path):
        return f"{tool}: {path}: no such file"
    try:
        with open(path, encoding="utf-8") as fh:
            first = fh.read(1)
    except OSError as e:
        return f"{tool}: {path}: unreadable ({e.strerror})"
    if not first:
        return f"{tool}: {path}: empty file (did the writer run?)"
    return None


def run_checker(tool: str, usage: str, argv: list[str],
                check_file: Callable[[str], list[str]],
                summarize: Callable[[str], str] | None = None) -> int:
    """The shared main(): precheck every path, then validate each one."""
    if len(argv) < 2:
        print(usage, file=sys.stderr)
        return 2
    for path in argv[1:]:
        problem = precheck(tool, path)
        if problem is not None:
            print(problem, file=sys.stderr)
            return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            print("\n".join(errors))
        else:
            detail = f" ({summarize(path)})" if summarize is not None else ""
            print(f"{path}: OK{detail}")
    return 1 if failed else 0
