#!/usr/bin/env python3
"""Validates a sinrcolor JSONL trace against the sinrcolor.trace.v1 schema.

Usage: trace_schema_check.py TRACE.jsonl [...]

Checks, per file:
  * line 1 is the meta header: schema == "sinrcolor.trace.v1" with integer
    n (node count)/seed/recorded/dropped and a string scenario;
  * every following line is one flat event object with exactly the keys
    {slot, kind, node, peer, a, b}: integer slot >= 0, kind drawn from the
    EventKind wire names (src/obs/trace.cpp), node < n, peer < n or the kNoNode sentinel (2**32 - 1);
  * slots never decrease (the ring preserves emission order);
  * automaton payloads are in range: mw_transition a/b are MwStateKind
    values (0..5), join_transition a/b are JoinPhase values (0..3);
  * the header's accounting holds: recorded - dropped == number of event
    lines actually present.

Exit status: the shared check_util contract — 0 if every file validates;
1 on schema violations (one line per problem, capped per file); 2 on
invocation problems (one-line stderr diagnostic). Independent of the C++
reader on purpose — a second, dumber parser is exactly what catches
exporter regressions.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_util  # noqa: E402

SCHEMA = "sinrcolor.trace.v1"
NO_NODE = 2**32 - 1
EVENT_KINDS = {
    "wake",
    "join",
    "revival",
    "failure",
    "tx",
    "delivery",
    "drop",
    "mw_transition",
    "join_transition",
    "leader_elected",
    "color_finalized",
    "failover",
    "independence_violation",
    "fault_drop",
    "invariant_violation",
    "conflict_repaired",
}
EVENT_KEYS = {"slot", "kind", "node", "peer", "a", "b"}
MW_STATES = range(0, 6)      # MwStateKind
JOIN_PHASES = range(0, 4)    # SelfHealingNode::JoinPhase
MAX_ERRORS_PER_FILE = 20


def check_file(path: str) -> list[str]:
    errors: list[str] = []

    def err(lineno: int, why: str) -> None:
        if len(errors) < MAX_ERRORS_PER_FILE:
            errors.append(f"{path}:{lineno}: {why}")

    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return [f"{path}:1: meta header is not valid JSON: {e}"]
    if not isinstance(meta, dict) or meta.get("schema") != SCHEMA:
        return [f"{path}:1: schema is {meta.get('schema')!r}, want {SCHEMA!r}"]
    for key in ("n", "seed", "recorded", "dropped"):
        if not isinstance(meta.get(key), int) or meta[key] < 0:
            err(1, f"meta.{key} must be a non-negative integer")
    if not isinstance(meta.get("scenario"), str):
        err(1, "meta.scenario must be a string")
    if errors:
        return errors
    node_count = meta["n"]

    prev_slot = None
    for lineno, line in enumerate(lines[1:], start=2):
        if len(errors) >= MAX_ERRORS_PER_FILE:
            errors.append(f"{path}: ... (further problems suppressed)")
            break
        try:
            e = json.loads(line)
        except json.JSONDecodeError as exc:
            err(lineno, f"not valid JSON: {exc}")
            continue
        if not isinstance(e, dict) or set(e) != EVENT_KEYS:
            err(lineno, f"event keys are {sorted(e) if isinstance(e, dict) else e}, want {sorted(EVENT_KEYS)}")
            continue
        for key in ("slot", "node", "peer", "a", "b"):
            if not isinstance(e[key], int):
                err(lineno, f"{key} must be an integer")
                break
        else:
            if e["slot"] < 0:
                err(lineno, f"negative slot {e['slot']}")
            if prev_slot is not None and e["slot"] < prev_slot:
                err(lineno, f"slot {e['slot']} < previous slot {prev_slot} (emission order broken)")
            prev_slot = e["slot"]
            if e["kind"] not in EVENT_KINDS:
                err(lineno, f"unknown kind {e['kind']!r}")
            if not 0 <= e["node"] < node_count:
                err(lineno, f"node {e['node']} out of range [0, {node_count})")
            if e["peer"] != NO_NODE and not 0 <= e["peer"] < node_count:
                err(lineno, f"peer {e['peer']} out of range [0, {node_count}) and not kNoNode")
            if e["kind"] == "mw_transition" and (e["a"] not in MW_STATES or e["b"] not in MW_STATES):
                err(lineno, f"mw_transition payload ({e['a']}, {e['b']}) outside MwStateKind range")
            if e["kind"] == "join_transition" and (e["a"] not in JOIN_PHASES or e["b"] not in JOIN_PHASES):
                err(lineno, f"join_transition payload ({e['a']}, {e['b']}) outside JoinPhase range")

    held = len(lines) - 1
    if meta["recorded"] - meta["dropped"] != held:
        err(len(lines), f"meta says recorded={meta['recorded']} dropped={meta['dropped']} but file holds {held} events")
    return errors


def summarize(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        count = sum(1 for _ in fh) - 1
    return f"{count} events"


def main(argv: list[str]) -> int:
    return check_util.run_checker("trace_schema_check",
                                  __doc__.strip().splitlines()[2], argv,
                                  check_file, summarize)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
