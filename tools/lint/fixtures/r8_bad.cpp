// R8 bad: shared mutable static state.
#include <cstdint>
#include <string>

static std::uint64_t g_call_count = 0;  // namespace-scope mutable

static std::string g_last_error;  // mutated from any thread, no lock

std::uint64_t bump() {
  static std::uint64_t local_counter;  // function-local static, unguarded
  ++local_counter;
  ++g_call_count;
  return local_counter;
}
