// R6 bad: raw std::mutex members and manual lock pairing.
#include <mutex>

class BadQueue {
 public:
  void push(int v) {
    mutex_.lock();  // manual pairing: early return would deadlock
    data_ = v;
    mutex_.unlock();
  }

  bool try_push(int v) {
    if (!mutex_.try_lock()) return false;
    data_ = v;
    mutex_.unlock();
    return true;
  }

 private:
  std::mutex mutex_;  // raw: invisible to -Wthread-safety
  std::recursive_mutex fallback_;
  int data_ = 0;
};
