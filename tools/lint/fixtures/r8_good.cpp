// R8 good: immutable, per-thread, or atomic statics — and static member
// FUNCTIONS, which hold no state at all.
#include <atomic>
#include <cstdint>
#include <utility>

static constexpr std::uint64_t kSalt = 0x9e3779b97f4a7c15ULL;
static const int kTableSize = 64;

static thread_local std::uint64_t t_scratch = 0;

static std::atomic<std::uint64_t> g_progress{0};

class Helper {
 public:
  static std::pair<std::uint64_t, std::uint64_t> split(std::uint64_t v);
  static int size() { return kTableSize; }
};

std::uint64_t touch() {
  t_scratch += kSalt;
  g_progress.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::uint64_t>(static_cast<int>(t_scratch & 0xff));
}
