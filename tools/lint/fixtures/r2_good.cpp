// R2 fixture: mutations inside transition_to() are the sanctioned path;
// reads and comparisons never match.
enum class Phase { kIdle, kBusy };

struct Node {
  void transition_to(Phase next) {
    state_ = next;       // sanctioned: inside transition_to
    join_phase_ = next;  // sanctioned: inside transition_to
  }
  bool busy() const { return state_ == Phase::kBusy; }
  Phase state_{Phase::kIdle};       // brace-init declaration: no assignment
  Phase join_phase_{Phase::kIdle};
};
