// R3 fixture: naked randomness sources outside src/common/rng.*.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;   // finding
  std::mt19937 gen(rd());  // finding
  srand(42);               // finding
  return rand();           // finding
}
