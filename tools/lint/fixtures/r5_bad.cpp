// R5 fixture: float arithmetic in SINR/interference scope.
struct Field {
  float accumulate(const float* power, int n) {  // findings: float x3
    float sum = 0.0f;
    for (int i = 0; i < n; ++i) sum += power[i];
    return sum;
  }
};
