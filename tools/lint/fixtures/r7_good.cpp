// R7 good: results are pure functions of slots and seeds; identifiers that
// merely CONTAIN the banned tokens must not fire.
#include <cstdint>

struct RunClock {
  std::int64_t slot = 0;  // logical time: advances once per slot
};

std::int64_t run_time(const RunClock& c) { return c.slot; }

std::int64_t elapsed_slots(const RunClock& c, std::int64_t start) {
  return run_time(c) - start;
}

struct Timer {
  std::int64_t deadline_slot = 0;
  bool expired(const RunClock& c) const { return c.slot >= deadline_slot; }
};

std::int64_t measure(const RunClock& c) {
  Timer timer{c.slot + 8};
  return timer.expired(c) ? run_time(c) : elapsed_slots(c, 0);
}
