// R3 fixture: the seeded project Rng is the sanctioned source; identifiers
// merely containing "rand" and comments mentioning std::mt19937 never match.
// (much faster than std::mt19937_64, see src/common/rng.h)

int my_grand_total(int grand) { return grand; }

struct Rng {
  unsigned long long below(unsigned long long bound);
};

unsigned long long draw(Rng& rng) { return rng.below(10); }
