// R2 fixture: guarded state fields written outside transition_to().
enum class Phase { kIdle, kBusy };

struct Node {
  void poke() {
    state_ = Phase::kBusy;       // finding: direct write
    join_phase_ = Phase::kIdle;  // finding: direct write
  }
  Phase state_{Phase::kIdle};
  Phase join_phase_{Phase::kIdle};
};
