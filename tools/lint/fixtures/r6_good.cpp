// R6 good: the annotated wrapper, held through the RAII guard.
#include "common/mutex.h"
#include "common/thread_safety.h"

class GoodQueue {
 public:
  void push(int v) {
    sinrcolor::common::MutexLock lock(mutex_);
    data_ = v;
  }

  // Guard-object relock (lock.unlock()/lock.lock()) is fine: `lock` is a
  // MutexLock, not a mutex, so the RAII destructor still owns the release.
  void push_slow(int v) {
    sinrcolor::common::MutexLock lock(mutex_);
    lock.unlock();
    const int prepared = v * 2;
    lock.lock();
    data_ = prepared;
  }

 private:
  mutable sinrcolor::common::Mutex mutex_;
  int data_ SINRCOLOR_GUARDED_BY(mutex_) = 0;
};
