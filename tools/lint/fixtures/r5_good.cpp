// R5 fixture: double accumulation; "float" in comments never matches.
// (interference sums must not be float — see docs/STATIC_ANALYSIS.md)
struct Field {
  double accumulate(const double* power, int n) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += power[i];
    return sum;
  }
};
