// R4 fixture: entry points guarding their narrow contract; declarations and
// call sites are not definitions and never match.
#define SINRCOLOR_CHECK(x) ((void)0)
#define SINRCOLOR_CHECK_MSG(x, m) ((void)0)

struct Msg {};

struct Node {
  void on_wake(long slot);
  void on_receive(long slot, const Msg& msg) {
    SINRCOLOR_CHECK_MSG(slot >= 0, "delivery before wake");
    (void)msg;
  }
  long last_ = 0;
};

void Node::on_wake(long slot) {
  SINRCOLOR_CHECK(slot >= 0);
  last_ = slot;
}

void drive(Node& n) { n.on_wake(0); }  // call, not a definition
