// R7 bad: wall-clock reads in library code.
#include <chrono>
#include <ctime>

long long stamp_result() {
  const auto now = std::chrono::system_clock::now();  // calendar time
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

long long monotonic_result() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long long legacy_result() {
  const std::time_t t = std::time(nullptr);
  return static_cast<long long>(t) + static_cast<long long>(std::clock());
}
