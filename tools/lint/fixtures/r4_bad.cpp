// R4 fixture: protocol entry points under src/ without a contract CHECK.
struct Msg {};

struct Node {
  void on_wake(long slot);
  void on_receive(long slot, const Msg& msg) {  // finding: no CHECK
    last_ = slot;
    (void)msg;
  }
  long last_ = 0;
};

void Node::on_wake(long slot) {  // finding: no CHECK
  last_ = slot;
}
