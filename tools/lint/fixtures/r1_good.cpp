// R1 fixture: ordered containers are fine; comments/strings never match.
#include <map>
#include <set>

// std::unordered_map mentioned in a comment only.
struct ReportBuilder {
  std::map<int, double> per_node;
  std::set<int> decided;
  const char* doc = "std::unordered_set<int> in a string literal";
};
