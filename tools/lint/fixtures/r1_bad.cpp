// R1 fixture: unordered containers anywhere in scanned code are flagged.
#include <unordered_map>
#include <unordered_set>

struct ReportBuilder {
  std::unordered_map<int, double> per_node;   // finding
  std::unordered_set<int> decided;            // finding
};
