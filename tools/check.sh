#!/usr/bin/env bash
# Full local gate: configure, build and test the plain tree, then repeat
# under AddressSanitizer + UBSan (skip with --no-sanitize for a quick pass).
#
#   tools/check.sh [--no-sanitize] [extra cmake args...]
#
# Run from anywhere inside the repository.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

sanitize=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  sanitize=0
  shift
fi

run_tree() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "== plain build =="
run_tree "$repo/build" "$@"

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitized build (address,undefined) =="
  run_tree "$repo/build-asan" -DSINRCOLOR_SANITIZE=ON "$@"
fi

echo "all checks passed"
