#!/usr/bin/env bash
# Full local gate: sinrlint, then configure/build/test the plain tree, then
# repeat under AddressSanitizer + UBSan. Stages can be selected individually.
#
#   tools/check.sh [--no-sanitize] [--lint] [--tidy] [--tsan] [--help]
#                  [extra cmake args...]
#
#   (default)      lint + plain build/test + asan build/test
#   --no-sanitize  lint + plain build/test             (quick pass)
#   --lint         sinrlint only                       (seconds)
#   --tidy         clang-tidy only (skips with a notice when not installed)
#   --tsan         ThreadSanitizer build/test only (concurrency gate)
#
# Stage flags combine (e.g. `--lint --tsan` runs both and nothing else).
# Remaining arguments are forwarded to every cmake configure step. Run from
# anywhere inside the repository.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: tools/check.sh [options] [extra cmake args...]

stages (default run = lint, plain, asan):
  lint   sinrlint unit tests + R1-R8 tree scan + allowlist prune check
         + artifact-checker unit tests (bench envelope, perf report)
  plain  configure/build/ctest, no sanitizers
  asan   configure/build/ctest under -DSINRCOLOR_SANITIZE=address (ASan+UBSan)
  tsan   configure/build/ctest under -DSINRCOLOR_SANITIZE=thread (TSan)
  tidy   clang-tidy over the whole tree (CI always runs it; local runs skip
         with a notice when clang-tidy is not installed)

options:
  --lint | --tidy | --tsan   run only the named stage(s); flags combine
  --no-sanitize              default run without the asan stage (quick pass)
  --help                     this message
EOF
}

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

sanitize=1
only_stages=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --help|-h) usage; exit 0 ;;
    --no-sanitize) sanitize=0; shift ;;
    --lint) only_stages+=(lint); shift ;;
    --tidy) only_stages+=(tidy); shift ;;
    --tsan) only_stages+=(tsan); shift ;;
    *) break ;;
  esac
done

run_tree() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_lint() {
  echo "== sinrlint (R1–R8) =="
  python3 "$repo/tools/lint/sinrlint_test.py"
  python3 "$repo/tools/lint/sinrlint.py" --root "$repo"
  python3 "$repo/tools/lint/sinrlint.py" --root "$repo" --prune-check
  echo "== artifact checkers (bench envelope, perf report) =="
  python3 "$repo/tools/lint/bench_schema_check_test.py"
  python3 "$repo/tools/bench_report_test.py"
}

run_tidy() {
  echo "== clang-tidy =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed — skipping the tidy stage (CI runs it)"
    return 0
  fi
  cmake -B "$repo/build" -S "$repo" "$@"
  cmake --build "$repo/build" -t tidy
}

run_tsan() {
  echo "== sanitized build (thread) =="
  TSAN_OPTIONS="halt_on_error=1" \
    run_tree "$repo/build-tsan" -DSINRCOLOR_SANITIZE=thread "$@"
}

if [[ ${#only_stages[@]} -gt 0 ]]; then
  for stage in "${only_stages[@]}"; do
    case "$stage" in
      lint) run_lint ;;
      tidy) run_tidy "$@" ;;
      tsan) run_tsan "$@" ;;
    esac
  done
  echo "selected stages passed"
  exit 0
fi

run_lint

echo "== plain build =="
run_tree "$repo/build" "$@"

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitized build (address,undefined) =="
  run_tree "$repo/build-asan" -DSINRCOLOR_SANITIZE=address "$@"
fi

echo "all checks passed"
