#!/usr/bin/env python3
"""Perf-artifact trajectory and regression report over sinrcolor.bench.v1
envelopes (bench/bench_util.h; schema gate: tools/lint/bench_schema_check.py).

Usage:
  bench_report.py table PATH [PATH...]
  bench_report.py diff BASE NEW [--tolerance=0.10] [--min-base=1000]

Every PATH is an envelope *.json file or a directory scanned (sorted, non-
recursive) for them. Metrics are the numeric leaves of the envelope payload,
flattened to dotted keys ("serial.wall_us", "x20.slots_per_sec"), and fall
into three classes by leaf name:
  TIME-LIKE   ends in `_us`/`_ms` or contains `wall`   — lower is better
  RATE-LIKE   ends in `_per_sec`/`_per_s` or contains
              `speedup`/`throughput`                   — higher is better
  MEMORY-LIKE ends in `_bytes` or contains `rss` or
              `bytes_per_node`                          — trajectory only
A leaf matching both time and rate patterns counts as time-like.

table — one row per tracked (time/rate/memory-like) metric of every
envelope: experiment, git sha, thread count, metric, value. This is the
trajectory artifact CI uploads so a perf (and memory) history is one
`git log`-shaped glance, not an artifact spelunk.

diff — compares the judged (time- and rate-like) metrics of BASE and NEW,
matched by (experiment, metric). A time-like metric REGRESSES when
new > base * (1 + tolerance); a rate-like metric REGRESSES when
new < base * (1 - tolerance). Either way base >= min-base must hold (raw
units; sub-threshold values are noise, not signal). Improvements and
sub-threshold moves are reported but never fail. Memory-like metrics are
never judged (allocator jitter is not a perf signal). Metrics or
experiments present on only one side are reported as notes.

Exit status: 0 no regression, 1 at least one metric regressed, 2 invocation
problems (unknown flag, missing/unreadable/invalid file; one-line stderr
diagnostic — the shared check_util contract).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "lint"))

import check_util  # noqa: E402

TOOL = "bench_report"
ENVELOPE_KEYS = {"schema", "experiment", "git_sha", "host", "threads",
                 "payload"}


def fail(why: str) -> "SystemExit":
    print(f"{TOOL}: {why}", file=sys.stderr)
    return SystemExit(2)


def load_envelope(path: str) -> dict:
    problem = check_util.precheck(TOOL, path)
    if problem is not None:
        print(problem, file=sys.stderr)
        raise SystemExit(2)
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as e:
            raise fail(f"{path}: not valid JSON: {e}")
    if not isinstance(data, dict) or not ENVELOPE_KEYS.issubset(data):
        raise fail(f"{path}: not a sinrcolor.bench.v1 envelope "
                   "(run tools/lint/bench_schema_check.py)")
    return data


def collect(path: str) -> list[str]:
    """Envelope files under `path` (a file, or a directory scanned sorted)."""
    if os.path.isdir(path):
        return [os.path.join(path, name) for name in sorted(os.listdir(path))
                if name.endswith(".json")]
    return [path]


def flatten(value, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a payload as {dotted.key: value}; bools excluded."""
    out: dict[str, float] = {}
    if isinstance(value, dict):
        items = value.items()
    elif isinstance(value, list):
        items = ((str(i), v) for i, v in enumerate(value))
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        return {prefix: float(value)}
    else:
        return out
    for key, child in items:
        out.update(flatten(child, f"{prefix}.{key}" if prefix else key))
    return out


def time_like(key: str) -> bool:
    """Lower-is-better: durations."""
    leaf = key.rsplit(".", 1)[-1]
    return leaf.endswith("_us") or leaf.endswith("_ms") or "wall" in leaf


def rate_like(key: str) -> bool:
    """Higher-is-better: throughput rates and speedups. A leaf that also
    matches the time-like patterns is classified time-like (see cmd_diff)."""
    leaf = key.rsplit(".", 1)[-1]
    return (leaf.endswith("_per_sec") or leaf.endswith("_per_s")
            or "speedup" in leaf or "throughput" in leaf)


def memory_like(key: str) -> bool:
    """Trajectory-only: footprint counters (x20.bytes_per_node,
    x20.peak_rss_bytes). Shown by `table`, never judged by `diff`."""
    leaf = key.rsplit(".", 1)[-1]
    return (leaf.endswith("_bytes") or "rss" in leaf
            or "bytes_per_node" in leaf)


def time_metrics(envelope: dict) -> dict[str, float]:
    return {k: v for k, v in flatten(envelope["payload"]).items()
            if time_like(k)}


def judged_metrics(envelope: dict) -> dict[str, float]:
    """What `diff` judges: time-like plus rate-like leaves."""
    return {k: v for k, v in flatten(envelope["payload"]).items()
            if time_like(k) or rate_like(k)}


def tracked_metrics(envelope: dict) -> dict[str, float]:
    """What `table` shows: judged metrics plus the memory trajectory."""
    return {k: v for k, v in flatten(envelope["payload"]).items()
            if time_like(k) or rate_like(k) or memory_like(k)}


def cmd_table(paths: list[str]) -> int:
    rows = []
    for path in paths:
        for file in collect(path):
            env = load_envelope(file)
            for key, value in sorted(tracked_metrics(env).items()):
                rows.append((env["experiment"], env["git_sha"],
                             str(env["threads"]), key, f"{value:.0f}"))
    if not rows:
        raise fail("no tracked metrics found in any envelope")
    headers = ("experiment", "git_sha", "threads", "metric", "value")
    widths = [max(len(headers[c]), max(len(r[c]) for r in rows))
              for c in range(len(headers))]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return 0


def index_by_experiment(path: str) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for file in collect(path):
        env = load_envelope(file)
        if env["experiment"] in out:
            raise fail(f"{path}: duplicate experiment {env['experiment']!r}")
        out[env["experiment"]] = env
    return out


def cmd_diff(base_path: str, new_path: str, tolerance: float,
             min_base: float) -> int:
    base = index_by_experiment(base_path)
    new = index_by_experiment(new_path)
    regressions = 0
    for name in sorted(set(base) | set(new)):
        if name not in base or name not in new:
            side = "base" if name in base else "new"
            print(f"note: experiment {name} only in {side}")
            continue
        b, n = judged_metrics(base[name]), judged_metrics(new[name])
        for key in sorted(set(b) | set(n)):
            if key not in b or key not in n:
                side = "base" if key in b else "new"
                print(f"note: {name}.{key} only in {side}")
                continue
            if b[key] < min_base or b[key] <= 0.0:
                continue  # below the noise floor — never judged
            ratio = n[key] / b[key]
            delta = f"{(ratio - 1.0) * 100.0:+.1f}%"
            # Time-like wins on a double match, so a regression is always
            # "the direction users lose": slower, or less throughput.
            higher_is_better = rate_like(key) and not time_like(key)
            regressed = (ratio < 1.0 - tolerance if higher_is_better
                         else ratio > 1.0 + tolerance)
            if regressed:
                regressions += 1
                print(f"REGRESSION {name}.{key}: "
                      f"{b[key]:.0f} -> {n[key]:.0f} ({delta})")
            else:
                print(f"ok {name}.{key}: "
                      f"{b[key]:.0f} -> {n[key]:.0f} ({delta})")
    verdict = (f"{regressions} regression(s) beyond "
               f"{tolerance * 100.0:.0f}% tolerance"
               if regressions else "no regressions")
    print(f"{TOOL}: {verdict}")
    return 1 if regressions else 0


def main(argv: list[str]) -> int:
    args = []
    tolerance, min_base = 0.10, 1000.0
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-base="):
            min_base = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            raise fail(f"unknown flag {arg}")
        else:
            args.append(arg)
    if len(args) >= 2 and args[0] == "table":
        return cmd_table(args[1:])
    if len(args) == 3 and args[0] == "diff":
        return cmd_diff(args[1], args[2], tolerance, min_base)
    print(__doc__.strip().splitlines()[4].strip(), file=sys.stderr)
    print(__doc__.strip().splitlines()[5].strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
