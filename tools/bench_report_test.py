#!/usr/bin/env python3
"""Unit tests for bench_report: payload flattening, metric classification
(time-like lower-is-better, rate-like higher-is-better, memory-like
trajectory-only), trajectory table, and the diff's regression contract
(exit 0/1/2). Run directly or via ctest (test name `benchreport.unit`)."""

import copy
import io
import json
import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_report  # noqa: E402

ENVELOPE = {
    "schema": "sinrcolor.bench.v1",
    "experiment": "x2_sweep_bench",
    "git_sha": "0123abcd4567",
    "host": {"name": "ci", "cores": 4},
    "threads": 4,
    "payload": {
        "n": 1024,
        "serial": {"threads": 1, "wall_us": 100000.0, "p50_us": 50000.0},
        "threaded": {"threads": 4, "wall_us": 30000.0},
        "speedup": 3.3,
        "slots_per_sec": 20000.0,
        "peak_rss_bytes": 6553600.0,
        "results_identical": True,
        "rows": [{"drop_rate": 0.1, "p95_us": 2000.0}],
    },
}


class FlattenTest(unittest.TestCase):
    def test_flattens_nested_dicts_lists_and_skips_bools(self):
        flat = bench_report.flatten(ENVELOPE["payload"])
        self.assertEqual(flat["serial.wall_us"], 100000.0)
        self.assertEqual(flat["rows.0.p95_us"], 2000.0)
        self.assertEqual(flat["speedup"], 3.3)
        self.assertNotIn("results_identical", flat)

    def test_time_like_selects_us_ms_wall_leaves(self):
        self.assertTrue(bench_report.time_like("serial.wall_us"))
        self.assertTrue(bench_report.time_like("rows.0.p95_us"))
        self.assertTrue(bench_report.time_like("total_wall"))
        self.assertTrue(bench_report.time_like("step_ms"))
        self.assertFalse(bench_report.time_like("speedup"))
        self.assertFalse(bench_report.time_like("n"))
        # "threads" under a dir named *_us must not leak in via the prefix.
        self.assertFalse(bench_report.time_like("serial_us.threads"))

    def test_time_metrics_filters_payload(self):
        metrics = bench_report.time_metrics(ENVELOPE)
        self.assertIn("serial.wall_us", metrics)
        self.assertNotIn("speedup", metrics)
        self.assertNotIn("serial.threads", metrics)

    def test_rate_like_selects_throughput_and_speedup_leaves(self):
        self.assertTrue(bench_report.rate_like("x20.slots_per_sec"))
        self.assertTrue(bench_report.rate_like("rows_per_s"))
        self.assertTrue(bench_report.rate_like("speedup"))
        self.assertTrue(bench_report.rate_like("x20.speedup_permille"))
        self.assertTrue(bench_report.rate_like("resolve_throughput"))
        self.assertFalse(bench_report.rate_like("serial.wall_us"))
        self.assertFalse(bench_report.rate_like("n"))
        # Leaf-only match, same as time_like: no prefix leaks.
        self.assertFalse(bench_report.rate_like("speedup_dir.threads"))

    def test_memory_like_selects_footprint_leaves(self):
        self.assertTrue(bench_report.memory_like("x20.peak_rss_bytes"))
        self.assertTrue(bench_report.memory_like("x20.bytes_per_node"))
        self.assertFalse(bench_report.memory_like("serial.wall_us"))
        self.assertFalse(bench_report.memory_like("speedup"))

    def test_judged_and_tracked_metric_selection(self):
        judged = bench_report.judged_metrics(ENVELOPE)
        self.assertIn("serial.wall_us", judged)
        self.assertIn("slots_per_sec", judged)
        self.assertNotIn("peak_rss_bytes", judged)
        tracked = bench_report.tracked_metrics(ENVELOPE)
        self.assertIn("peak_rss_bytes", tracked)
        self.assertIn("speedup", tracked)
        self.assertNotIn("rows.0.drop_rate", tracked)


class CliTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.mkdtemp()
        self.addCleanup(shutil.rmtree, self.dir)

    def write(self, subdir, name, envelope):
        path = os.path.join(self.dir, subdir)
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, name), "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        return path

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        try:
            with redirect_stdout(out), redirect_stderr(err):
                code = bench_report.main(["bench_report.py"] + argv)
        except SystemExit as e:
            code = e.code
        return code, out.getvalue(), err.getvalue()

    def test_table_lists_tracked_metrics(self):
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        code, out, _ = self.run_main(["table", base])
        self.assertEqual(code, 0)
        self.assertIn("serial.wall_us", out)
        self.assertIn("x2_sweep_bench", out)
        self.assertIn("0123abcd4567", out)
        # Rate and memory metrics are part of the trajectory...
        self.assertIn("speedup", out)
        self.assertIn("slots_per_sec", out)
        self.assertIn("peak_rss_bytes", out)
        # ...but untyped payload numbers are not.
        self.assertNotIn("drop_rate", out)

    def test_diff_identical_exits_0(self):
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", ENVELOPE)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_diff_flags_regression_beyond_tolerance(self):
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["serial"]["wall_us"] *= 1.15
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION x2_sweep_bench.serial.wall_us", out)

    def test_diff_within_tolerance_passes(self):
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["serial"]["wall_us"] *= 1.05
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, _, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)

    def test_diff_custom_tolerance(self):
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["serial"]["wall_us"] *= 1.15
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, _, _ = self.run_main(["diff", base, new, "--tolerance=0.25"])
        self.assertEqual(code, 0)

    def test_diff_ignores_sub_floor_metrics(self):
        tiny = copy.deepcopy(ENVELOPE)
        tiny["payload"]["serial"]["wall_us"] = 10.0  # noise-floor timing
        slow = copy.deepcopy(tiny)
        slow["payload"]["serial"]["wall_us"] = 100.0  # 10x, still noise
        base = self.write("a", "BENCH_sweep.json", tiny)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, _, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)

    def test_diff_improvement_passes(self):
        fast = copy.deepcopy(ENVELOPE)
        fast["payload"]["serial"]["wall_us"] *= 0.5
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", fast)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)
        self.assertIn("-50.0%", out)

    def test_diff_rate_drop_is_regression(self):
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["slots_per_sec"] *= 0.8  # throughput fell 20%
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION x2_sweep_bench.slots_per_sec", out)

    def test_diff_rate_rise_passes(self):
        fast = copy.deepcopy(ENVELOPE)
        fast["payload"]["slots_per_sec"] *= 1.5
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", fast)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)
        self.assertIn("+50.0%", out)

    def test_diff_rate_drop_within_tolerance_passes(self):
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["slots_per_sec"] *= 0.95
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, _, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)

    def test_diff_rate_respects_min_base_floor(self):
        # speedup=3.3 is rate-like but below the 1000.0 default floor:
        # halving it must not fail the diff.
        slow = copy.deepcopy(ENVELOPE)
        slow["payload"]["speedup"] = 1.1
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", slow)
        code, _, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)

    def test_diff_never_judges_memory_metrics(self):
        bloated = copy.deepcopy(ENVELOPE)
        bloated["payload"]["peak_rss_bytes"] *= 3.0
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_sweep.json", bloated)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)
        self.assertNotIn("peak_rss_bytes", out)

    def test_diff_notes_one_sided_experiments(self):
        other = copy.deepcopy(ENVELOPE)
        other["experiment"] = "x19_chaos"
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        new = self.write("b", "BENCH_chaos.json", other)
        code, out, _ = self.run_main(["diff", base, new])
        self.assertEqual(code, 0)
        self.assertIn("only in base", out)
        self.assertIn("only in new", out)

    def test_single_file_arguments_accepted(self):
        base = self.write("a", "BENCH_sweep.json", ENVELOPE)
        file = os.path.join(base, "BENCH_sweep.json")
        code, _, _ = self.run_main(["diff", file, file])
        self.assertEqual(code, 0)

    def test_missing_file_exits_2(self):
        code, _, err = self.run_main(["diff", "/no/such", "/no/such"])
        self.assertEqual(code, 2)
        self.assertIn("no such file", err)

    def test_non_envelope_json_exits_2(self):
        base = self.write("a", "stray.json", {"hello": 1})
        code, _, err = self.run_main(["table", base])
        self.assertEqual(code, 2)
        self.assertIn("not a sinrcolor.bench.v1 envelope", err)

    def test_unknown_flag_exits_2(self):
        code, _, err = self.run_main(["diff", "a", "b", "--frobnicate"])
        self.assertEqual(code, 2)
        self.assertIn("unknown flag", err)

    def test_no_arguments_exits_2_with_usage(self):
        code, _, err = self.run_main([])
        self.assertEqual(code, 2)
        self.assertIn("bench_report.py table", err)


if __name__ == "__main__":
    unittest.main()
