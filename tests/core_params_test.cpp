#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/mw_params.h"
#include "graph/packing.h"

namespace sinrcolor::core {
namespace {

MwConfig make_config(double alpha, double beta, double rho, std::size_t delta,
                     std::size_t n, double c = 5.0) {
  MwConfig cfg;
  cfg.n = n;
  cfg.max_degree = delta;
  cfg.phys.alpha = alpha;
  cfg.phys.beta = beta;
  cfg.phys.rho = rho;
  cfg.phys.power = 1.0;
  cfg.phys.noise = 1e-6;
  cfg.c = c;
  return cfg;
}

// Fact 1 of the paper: ∀x ≥ 1, |t| ≤ x: e^t (1 − t²/x) ≤ (1 + t/x)^x ≤ e^t.
class Fact1Test
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Fact1Test, InequalityHolds) {
  const auto [x, t_fraction] = GetParam();
  const double t = t_fraction * x;  // spans |t| ≤ x
  const double mid = std::pow(1.0 + t / x, x);
  const double hi = std::exp(t);
  const double lo = std::exp(t) * (1.0 - t * t / x);
  EXPECT_LE(mid, hi * (1.0 + 1e-12)) << "x=" << x << " t=" << t;
  EXPECT_GE(mid, lo - 1e-12) << "x=" << x << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Fact1Test,
    ::testing::Combine(::testing::Values(1.0, 2.0, 5.0, 10.0, 100.0, 1e4),
                       ::testing::Values(-1.0, -0.5, -0.1, 0.0, 0.1, 0.5,
                                         0.99)));

// The paper's Section-II constants, over an (α, β, ρ, Δ, n) grid.
class TheoryParamsTest
    : public ::testing::TestWithParam<
          std::tuple<double, double, double, std::size_t, std::size_t>> {};

TEST_P(TheoryParamsTest, PaperInequalitiesHold) {
  const auto [alpha, beta, rho, delta, n] = GetParam();
  const auto cfg = make_config(alpha, beta, rho, delta, n);
  const auto p = MwParams::theory(cfg);

  // λ, λ' are probabilities (the paper's success-probability lower bounds).
  EXPECT_GT(p.lambda, 0.0);
  EXPECT_LT(p.lambda, 1.0);
  EXPECT_GT(p.lambda_prime, 0.0);
  EXPECT_LT(p.lambda_prime, 1.0);
  // λ ≥ λ' structurally (λ' divides by an extra e·φ(R_I+R_T) worth of mass).
  EXPECT_GT(p.lambda, p.lambda_prime);

  // "By a routine computation, one can easily verify that σ > 2γ."
  EXPECT_GT(p.sigma, 2.0 * p.gamma);

  // η ≥ 2γφ(2R_T) + σ + 1 and μ ≥ max(γ, σ) hold by construction; re-check
  // against the raw formula values.
  EXPECT_GE(p.eta, 2.0 * p.gamma * p.phi_2rt_value + p.sigma + 1.0);
  EXPECT_GE(p.mu, p.gamma);
  EXPECT_GE(p.mu, p.sigma);

  // Sending probabilities: q_s = q_ℓ/Δ, both in (0, 1).
  EXPECT_GT(p.q_small, 0.0);
  EXPECT_LT(p.q_leader, 1.0);
  EXPECT_NEAR(p.q_small * static_cast<double>(delta), p.q_leader, 1e-12);

  // Eq. 1's budget: q_ℓ·φ(R_T) + q_s·Δ ≤ 2 (φ(R_T) = 1 independent node/B).
  EXPECT_LE(p.q_leader + p.q_small * static_cast<double>(delta), 2.0);

  // Derived slot counts are positive and ordered (GE because counts saturate
  // at the int64 cap for α close to 2, where φ(R_I) explodes). The strict
  // relations are asserted on the unsaturated constants σ, γ, η above/below.
  EXPECT_GT(p.window_zero, 0);
  EXPECT_GE(p.window_positive, p.window_zero);
  EXPECT_GE(p.counter_threshold, 2 * p.window_zero);
  EXPECT_GE(p.listen_slots, p.counter_threshold);
  EXPECT_GT(p.assign_slots, 0);
  EXPECT_GT(p.eta, p.sigma);
  if (p.counter_threshold < std::int64_t{8'000'000'000'000'000'000}) {
    EXPECT_GT(p.counter_threshold, 2 * p.window_positive);
  }

  // Physical-layer geometry.
  EXPECT_GE(cfg.phys.r_i(), 2.0 * cfg.phys.r_t());
  EXPECT_GT(cfg.phys.mac_distance_d(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoryParamsTest,
    ::testing::Combine(::testing::Values(2.5, 3.0, 4.0, 6.0),   // α
                       ::testing::Values(1.0, 1.5, 3.0),        // β
                       ::testing::Values(1.5, 2.0),             // ρ
                       ::testing::Values<std::size_t>(1, 8, 64),  // Δ
                       ::testing::Values<std::size_t>(16, 1024)));  // n

TEST(TheoryParams, PaletteBoundMatchesTheorem2) {
  const auto p = MwParams::theory(make_config(4.0, 1.5, 1.5, 10, 100));
  EXPECT_EQ(p.palette_bound(), (p.phi_2rt + 1) * 10);
}

TEST(TheoryParams, RequiresCAtLeastFive) {
  EXPECT_DEATH((void)MwParams::theory(make_config(4.0, 1.5, 1.5, 4, 16, 2.0)),
               "c >= 5");
}

TEST(TheoryParams, SlotCountsScaleWithDeltaAndLogN) {
  const auto base = MwParams::theory(make_config(4.0, 1.5, 1.5, 8, 256));
  const auto more_delta = MwParams::theory(make_config(4.0, 1.5, 1.5, 16, 256));
  const auto more_n = MwParams::theory(make_config(4.0, 1.5, 1.5, 8, 65536));
  // Listen/threshold scale ~linearly in Δ (λ, λ' change only slightly).
  EXPECT_GT(more_delta.listen_slots, base.listen_slots);
  EXPECT_GT(more_delta.counter_threshold, static_cast<std::int64_t>(
      1.5 * static_cast<double>(base.counter_threshold)));
  // ln(65536)/ln(256) = 2: threshold doubles.
  EXPECT_NEAR(static_cast<double>(more_n.counter_threshold),
              2.0 * static_cast<double>(base.counter_threshold),
              static_cast<double>(base.counter_threshold) * 0.01 + 2.0);
}

class PracticalParamsTest : public ::testing::TestWithParam<
                                std::tuple<std::size_t, std::size_t>> {};

TEST_P(PracticalParamsTest, StructuralRelationsPreserved) {
  const auto [delta, n] = GetParam();
  const auto cfg = make_config(4.0, 1.5, 1.5, delta, n);
  const auto p = MwParams::practical(cfg);

  EXPECT_NEAR(p.q_small * static_cast<double>(delta), p.q_leader, 1e-12);
  EXPECT_GT(p.counter_threshold, 2 * p.window_positive);
  EXPECT_GE(p.listen_slots, p.counter_threshold);
  EXPECT_GE(p.window_positive, p.window_zero);
  // Window/probability coupling: q·window ≈ κ·ln n for both classes.
  const double kappa = PracticalTuning{}.kappa;
  const double log_n = std::log(static_cast<double>(n));
  EXPECT_NEAR(p.q_leader * static_cast<double>(p.window_zero), kappa * log_n,
              p.q_leader + 0.05 * log_n);
  EXPECT_NEAR(p.q_small * static_cast<double>(p.window_positive), kappa * log_n,
              p.q_small + 0.05 * log_n);
  EXPECT_GT(p.recommended_max_slots(), p.listen_slots);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PracticalParamsTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 10, 50),
                       ::testing::Values<std::size_t>(4, 100, 4096)));

TEST(PracticalParams, RejectsBrokenTuning) {
  const auto cfg = make_config(4.0, 1.5, 1.5, 8, 64);
  PracticalTuning bad;
  bad.sigma_factor = 1.5;  // violates σ̂ > 2
  EXPECT_DEATH((void)MwParams::practical(cfg, bad), "threshold");
  PracticalTuning bad2;
  bad2.eta_factor = 3.0;  // violates η̂ ≥ σ̂ + 2
  EXPECT_DEATH((void)MwParams::practical(cfg, bad2), "eta");
  PracticalTuning bad3;
  bad3.mu_factor = 0.1;  // violates μ̂ ≥ κ
  EXPECT_DEATH((void)MwParams::practical(cfg, bad3), "mu");
}

TEST(PracticalParams, CounterWindowSelectsZeta) {
  const auto p = MwParams::practical(make_config(4.0, 1.5, 1.5, 12, 128));
  EXPECT_EQ(p.counter_window(0), p.window_zero);
  EXPECT_EQ(p.counter_window(1), p.window_positive);
  EXPECT_EQ(p.counter_window(37), p.window_positive);
}

TEST(PracticalParams, ToStringMentionsKeyFields) {
  const auto p = MwParams::practical(make_config(4.0, 1.5, 1.5, 12, 128));
  const auto s = p.to_string();
  EXPECT_NE(s.find("Delta=12"), std::string::npos);
  EXPECT_NE(s.find("listen="), std::string::npos);
}

}  // namespace
}  // namespace sinrcolor::core
