// Crash-stop failure injection: simulator semantics, energy accounting, and
// the protocol's behaviour under targeted node deaths.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "radio/interference_model.h"
#include "radio/simulator.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

// Transmits every slot; decides upon first reception.
class ChattyProtocol final : public radio::Protocol {
 public:
  explicit ChattyProtocol(graph::NodeId id) : id_(id) {}
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = id_;
    return m;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  graph::NodeId id_;
  bool heard_ = false;
};

// Listens forever; decides upon first reception.
class ListenerProtocol final : public radio::Protocol {
 public:
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    return std::nullopt;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  bool heard_ = false;
};

TEST(FailureInjection, DeadNodeStopsTransmitting) {
  // Node 0 broadcasts every slot, node 1 listens. Killing 0 at slot 0 means
  // node 1 never hears anything and stalls.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_failure_slot(0, 0);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.failed_nodes, 1u);
  EXPECT_EQ(metrics.stalled_nodes, 1u);
  EXPECT_FALSE(metrics.all_decided);
  EXPECT_EQ(metrics.total_transmissions, 0u);
  EXPECT_EQ(metrics.tx_count[0], 0u);
}

TEST(FailureInjection, LateFailureIsHarmless) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ChattyProtocol>(1));
  // Both transmit every slot and thus never hear each other (half-duplex).
  // Killing node 1 at slot 3 stops its radio (exactly 3 transmissions); the
  // dead node is not "stalled", while node 0 keeps broadcasting into the
  // void and is.
  sim.set_failure_slot(1, 3);
  const auto metrics = sim.run(20);
  EXPECT_EQ(metrics.failed_nodes, 1u);
  // Node 0 keeps transmitting into the void and never decides: stalled.
  EXPECT_EQ(metrics.stalled_nodes, 1u);
  EXPECT_EQ(metrics.tx_count[1], 3u);  // slots 0..2 only
}

TEST(FailureInjection, DeadDecidedNodeDoesNotCountAsStalled) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_failure_slot(1, 5);  // listener decides at slot 0, dies later
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.decision_slot[1], 0);
  EXPECT_EQ(metrics.failed_nodes, 1u);
  EXPECT_EQ(metrics.stalled_nodes, 1u);  // node 0 never hears anyone
  EXPECT_EQ(metrics.decision_slot[0], -1);
}

TEST(EnergyModel, AccountsTxAndListenSlots) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  // The listener decides at slot 0 but the chatty node never hears anyone
  // (it always transmits), so the run exhausts all 50 slots.
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.slots_executed, 50);
  EXPECT_EQ(metrics.tx_count[0], 50u);
  EXPECT_EQ(metrics.tx_count[1], 0u);
  EXPECT_EQ(metrics.awake_slots[0], 50u);
  EXPECT_EQ(metrics.awake_slots[1], 50u);

  radio::EnergyModel energy;  // tx 1.8, listen 1.0
  EXPECT_DOUBLE_EQ(energy.node_energy(metrics, 0), 50.0 * 1.8);
  EXPECT_DOUBLE_EQ(energy.node_energy(metrics, 1), 50.0);
  EXPECT_DOUBLE_EQ(energy.total_energy(metrics), 50.0 * 2.8);
  EXPECT_DOUBLE_EQ(energy.max_node_energy(metrics), 90.0);
}

TEST(FailureProtocol, MemberSelfPromotesIfLeaderDiesBeforeContact) {
  // Adjacent pair: kill the winner ONE slot after its election — before the
  // loser ever hears a beacon. The loser keeps competing, reaches the
  // threshold and becomes a leader itself: the protocol self-heals, and the
  // only "conflict" is with the corpse's color, which no live radio uses.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);
  ASSERT_EQ(clean.leaders.size(), 1u);
  const graph::NodeId leader = clean.leaders.front();
  const graph::NodeId member = leader == 0 ? 1 : 0;
  const radio::Slot election = clean.metrics.decision_slot[leader];

  core::MwInstance instance(g, cfg);  // same seed ⇒ identical prefix
  instance.simulator().set_failure_slot(leader, election + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.failed_nodes, 1u);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_EQ(result.coloring.color[member], 0);  // became a leader itself
}

TEST(FailureProtocol, OrphanedRequesterStalls) {
  // The genuine stall: the member must already be in state R (it has
  // committed to the leader) when the leader dies. Deterministic replay:
  // probe the exact slot the member enters kRequesting, then rerun with the
  // leader killed right after. The member can never leave R (only its own
  // leader's assignment releases it) ⇒ a stalled survivor, but no wrong
  // color ever appears.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);
  const graph::NodeId leader = clean.leaders.front();
  const graph::NodeId member = leader == 0 ? 1 : 0;

  radio::Slot request_entry = -1;
  {
    core::MwInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          if (request_entry < 0 &&
              nodes[member]->state() == core::MwStateKind::kRequesting) {
            request_entry = slot;
          }
        });
    (void)probe.run();
    ASSERT_GE(request_entry, 0);
  }

  core::MwInstance instance(g, cfg);
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.failed_nodes, 1u);
  EXPECT_EQ(result.metrics.stalled_nodes, 1u);
  EXPECT_FALSE(result.metrics.all_decided);
  EXPECT_EQ(result.coloring.color[member], graph::kUncolored);
  EXPECT_EQ(result.independence_violations, 0u);
}

TEST(FailureProtocol, RandomFailuresNeverBreakSafety) {
  common::Rng rng(123);
  graph::UnitDiskGraph g(geometry::uniform_deployment(80, 3.5, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 9;
  cfg.failure_fraction = 0.15;
  cfg.failure_window = 20000;
  const auto result = core::run_mw_coloring(g, cfg);
  EXPECT_GT(result.metrics.failed_nodes, 0u);
  EXPECT_EQ(result.independence_violations, 0u);
  // Pairwise validity among decided nodes only.
  for (const auto& v : graph::find_coloring_violations(g, result.coloring)) {
    EXPECT_EQ(v.u, v.v) << v.to_string();  // only "uncolored" entries allowed
  }
}

}  // namespace
}  // namespace sinrcolor
