// Many-thread hammer for the concurrency surface behind the determinism
// claim: TaskPool submit/drain, TopologyCache::get_or_build under colliding
// keys, and parallel trace/metrics emission during a threaded SweepEngine
// run. The assertions here are deliberately simple (conservation counts,
// pointer identity, byte-identical results) — the real teeth are the TSan
// tier (SINRCOLOR_SANITIZE=thread, CI job tsan-smoke), which holds every
// interleaving this suite provokes to zero data-race reports with zero
// suppressions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sweep.h"
#include "common/task_pool.h"
#include "geometry/deployment.h"
#include "graph/topology_cache.h"
#include "graph/unit_disk_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sinrcolor {
namespace {

// --- TaskPool: submit/drain hammer -----------------------------------------

TEST(TaskPoolStressTest, RepeatedJobsConserveEveryShard) {
  common::TaskPool pool(8);
  constexpr std::size_t kJobs = 200;
  constexpr std::size_t kShards = 64;
  std::atomic<std::uint64_t> total{0};
  for (std::size_t job = 0; job < kJobs; ++job) {
    std::vector<std::uint64_t> hits(kShards, 0);
    pool.run_shards(kShards, [&](std::size_t s) {
      hits[s] += 1;  // disjoint slots — race-free by construction
      total.fetch_add(s + 1, std::memory_order_relaxed);
    });
    // The join in run_shards is the happens-before edge that lets the
    // caller read every shard's slot without further synchronization.
    for (std::size_t s = 0; s < kShards; ++s) {
      ASSERT_EQ(hits[s], 1u) << "shard " << s << " ran " << hits[s]
                             << " times in job " << job;
    }
  }
  EXPECT_EQ(total.load(), kJobs * (kShards * (kShards + 1)) / 2);
}

TEST(TaskPoolStressTest, UnevenShardCountsDrainCompletely) {
  common::TaskPool pool(4);
  // Shard counts below, equal to, and far above the thread count, including
  // the inline shards==1 fast path, back to back on one pool.
  for (std::size_t shards : {1u, 3u, 4u, 5u, 64u, 257u}) {
    std::atomic<std::uint64_t> ran{0};
    pool.run_shards(shards, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), shards);
  }
}

TEST(TaskPoolStressTest, PoolConstructionTeardownChurn) {
  // Start/stop storms: workers parked in worker_loop must see stop_ and
  // exit cleanly even when the pool dies immediately or mid-traffic.
  for (int round = 0; round < 40; ++round) {
    common::TaskPool pool(8);
    if (round % 2 == 0) continue;  // destroy without ever submitting
    std::atomic<std::uint64_t> ran{0};
    pool.run_shards(16, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 16u);
  }
}

TEST(TaskPoolStressTest, ManyPoolsRunConcurrently) {
  // run_shards is not reentrant per pool, but distinct pools must not
  // interfere: drive four pools from four independent submitter threads.
  constexpr std::size_t kSubmitters = 4;
  std::vector<std::uint64_t> totals(kSubmitters, 0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&totals, t] {
      common::TaskPool pool(3);
      std::atomic<std::uint64_t> sum{0};
      for (int job = 0; job < 50; ++job) {
        pool.run_shards(32, [&](std::size_t s) {
          sum.fetch_add(s, std::memory_order_relaxed);
        });
      }
      totals[t] = sum.load();
    });
  }
  for (std::thread& s : submitters) s.join();
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    EXPECT_EQ(totals[t], 50u * (31u * 32u) / 2u);
  }
}

// --- TopologyCache: colliding get_or_build ---------------------------------

graph::UnitDiskGraph build_graph(std::size_t n, double side,
                                 std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

graph::TopologyKey key_for(std::size_t n, std::uint64_t seed) {
  graph::TopologyKey key;
  key.kind = "stress-uniform";
  key.n = n;
  key.side = 5.0;
  key.radius = 1.0;
  key.seed = seed;
  return key;
}

TEST(TopologyCacheStressTest, CollidingKeyBuildsOnceAcrossManyThreads) {
  graph::TopologyCache cache;
  constexpr std::size_t kThreads = 16;
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const graph::UnitDiskGraph>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &builds, &got, t] {
      got[t] = cache.get_or_build(key_for(60, 9), [&builds] {
        builds.fetch_add(1, std::memory_order_relaxed);
        return build_graph(60, 5.0, 9);
      });
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1) << "colliding key must build exactly once";
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[t].get(), got[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kThreads - 1);
}

TEST(TopologyCacheStressTest, MixedCollidingAndDistinctKeys) {
  graph::TopologyCache cache;
  constexpr std::size_t kThreads = 12;
  constexpr std::size_t kKeys = 3;  // every key contended by 4 threads
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const graph::UnitDiskGraph>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &builds, &got, t] {
      const std::uint64_t seed = t % kKeys;
      got[t] = cache.get_or_build(key_for(40, seed), [&builds, seed] {
        builds.fetch_add(1, std::memory_order_relaxed);
        return build_graph(40, 5.0, seed);
      });
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(builds.load(), static_cast<int>(kKeys));
  EXPECT_EQ(cache.size(), kKeys);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t].get(), got[t % kKeys].get());
    if (t % kKeys != 0) {
      EXPECT_NE(got[t].get(), got[0].get());
    }
  }
}

// --- Shared obs sinks under a threaded SweepEngine run ----------------------

TEST(SharedSinkStressTest, ParallelTraceAndMetricsEmission) {
  // Trials running 4-wide emit into ONE tracer and ONE registry. The tracer
  // ring is internally synchronized and the counters are atomic, so nothing
  // is lost; per-trial RESULTS still come only from the trial seed, so the
  // result vector stays byte-identical to a serial run.
  constexpr std::size_t kTrials = 64;
  constexpr std::size_t kEventsPerTrial = 50;

  const auto sweep = [&](std::size_t threads, obs::Tracer& tracer,
                         obs::MetricsRegistry& metrics) {
    common::SweepEngine engine(threads);
    return engine.run(kTrials, /*base_seed=*/42,
                      [&](const common::TrialContext& ctx) {
                        common::Rng rng(ctx.seed);
                        std::uint64_t acc = 0;
                        for (std::size_t e = 0; e < kEventsPerTrial; ++e) {
                          acc ^= rng();
                          tracer.record(static_cast<obs::Slot>(e),
                                        obs::EventKind::kTx,
                                        static_cast<obs::NodeId>(ctx.index));
                        }
                        metrics.counter("stress.trials").add();
                        metrics.counter("stress.events").add(kEventsPerTrial);
                        return acc;
                      });
  };

  obs::Tracer serial_trace(/*capacity=*/kTrials * kEventsPerTrial);
  obs::MetricsRegistry serial_metrics;
  const auto serial = sweep(1, serial_trace, serial_metrics);

  obs::Tracer threaded_trace(/*capacity=*/kTrials * kEventsPerTrial);
  obs::MetricsRegistry threaded_metrics;
  const auto threaded = sweep(4, threaded_trace, threaded_metrics);

  // Conservation: every emission from every thread landed.
  EXPECT_EQ(threaded_trace.recorded(), kTrials * kEventsPerTrial);
  EXPECT_EQ(threaded_trace.dropped(), 0u);
  EXPECT_EQ(threaded_metrics.counter("stress.trials").value(), kTrials);
  EXPECT_EQ(threaded_metrics.counter("stress.events").value(),
            kTrials * kEventsPerTrial);
  EXPECT_EQ(serial_trace.recorded(), threaded_trace.recorded());
  EXPECT_EQ(serial_metrics.counter("stress.trials").value(),
            threaded_metrics.counter("stress.trials").value());

  // Determinism: shared sinks never feed back into trial results.
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "trial " << i;
  }
}

TEST(SharedSinkStressTest, ConcurrentCounterRegistrationIsLossFree) {
  // Registration races on the SAME names from many threads: the registry
  // lock serializes map mutation and every handed-out reference stays valid.
  obs::MetricsRegistry metrics;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (std::size_t i = 0; i < kIncrements; ++i) {
        metrics.counter("shared").add();
        metrics.counter("per-thread." + std::to_string(t)).add();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(metrics.counter("shared").value(), kThreads * kIncrements);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(metrics.counter("per-thread." + std::to_string(t)).value(),
              kIncrements);
  }
}

TEST(SharedSinkStressTest, TracerRingOverflowUnderConcurrentEmission) {
  // A ring smaller than the emission volume: drop-oldest accounting must
  // stay exact even when overwrites race with fresh appends.
  obs::Tracer tracer(/*capacity=*/128);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEvents = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::size_t e = 0; e < kEvents; ++e) {
        tracer.record(static_cast<obs::Slot>(e), obs::EventKind::kTx,
                      static_cast<obs::NodeId>(t));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(), kThreads * kEvents);
  EXPECT_EQ(tracer.size(), 128u);
  EXPECT_EQ(tracer.dropped(), tracer.recorded() - 128u);
  EXPECT_EQ(tracer.events().size(), 128u);
}

}  // namespace
}  // namespace sinrcolor
