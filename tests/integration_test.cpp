// End-to-end pipelines: deployment → distributed coloring → TDMA MAC →
// simulated message passing / palette reduction, with the Lemma-3 probe
// attached to a live protocol run.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/graph_algos.h"
#include "graph/independent_set.h"
#include "mac/algorithms.h"
#include "mac/distance_d.h"
#include "mac/palette_reduction.h"
#include "mac/simulation.h"
#include "mac/tdma.h"
#include "sinr/probes.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

TEST(Integration, FullPipelineColoringToSimulatedAlgorithms) {
  common::Rng rng(1234);
  graph::UnitDiskGraph g(geometry::uniform_deployment(80, 4.0, rng), 1.0);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  // 1. Distributed (d+1)-coloring via the MW protocol on G^{d+1}.
  core::MwRunConfig cfg;
  cfg.seed = 99;
  const auto dcoloring = mac::compute_distance_d_coloring(g, d + 1.0, cfg);
  ASSERT_TRUE(dcoloring.run.metrics.all_decided);
  ASSERT_TRUE(graph::is_valid_coloring(g, dcoloring.coloring, d + 1.0));

  // 2. Theorem 3: the schedule is interference-free under SINR.
  const auto schedule = mac::TdmaSchedule::from_coloring(dcoloring.coloring);
  const auto audit = mac::audit_tdma_sinr(g, phys, schedule);
  EXPECT_TRUE(audit.interference_free()) << audit.summary();

  // 3. Corollary 1: simulate flooding over the MAC; outputs = BFS oracle.
  auto nodes = mac::instantiate(g, [](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<mac::FloodingBfs>(v, 0);
  });
  const auto sim = mac::run_over_sinr_tdma(g, phys, schedule, nodes, 300);
  EXPECT_EQ(sim.missed_deliveries, 0u);
  const auto oracle = graph::bfs_distances(g, 0);
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto* algo = static_cast<mac::FloodingBfs*>(nodes[v].get());
    if (oracle[v] != graph::kUnreachable) {
      ASSERT_EQ(algo->distance(), oracle[v]);
    }
  }

  // 4. Palette reduction on the same schedule yields a (1, Δ+1)-coloring.
  const auto reduced =
      mac::reduce_palette_sinr(g, phys, schedule, g.max_degree());
  EXPECT_TRUE(reduced.valid);
  EXPECT_LE(reduced.palette, g.max_degree() + 1);
}

TEST(Integration, Lemma3ProbeDuringLiveRun) {
  common::Rng rng(777);
  graph::UnitDiskGraph g(geometry::uniform_deployment(120, 4.0, rng), 1.0);
  const auto phys = phys_for_radius(1.0);
  const double r_i = phys.r_i();

  core::MwRunConfig cfg;
  cfg.seed = 5;
  core::MwInstance instance(g, cfg);

  // Probe the probabilistic far interference Ψ_u^{v∉I_u} at a few sample
  // nodes every 64 slots; Lemma 3 bounds it by P/(2ρβR_T^α). The practical
  // profile keeps the paper's q_s = q_ℓ/Δ scaling with q_ℓ ≤ 1/φ-equivalent
  // mass, so the bound must hold throughout the run.
  sinr::BoundProbe probe(phys.lemma3_interference_bound());
  std::vector<geometry::Point> positions = g.deployment().points;
  std::vector<double> probs(g.size(), 0.0);
  const auto& nodes = instance.nodes();
  instance.simulator().add_observer(
      [&](radio::Slot slot, std::span<const radio::TxRecord>) {
        if (slot % 64 != 0) return;
        for (std::size_t v = 0; v < nodes.size(); ++v) {
          probs[v] = nodes[v]->tx_probability();
        }
        for (graph::NodeId u = 0; u < g.size(); u += 17) {
          probe.record(sinr::probabilistic_interference_outside(
              phys, g.position(u), positions, probs, r_i, u));
        }
      });

  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  EXPECT_GT(probe.samples(), 0u);
  EXPECT_EQ(probe.violations(), 0u)
      << "max " << probe.max_observed() << " vs bound " << probe.bound();
}

TEST(Integration, UniformWakeupPipelineStillInterferenceFree) {
  common::Rng rng(31337);
  graph::UnitDiskGraph g(geometry::uniform_deployment(60, 3.5, rng), 1.0);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  core::MwRunConfig cfg;
  cfg.seed = 6;
  cfg.wakeup = core::WakeupKind::kUniform;
  cfg.wakeup_window = 2000;
  const auto dcoloring = mac::compute_distance_d_coloring(g, d + 1.0, cfg);
  ASSERT_TRUE(dcoloring.run.metrics.all_decided);
  ASSERT_EQ(dcoloring.run.independence_violations, 0u);

  const auto schedule = mac::TdmaSchedule::from_coloring(dcoloring.coloring);
  const auto audit = mac::audit_tdma_sinr(g, phys, schedule);
  EXPECT_TRUE(audit.interference_free()) << audit.summary();
}

TEST(Integration, LeadersFormMaximalIndependentSetAfterConvergence) {
  common::Rng rng(2024);
  graph::UnitDiskGraph g(geometry::uniform_deployment(100, 4.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 7;
  const auto result = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(result.metrics.all_decided);
  // Leaders are independent; and every node is adjacent to (or is) a leader —
  // otherwise it could never have been assigned a cluster color.
  EXPECT_TRUE(graph::is_maximal_independent_set(g, result.leaders));
}

}  // namespace
}  // namespace sinrcolor
