// Self-healing layer (src/robust) + the simulator's join-slot semantics:
// leader failover instead of permanent stalls, dynamic joins (including the
// degenerate join-at-0 and the symmetric adjacent-joiner cases), and the
// die-then-revive accounting rules.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "radio/interference_model.h"
#include "radio/simulator.h"
#include "robust/recovery_protocol.h"
#include "robust/self_healing_node.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

// Transmits every slot; decides upon first reception.
class ChattyProtocol final : public radio::Protocol {
 public:
  explicit ChattyProtocol(graph::NodeId id) : id_(id) {}
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = id_;
    return m;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  graph::NodeId id_;
  bool heard_ = false;
};

// Listens forever; decides upon first reception.
class ListenerProtocol final : public radio::Protocol {
 public:
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    return std::nullopt;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  bool heard_ = false;
};

TEST(JoinSlots, JoinAtSlotZeroEqualsNormalWakeup) {
  // A join slot of 0 under simultaneous wakeup is indistinguishable from the
  // scheduled wake it suppresses: same decisions, same colors, same slots.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);

  core::MwInstance instance(g, cfg);
  instance.simulator().set_join_slot(1, 0);
  const auto joined = instance.run();
  EXPECT_TRUE(joined.metrics.all_decided);
  EXPECT_EQ(joined.metrics.joined_nodes, 1u);
  EXPECT_EQ(joined.coloring.color, clean.coloring.color);
  EXPECT_EQ(joined.metrics.decision_slot, clean.metrics.decision_slot);
}

TEST(JoinSlots, JoinSlotSuppressesScheduledWake) {
  // A join-only node ignores the wake-up schedule entirely: it sleeps (and
  // spends no energy) until its join slot.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_join_slot(1, 20);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.joined_nodes, 1u);
  EXPECT_EQ(metrics.decision_slot[1], 20);  // first slot it could listen
  EXPECT_EQ(metrics.awake_slots[1], 30u);   // slots 20..49
}

TEST(JoinSlots, RevivedNodeIsNotDoubleCounted) {
  // Die at slot 0, rejoin at slot 10: the node leaves failed_nodes again,
  // death_slot resets, and the neighbor only ever hears the revived radio.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_failure_slot(0, 0);
  sim.set_join_slot(0, 10);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.failed_nodes, 0u);  // the revival cancels the death
  EXPECT_EQ(metrics.joined_nodes, 1u);
  EXPECT_EQ(metrics.death_slot[0], -1);
  EXPECT_EQ(metrics.tx_count[0], 40u);      // slots 10..49
  EXPECT_EQ(metrics.decision_slot[1], 10);  // heard nothing before the revival
  // The revived chatty node itself never hears anyone: a live undecided
  // survivor, counted exactly once.
  EXPECT_EQ(metrics.stalled_nodes, 1u);
  EXPECT_EQ(metrics.decision_slot[0], -1);
}

TEST(Recovery, OrphanedRequesterFailsOverInsteadOfStalling) {
  // The X14 stall scenario under the self-healing layer: probe the slot the
  // member enters R, kill its leader right after, and expect the failure
  // detector to fire and the member to re-elect (here: self-promote) rather
  // than wait forever. Mirrors failure_test's OrphanedRequesterStalls.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.recovery.enabled = true;

  graph::NodeId leader = graph::kInvalidNode;
  graph::NodeId member = graph::kInvalidNode;
  radio::Slot request_entry = -1;
  {
    robust::RecoveryInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          for (graph::NodeId v = 0; v < 2; ++v) {
            const core::MwNode* inner = nodes[v]->inner();
            if (request_entry < 0 && inner != nullptr &&
                inner->state() == core::MwStateKind::kRequesting) {
              request_entry = slot;
              member = v;
            }
          }
        });
    const auto clean = probe.run();
    ASSERT_TRUE(clean.metrics.all_decided);
    ASSERT_EQ(clean.leaders.size(), 1u);
    leader = clean.leaders.front();
    ASSERT_GE(request_entry, 0);
    ASSERT_NE(member, leader);
  }

  robust::RecoveryInstance instance(g, cfg);  // same seed ⇒ identical prefix
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.failed_nodes, 1u);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_TRUE(result.coloring_valid);  // judged on the live nodes
  EXPECT_NE(result.coloring.color[member], graph::kUncolored);
  EXPECT_GE(instance.nodes()[member]->failovers(), 1u);
  EXPECT_EQ(result.recovery.recovered_nodes, 1u);
  EXPECT_GT(result.recovery.max_failover_latency, 0);
}

TEST(Recovery, SimultaneousAdjacentJoinersResolveTheirCollision) {
  // Four nodes on a line at spacing 0.5; the middle two arrive together into
  // the converged network. Both hear the same established palette, pick the
  // same free color, and must break the tie themselves (lower id keeps it).
  graph::UnitDiskGraph g(geometry::line_deployment(4, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 11;
  cfg.recovery.enabled = true;
  const auto params = core::derive_mw_params(g, cfg);
  // A long confirmation window so the collision is heard w.h.p. before both
  // joiners settle (the default is tuned for throughput, not for this test).
  cfg.recovery.join_confirm_slots =
      4 * static_cast<radio::Slot>(params.window_positive);

  radio::Simulator sim(g, core::make_interference_model(g, cfg),
                       core::make_wakeup_schedule(4, cfg), cfg.seed);
  std::vector<robust::SelfHealingNode*> nodes;
  for (graph::NodeId v = 0; v < 4; ++v) {
    const bool joiner = v == 1 || v == 2;
    auto node = std::make_unique<robust::SelfHealingNode>(v, params,
                                                          cfg.recovery, joiner);
    nodes.push_back(node.get());
    sim.set_protocol(v, std::move(node));
  }
  // Nodes 0 and 3 (mutually out of range) elect themselves unopposed right
  // after listen + threshold; join well after that.
  const radio::Slot join_at = static_cast<radio::Slot>(params.listen_slots) +
                              static_cast<radio::Slot>(params.counter_threshold) +
                              10;
  sim.set_join_slot(1, join_at);
  sim.set_join_slot(2, join_at);
  const auto metrics = sim.run(
      join_at + 40 * static_cast<radio::Slot>(params.window_positive) + 1000);

  ASSERT_TRUE(metrics.all_decided);
  EXPECT_EQ(metrics.joined_nodes, 2u);
  EXPECT_FALSE(nodes[1]->fell_back_to_full_protocol());
  EXPECT_FALSE(nodes[2]->fell_back_to_full_protocol());
  // They heard the same palette ⇒ picked the same color ⇒ one had to repair.
  EXPECT_GE(nodes[1]->conflicts_repaired() + nodes[2]->conflicts_repaired(),
            1u);
  graph::Coloring coloring;
  coloring.color.resize(4);
  for (graph::NodeId v = 0; v < 4; ++v) {
    coloring.color[v] = nodes[v]->final_color();
    ASSERT_NE(coloring.color[v], graph::kUncolored);
  }
  EXPECT_NE(coloring.color[1], coloring.color[2]);
  EXPECT_TRUE(graph::find_coloring_violations(g, coloring).empty());
}

TEST(Recovery, JoinersAfterConvergenceKeepTheColoringValid) {
  // End-to-end through the driver: 10% of a 40-node network arrives after
  // convergence; every joiner ends colored and the live coloring stays valid.
  common::Rng rng(321);
  graph::UnitDiskGraph g(geometry::uniform_deployment(40, 3.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 13;
  cfg.recovery.enabled = true;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);

  cfg.recovery.join_fraction = 0.10;
  cfg.recovery.join_at = clean.metrics.slots_executed + 200;
  cfg.recovery.join_window = 100;
  const auto result = robust::run_recovering_mw(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_EQ(result.recovery.joined_nodes, 4u);  // ⌈0.1 · 40⌉
  EXPECT_TRUE(result.coloring_valid);
}

}  // namespace
}  // namespace sinrcolor
