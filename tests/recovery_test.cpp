// Self-healing layer (src/robust) + the simulator's join-slot semantics:
// leader failover instead of permanent stalls, dynamic joins (including the
// degenerate join-at-0 and the symmetric adjacent-joiner cases), and the
// die-then-revive accounting rules.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "radio/interference_model.h"
#include "radio/simulator.h"
#include "robust/recovery_protocol.h"
#include "robust/self_healing_node.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

// Transmits every slot; decides upon first reception.
class ChattyProtocol final : public radio::Protocol {
 public:
  explicit ChattyProtocol(graph::NodeId id) : id_(id) {}
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = id_;
    return m;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  graph::NodeId id_;
  bool heard_ = false;
};

// Listens forever; decides upon first reception.
class ListenerProtocol final : public radio::Protocol {
 public:
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    return std::nullopt;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  bool heard_ = false;
};

TEST(JoinSlots, JoinAtSlotZeroEqualsNormalWakeup) {
  // A join slot of 0 under simultaneous wakeup is indistinguishable from the
  // scheduled wake it suppresses: same decisions, same colors, same slots.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);

  core::MwInstance instance(g, cfg);
  instance.simulator().set_join_slot(1, 0);
  const auto joined = instance.run();
  EXPECT_TRUE(joined.metrics.all_decided);
  EXPECT_EQ(joined.metrics.joined_nodes, 1u);
  EXPECT_EQ(joined.coloring.color, clean.coloring.color);
  EXPECT_EQ(joined.metrics.decision_slot, clean.metrics.decision_slot);
}

TEST(JoinSlots, JoinSlotSuppressesScheduledWake) {
  // A join-only node ignores the wake-up schedule entirely: it sleeps (and
  // spends no energy) until its join slot.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_join_slot(1, 20);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.joined_nodes, 1u);
  EXPECT_EQ(metrics.decision_slot[1], 20);  // first slot it could listen
  EXPECT_EQ(metrics.awake_slots[1], 30u);   // slots 20..49
}

TEST(JoinSlots, RevivedNodeIsNotDoubleCounted) {
  // Die at slot 0, rejoin at slot 10: the node leaves failed_nodes again,
  // death_slot resets, and the neighbor only ever hears the revived radio.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_failure_slot(0, 0);
  sim.set_join_slot(0, 10);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.failed_nodes, 0u);  // the revival cancels the death
  EXPECT_EQ(metrics.joined_nodes, 1u);
  EXPECT_EQ(metrics.death_slot[0], -1);
  EXPECT_EQ(metrics.tx_count[0], 40u);      // slots 10..49
  EXPECT_EQ(metrics.decision_slot[1], 10);  // heard nothing before the revival
  // The revived chatty node itself never hears anyone: a live undecided
  // survivor, counted exactly once.
  EXPECT_EQ(metrics.stalled_nodes, 1u);
  EXPECT_EQ(metrics.decision_slot[0], -1);
}

TEST(Recovery, OrphanedRequesterFailsOverInsteadOfStalling) {
  // The X14 stall scenario under the self-healing layer: probe the slot the
  // member enters R, kill its leader right after, and expect the failure
  // detector to fire and the member to re-elect (here: self-promote) rather
  // than wait forever. Mirrors failure_test's OrphanedRequesterStalls.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.recovery.enabled = true;

  graph::NodeId leader = graph::kInvalidNode;
  graph::NodeId member = graph::kInvalidNode;
  radio::Slot request_entry = -1;
  {
    robust::RecoveryInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          for (graph::NodeId v = 0; v < 2; ++v) {
            const core::MwNode* inner = nodes[v]->inner();
            if (request_entry < 0 && inner != nullptr &&
                inner->state() == core::MwStateKind::kRequesting) {
              request_entry = slot;
              member = v;
            }
          }
        });
    const auto clean = probe.run();
    ASSERT_TRUE(clean.metrics.all_decided);
    ASSERT_EQ(clean.leaders.size(), 1u);
    leader = clean.leaders.front();
    ASSERT_GE(request_entry, 0);
    ASSERT_NE(member, leader);
  }

  robust::RecoveryInstance instance(g, cfg);  // same seed ⇒ identical prefix
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.failed_nodes, 1u);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_TRUE(result.coloring_valid);  // judged on the live nodes
  EXPECT_NE(result.coloring.color[member], graph::kUncolored);
  EXPECT_GE(instance.nodes()[member]->failovers(), 1u);
  EXPECT_EQ(result.recovery.recovered_nodes, 1u);
  EXPECT_GT(result.recovery.max_failover_latency, 0);
}

TEST(Recovery, SimultaneousAdjacentJoinersResolveTheirCollision) {
  // Four nodes on a line at spacing 0.5; the middle two arrive together into
  // the converged network. Both hear the same established palette, pick the
  // same free color, and must break the tie themselves (lower id keeps it).
  graph::UnitDiskGraph g(geometry::line_deployment(4, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 11;
  cfg.recovery.enabled = true;
  const auto params = core::derive_mw_params(g, cfg);
  // A long confirmation window so the collision is heard w.h.p. before both
  // joiners settle (the default is tuned for throughput, not for this test).
  cfg.recovery.join_confirm_slots =
      4 * static_cast<radio::Slot>(params.window_positive);

  radio::Simulator sim(g, core::make_interference_model(g, cfg),
                       core::make_wakeup_schedule(4, cfg), cfg.seed);
  std::vector<robust::SelfHealingNode*> nodes;
  for (graph::NodeId v = 0; v < 4; ++v) {
    const bool joiner = v == 1 || v == 2;
    auto node = std::make_unique<robust::SelfHealingNode>(v, params,
                                                          cfg.recovery, joiner);
    nodes.push_back(node.get());
    sim.set_protocol(v, std::move(node));
  }
  // Nodes 0 and 3 (mutually out of range) elect themselves unopposed right
  // after listen + threshold; join well after that.
  const radio::Slot join_at = static_cast<radio::Slot>(params.listen_slots) +
                              static_cast<radio::Slot>(params.counter_threshold) +
                              10;
  sim.set_join_slot(1, join_at);
  sim.set_join_slot(2, join_at);
  const auto metrics = sim.run(
      join_at + 40 * static_cast<radio::Slot>(params.window_positive) + 1000);

  ASSERT_TRUE(metrics.all_decided);
  EXPECT_EQ(metrics.joined_nodes, 2u);
  EXPECT_FALSE(nodes[1]->fell_back_to_full_protocol());
  EXPECT_FALSE(nodes[2]->fell_back_to_full_protocol());
  // They heard the same palette ⇒ picked the same color ⇒ one had to repair.
  EXPECT_GE(nodes[1]->conflicts_repaired() + nodes[2]->conflicts_repaired(),
            1u);
  graph::Coloring coloring;
  coloring.color.resize(4);
  for (graph::NodeId v = 0; v < 4; ++v) {
    coloring.color[v] = nodes[v]->final_color();
    ASSERT_NE(coloring.color[v], graph::kUncolored);
  }
  EXPECT_NE(coloring.color[1], coloring.color[2]);
  EXPECT_TRUE(graph::find_coloring_violations(g, coloring).empty());
}

TEST(Recovery, SimultaneousLeaderAndMemberFailureStillConverges) {
  // Three mutually adjacent nodes; the leader AND one member die in the same
  // slot while the third is mid-request. The survivor must detect the
  // silence, re-elect and color itself. Every state mutation in the robust
  // layer goes through transition_to() against its transition table, so an
  // illegal transition anywhere in this scenario aborts the test.
  graph::UnitDiskGraph g(geometry::line_deployment(3, 0.4), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.recovery.enabled = true;

  graph::NodeId leader = graph::kInvalidNode;
  graph::NodeId member = graph::kInvalidNode;
  radio::Slot request_entry = -1;
  {
    robust::RecoveryInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          for (graph::NodeId v = 0; v < 3; ++v) {
            const core::MwNode* inner = nodes[v]->inner();
            if (request_entry < 0 && inner != nullptr &&
                inner->state() == core::MwStateKind::kRequesting) {
              request_entry = slot;
              member = v;
            }
          }
        });
    const auto clean = probe.run();
    ASSERT_TRUE(clean.metrics.all_decided);
    ASSERT_EQ(clean.leaders.size(), 1u);  // a triangle has one leader
    leader = clean.leaders.front();
    ASSERT_GE(request_entry, 0);
    ASSERT_NE(member, leader);
  }
  const graph::NodeId third = 3 - leader - member;

  robust::RecoveryInstance instance(g, cfg);  // same seed ⇒ identical prefix
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  instance.simulator().set_failure_slot(third, request_entry + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.failed_nodes, 2u);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_TRUE(result.coloring_valid);
  EXPECT_NE(result.coloring.color[member], graph::kUncolored);
  EXPECT_GE(instance.nodes()[member]->failovers(), 1u);
}

TEST(Recovery, FailureMidJoinPhaseLeavesSurvivorsConsistent) {
  // A joiner dies in the middle of its join automaton (while confirming its
  // tentative color). The join machinery must wind down through legal
  // transitions only (transition_to() aborts otherwise) and the survivors'
  // coloring stays valid and stall-free.
  graph::UnitDiskGraph g(geometry::line_deployment(3, 0.6), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 11;
  cfg.recovery.enabled = true;
  const auto params = core::derive_mw_params(g, cfg);
  const auto wp = static_cast<radio::Slot>(params.window_positive);

  radio::Simulator sim(g, core::make_interference_model(g, cfg),
                       core::make_wakeup_schedule(3, cfg), cfg.seed);
  std::vector<robust::SelfHealingNode*> nodes;
  for (graph::NodeId v = 0; v < 3; ++v) {
    auto node = std::make_unique<robust::SelfHealingNode>(
        v, params, cfg.recovery, /*joiner=*/v == 1);
    nodes.push_back(node.get());
    sim.set_protocol(v, std::move(node));
  }
  // The ends (mutually out of range) self-elect right after listen +
  // threshold; the middle node joins the converged network and dies while
  // beaconing its tentative color (listen phase of the join is 2·window⁺ by
  // default, so listen + a few slots lands inside the confirm phase).
  const radio::Slot join_at = static_cast<radio::Slot>(params.listen_slots) +
                              static_cast<radio::Slot>(params.counter_threshold) +
                              10;
  sim.set_join_slot(1, join_at);
  sim.set_failure_slot(1, join_at + 2 * wp + 3);
  const auto metrics = sim.run(join_at + 8 * wp + 1000);

  EXPECT_EQ(metrics.joined_nodes, 1u);
  EXPECT_EQ(metrics.failed_nodes, 1u);
  EXPECT_EQ(metrics.stalled_nodes, 0u);  // both survivors decided
  // Both survivors hold colors; every edge of this line involves the dead
  // joiner, so the live coloring is trivially conflict-free.
  EXPECT_NE(nodes[0]->final_color(), graph::kUncolored);
  EXPECT_NE(nodes[2]->final_color(), graph::kUncolored);
}

TEST(Recovery, ExhaustedFailoversDegradeToProvisionalColor) {
  // Graceful degradation: with zero failover attempts allowed, a requester
  // whose leader dies must not stall — it falls back to a provisional color
  // picked from overheard beacons (the kInactive → kConfirming edge of the
  // join table) and finishes the run colored.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.recovery.enabled = true;
  cfg.recovery.max_failovers = 0;
  cfg.recovery.degrade_to_provisional = true;

  graph::NodeId leader = graph::kInvalidNode;
  graph::NodeId member = graph::kInvalidNode;
  radio::Slot request_entry = -1;
  {
    robust::RecoveryInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          for (graph::NodeId v = 0; v < 2; ++v) {
            const core::MwNode* inner = nodes[v]->inner();
            if (request_entry < 0 && inner != nullptr &&
                inner->state() == core::MwStateKind::kRequesting) {
              request_entry = slot;
              member = v;
            }
          }
        });
    const auto clean = probe.run();
    ASSERT_TRUE(clean.metrics.all_decided);
    ASSERT_EQ(clean.leaders.size(), 1u);
    leader = clean.leaders.front();
    ASSERT_GE(request_entry, 0);
    ASSERT_NE(member, leader);
  }

  robust::RecoveryInstance instance(g, cfg);
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  const auto result = instance.run();
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_TRUE(instance.nodes()[member]->degraded());
  EXPECT_NE(result.coloring.color[member], graph::kUncolored);
  EXPECT_EQ(result.recovery.degraded_nodes, 1u);
  EXPECT_EQ(instance.nodes()[member]->failovers(), 0u);
  EXPECT_TRUE(result.coloring_valid);
}

TEST(Recovery, ForcedRetransmissionsFireAndTheRunStaysCorrect) {
  // Request-path hardening on the PLAIN protocol driver: with a 1-slot
  // initial wait, any R episode longer than a slot forces deterministic
  // resends between the q_s coin flips; the run still converges to a valid
  // coloring.
  common::Rng rng(44);
  graph::UnitDiskGraph g(geometry::uniform_deployment(20, 2.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 17;
  cfg.recovery.retransmit.initial_wait = 1;
  cfg.recovery.retransmit.max_retries = 8;
  core::MwInstance instance(g, cfg);
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(graph::find_coloring_violations(g, result.coloring).empty());
  std::size_t forced = 0;
  for (const auto& node : instance.nodes()) {
    forced += node->forced_retransmissions();
  }
  EXPECT_GE(forced, 1u);
}

// Tiny always-transmit parameters (as in mw_node_test) so a wrapped MwNode
// can be driven to an established decision in a handful of slots.
core::MwParams tiny_params() {
  core::MwParams p;
  p.q_leader = 1.0;
  p.q_small = 1.0;
  p.listen_slots = 3;
  p.counter_threshold = 10;
  p.window_zero = 2;
  p.window_positive = 4;
  p.assign_slots = 2;
  p.phi_2rt = 5;
  p.n = 10;
  p.max_degree = 3;
  return p;
}

radio::Message color_beacon(graph::NodeId sender, std::int32_t klass) {
  radio::Message m;
  m.kind = radio::MessageKind::kColorBeacon;
  m.sender = sender;
  m.color_class = klass;
  return m;
}

radio::Message color_assign(graph::NodeId leader, graph::NodeId target,
                            std::int32_t tc) {
  radio::Message m;
  m.kind = radio::MessageKind::kColorAssign;
  m.sender = leader;
  m.target = target;
  m.color_class = 0;
  m.tc = tc;
  return m;
}

// Drives begin/end until the node decides; returns the slot cursor.
void drive_until_decided(robust::SelfHealingNode& node, radio::Slot& slot,
                         common::Rng& rng) {
  while (!node.decided() && slot < 200) {
    node.begin_slot(slot, rng);
    node.end_slot(slot);
    ++slot;
  }
  ASSERT_TRUE(node.decided());
}

TEST(Recovery, EstablishedNodeRepairsLateCollisionFromLowerIdNeighbor) {
  // Direct drive to kColored: listen, a leader beacon puts the node in R,
  // an assignment sends it through class tc·(φ(2R_T)+1) = 6 to kColored.
  const core::MwParams params = tiny_params();
  core::RecoveryOptions options;
  options.enabled = true;
  robust::SelfHealingNode node(5, params, options, /*joiner=*/false);
  common::Rng rng(7);
  radio::Slot slot = 0;
  node.on_wake(slot);
  node.begin_slot(slot, rng);
  node.on_receive(slot, color_beacon(1, 0));  // a leader covers us → R
  node.end_slot(slot);
  ++slot;
  node.begin_slot(slot, rng);
  node.on_receive(slot, color_assign(1, 5, 1));  // grant → class 6
  node.end_slot(slot);
  ++slot;
  drive_until_decided(node, slot, rng);
  ASSERT_NE(node.inner(), nullptr);
  ASSERT_EQ(node.inner()->state(), core::MwStateKind::kColored);
  ASSERT_EQ(node.final_color(), 6);

  // A HIGHER-id neighbor claiming our color is its problem, not ours.
  node.on_receive(slot, color_beacon(9, 6));
  EXPECT_EQ(node.final_color(), 6);
  EXPECT_EQ(node.late_conflicts_repaired(), 0u);

  // A LOWER-id neighbor claiming it forces the local repair: re-pick the
  // smallest overheard-free color (heard {0, 6} → 1) on the fast-join
  // path, staying decided throughout.
  node.on_receive(slot, color_beacon(2, 6));
  EXPECT_EQ(node.late_conflicts_repaired(), 1u);
  EXPECT_TRUE(node.decided());
  EXPECT_TRUE(node.fast_join_active());
  EXPECT_EQ(node.final_color(), 1);

  // The re-confirmation window beacons the repaired color as M_J and the
  // confirm-phase watch keeps working: a further collision re-picks again.
  const auto tx = node.begin_slot(slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kJoinBeacon);
  EXPECT_EQ(tx->color_class, 1);
  node.on_receive(slot, color_beacon(0, 1));
  node.end_slot(slot);
  ++slot;
  EXPECT_EQ(node.final_color(), 2);  // heard {0, 1, 6} → 2
  EXPECT_TRUE(node.decided());
}

TEST(Recovery, LeaderIsExemptFromTheLateConflictWatch) {
  // Color 0 carries cluster duties; two adjacent leaders are an MIS
  // violation the local repair must not "fix" by abandoning leadership.
  const core::MwParams params = tiny_params();
  core::RecoveryOptions options;
  options.enabled = true;
  robust::SelfHealingNode node(5, params, options, /*joiner=*/false);
  common::Rng rng(7);
  radio::Slot slot = 0;
  node.on_wake(slot);
  drive_until_decided(node, slot, rng);  // unopposed class 0 → kLeader
  ASSERT_NE(node.inner(), nullptr);
  ASSERT_EQ(node.inner()->state(), core::MwStateKind::kLeader);
  ASSERT_EQ(node.final_color(), 0);

  node.on_receive(slot, color_beacon(2, 0));
  EXPECT_EQ(node.final_color(), 0);
  EXPECT_EQ(node.late_conflicts_repaired(), 0u);
  EXPECT_FALSE(node.fast_join_active());
}

TEST(Recovery, JoinersAfterConvergenceKeepTheColoringValid) {
  // End-to-end through the driver: 10% of a 40-node network arrives after
  // convergence; every joiner ends colored and the live coloring stays valid.
  common::Rng rng(321);
  graph::UnitDiskGraph g(geometry::uniform_deployment(40, 3.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 13;
  cfg.recovery.enabled = true;
  const auto clean = core::run_mw_coloring(g, cfg);
  ASSERT_TRUE(clean.metrics.all_decided);

  cfg.recovery.join_fraction = 0.10;
  cfg.recovery.join_at = clean.metrics.slots_executed + 200;
  cfg.recovery.join_window = 100;
  const auto result = robust::run_recovering_mw(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_EQ(result.recovery.joined_nodes, 4u);  // ⌈0.1 · 40⌉
  EXPECT_TRUE(result.coloring_valid);
}

}  // namespace
}  // namespace sinrcolor
