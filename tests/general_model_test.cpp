// Tests for the general (per-neighbor message) model of Corollary 1:
// reference executor, both SINR simulation strategies, and the two
// general-model algorithms (randomized matching, tree aggregation).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "baseline/greedy_coloring.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "graph/graph_algos.h"
#include "mac/algorithms.h"
#include "mac/message_passing.h"
#include "mac/simulation.h"
#include "mac/tdma.h"

namespace sinrcolor::mac {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TdmaSchedule theorem3_schedule(const graph::UnitDiskGraph& g,
                               const sinr::SinrParams& phys) {
  const double d = phys.mac_distance_d();
  return TdmaSchedule::from_coloring(
      baseline::greedy_distance_d_coloring(g, d + 1.0));
}

// Verifies the matching encoded in the per-node algorithms: symmetric
// partners, edges of the graph, and maximality (no edge with two unmatched
// endpoints).
void expect_valid_maximal_matching(
    const graph::UnitDiskGraph& g,
    const std::vector<std::unique_ptr<GeneralAlgorithm>>& nodes) {
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto* algo = static_cast<const RandomizedMatching*>(nodes[v].get());
    if (algo->matched()) {
      const graph::NodeId u = algo->partner();
      ASSERT_LT(u, g.size());
      EXPECT_TRUE(g.adjacent(u, v)) << v << "-" << u;
      const auto* other = static_cast<const RandomizedMatching*>(nodes[u].get());
      EXPECT_EQ(other->partner(), v) << "asymmetric match " << v << "-" << u;
    } else {
      for (graph::NodeId u : g.neighbors(v)) {
        const auto* other =
            static_cast<const RandomizedMatching*>(nodes[u].get());
        EXPECT_TRUE(other->matched())
            << "edge " << v << "-" << u << " with both endpoints unmatched";
      }
    }
  }
}

TEST(GeneralReference, MatchingIsValidAndMaximal) {
  const auto g = uniform_graph(120, 4.0, 80);
  auto nodes = instantiate_general(g, [](graph::NodeId v, const auto& graph) {
    return std::make_unique<RandomizedMatching>(v, graph, 71);
  });
  const auto result = run_reference_general(g, nodes, 600);
  ASSERT_TRUE(result.all_terminated) << result.summary();
  expect_valid_maximal_matching(g, nodes);
}

TEST(GeneralReference, MatchingOnChainAndIsolated) {
  // Chain of 4 + disconnected node: matching must cover the chain maximally;
  // the isolated node terminates unmatched.
  geometry::Deployment dep;
  dep.side = 10.0;
  dep.points = {{0, 0}, {0.9, 0}, {1.8, 0}, {2.7, 0}, {8, 8}};
  graph::UnitDiskGraph g(dep, 1.0);
  auto nodes = instantiate_general(g, [](graph::NodeId v, const auto& graph) {
    return std::make_unique<RandomizedMatching>(v, graph, 5);
  });
  const auto result = run_reference_general(g, nodes, 600);
  ASSERT_TRUE(result.all_terminated);
  expect_valid_maximal_matching(g, nodes);
  EXPECT_FALSE(static_cast<RandomizedMatching*>(nodes[4].get())->matched());
}

TEST(GeneralReference, AggregationSumsWholeTree) {
  const auto g = uniform_graph(90, 3.0, 81);
  ASSERT_TRUE(graph::is_connected(g));
  const auto parents = graph::bfs_parents(g, 0);
  auto nodes = instantiate_general(g, [&](graph::NodeId v, const auto&) {
    return std::make_unique<TreeAggregation>(v, parents[v],
                                             static_cast<std::int64_t>(v));
  });
  const auto result = run_reference_general(g, nodes, 300);
  ASSERT_TRUE(result.all_terminated) << result.summary();
  const auto* root = static_cast<TreeAggregation*>(nodes[0].get());
  const auto n = static_cast<std::int64_t>(g.size());
  EXPECT_EQ(root->total(), n * (n - 1) / 2);
}

TEST(GeneralReference, AggregationIsolatedRoot) {
  graph::UnitDiskGraph g(geometry::line_deployment(1, 1.0), 1.0);
  auto nodes = instantiate_general(g, [](graph::NodeId v, const auto&) {
    return std::make_unique<TreeAggregation>(v, graph::kInvalidNode, 42);
  });
  const auto result = run_reference_general(g, nodes, 10);
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(static_cast<TreeAggregation*>(nodes[0].get())->total(), 42);
}

TEST(GeneralReference, RejectsMessageToNonNeighbor) {
  class Rogue final : public GeneralAlgorithm {
   public:
    std::vector<std::pair<graph::NodeId, Payload>> round_messages(
        std::uint32_t) override {
      return {{1, Payload{0}}};  // node 1 is not adjacent
    }
    void end_round(std::uint32_t, const Inbox&) override {}
    bool terminated() const override { return false; }
  };
  graph::UnitDiskGraph g(geometry::line_deployment(2, 5.0), 1.0);  // no edge
  std::vector<std::unique_ptr<GeneralAlgorithm>> nodes;
  nodes.push_back(std::make_unique<Rogue>());
  nodes.push_back(std::make_unique<Rogue>());
  EXPECT_DEATH((void)run_reference_general(g, nodes, 2), "non-neighbor");
}

class GeneralStrategyTest : public ::testing::TestWithParam<GeneralStrategy> {};

TEST_P(GeneralStrategyTest, MatchingIdenticalUnderSinr) {
  const auto g = uniform_graph(100, 3.5, 82);
  const auto phys = phys_for_radius(1.0);
  const auto schedule = theorem3_schedule(g, phys);

  auto make = [](graph::NodeId v,
                 const auto& graph) -> std::unique_ptr<GeneralAlgorithm> {
    return std::make_unique<RandomizedMatching>(v, graph, 99);
  };
  auto ref_nodes = instantiate_general(g, make);
  auto sim_nodes = instantiate_general(g, make);
  const auto ref = run_reference_general(g, ref_nodes, 600);
  const auto sim =
      run_general_over_sinr_tdma(g, phys, schedule, sim_nodes, 600, GetParam());

  ASSERT_TRUE(ref.all_terminated);
  ASSERT_TRUE(sim.all_terminated) << sim.summary();
  EXPECT_EQ(sim.missed_deliveries, 0u) << sim.summary();
  EXPECT_EQ(ref.rounds, sim.rounds);
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    ASSERT_EQ(static_cast<RandomizedMatching*>(ref_nodes[v].get())->partner(),
              static_cast<RandomizedMatching*>(sim_nodes[v].get())->partner())
        << "node " << v;
  }
  expect_valid_maximal_matching(g, sim_nodes);
}

TEST_P(GeneralStrategyTest, AggregationIdenticalUnderSinr) {
  const auto g = uniform_graph(80, 3.0, 83);
  ASSERT_TRUE(graph::is_connected(g));
  const auto phys = phys_for_radius(1.0);
  const auto schedule = theorem3_schedule(g, phys);
  const auto parents = graph::bfs_parents(g, 0);

  auto make = [&](graph::NodeId v,
                  const auto&) -> std::unique_ptr<GeneralAlgorithm> {
    return std::make_unique<TreeAggregation>(v, parents[v],
                                             static_cast<std::int64_t>(v) + 1);
  };
  auto ref_nodes = instantiate_general(g, make);
  auto sim_nodes = instantiate_general(g, make);
  (void)run_reference_general(g, ref_nodes, 300);
  const auto sim =
      run_general_over_sinr_tdma(g, phys, schedule, sim_nodes, 300, GetParam());
  ASSERT_TRUE(sim.all_terminated) << sim.summary();
  EXPECT_EQ(static_cast<TreeAggregation*>(ref_nodes[0].get())->total(),
            static_cast<TreeAggregation*>(sim_nodes[0].get())->total());
  const auto n = static_cast<std::int64_t>(g.size());
  EXPECT_EQ(static_cast<TreeAggregation*>(sim_nodes[0].get())->total(),
            n * (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Strategies, GeneralStrategyTest,
                         ::testing::Values(GeneralStrategy::kBundled,
                                           GeneralStrategy::kSequential));

TEST(GeneralSimulation, SlotAccountingByStrategy) {
  const auto g = uniform_graph(80, 3.0, 84);
  const auto phys = phys_for_radius(1.0);
  const auto schedule = theorem3_schedule(g, phys);
  const auto parents = graph::bfs_parents(g, 0);

  auto make = [&](graph::NodeId v,
                  const auto&) -> std::unique_ptr<GeneralAlgorithm> {
    return std::make_unique<TreeAggregation>(v, parents[v], 1);
  };
  auto bundled_nodes = instantiate_general(g, make);
  auto sequential_nodes = instantiate_general(g, make);
  const auto bundled = run_general_over_sinr_tdma(
      g, phys, schedule, bundled_nodes, 300, GeneralStrategy::kBundled);
  const auto sequential = run_general_over_sinr_tdma(
      g, phys, schedule, sequential_nodes, 300, GeneralStrategy::kSequential);

  // Bundled: exactly one frame per executed round.
  EXPECT_EQ(bundled.slots_used, static_cast<radio::Slot>(bundled.rounds) *
                                    schedule.frame_length());
  // Tree aggregation sends ≤ 1 message per node per round, so the sequential
  // strategy costs at most one frame per round too — and never more than the
  // bundled run's frames times max bundle size.
  EXPECT_LE(sequential.slots_used, bundled.slots_used);
  EXPECT_GE(bundled.max_bundle_entries, 1u);
  EXPECT_EQ(sequential.max_bundle_entries, 0u);
}

TEST(GeneralSimulation, BundleFactorReflectsFanout) {
  // Round 0 of TreeAggregation: every non-root sends one CHILD message, so
  // bundles have exactly one entry; RandomizedMatching's announce round sends
  // up to deg-1 messages — bundle factor grows with density.
  const auto g = uniform_graph(150, 3.0, 85);
  const auto phys = phys_for_radius(1.0);
  const auto schedule = theorem3_schedule(g, phys);
  auto nodes = instantiate_general(g, [](graph::NodeId v, const auto& graph) {
    return std::make_unique<RandomizedMatching>(v, graph, 7);
  });
  const auto sim = run_general_over_sinr_tdma(g, phys, schedule, nodes, 600,
                                              GeneralStrategy::kBundled);
  ASSERT_TRUE(sim.all_terminated);
  EXPECT_GT(sim.max_bundle_entries, 1u);
  EXPECT_LE(sim.max_bundle_entries, g.max_degree());
}

}  // namespace
}  // namespace sinrcolor::mac
