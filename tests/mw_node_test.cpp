// Deterministic micro-tests of the MwNode state machine (paper Figs. 1–3),
// driven directly (no simulator) with tiny hand-built parameters and
// probability-1 transmissions so every slot's behaviour is exact.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/mw_node.h"
#include "core/mw_params.h"
#include "radio/message.h"

namespace sinrcolor::core {
namespace {

// listen 3 slots, threshold 10, window_0 2, window_+ 4, assign 2 slots,
// always transmit.
MwParams tiny_params() {
  MwParams p;
  p.q_leader = 1.0;
  p.q_small = 1.0;
  p.listen_slots = 3;
  p.counter_threshold = 10;
  p.window_zero = 2;
  p.window_positive = 4;
  p.assign_slots = 2;
  p.phi_2rt = 5;
  p.n = 10;
  p.max_degree = 3;
  return p;
}

radio::Message compete(graph::NodeId sender, std::int32_t klass,
                       std::int64_t counter) {
  radio::Message m;
  m.kind = radio::MessageKind::kCompete;
  m.sender = sender;
  m.color_class = klass;
  m.counter = counter;
  return m;
}

radio::Message beacon(graph::NodeId sender, std::int32_t klass) {
  radio::Message m;
  m.kind = radio::MessageKind::kColorBeacon;
  m.sender = sender;
  m.color_class = klass;
  return m;
}

radio::Message assign(graph::NodeId leader, graph::NodeId target,
                      std::int32_t tc) {
  radio::Message m;
  m.kind = radio::MessageKind::kColorAssign;
  m.sender = leader;
  m.target = target;
  m.color_class = 0;
  m.tc = tc;
  return m;
}

radio::Message request(graph::NodeId sender, graph::NodeId leader) {
  radio::Message m;
  m.kind = radio::MessageKind::kRequest;
  m.sender = sender;
  m.target = leader;
  return m;
}

// Drives one begin/end slot; returns the transmission.
std::optional<radio::Message> step(MwNode& node, radio::Slot& slot,
                                   common::Rng& rng) {
  auto tx = node.begin_slot(slot, rng);
  node.end_slot(slot);
  ++slot;
  return tx;
}

TEST(MwNodeMachine, ListeningPhaseIsSilentThenCompetes) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(1);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(node.state(), MwStateKind::kListening);
    EXPECT_FALSE(step(node, slot, rng).has_value());  // never transmits
  }
  // Slot 3: χ(∅)=0, first competition iteration: c=1, transmit M_A^0(0, 1).
  const auto tx = step(node, slot, rng);
  EXPECT_EQ(node.state(), MwStateKind::kCompeting);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kCompete);
  EXPECT_EQ(tx->color_class, 0);
  EXPECT_EQ(tx->counter, 1);
  EXPECT_EQ(node.counter(), 1);
}

TEST(MwNodeMachine, ReachesThresholdAndBecomesLeader) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(2);
  node.on_wake(0);
  radio::Slot slot = 0;
  // 3 listen slots + 9 competition slots (c = 1..9) + threshold slot.
  for (int i = 0; i < 12; ++i) {
    (void)step(node, slot, rng);
    EXPECT_FALSE(node.decided());
  }
  const auto tx = step(node, slot, rng);  // c reaches 10 ⇒ C_0, silent slot
  EXPECT_FALSE(tx.has_value());
  EXPECT_TRUE(node.decided());
  EXPECT_EQ(node.state(), MwStateKind::kLeader);
  EXPECT_EQ(node.final_color(), 0);
}

TEST(MwNodeMachine, ResetToChiAvoidsCompetitorWindow) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(3);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 5; ++i) (void)step(node, slot, rng);  // now c = 2
  ASSERT_EQ(node.counter(), 2);
  // Competitor counter 2 ⇒ |2-2| ≤ window_0=2 ⇒ reset. Forbidden interval
  // [0, 4] around the mirror pushes χ to 2 - 2 - 1 = -1.
  node.on_receive(slot - 1, compete(7, 0, 2));
  EXPECT_EQ(node.counter(), -1);
  EXPECT_EQ(node.reset_count(), 1u);
}

TEST(MwNodeMachine, NoResetOutsideWindow) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(4);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 5; ++i) (void)step(node, slot, rng);  // c = 2
  node.on_receive(slot - 1, compete(7, 0, 9));  // |2-9| = 7 > 2: mirror only
  EXPECT_EQ(node.counter(), 2);
  EXPECT_EQ(node.reset_count(), 0u);
}

TEST(MwNodeMachine, ChiAvoidsMultipleIntervals) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(5);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 5; ++i) (void)step(node, slot, rng);  // c = 2
  // Overlapping forbidden intervals: mirror 2 ⇒ [0,4] (kicks χ to -1) and
  // mirror -2 ⇒ [-4,0] (kicks -1 further down to -2-2-1 = -5).
  node.on_receive(slot - 1, compete(8, 0, -2));  // far (|2-(-2)|>2): mirror only
  ASSERT_EQ(node.counter(), 2);
  node.on_receive(slot - 1, compete(7, 0, 2));  // within window: reset
  EXPECT_EQ(node.counter(), -5);
}

TEST(MwNodeMachine, MirrorAdvancesImplicitly) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(6);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 5; ++i) (void)step(node, slot, rng);  // c = 2 at slot 4
  node.on_receive(slot - 1, compete(7, 0, 9));              // mirror 9 @ slot 4
  // Four slots later c = 6 and a fresh message re-bases the mirror to 8, so
  // χ must avoid [8-2, 8+2] = [6, 10] — the reset lands on 0, not below the
  // (stale) slot-4 interval.
  for (int i = 0; i < 4; ++i) (void)step(node, slot, rng);
  ASSERT_EQ(node.counter(), 6);
  node.on_receive(slot - 1, compete(7, 0, 8));
  EXPECT_EQ(node.counter(), 0);
}

TEST(MwNodeMachine, ClassZeroBeaconSendsToRequesting) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(7);
  node.on_wake(0);
  radio::Slot slot = 0;
  (void)step(node, slot, rng);
  node.on_receive(0, beacon(9, 0));
  EXPECT_EQ(node.state(), MwStateKind::kRequesting);
  EXPECT_EQ(node.leader(), 9u);
  // Requesting transmits M_R(me, leader) every slot (q = 1).
  const auto tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kRequest);
  EXPECT_EQ(tx->target, 9u);
}

TEST(MwNodeMachine, AssignOverheardCountsAsLeaderSignalInClassZero) {
  // An M_C^0(v, w, tc) addressed to someone else still proves a leader is in
  // range (Fig. 1 line 5 semantics).
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(8);
  node.on_wake(0);
  node.on_receive(0, assign(9, 3, 1));  // addressed to node 3, not us
  EXPECT_EQ(node.state(), MwStateKind::kRequesting);
  EXPECT_EQ(node.leader(), 9u);
}

TEST(MwNodeMachine, RequestingAcceptsOnlyOwnAssignment) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(9);
  node.on_wake(0);
  node.on_receive(0, beacon(9, 0));
  ASSERT_EQ(node.state(), MwStateKind::kRequesting);

  node.on_receive(1, assign(9, 3, 1));   // wrong target
  EXPECT_EQ(node.state(), MwStateKind::kRequesting);
  node.on_receive(1, assign(8, 0, 1));   // wrong leader
  EXPECT_EQ(node.state(), MwStateKind::kRequesting);
  node.on_receive(1, assign(9, 0, 2));   // ours: tc = 2
  EXPECT_EQ(node.state(), MwStateKind::kListening);
  EXPECT_EQ(node.color_class(), 2 * (params.phi_2rt + 1));  // A_{tc(φ+1)}
}

TEST(MwNodeMachine, HigherClassUsesPositiveWindowAndAdvancesOnBeacon) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(10);
  node.on_wake(0);
  node.on_receive(0, beacon(9, 0));
  node.on_receive(1, assign(9, 0, 1));
  const std::int32_t base = params.phi_2rt + 1;  // class 6
  ASSERT_EQ(node.color_class(), base);

  radio::Slot slot = 2;
  for (int i = 0; i < 4; ++i) (void)step(node, slot, rng);  // listen 3 + c=1
  ASSERT_EQ(node.state(), MwStateKind::kCompeting);
  ASSERT_EQ(node.counter(), 1);
  // window_+ = 4 now: a competitor at distance 4 triggers a reset.
  node.on_receive(slot - 1, compete(5, base, 5));
  EXPECT_EQ(node.counter(), 0);  // χ avoids [1, 9] ⇒ 0

  // A class-(base) beacon bumps us to class base+1 (A_{i+1}).
  node.on_receive(slot - 1, beacon(5, base));
  EXPECT_EQ(node.state(), MwStateKind::kListening);
  EXPECT_EQ(node.color_class(), base + 1);

  // Beacons of OTHER classes are ignored.
  node.on_receive(slot, beacon(4, base));  // stale class
  EXPECT_EQ(node.color_class(), base + 1);
}

TEST(MwNodeMachine, ColoredNodeBeaconsItsClassForever) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(11);
  node.on_wake(0);
  node.on_receive(0, beacon(9, 0));
  node.on_receive(1, assign(9, 0, 1));
  radio::Slot slot = 2;
  // listen 3 slots, then climb 0→10: 10 more slots to threshold.
  for (int i = 0; i < 13 && !node.decided(); ++i) (void)step(node, slot, rng);
  ASSERT_TRUE(node.decided());
  ASSERT_EQ(node.state(), MwStateKind::kColored);
  EXPECT_EQ(node.final_color(), params.phi_2rt + 1);

  const auto tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kColorBeacon);
  EXPECT_EQ(tx->color_class, params.phi_2rt + 1);
  // And it ignores everything.
  node.on_receive(slot, beacon(5, params.phi_2rt + 1));
  EXPECT_TRUE(node.decided());
}

TEST(MwNodeMachine, LeaderServesQueueFifoWithIncrementingTc) {
  auto params = tiny_params();
  params.listen_slots = 0;
  params.counter_threshold = 1;
  MwNode node(0, params);
  common::Rng rng(12);
  node.on_wake(0);
  radio::Slot slot = 0;
  (void)step(node, slot, rng);  // χ=0, c=1 ≥ 1 ⇒ leader
  ASSERT_EQ(node.state(), MwStateKind::kLeader);

  // Idle leader beacons M_C^0.
  auto tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kColorBeacon);

  // Two requests queue FIFO; duplicates while queued are ignored.
  node.on_receive(slot - 1, request(5, 0));
  node.on_receive(slot - 1, request(3, 0));
  node.on_receive(slot - 1, request(5, 0));  // duplicate

  // Service: 2 slots addressed to 5 with tc=1, then 2 slots to 3 with tc=2.
  for (int k = 0; k < 2; ++k) {
    tx = step(node, slot, rng);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->kind, radio::MessageKind::kColorAssign);
    EXPECT_EQ(tx->target, 5u);
    EXPECT_EQ(tx->tc, 1);
  }
  for (int k = 0; k < 2; ++k) {
    tx = step(node, slot, rng);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->target, 3u);
    EXPECT_EQ(tx->tc, 2);
  }
  EXPECT_EQ(node.assigned_cluster_colors(), 2);

  // Back to idle beaconing; a re-request from an already-served node is
  // re-admitted with a FRESH tc (the recovery path for lost assignments).
  tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kColorBeacon);
  node.on_receive(slot - 1, request(5, 0));
  tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kColorAssign);
  EXPECT_EQ(tx->target, 5u);
  EXPECT_EQ(tx->tc, 3);
}

TEST(MwNodeMachine, LeaderIgnoresRequestsForOtherLeaders) {
  auto params = tiny_params();
  params.listen_slots = 0;
  params.counter_threshold = 1;
  MwNode node(0, params);
  common::Rng rng(13);
  node.on_wake(0);
  radio::Slot slot = 0;
  (void)step(node, slot, rng);
  ASSERT_EQ(node.state(), MwStateKind::kLeader);
  node.on_receive(slot - 1, request(5, 4));  // addressed to leader 4
  const auto tx = step(node, slot, rng);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->kind, radio::MessageKind::kColorBeacon);  // queue stayed empty
}

TEST(MwNodeMachine, CompeteMessagesOfOtherClassesAreIgnored) {
  const auto params = tiny_params();
  MwNode node(0, params);
  common::Rng rng(14);
  node.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 5; ++i) (void)step(node, slot, rng);  // class 0, c = 2
  node.on_receive(slot - 1, compete(7, 3, 2));  // class 3 ≠ 0
  EXPECT_EQ(node.counter(), 2);
  EXPECT_EQ(node.reset_count(), 0u);
}

TEST(MwTransitionTable, EncodesTheFig13Automaton) {
  using K = MwStateKind;
  // A sleeping node can only enter A_0's listening phase.
  for (std::size_t to = 0; to < kMwStateCount; ++to) {
    EXPECT_EQ(mw_transition_allowed(K::kAsleep, static_cast<K>(to)),
              static_cast<K>(to) == K::kListening);
  }
  // kLeader / kColored are terminal: no outgoing edges, ever.
  for (std::size_t to = 0; to < kMwStateCount; ++to) {
    EXPECT_FALSE(mw_transition_allowed(K::kLeader, static_cast<K>(to)));
    EXPECT_FALSE(mw_transition_allowed(K::kColored, static_cast<K>(to)));
  }
  // Nothing transitions back to kAsleep (wake-up is irreversible).
  for (std::size_t from = 0; from < kMwStateCount; ++from) {
    EXPECT_FALSE(mw_transition_allowed(static_cast<K>(from), K::kAsleep));
  }
  // Competition outcomes (Fig. 1 lines 8-15).
  EXPECT_TRUE(mw_transition_allowed(K::kCompeting, K::kLeader));
  EXPECT_TRUE(mw_transition_allowed(K::kCompeting, K::kColored));
  // A requester can only re-enter a listening phase (grant or failover) —
  // never decide a color directly.
  EXPECT_TRUE(mw_transition_allowed(K::kRequesting, K::kListening));
  EXPECT_FALSE(mw_transition_allowed(K::kRequesting, K::kColored));
  EXPECT_FALSE(mw_transition_allowed(K::kRequesting, K::kLeader));
}

TEST(MwTransitionTable, IllegalMutationsAbort) {
  const auto params = tiny_params();
  // Waking a node twice violates kAsleep -> kListening (already listening
  // ... -> kListening is legal, but on_wake's own precondition catches it).
  MwNode woken(0, params);
  woken.on_wake(0);
  EXPECT_DEATH(woken.on_wake(1), "kAsleep");

  // restart_election on a decided node would be a kLeader -> kListening
  // edge; the tightened precondition refuses before the table would abort.
  MwNode leader(0, params);
  common::Rng rng(2);
  leader.on_wake(0);
  radio::Slot slot = 0;
  for (int i = 0; i < 13; ++i) (void)step(leader, slot, rng);
  ASSERT_EQ(leader.state(), MwStateKind::kLeader);
  EXPECT_DEATH(leader.restart_election(), "undecided");
}

}  // namespace
}  // namespace sinrcolor::core
