// Empirical checks of the paper's structural lemmas on live runs:
//  * Lemma 4 — for any node v and class i > 0, the number of nodes in B_v
//    that ever enter A_i is at most φ(2R_T) (distinct leaders within 2R_T);
//  * its corollary — after receiving cluster color tc, a node only occupies
//    classes tc·(φ+1) … tc·(φ+1)+span with span bounded by the packing
//    number (each advance is caused by a distinct same-tc neighbor);
//  * the driver honours a non-default physical layer (α, β via
//    MwRunConfig::phys_template).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/packing.h"

namespace sinrcolor::core {
namespace {

struct ClassOccupancy {
  // per node: set of competition classes (i > 0) it was ever observed in.
  std::vector<std::set<std::int32_t>> classes;
};

ClassOccupancy observe_classes(MwInstance& instance) {
  ClassOccupancy occ;
  occ.classes.resize(instance.graph().size());
  const auto& nodes = instance.nodes();
  instance.simulator().add_observer(
      [&occ, &nodes](radio::Slot, std::span<const radio::TxRecord>) {
        for (std::size_t v = 0; v < nodes.size(); ++v) {
          const auto state = nodes[v]->state();
          if ((state == MwStateKind::kListening ||
               state == MwStateKind::kCompeting) &&
              nodes[v]->color_class() > 0) {
            occ.classes[v].insert(nodes[v]->color_class());
          }
        }
      });
  return occ;
}

TEST(Lemma4, CompetitorsPerClassBoundedByPacking) {
  common::Rng rng(4242);
  graph::UnitDiskGraph g(geometry::uniform_deployment(130, 4.0, rng), 1.0);
  MwRunConfig cfg;
  cfg.seed = 11;
  MwInstance instance(g, cfg);
  auto occ = observe_classes(instance);
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  ASSERT_TRUE(result.coloring_valid);

  const std::size_t phi = graph::empirical_phi_2rt(g);
  // For every node v and class i > 0: |{u in closed B_v : u ever in A_i}|
  // ≤ φ(2R_T). (The lemma's proof counts one distinct leader per such node.)
  std::size_t worst = 0;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    std::map<std::int32_t, std::size_t> per_class;
    for (std::int32_t c : occ.classes[v]) ++per_class[c];
    for (graph::NodeId u : g.neighbors(v)) {
      for (std::int32_t c : occ.classes[u]) ++per_class[c];
    }
    for (const auto& [c, count] : per_class) {
      worst = std::max(worst, count);
      EXPECT_LE(count, phi) << "node " << v << " class " << c;
    }
  }
  // Sanity: the bound is actually exercised (some class had ≥ 2 competitors).
  EXPECT_GE(worst, 2u);
}

TEST(Lemma4, ClassSpanPerClusterColorIsBounded) {
  common::Rng rng(4343);
  graph::UnitDiskGraph g(geometry::uniform_deployment(130, 4.0, rng), 1.0);
  MwRunConfig cfg;
  cfg.seed = 12;
  MwInstance instance(g, cfg);
  auto occ = observe_classes(instance);
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);

  const std::int32_t spacing = result.params.phi_2rt + 1;
  const auto phi = static_cast<std::int32_t>(graph::empirical_phi_2rt(g));
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (occ.classes[v].empty()) continue;  // leaders never compete above 0
    const std::int32_t lo = *occ.classes[v].begin();
    const std::int32_t hi = *occ.classes[v].rbegin();
    // Classes are visited consecutively from the assigned base upward.
    EXPECT_EQ(static_cast<std::size_t>(hi - lo) + 1, occ.classes[v].size());
    // Base is a multiple of the spacing, and the span is bounded by the
    // number of distinct same-tc competitors (≤ φ(2R_T) by Lemma 4).
    EXPECT_EQ(lo % spacing, 0) << "node " << v;
    EXPECT_LE(hi - lo, phi) << "node " << v;
  }
}

TEST(PhysTemplate, ProtocolRunsAtAlpha3AndAlpha6) {
  common::Rng rng(4545);
  graph::UnitDiskGraph g(geometry::uniform_deployment(80, 3.5, rng), 1.0);
  for (double alpha : {3.0, 6.0}) {
    MwRunConfig cfg;
    cfg.seed = 13;
    cfg.phys_template.alpha = alpha;
    cfg.phys_template.beta = 2.0;
    const auto result = run_mw_coloring(g, cfg);
    EXPECT_TRUE(result.metrics.all_decided) << "alpha=" << alpha;
    EXPECT_TRUE(result.coloring_valid) << "alpha=" << alpha;
    EXPECT_EQ(result.independence_violations, 0u) << "alpha=" << alpha;
  }
}

TEST(PhysTemplate, RejectsInvalidTemplate) {
  common::Rng rng(4646);
  graph::UnitDiskGraph g(geometry::uniform_deployment(10, 2.0, rng), 1.0);
  MwRunConfig cfg;
  cfg.phys_template.alpha = 2.0;  // inadmissible
  EXPECT_DEATH((void)run_mw_coloring(g, cfg), "alpha");
}

}  // namespace
}  // namespace sinrcolor::core
