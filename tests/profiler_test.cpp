// Profiler suite: phase naming, the quantile machinery, the PhaseScope
// null-guard and nesting contract, thread-safe recording, and the headline
// determinism guarantee — a profiled run's RESULT is byte-identical to the
// unprofiled run on every medium (wall time never leaks into artifacts).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "obs/metrics.h"
#include "obs/observation.h"
#include "obs/profiler.h"
#include "robust/recovery_protocol.h"

namespace sinrcolor {
namespace {

TEST(PhaseNames, StableUniqueAndBoundsChecked) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const std::string name = obs::to_string(static_cast<obs::Phase>(i));
    EXPECT_NE(name, "?") << i;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), obs::kPhaseCount);  // no duplicate wire names
  EXPECT_STREQ(obs::to_string(static_cast<obs::Phase>(obs::kPhaseCount)), "?");
  EXPECT_STREQ(obs::to_string(obs::Phase::kSlot), "slot");
  EXPECT_STREQ(obs::to_string(obs::Phase::kFieldAccum), "field_accum");
}

TEST(HistogramQuantile, UpperBoundSemantics) {
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0.0);  // empty histogram
  h.record(0.5);
  h.record(1.5);
  h.record(3.0);
  h.record(10.0);
  // rank(0.5) = ceil(0.5*4) = 2 -> second sample -> bucket (1,2] edge.
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.5), 2.0);
  // rank(0.95) = 4 -> overflow bucket -> exact max, not an edge.
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.95), 10.0);
  // rank(0.0) clamps to the first sample's bucket.
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.0), 1.0);
}

TEST(Profiler, RecordAggregatesAndQuantilesArePowerOfTwoEdges) {
  obs::Profiler profiler;
  EXPECT_EQ(profiler.recorded(), 0u);
  profiler.record(obs::Phase::kSlot, 3, 3);
  profiler.record(obs::Phase::kSlot, 1000, 900);
  const auto snap = profiler.stats(obs::Phase::kSlot);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.total_us, 1003u);
  EXPECT_EQ(snap.self_us, 903u);
  EXPECT_EQ(snap.max_us, 1000u);
  // Log-spaced power-of-two microsecond buckets: 3 -> edge 4, 1000 -> 1024.
  EXPECT_DOUBLE_EQ(snap.p50_us, 4.0);
  EXPECT_DOUBLE_EQ(snap.p95_us, 1024.0);
  EXPECT_EQ(profiler.recorded(), 2u);
  // Untouched phases stay zero.
  EXPECT_EQ(profiler.stats(obs::Phase::kResolve).count, 0u);
}

TEST(Profiler, WriteJsonOmitsSilentPhases) {
  obs::Profiler profiler;
  profiler.record(obs::Phase::kResolve, 10, 10);
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"resolve\""), std::string::npos);
  EXPECT_EQ(json.find("\"slot\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\""), std::string::npos);
}

TEST(PhaseScope, NullProfilerIsANoOp) {
  // Must not touch the thread-local stack or any clock.
  EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
  {
    SINRCOLOR_PROFILE(static_cast<obs::Profiler*>(nullptr),
                      obs::Phase::kSlot);
    EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
  }
  EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
}

TEST(PhaseScope, NestedScopesSplitSelfFromTotal) {
  obs::Profiler profiler;
  {
    SINRCOLOR_PROFILE(&profiler, obs::Phase::kSlot);
    {
      SINRCOLOR_PROFILE(&profiler, obs::Phase::kResolve);
      // Burn a little measurable time inside the child.
      volatile std::uint64_t sink = 0;
      for (int i = 0; i < 50000; ++i) {
        sink = sink + static_cast<std::uint64_t>(i);
      }
    }
  }
  EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
  const auto outer = profiler.stats(obs::Phase::kSlot);
  const auto inner = profiler.stats(obs::Phase::kResolve);
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  EXPECT_LE(outer.self_us, outer.total_us);
  EXPECT_LE(inner.self_us, inner.total_us);
  // The child is entirely enclosed, so the parent's total covers it and the
  // parent's self time has it subtracted.
  EXPECT_GE(outer.total_us, inner.total_us);
  EXPECT_LE(outer.self_us, outer.total_us - inner.total_us + 1);
}

TEST(PhaseScope, DepthOverflowStillRecordsTotals) {
  obs::Profiler profiler;
  // Recurse past ProfileStack::kMaxDepth: deeper scopes skip the self-time
  // split but every scope must still be counted, and the stack must unwind
  // cleanly back to zero.
  constexpr std::size_t kDepth = obs::detail::ProfileStack::kMaxDepth + 4;
  const auto recurse = [&](const auto& self, std::size_t remaining) -> void {
    if (remaining == 0) return;
    SINRCOLOR_PROFILE(&profiler, obs::Phase::kProtocolStep);
    self(self, remaining - 1);
  };
  recurse(recurse, kDepth);
  EXPECT_EQ(profiler.recorded(), kDepth);
  EXPECT_EQ(profiler.stats(obs::Phase::kProtocolStep).count, kDepth);
  EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
}

TEST(Profiler, ConcurrentRecordIsLossless) {
  obs::Profiler profiler;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&profiler] {
      for (int i = 0; i < kPerThread; ++i) {
        SINRCOLOR_PROFILE(&profiler, obs::Phase::kFieldAccum);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = profiler.stats(obs::Phase::kFieldAccum);
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(obs::detail::profile_stack().depth, 0u);
}

// --- the determinism guarantee ----------------------------------------------

core::MwRunResult run_once(const graph::UnitDiskGraph& g,
                           const core::MwRunConfig& cfg, bool profiled,
                           bool expect_field_accum = false) {
  core::MwInstance instance(g, cfg);
  obs::RunObservation observation;
  if (profiled) {
    observation.enable_profiler();
    instance.attach_observation(&observation);
  }
  auto result = instance.run();
  if (profiled) {
    // Non-vacuity: the profiler actually saw the run it was attached to.
    EXPECT_GT(observation.profiler->recorded(), 0u);
    EXPECT_GT(observation.profiler->stats(obs::Phase::kSlot).count, 0u);
    EXPECT_GT(observation.profiler->stats(obs::Phase::kRun).count, 0u);
    if (expect_field_accum) {
      // The SINR media route through FieldEngine — the per-shard scope must
      // still fire when a profiler is attached.
      EXPECT_GT(observation.profiler->stats(obs::Phase::kFieldAccum).count,
                0u);
    }
  }
  return result;
}

TEST(ProfiledDeterminism, ResultsAreByteIdenticalOnAllMedia) {
  common::Rng rng(2024);
  const graph::UnitDiskGraph g(geometry::uniform_deployment(40, 2.8, rng),
                               1.0);
  struct MediumCase {
    const char* name;
    bool graph_model;
    bool fading;
  };
  const MediumCase media[] = {
      {"sinr", false, false},
      {"sinr+fading", false, true},
      {"graph", true, false},
  };
  for (const auto& medium : media) {
    core::MwRunConfig cfg;
    cfg.seed = 77;
    cfg.graph_model = medium.graph_model;
    if (medium.fading) cfg.fading.kind = sinr::FadingKind::kLogNormal;
    const auto plain = run_once(g, cfg, /*profiled=*/false);
    const auto profiled = run_once(g, cfg, /*profiled=*/true,
                                   /*expect_field_accum=*/!medium.graph_model);
    EXPECT_EQ(core::to_json(plain), core::to_json(profiled)) << medium.name;
  }
}

TEST(ProfiledDeterminism, RecoveryRunIsByteIdenticalToo) {
  common::Rng rng(5);
  const graph::UnitDiskGraph g(geometry::uniform_deployment(25, 2.2, rng),
                               1.0);
  core::MwRunConfig cfg;
  cfg.seed = 11;
  cfg.recovery.enabled = true;

  const auto run = [&](bool profiled) {
    robust::RecoveryInstance instance(g, cfg);
    obs::RunObservation observation;
    if (profiled) {
      observation.enable_profiler();
      instance.attach_observation(&observation);
    }
    auto result = instance.run();
    if (profiled) {
      EXPECT_GT(observation.profiler->stats(obs::Phase::kRecovery).count, 0u);
    }
    return result;
  };
  EXPECT_EQ(core::to_json(run(false)), core::to_json(run(true)));
}

}  // namespace
}  // namespace sinrcolor
