// Property sweep for Theorem 3 across the physical-parameter space:
// d = (32·(α−1)/(α−2)·β)^{1/α} depends on α and β, and nothing about the
// claim is specific to R_T = 1. For every (α, β, R_T) combination the
// distance-(d+1) greedy coloring must schedule an interference-free TDMA
// frame, and the whole pipeline must be scale-invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/greedy_coloring.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "core/mw_protocol.h"
#include "mac/tdma.h"

namespace sinrcolor::mac {
namespace {

sinr::SinrParams phys_for(double alpha, double beta, double r_t) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  p.noise = p.power / (2.0 * beta * std::pow(r_t, alpha));
  return p;
}

class Theorem3GridTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Theorem3GridTest, DistanceDPlusOneIsInterferenceFree) {
  const auto [alpha, beta, r_t] = GetParam();
  const auto phys = phys_for(alpha, beta, r_t);
  ASSERT_NEAR(phys.r_t(), r_t, 1e-9 * r_t);
  const double d = phys.mac_distance_d();
  EXPECT_GT(d, 1.0);

  common::Rng rng(777);
  // Scale the world with R_T so the topology is identical up to scale.
  graph::UnitDiskGraph g(
      geometry::uniform_deployment(160, 4.0 * r_t, rng), r_t);
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  ASSERT_TRUE(graph::is_valid_coloring(g, coloring, d + 1.0));
  const auto schedule = TdmaSchedule::from_coloring(coloring);
  const auto audit = audit_tdma_sinr(g, phys, schedule);
  EXPECT_TRUE(audit.interference_free())
      << "alpha=" << alpha << " beta=" << beta << " r_t=" << r_t << " — "
      << audit.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem3GridTest,
    ::testing::Combine(::testing::Values(3.0, 4.0, 6.0),   // α
                       ::testing::Values(1.0, 1.5, 3.0),   // β
                       ::testing::Values(1.0, 2.5)));      // R_T

TEST(Theorem3Scale, DGrowsWithBetaAndShrinksWithAlpha) {
  const double d_base = phys_for(4.0, 1.5, 1.0).mac_distance_d();
  EXPECT_GT(phys_for(4.0, 3.0, 1.0).mac_distance_d(), d_base);  // more SINR margin
  EXPECT_LT(phys_for(6.0, 1.5, 1.0).mac_distance_d(), d_base);  // faster decay
}

TEST(Theorem3Scale, PipelineIsScaleInvariant) {
  // The same deployment scaled by 10 with R_T scaled by 10 must produce the
  // identical coloring, schedule and audit outcome.
  common::Rng rng1(888), rng2(888);
  const auto small = geometry::uniform_deployment(120, 4.0, rng1);
  auto large = geometry::uniform_deployment(120, 4.0, rng2);
  for (auto& p : large.points) p = p * 10.0;
  large.side *= 10.0;

  graph::UnitDiskGraph g1(small, 1.0);
  graph::UnitDiskGraph g2(std::move(large), 10.0);
  ASSERT_EQ(g1.edge_count(), g2.edge_count());

  const auto phys1 = phys_for(4.0, 1.5, 1.0);
  const auto phys2 = phys_for(4.0, 1.5, 10.0);
  const double d = phys1.mac_distance_d();
  ASSERT_DOUBLE_EQ(d, phys2.mac_distance_d());  // d is scale-free

  const auto c1 = baseline::greedy_distance_d_coloring(g1, d + 1.0);
  const auto c2 = baseline::greedy_distance_d_coloring(g2, d + 1.0);
  EXPECT_EQ(c1.color, c2.color);

  const auto a1 = audit_tdma_sinr(g1, phys1, TdmaSchedule::from_coloring(c1));
  const auto a2 = audit_tdma_sinr(g2, phys2, TdmaSchedule::from_coloring(c2));
  EXPECT_EQ(a1.pairs_delivered, a2.pairs_delivered);
  EXPECT_EQ(a1.pairs_total, a2.pairs_total);
  EXPECT_TRUE(a1.interference_free());
  EXPECT_TRUE(a2.interference_free());
}

TEST(Theorem3Scale, ProtocolRunsAtNonUnitRadius) {
  // End-to-end coloring with R_T = 2.5 (catches hidden unit assumptions).
  common::Rng rng(999);
  graph::UnitDiskGraph g(geometry::uniform_deployment(80, 9.0, rng), 2.5);
  core::MwRunConfig cfg;
  cfg.seed = 21;
  const auto result = core::run_mw_coloring(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided) << result.summary();
  EXPECT_TRUE(result.coloring_valid) << result.summary();
  EXPECT_EQ(result.independence_violations, 0u);
}

}  // namespace
}  // namespace sinrcolor::mac
