// graph::TopologyCache contract: one build per distinct key, the same
// shared graph handed to every requester, and — the part the sweeps rely
// on — a cached topology drives the protocol to byte-identical output as a
// freshly built one, under each reception medium.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"
#include "graph/topology_cache.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor {
namespace {

graph::UnitDiskGraph build_graph(std::size_t n, double side,
                                 std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

graph::TopologyKey key_for(std::size_t n, double side, std::uint64_t seed) {
  graph::TopologyKey key;
  key.kind = "test-uniform";
  key.n = n;
  key.side = side;
  key.radius = 1.0;
  key.seed = seed;
  return key;
}

TEST(TopologyCacheTest, SameKeyReturnsSamePointer) {
  graph::TopologyCache cache;
  const auto key = key_for(40, 5.0, 7);
  const auto a = cache.get_or_build(key, [&] { return build_graph(40, 5.0, 7); });
  const auto b = cache.get_or_build(key, [&] { return build_graph(40, 5.0, 7); });
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TopologyCacheTest, DistinctKeysBuildDistinctGraphs) {
  graph::TopologyCache cache;
  const auto a = cache.get_or_build(key_for(40, 5.0, 7),
                                    [&] { return build_graph(40, 5.0, 7); });
  const auto b = cache.get_or_build(key_for(40, 5.0, 8),
                                    [&] { return build_graph(40, 5.0, 8); });
  const auto c = cache.get_or_build(key_for(48, 5.0, 7),
                                    [&] { return build_graph(48, 5.0, 7); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TopologyCacheTest, BuilderRunsOncePerKeyUnderConcurrency) {
  graph::TopologyCache cache;
  const auto key = key_for(64, 6.0, 3);
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const graph::UnitDiskGraph>> got(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_build(key, [&] {
        builds.fetch_add(1);
        return build_graph(64, 6.0, 3);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& g : got) {
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g.get(), got[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses(), got.size());
}

TEST(TopologyCacheTest, ClearResetsEverything) {
  graph::TopologyCache cache;
  cache.get_or_build(key_for(40, 5.0, 7),
                     [&] { return build_graph(40, 5.0, 7); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// The load-bearing property: a full protocol run on a cache-served topology
// must serialize byte-for-byte like a run on a fresh private build, for each
// of the three reception media the sweeps exercise.
TEST(TopologyCacheTest, CachedRunsMatchFreshRunsAcrossMedia) {
  const std::size_t n = 80;
  const double side = std::sqrt(static_cast<double>(n) * M_PI / 10.0);
  const std::uint64_t graph_seed = 21;

  struct Medium {
    const char* name;
    core::MwRunConfig cfg;
  };
  std::vector<Medium> media(3);
  media[0].name = "sinr-field";
  media[1].name = "sinr-fading";
  media[1].cfg.fading.kind = sinr::FadingKind::kLogNormal;
  media[2].name = "graph-medium";
  media[2].cfg.graph_model = true;
  for (auto& m : media) m.cfg.seed = 5;

  graph::TopologyCache cache;
  const auto key = key_for(n, side, graph_seed);
  for (const auto& m : media) {
    const auto fresh = build_graph(n, side, graph_seed);
    const auto cached = cache.get_or_build(
        key, [&] { return build_graph(n, side, graph_seed); });
    const auto fresh_json = core::to_json(core::run_mw_coloring(fresh, m.cfg));
    const auto cached_json =
        core::to_json(core::run_mw_coloring(*cached, m.cfg));
    EXPECT_EQ(fresh_json, cached_json) << "medium " << m.name;
  }
  // All three media shared one cached build.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TopologyCacheTest, GlobalCacheIsAProcessSingleton) {
  auto& a = graph::global_topology_cache();
  auto& b = graph::global_topology_cache();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace sinrcolor
