// Determinism regression: the simulator's evidence for Theorems 1–3 is only
// trustworthy if a run is a pure function of (scenario, seed). Each test runs
// the same seeded scenario twice through a fresh driver and requires the
// serialized JSON reports to be BYTE-identical — any hash-order iteration,
// uninitialised read or hidden global sneaking into results shows up here as
// a diff (sinrlint R1/R3 guard the same property statically).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "core/adaptive.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "obs/observation.h"
#include "robust/recovery_protocol.h"

namespace sinrcolor {
namespace {

graph::UnitDiskGraph scenario_graph(std::uint64_t seed) {
  common::Rng rng(seed);
  return graph::UnitDiskGraph(geometry::uniform_deployment(60, 3.5, rng), 1.0);
}

TEST(Determinism, PlainMwRunReportIsByteStable) {
  const auto g = scenario_graph(77);
  core::MwRunConfig cfg;
  cfg.seed = 42;
  const std::string first = core::to_json(core::run_mw_coloring(g, cfg));
  const std::string second = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, StaggeredWakeupWithFailuresIsByteStable) {
  const auto g = scenario_graph(78);
  core::MwRunConfig cfg;
  cfg.seed = 9001;
  cfg.wakeup = core::WakeupKind::kUniform;
  cfg.wakeup_window = 64;
  cfg.failure_fraction = 0.05;
  cfg.failure_window = 200;
  const std::string first = core::to_json(core::run_mw_coloring(g, cfg));
  const std::string second = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(first, second);
}

TEST(Determinism, RecoveryRunReportIsByteStable) {
  const auto g = scenario_graph(79);
  core::MwRunConfig cfg;
  cfg.seed = 1234;
  cfg.recovery.enabled = true;
  cfg.recovery.join_fraction = 0.10;
  cfg.recovery.join_at = 50;
  cfg.recovery.join_window = 100;
  cfg.failure_fraction = 0.05;
  cfg.failure_window = 100;
  const std::string first = core::to_json(robust::run_recovering_mw(g, cfg));
  const std::string second = core::to_json(robust::run_recovering_mw(g, cfg));
  EXPECT_EQ(first, second);
}

TEST(Determinism, AdaptiveRunIsSeedStable) {
  // The adaptive variant has no JSON report; compare the full coloring and
  // the restart/Δ̂ statistics field by field (heard_ feeds restart decisions,
  // which is exactly the hazard the std::set migration closed).
  const auto g = scenario_graph(80);
  core::AdaptiveRunConfig cfg;
  cfg.seed = 4242;
  const auto first = core::run_adaptive_coloring(g, cfg);
  const auto second = core::run_adaptive_coloring(g, cfg);
  EXPECT_EQ(first.coloring.color, second.coloring.color);
  EXPECT_EQ(first.total_restarts, second.total_restarts);
  EXPECT_EQ(first.max_final_delta, second.max_final_delta);
  EXPECT_EQ(first.mean_final_delta, second.mean_final_delta);
  EXPECT_EQ(first.metrics.slots_executed, second.metrics.slots_executed);
  EXPECT_EQ(first.metrics.total_transmissions, second.metrics.total_transmissions);
}

TEST(Determinism, TracingDoesNotPerturbThePlainRun) {
  // The observability layer must be a pure read: attaching a trace + metrics
  // sink to a run may not change a single byte of its report. (Emission sites
  // never touch the RNG stream; this is the dynamic check of that claim.)
  const auto g = scenario_graph(82);
  core::MwRunConfig cfg;
  cfg.seed = 77;
  const std::string untraced = core::to_json(core::run_mw_coloring(g, cfg));

  obs::RunObservation observation(std::size_t{1} << 22);
  core::MwInstance instance(g, cfg);
  instance.attach_observation(&observation);
  const std::string traced = core::to_json(instance.run());
  EXPECT_EQ(untraced, traced);
  EXPECT_GT(observation.trace.recorded(), 0u);  // the sink did observe
}

TEST(Determinism, TracingDoesNotPerturbTheRecoveryRun) {
  const auto g = scenario_graph(83);
  core::MwRunConfig cfg;
  cfg.seed = 4321;
  cfg.recovery.enabled = true;
  cfg.failure_fraction = 0.05;
  cfg.failure_window = 150;
  cfg.recovery.join_fraction = 0.10;
  cfg.recovery.join_at = 80;
  cfg.recovery.join_window = 120;
  const std::string untraced = core::to_json(robust::run_recovering_mw(g, cfg));

  obs::RunObservation observation(std::size_t{1} << 22);
  robust::RecoveryInstance instance(g, cfg);
  instance.attach_observation(&observation);
  const std::string traced = core::to_json(instance.run());
  EXPECT_EQ(untraced, traced);
  EXPECT_GT(observation.trace.recorded(), 0u);
}

TEST(Determinism, ObservedReportIsByteStable) {
  // Same seed, sink attached both times: the full report INCLUDING the
  // observability section (trace totals + metrics registry) must match
  // byte for byte — the registry iterates in std::map order by design.
  const auto g = scenario_graph(84);
  core::MwRunConfig cfg;
  cfg.seed = 100;
  const auto observed_run = [&]() {
    obs::RunObservation observation(std::size_t{1} << 20);
    core::MwInstance instance(g, cfg);
    instance.attach_observation(&observation);
    const auto result = instance.run();
    return core::to_json(result, observation, true);
  };
  EXPECT_EQ(observed_run(), observed_run());
}

TEST(Determinism, ThreadCountDoesNotChangeTheReport) {
  // The field resolver shards covered listeners over a TaskPool; shards are
  // fixed contiguous ranges merged in shard order, so the worker count must
  // never reach the results — 1-thread and 4-thread reports byte-identical.
  const auto g = scenario_graph(85);
  core::MwRunConfig cfg;
  cfg.seed = 313;
  cfg.resolve = sinr::ResolveKind::kField;
  cfg.threads = 1;
  const std::string serial = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.threads = 4;
  const std::string threaded = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(serial, threaded);
  EXPECT_FALSE(serial.empty());
}

TEST(Determinism, ThreadCountDoesNotChangeTheObservedReport) {
  // Stronger: include the observability section. The SINR margin histogram
  // is record-order-sensitive (its sum is a running float accumulation), so
  // this locks down the post-merge listener-ascending recording order too.
  const auto g = scenario_graph(86);
  core::MwRunConfig cfg;
  cfg.seed = 626;
  cfg.resolve = sinr::ResolveKind::kField;
  const auto observed_run = [&](std::size_t threads) {
    cfg.threads = threads;
    obs::RunObservation observation(std::size_t{1} << 20);
    core::MwInstance instance(g, cfg);
    instance.attach_observation(&observation);
    const auto result = instance.run();
    return core::to_json(result, observation, true);
  };
  EXPECT_EQ(observed_run(1), observed_run(4));
}

TEST(Determinism, DifferentSeedsProduceDifferentTraffic) {
  // Sanity counterpart: the byte-stability above is not vacuous (the report
  // does depend on the seed).
  const auto g = scenario_graph(81);
  core::MwRunConfig cfg;
  cfg.seed = 1;
  const std::string first = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.seed = 2;
  const std::string second = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace sinrcolor
