#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/mw_node.h"
#include "core/mw_protocol.h"
#include "core/verify.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "graph/independent_set.h"

namespace sinrcolor::core {
namespace {

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

MwRunConfig quick_config(std::uint64_t seed) {
  MwRunConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(MwProtocol, SingleIsolatedNodeBecomesLeader) {
  graph::UnitDiskGraph g(geometry::line_deployment(1, 1.0), 1.0);
  const auto result = run_mw_coloring(g, quick_config(1));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_EQ(result.leaders.size(), 1u);
  EXPECT_EQ(result.coloring.color[0], 0);
  EXPECT_TRUE(result.coloring_valid);
}

TEST(MwProtocol, DisconnectedNodesAllBecomeLeaders) {
  graph::UnitDiskGraph g(geometry::line_deployment(5, 3.0), 1.0);
  const auto result = run_mw_coloring(g, quick_config(2));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_EQ(result.leaders.size(), 5u);
  EXPECT_TRUE(result.coloring_valid);
}

TEST(MwProtocol, AdjacentPairSplitsLeaderAndColored) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  const auto result = run_mw_coloring(g, quick_config(3));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_EQ(result.leaders.size(), 1u);
  EXPECT_TRUE(result.coloring_valid);
  EXPECT_EQ(result.independence_violations, 0u);
  EXPECT_NE(result.coloring.color[0], result.coloring.color[1]);
}

TEST(MwProtocol, CliqueGetsAllDistinctColors) {
  // 6 nodes within one disc: pairwise adjacent ⇒ 6 distinct colors.
  geometry::Deployment dep;
  dep.side = 2.0;
  for (int i = 0; i < 6; ++i) {
    dep.points.push_back({0.5 + 0.05 * i, 0.5});
  }
  graph::UnitDiskGraph g(dep, 1.0);
  const auto result = run_mw_coloring(g, quick_config(4));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid);
  EXPECT_EQ(result.palette, 6u);
  EXPECT_EQ(result.leaders.size(), 1u);
}

TEST(MwProtocol, DeterministicGivenSeed) {
  const auto g = uniform_graph(60, 2.5, 77);
  const auto a = run_mw_coloring(g, quick_config(5));
  const auto b = run_mw_coloring(g, quick_config(5));
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.metrics.slots_executed, b.metrics.slots_executed);
  EXPECT_EQ(a.metrics.total_transmissions, b.metrics.total_transmissions);
  const auto c = run_mw_coloring(g, quick_config(6));
  EXPECT_NE(a.metrics.total_transmissions, c.metrics.total_transmissions);
}

// Theorem 2 end-to-end over (n, side, seed, wakeup) sweeps: complete valid
// (1, ·)-coloring, zero Theorem-1 violations, palette within the bound.
class MwProtocolSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, double, std::uint64_t, WakeupKind>> {};

TEST_P(MwProtocolSweep, ProducesValidColoring) {
  const auto [n, side, seed, wakeup] = GetParam();
  const auto g = uniform_graph(n, side, seed);
  MwRunConfig cfg = quick_config(seed * 31 + 7);
  cfg.wakeup = wakeup;
  cfg.wakeup_window = wakeup == WakeupKind::kStaggered
                          ? 40
                          : static_cast<radio::Slot>(n) * 10;

  MwInstance instance(g, cfg);
  const auto result = instance.run();

  EXPECT_TRUE(result.metrics.all_decided) << result.summary();
  EXPECT_TRUE(result.coloring_valid) << result.summary();
  EXPECT_EQ(result.independence_violations, 0u) << result.summary();
  EXPECT_EQ(clustering_violations(g, instance.nodes()), 0u);
  EXPECT_EQ(snapshot_independence_violations(g, instance.nodes()), 0u);

  // Leaders form a maximal independent set (every node joined some cluster).
  EXPECT_TRUE(graph::is_independent_set(g, result.leaders));

  // Theorem 2 palette shape: max color ≤ (φ(2R_T)+1)·(Δ+slack). The practical
  // profile can overshoot the exact bound via re-served requests; a 2x guard
  // still catches palette explosions.
  EXPECT_LE(result.max_color, 2 * result.params.palette_bound())
      << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MwProtocolSweep,
    ::testing::Values(
        std::make_tuple(24, 2.0, 1ULL, WakeupKind::kSimultaneous),
        std::make_tuple(24, 2.0, 2ULL, WakeupKind::kUniform),
        std::make_tuple(60, 3.0, 3ULL, WakeupKind::kSimultaneous),
        std::make_tuple(60, 3.0, 4ULL, WakeupKind::kUniform),
        std::make_tuple(60, 6.0, 5ULL, WakeupKind::kStaggered),
        std::make_tuple(120, 4.0, 6ULL, WakeupKind::kSimultaneous),
        std::make_tuple(120, 4.0, 7ULL, WakeupKind::kUniform),
        std::make_tuple(150, 3.0, 8ULL, WakeupKind::kUniform),
        std::make_tuple(250, 5.0, 9ULL, WakeupKind::kSimultaneous),
        std::make_tuple(250, 5.0, 10ULL, WakeupKind::kUniform),
        std::make_tuple(400, 6.5, 11ULL, WakeupKind::kSimultaneous)));

TEST(MwProtocol, ClusteredDeploymentStillValid) {
  common::Rng rng(91);
  graph::UnitDiskGraph g(
      geometry::clustered_deployment(90, 6.0, 4, 0.8, rng), 1.0);
  const auto result = run_mw_coloring(g, quick_config(12));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid) << result.summary();
  EXPECT_EQ(result.independence_violations, 0u);
}

TEST(MwProtocol, ChainTopologyValid) {
  graph::UnitDiskGraph g(geometry::line_deployment(40, 0.6), 1.0);
  const auto result = run_mw_coloring(g, quick_config(13));
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid) << result.summary();
}

TEST(MwProtocol, GraphModelBaselineAlsoColors) {
  const auto g = uniform_graph(60, 3.0, 21);
  MwRunConfig cfg = quick_config(14);
  cfg.graph_model = true;
  const auto result = run_mw_coloring(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid) << result.summary();
}

TEST(MwProtocol, TimeWithinRecommendedHorizon) {
  const auto g = uniform_graph(80, 3.5, 31);
  MwInstance instance(g, quick_config(15));
  const auto horizon = instance.params().recommended_max_slots();
  const auto result = instance.run();
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_LT(result.metrics.slots_executed, horizon);
}

TEST(MwNode, StateNamesAreStable) {
  EXPECT_STREQ(to_string(MwStateKind::kAsleep), "asleep");
  EXPECT_STREQ(to_string(MwStateKind::kLeader), "leader");
  EXPECT_STREQ(to_string(MwStateKind::kColored), "colored");
}

TEST(MwNode, TxProbabilityByState) {
  MwConfig cfg;
  cfg.n = 16;
  cfg.max_degree = 4;
  cfg.phys.noise = cfg.phys.power /
                   (2.0 * cfg.phys.beta * 1.0);  // R_T = 1
  const auto params = MwParams::practical(cfg);
  MwNode node(0, params);
  EXPECT_EQ(node.tx_probability(), 0.0);  // asleep
  node.on_wake(0);
  EXPECT_EQ(node.tx_probability(), 0.0);  // listening
  EXPECT_EQ(node.state(), MwStateKind::kListening);
  EXPECT_EQ(node.final_color(), graph::kUncolored);
  EXPECT_FALSE(node.decided());
}

TEST(MwNode, LoneNodeWalksThroughPhases) {
  MwConfig cfg;
  cfg.n = 4;
  cfg.max_degree = 1;
  cfg.phys.noise = cfg.phys.power / (2.0 * cfg.phys.beta * 1.0);
  const auto params = MwParams::practical(cfg);
  MwNode node(0, params);
  common::Rng rng(5);
  node.on_wake(0);
  radio::Slot slot = 0;
  // Listening phase: exactly listen_slots silent slots.
  for (radio::Slot i = 0; i < params.listen_slots; ++i) {
    EXPECT_EQ(node.state(), MwStateKind::kListening);
    (void)node.begin_slot(slot++, rng);
    node.end_slot(slot - 1);
  }
  // Competition with no competitors: counter climbs 1, 2, ... to threshold.
  while (!node.decided()) {
    (void)node.begin_slot(slot++, rng);
    node.end_slot(slot - 1);
    ASSERT_LE(slot, params.listen_slots + params.counter_threshold + 2);
  }
  EXPECT_EQ(node.state(), MwStateKind::kLeader);
  EXPECT_EQ(node.final_color(), 0);
}

}  // namespace
}  // namespace sinrcolor::core
