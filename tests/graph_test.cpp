#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "graph/graph_algos.h"
#include "graph/independent_set.h"
#include "graph/packing.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor::graph {
namespace {

geometry::Deployment square_cluster() {
  // Four points: three mutually close, one far away.
  geometry::Deployment d;
  d.side = 10.0;
  d.points = {{0.0, 0.0}, {0.5, 0.0}, {0.0, 0.8}, {5.0, 5.0}};
  return d;
}

TEST(UnitDiskGraph, EdgesMatchPairwiseDistances) {
  UnitDiskGraph g(square_cluster(), 1.0);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(0, 2));
  EXPECT_TRUE(g.adjacent(1, 2));  // distance sqrt(0.25+0.64) < 1
  EXPECT_FALSE(g.adjacent(0, 3));
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.edge_count(), 3u);
}

class UdgRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdgRandomTest, MatchesBruteForceAdjacency) {
  common::Rng rng(GetParam());
  const auto dep = geometry::uniform_deployment(150, 6.0, rng);
  UnitDiskGraph g(dep, 1.0);
  for (NodeId v = 0; v < g.size(); ++v) {
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < g.size(); ++u) {
      if (u != v && geometry::distance(dep.points[u], dep.points[v]) <= 1.0) {
        expected.push_back(u);
      }
    }
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgRandomTest, ::testing::Values(11, 12, 13, 14));

TEST(UnitDiskGraph, AdjacencyIsSymmetric) {
  common::Rng rng(21);
  UnitDiskGraph g(geometry::uniform_deployment(120, 5.0, rng), 1.0);
  for (NodeId v = 0; v < g.size(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(g.adjacent(u, v));
    }
  }
}

TEST(UnitDiskGraph, ScaledGraphGrowsMonotonically) {
  common::Rng rng(22);
  UnitDiskGraph g(geometry::uniform_deployment(100, 5.0, rng), 1.0);
  const auto g2 = g.scaled(2.0);
  EXPECT_DOUBLE_EQ(g2.radius(), 2.0);
  EXPECT_GE(g2.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.size(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(g2.adjacent(u, v));  // edges survive scaling up
    }
  }
}

TEST(UnitDiskGraph, NodesWithinRadius) {
  UnitDiskGraph g(square_cluster(), 1.0);
  const auto near0 = g.nodes_within(0, 0.6);
  EXPECT_EQ(near0, std::vector<NodeId>{1});
  const auto all = g.nodes_within(0, 10.0);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Coloring, ValidatorAcceptsProperColoring) {
  UnitDiskGraph g(square_cluster(), 1.0);
  Coloring c{{0, 1, 2, 0}};
  EXPECT_TRUE(is_valid_coloring(g, c));
  EXPECT_TRUE(c.complete());
  EXPECT_EQ(c.palette_size(), 3u);
  EXPECT_EQ(c.max_color(), 2);
}

TEST(Coloring, ValidatorRejectsAdjacentDuplicates) {
  UnitDiskGraph g(square_cluster(), 1.0);
  Coloring c{{0, 0, 1, 2}};
  const auto violations = find_coloring_violations(g, c);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].u, 0u);
  EXPECT_EQ(violations[0].v, 1u);
  EXPECT_EQ(violations[0].color, 0);
  EXPECT_FALSE(is_valid_coloring(g, c));
}

TEST(Coloring, ValidatorFlagsUncoloredNodes) {
  UnitDiskGraph g(square_cluster(), 1.0);
  Coloring c{{0, 1, kUncolored, 2}};
  const auto violations = find_coloring_violations(g, c);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].u, violations[0].v);
  EXPECT_FALSE(c.complete());
}

TEST(Coloring, DistanceDValidation) {
  // Two nodes 1.5 apart: fine at d=1, conflicting at d=2 if same color.
  geometry::Deployment dep;
  dep.side = 4.0;
  dep.points = {{0.0, 0.0}, {1.5, 0.0}};
  UnitDiskGraph g(dep, 1.0);
  Coloring same{{3, 3}};
  EXPECT_TRUE(is_valid_coloring(g, same, 1.0));
  EXPECT_FALSE(is_valid_coloring(g, same, 2.0));
  Coloring diff{{3, 4}};
  EXPECT_TRUE(is_valid_coloring(g, diff, 2.0));
}

TEST(Coloring, HistogramAndClasses) {
  Coloring c{{0, 2, 0, 2, 2, kUncolored}};
  const auto hist = color_histogram(c);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_EQ(hist[2], 3u);
  EXPECT_EQ(color_class(c, 2), (std::vector<NodeId>{1, 3, 4}));
  EXPECT_EQ(c.palette_size(), 2u);
}

TEST(IndependentSet, DetectsViolations) {
  UnitDiskGraph g(square_cluster(), 1.0);
  EXPECT_TRUE(is_independent_set(g, {0, 3}));
  EXPECT_FALSE(is_independent_set(g, {0, 1}));
  const auto violation = find_independence_violation(g, {0, 1, 3});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->first, 0u);
  EXPECT_EQ(violation->second, 1u);
}

TEST(IndependentSet, GreedyMisIsMaximal) {
  common::Rng rng(33);
  UnitDiskGraph g(geometry::uniform_deployment(200, 6.0, rng), 1.0);
  const auto mis = greedy_mis(g);
  EXPECT_TRUE(is_independent_set(g, mis));
  EXPECT_TRUE(is_maximal_independent_set(g, mis));
}

TEST(IndependentSet, MaximalityRejectsNonMaximal) {
  UnitDiskGraph g(square_cluster(), 1.0);
  EXPECT_FALSE(is_maximal_independent_set(g, {0}));  // node 3 uncovered
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 3}));
}

TEST(Packing, AnalyticBoundFormula) {
  EXPECT_DOUBLE_EQ(phi_upper_bound(1.0, 1.0), 9.0);    // (2+1)^2
  EXPECT_DOUBLE_EQ(phi_upper_bound(2.0, 1.0), 25.0);   // (4+1)^2
  EXPECT_DOUBLE_EQ(phi_upper_bound(0.0, 1.0), 1.0);
}

TEST(Packing, EmpiricalNeverExceedsAnalytic) {
  common::Rng rng(34);
  UnitDiskGraph g(geometry::uniform_deployment(300, 6.0, rng), 1.0);
  for (double R : {1.0, 2.0, 3.0}) {
    const auto empirical = static_cast<double>(empirical_phi(g, R));
    EXPECT_LE(empirical, phi_upper_bound(R, 1.0));
    EXPECT_GE(empirical, 1.0);
  }
}

TEST(Packing, LineGraphPhi2RT) {
  // Chain with spacing 1.01 (no edges): every node alone in its disc except
  // packing counts nodes within 2R_T: at spacing 1.01, discs of radius 2
  // contain 3 consecutive independent nodes.
  UnitDiskGraph g(geometry::line_deployment(20, 1.01), 1.0);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_EQ(empirical_phi_2rt(g), 3u);
}

TEST(GraphAlgos, BfsDistancesOnChain) {
  UnitDiskGraph g(geometry::line_deployment(6, 0.9), 1.0);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  EXPECT_EQ(hop_diameter(g), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GraphAlgos, BfsParentsCanonical) {
  UnitDiskGraph g(geometry::line_deployment(5, 0.9), 1.0);
  const auto parent = bfs_parents(g, 0);
  EXPECT_EQ(parent[0], 0u);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(parent[v], v - 1);
}

TEST(GraphAlgos, ComponentsAndUnreachable) {
  geometry::Deployment dep;
  dep.side = 10.0;
  dep.points = {{0, 0}, {0.5, 0}, {5, 5}, {5.5, 5}};
  UnitDiskGraph g(dep, 1.0);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(is_connected(g));
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(GraphAlgos, KHopNeighborhood) {
  UnitDiskGraph g(geometry::line_deployment(7, 0.9), 1.0);
  EXPECT_EQ(k_hop_neighborhood(g, 3, 1), (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(k_hop_neighborhood(g, 3, 2), (std::vector<NodeId>{1, 2, 4, 5}));
  EXPECT_EQ(k_hop_neighborhood(g, 0, 0).size(), 0u);
}

}  // namespace
}  // namespace sinrcolor::graph
