#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"
#include "sinr/probes.h"
#include "sinr/reception.h"

namespace sinrcolor::sinr {
namespace {

SinrParams defaults() {
  SinrParams p;
  p.power = 1.0;
  p.noise = 1e-6;
  p.alpha = 4.0;
  p.beta = 1.5;
  p.rho = 1.5;
  return p;
}

TEST(Params, DerivedRadiiMatchFormulas) {
  const auto p = defaults();
  EXPECT_NEAR(p.r_max(), std::pow(1.0 / (1e-6 * 1.5), 0.25), 1e-12);
  EXPECT_NEAR(p.r_t(), std::pow(1.0 / (2e-6 * 1.5), 0.25), 1e-12);
  EXPECT_LT(p.r_t(), p.r_max());
  const double expected_ri =
      2.0 * p.r_t() * std::sqrt(96.0 * 1.5 * 1.5 * 3.0 / 2.0);
  EXPECT_NEAR(p.r_i(), expected_ri, 1e-9);
}

TEST(Params, RiAtLeastTwiceRt) {
  for (double alpha : {2.5, 3.0, 4.0, 6.0}) {
    for (double beta : {1.0, 1.5, 3.0}) {
      for (double rho : {1.1, 1.5, 2.0}) {
        SinrParams p = defaults();
        p.alpha = alpha;
        p.beta = beta;
        p.rho = rho;
        EXPECT_GE(p.r_i(), 2.0 * p.r_t()) << p.to_string();
      }
    }
  }
}

TEST(Params, MacDistanceFormula) {
  const auto p = defaults();
  EXPECT_NEAR(p.mac_distance_d(), std::pow(32.0 * 3.0 / 2.0 * 1.5, 0.25), 1e-12);
  EXPECT_GT(p.mac_distance_d(), 1.0);
}

TEST(Params, RangeScalingScalesRt) {
  const auto p = defaults();
  const auto scaled = p.with_range_scaled(3.0);
  EXPECT_NEAR(scaled.r_t(), 3.0 * p.r_t(), 1e-9);
  EXPECT_NEAR(scaled.power, std::pow(3.0, 4.0), 1e-12);
}

TEST(Params, ValidateRejectsBadInputs) {
  auto bad_alpha = defaults();
  bad_alpha.alpha = 2.0;
  EXPECT_DEATH(bad_alpha.validate(), "alpha");
  auto bad_beta = defaults();
  bad_beta.beta = 0.5;
  EXPECT_DEATH(bad_beta.validate(), "beta");
  auto bad_noise = defaults();
  bad_noise.noise = 0.0;
  EXPECT_DEATH(bad_noise.validate(), "noise");
  auto bad_rho = defaults();
  bad_rho.rho = 1.0;
  EXPECT_DEATH(bad_rho.validate(), "rho");
}

TEST(Params, ReceivedPowerDecaysWithDistance) {
  const auto p = defaults();
  EXPECT_DOUBLE_EQ(received_power(p, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(received_power(p, 2.0), 1.0 / 16.0);
  EXPECT_GT(received_power(p, 0.5), received_power(p, 0.6));
}

TEST(MediumField, PowAlphaFastPathsMatchStdPow) {
  for (double alpha : {3.0, 4.0, 6.0, 3.7}) {
    for (double d_sq : {0.01, 0.5, 1.0, 7.3, 10000.0}) {
      EXPECT_NEAR(pow_alpha_from_sq(d_sq, alpha),
                  std::pow(std::sqrt(d_sq), alpha),
                  1e-9 * std::pow(std::sqrt(d_sq), alpha));
    }
  }
}

TEST(MediumField, InterferenceIsAdditive) {
  const auto p = defaults();
  const std::vector<Transmitter> txs{{{1.0, 0.0}}, {{0.0, 2.0}}};
  const double total = interference_at(p, {0.0, 0.0}, txs);
  EXPECT_NEAR(total, 1.0 + 1.0 / 16.0, 1e-12);
  // Excluding one transmitter removes exactly its contribution.
  EXPECT_NEAR(interference_at(p, {0.0, 0.0}, txs, 0), 1.0 / 16.0, 1e-12);
}

TEST(MediumField, SinrMatchesHandComputation) {
  const auto p = defaults();
  const std::vector<Transmitter> txs{{{1.0, 0.0}}, {{3.0, 0.0}}};
  // Receiver at origin: signal 1 from tx0, interference 1/81 from tx1.
  const double sinr = sinr_at(p, {0.0, 0.0}, txs, 0);
  EXPECT_NEAR(sinr, 1.0 / (1e-6 + 1.0 / 81.0), 1e-6);
}

TEST(MediumField, InterferenceOutsideRadius) {
  const auto p = defaults();
  const std::vector<Transmitter> txs{{{1.0, 0.0}}, {{10.0, 0.0}}};
  const double far = interference_outside(p, {0.0, 0.0}, txs, 5.0);
  EXPECT_NEAR(far, 1.0 / 1e4, 1e-12);
  EXPECT_NEAR(interference_outside(p, {0.0, 0.0}, txs, 0.5), 1.0 + 1e-4, 1e-12);
}

TEST(Reception, LoneSenderWithinRtDecodes) {
  const auto p = defaults();
  const double r_t = p.r_t();
  const std::vector<Transmitter> txs{{{0.0, 0.0}}};
  EXPECT_TRUE(decodes(p, {r_t * 0.99, 0.0}, txs, 0));
  EXPECT_TRUE(decodes(p, {r_t, 0.0}, txs, 0));         // boundary inclusive
  EXPECT_FALSE(decodes(p, {r_t * 1.01, 0.0}, txs, 0)); // range gate
}

TEST(Reception, NearbyInterfererBlocksDecoding) {
  const auto p = defaults();
  const double r_t = p.r_t();
  // Receiver equidistant from two transmitters: SINR ≈ 1 < β.
  const std::vector<Transmitter> txs{{{0.0, 0.0}}, {{2.0 * r_t * 0.9, 0.0}}};
  EXPECT_FALSE(decodes(p, {r_t * 0.9, 0.0}, txs, 0));
  EXPECT_FALSE(decodes(p, {r_t * 0.9, 0.0}, txs, 1));
}

TEST(Reception, CaptureEffect) {
  const auto p = defaults();
  // Receiver very close to tx0, far interferer: tx0 captured.
  const std::vector<Transmitter> txs{{{0.0, 0.0}}, {{8.0, 0.0}}};
  const auto winner = resolve_reception(p, {0.1, 0.0}, txs);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 0u);
}

TEST(Reception, ResolveReturnsNulloptWhenNothingDecodable) {
  const auto p = defaults();
  const std::vector<Transmitter> txs{{{0.0, 0.0}}, {{0.5, 0.0}}};
  // Receiver between two close transmitters: neither passes β = 1.5.
  EXPECT_FALSE(resolve_reception(p, {0.25, 0.0}, txs).has_value());
}

TEST(Reception, AtMostOneWinnerProperty) {
  // Randomized sweep: β ≥ 1 ⇒ never two decodable senders (checked inside
  // resolve_reception; here we just exercise it broadly).
  const auto p = defaults();
  common::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Transmitter> txs;
    const int k = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < k; ++i) {
      txs.push_back({{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
    }
    const geometry::Point listener{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    (void)resolve_reception(p, listener, txs);  // aborts if invariant breaks
  }
  SUCCEED();
}

TEST(Probes, ProbabilisticInterferenceOutside) {
  const auto p = defaults();
  const std::vector<geometry::Point> positions{{1.0, 0.0}, {10.0, 0.0}};
  const std::vector<double> probs{0.5, 0.5};
  const double psi = probabilistic_interference_outside(
      p, {0.0, 0.0}, positions, probs, 5.0, static_cast<std::size_t>(-1));
  EXPECT_NEAR(psi, 0.5 * 1e-4, 1e-15);
}

TEST(Probes, BoundProbeTracksViolations) {
  BoundProbe probe(1.0);
  probe.record(0.5);
  probe.record(0.8);
  probe.record(1.2);
  EXPECT_EQ(probe.samples(), 3u);
  EXPECT_EQ(probe.violations(), 1u);
  EXPECT_DOUBLE_EQ(probe.max_observed(), 1.2);
  EXPECT_NEAR(probe.mean_observed(), (0.5 + 0.8 + 1.2) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(probe.worst_ratio(), 1.2);
}

TEST(Lemma3, GeometricSeriesBoundHolds) {
  // The heart of Lemma 3: with ring decomposition, far interference is at
  // most P/(2ρβR_T^α). Verify numerically for a dense worst-case-ish packing:
  // transmitters on a fine grid outside I_u, each transmitting with the
  // probability cap 2/φ-normalized mass per B (Eq. 1 limit): here we place
  // one sender of probability mass 2 per R_T-disc area, the worst Eq.1 allows.
  const auto p = defaults();
  const double r_t = p.r_t();
  const double r_i = p.r_i();
  std::vector<geometry::Point> positions;
  std::vector<double> probs;
  const double step = r_t;  // one cell ≈ one B_v worth of probability mass
  const double extent = 3.0 * r_i;
  for (double x = -extent; x <= extent; x += step) {
    for (double y = -extent; y <= extent; y += step) {
      const double dist = std::hypot(x, y);
      if (dist > r_i) {
        positions.push_back({x, y});
        probs.push_back(1.0);  // mass 2 per disc ⇒ ~1 per step² cell is safe
      }
    }
  }
  const double psi = probabilistic_interference_outside(
      p, {0.0, 0.0}, positions, probs, r_i, static_cast<std::size_t>(-1));
  EXPECT_LE(psi, p.lemma3_interference_bound());
}

}  // namespace
}  // namespace sinrcolor::sinr
