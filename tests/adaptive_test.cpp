// Tests for the adaptive-Δ protocol variant (Section-VI open question).
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/adaptive.h"
#include "geometry/deployment.h"
#include "graph/independent_set.h"

namespace sinrcolor::core {
namespace {

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TEST(AdaptiveNode, StartsFromInitialEstimate) {
  sinr::SinrParams phys;
  phys.noise = phys.power / (2.0 * phys.beta * 1.0);
  AdaptiveMwNode node(0, 64, phys, PracticalTuning{}, 2);
  EXPECT_EQ(node.delta_estimate(), 2u);
  EXPECT_EQ(node.restarts(), 0u);
  EXPECT_FALSE(node.decided());
  EXPECT_EQ(node.distinct_neighbors_heard(), 0u);
}

TEST(AdaptiveNode, DoublesWhenEvidenceExceedsEstimate) {
  sinr::SinrParams phys;
  phys.noise = phys.power / (2.0 * phys.beta * 1.0);
  AdaptiveMwNode node(0, 64, phys, PracticalTuning{}, 2);
  node.on_wake(0);

  radio::Message m;
  m.kind = radio::MessageKind::kCompete;
  m.color_class = 0;
  for (graph::NodeId w = 1; w <= 2; ++w) {
    m.sender = w;
    node.on_receive(0, m);
  }
  EXPECT_EQ(node.restarts(), 0u);  // 2 heard, estimate 2: no evidence yet
  m.sender = 3;
  node.on_receive(1, m);  // third distinct neighbor > estimate 2
  EXPECT_EQ(node.restarts(), 1u);
  EXPECT_EQ(node.delta_estimate(), 6u);  // 2 × heard
  EXPECT_EQ(node.state(), MwStateKind::kListening);  // restarted into A_0
}

TEST(AdaptiveNode, DuplicateSendersAreNotEvidence) {
  sinr::SinrParams phys;
  phys.noise = phys.power / (2.0 * phys.beta * 1.0);
  AdaptiveMwNode node(0, 64, phys, PracticalTuning{}, 2);
  node.on_wake(0);
  radio::Message m;
  m.kind = radio::MessageKind::kCompete;
  m.color_class = 0;
  m.sender = 7;
  for (int k = 0; k < 10; ++k) node.on_receive(k, m);
  EXPECT_EQ(node.distinct_neighbors_heard(), 1u);
  EXPECT_EQ(node.restarts(), 0u);
}

TEST(AdaptiveRun, SingleNodeTerminatesAsLeader) {
  graph::UnitDiskGraph g(geometry::line_deployment(1, 1.0), 1.0);
  const auto result = run_adaptive_coloring(g);
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid);
  EXPECT_EQ(result.total_restarts, 0u);  // hears nobody, never doubles
}

class AdaptiveSweep : public ::testing::TestWithParam<
                          std::tuple<std::size_t, double, std::uint64_t>> {};

TEST_P(AdaptiveSweep, ValidColoringWithoutDeltaKnowledge) {
  const auto [n, side, seed] = GetParam();
  const auto g = uniform_graph(n, side, seed);
  AdaptiveRunConfig cfg;
  cfg.seed = seed * 13 + 1;
  const auto result = run_adaptive_coloring(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided) << result.summary();
  EXPECT_TRUE(result.coloring_valid) << result.summary();
  EXPECT_EQ(result.independence_violations, 0u) << result.summary();
  // The estimates must have grown past the initial 2 on non-trivial graphs.
  if (g.max_degree() > 4) {
    EXPECT_GT(result.mean_final_delta, 2.0);
    EXPECT_GT(result.total_restarts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveSweep,
    ::testing::Values(std::make_tuple(30, 2.5, 1ULL),
                      std::make_tuple(80, 3.5, 2ULL),
                      std::make_tuple(120, 4.0, 3ULL),
                      std::make_tuple(120, 3.0, 4ULL)));

TEST(AdaptiveRun, AsyncWakeupStillValid) {
  const auto g = uniform_graph(70, 3.0, 17);
  AdaptiveRunConfig cfg;
  cfg.seed = 23;
  cfg.wakeup = WakeupKind::kUniform;
  cfg.wakeup_window = 3000;
  const auto result = run_adaptive_coloring(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided) << result.summary();
  EXPECT_TRUE(result.coloring_valid) << result.summary();
}

TEST(AdaptiveRun, DeterministicGivenSeed) {
  const auto g = uniform_graph(60, 3.0, 18);
  AdaptiveRunConfig cfg;
  cfg.seed = 29;
  const auto a = run_adaptive_coloring(g, cfg);
  const auto b = run_adaptive_coloring(g, cfg);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.metrics.slots_executed, b.metrics.slots_executed);
}

}  // namespace
}  // namespace sinrcolor::core
