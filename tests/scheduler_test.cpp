// Tests for the greedy SINR link scheduler and the schedule-free local
// broadcast baselines (ALOHA with 1/Δ scaling, idealized CSMA).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/local_broadcast.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "mac/link_scheduler.h"

namespace sinrcolor::mac {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TEST(LinkScheduler, AllNeighborLinksEnumeratesBothDirections) {
  graph::UnitDiskGraph g(geometry::line_deployment(3, 0.9), 1.0);
  const auto requests = all_neighbor_links(g);
  EXPECT_EQ(requests.size(), 4u);  // 0→1, 1→0, 1→2, 2→1
}

TEST(LinkScheduler, SingleLinkFitsOneSlot) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  const auto phys = phys_for_radius(1.0);
  const auto schedule = greedy_link_schedule(g, phys, {{0, 1}});
  EXPECT_EQ(schedule.slots, 1u);
  EXPECT_EQ(count_infeasible_links(g, phys, {{0, 1}}, schedule), 0u);
}

TEST(LinkScheduler, OppositeDirectionsNeverShareASlot) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  const auto phys = phys_for_radius(1.0);
  const std::vector<LinkRequest> requests{{0, 1}, {1, 0}};
  const auto schedule = greedy_link_schedule(g, phys, requests);
  EXPECT_EQ(schedule.slots, 2u);  // half-duplex
  EXPECT_NE(schedule.slot_of[0], schedule.slot_of[1]);
}

TEST(LinkScheduler, FarApartLinksShareASlot) {
  // Two links 40 R_T apart: mutual interference is negligible.
  geometry::Deployment dep;
  dep.side = 50.0;
  dep.points = {{0, 0}, {0.5, 0}, {40, 0}, {40.5, 0}};
  graph::UnitDiskGraph g(dep, 1.0);
  const auto phys = phys_for_radius(1.0);
  const std::vector<LinkRequest> requests{{0, 1}, {2, 3}};
  const auto schedule = greedy_link_schedule(g, phys, requests);
  EXPECT_EQ(schedule.slots, 1u);
  EXPECT_EQ(count_infeasible_links(g, phys, requests, schedule), 0u);
}

TEST(LinkScheduler, AdjacentLinksAreSeparated) {
  // Links 0→1 and 2→3 packed tightly: transmitter 2 sits 0.6 from receiver 1
  // — SINR at 1 fails if both transmit, so the greedy must split them.
  geometry::Deployment dep;
  dep.side = 5.0;
  dep.points = {{0.0, 0}, {0.9, 0}, {1.5, 0}, {2.4, 0}};
  graph::UnitDiskGraph g(dep, 1.0);
  const auto phys = phys_for_radius(1.0);
  const std::vector<LinkRequest> requests{{0, 1}, {2, 3}};
  const auto schedule = greedy_link_schedule(g, phys, requests);
  EXPECT_EQ(schedule.slots, 2u);
  EXPECT_EQ(count_infeasible_links(g, phys, requests, schedule), 0u);
}

class LinkSchedulerRandomTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LinkSchedulerRandomTest, GreedyScheduleAlwaysFeasible) {
  const auto g = uniform_graph(100, 4.0, GetParam());
  const auto phys = phys_for_radius(1.0);
  const auto requests = all_neighbor_links(g);
  const auto schedule = greedy_link_schedule(g, phys, requests);
  EXPECT_GT(schedule.slots, 0u);
  EXPECT_EQ(count_infeasible_links(g, phys, requests, schedule), 0u);
  // Trivial upper bound: one slot per request.
  EXPECT_LE(schedule.slots, requests.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkSchedulerRandomTest,
                         ::testing::Values(101, 102, 103));

TEST(LinkScheduler, RejectsOutOfRangeRequest) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 3.0), 1.0);  // no edge
  const auto phys = phys_for_radius(1.0);
  EXPECT_DEATH((void)greedy_link_schedule(g, phys, {{0, 1}}), "beyond R_T");
}

TEST(LocalBroadcast, KnownDeltaCompletesWithinBudget) {
  const auto g = uniform_graph(120, 4.0, 104);
  const auto phys = phys_for_radius(1.0);
  const auto result = baseline::run_local_broadcast_known_delta(
      g, phys, 0.3, 3.0, 11);
  EXPECT_TRUE(result.completed) << result.summary();
}

TEST(Csma, CompletesAndBeatsComparableAlohaOnDenseGraphs) {
  const auto g = uniform_graph(150, 3.5, 105);
  const auto phys = phys_for_radius(1.0);
  const auto csma =
      baseline::run_csma_local_broadcast(g, phys, 0.25, 4.0, 400000, 12);
  EXPECT_TRUE(csma.completed) << csma.summary();
  // Same nominal attempt probability without sensing collapses or crawls:
  // carrier sensing must serve pairs at a faster per-slot rate.
  const auto aloha =
      baseline::run_aloha_local_broadcast(g, phys, 0.25, csma.slots, 12);
  EXPECT_GT(csma.pairs_served, aloha.pairs_served) << aloha.summary();
}

TEST(Csma, DeterministicGivenSeed) {
  const auto g = uniform_graph(60, 3.0, 106);
  const auto phys = phys_for_radius(1.0);
  const auto a =
      baseline::run_csma_local_broadcast(g, phys, 0.2, 4.0, 100000, 13);
  const auto b =
      baseline::run_csma_local_broadcast(g, phys, 0.2, 4.0, 100000, 13);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

}  // namespace
}  // namespace sinrcolor::mac
