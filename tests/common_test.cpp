#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/task_pool.h"

namespace sinrcolor::common {
namespace {

TEST(TaskPool, ShardRangesPartitionExactly) {
  // Every (total, shards) split must cover [0, total) contiguously with
  // sizes differing by at most one — the contract the deterministic merge
  // of sinr::FieldEngine rests on.
  for (std::size_t total : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = TaskPool::shard_range(total, shards, s);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        EXPECT_LE(end - begin, total / shards + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(TaskPool, ShardRangeEdgeCases) {
  // total == 0: every shard is empty but well-formed.
  for (std::size_t s = 0; s < 4; ++s) {
    const auto [begin, end] = TaskPool::shard_range(0, 4, s);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 0u);
  }
  // shards == 1: the single shard is the whole range.
  EXPECT_EQ(TaskPool::shard_range(17, 1, 0),
            (std::pair<std::size_t, std::size_t>{0, 17}));
  // total < shards: the first `total` shards hold one element each and the
  // rest are empty — the tile engine relies on empty tiles being no-ops
  // rather than out-of-range.
  std::size_t nonempty = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    const auto [begin, end] = TaskPool::shard_range(3, 8, s);
    EXPECT_LE(end - begin, 1u);
    nonempty += (end > begin);
  }
  EXPECT_EQ(nonempty, 3u);
  // total == shards: exactly one element per shard, in order.
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(TaskPool::shard_range(5, 5, s),
              (std::pair<std::size_t, std::size_t>{s, s + 1}));
  }
}

TEST(TaskPool, ShardOrderMergeIsScheduleInvariant) {
  // The tiled slot engine's determinism contract: workers fill disjoint
  // per-shard buffers in any schedule, the owner concatenates them in shard
  // order — the merged sequence must be identical at every thread count,
  // including exact floating-point accumulation order downstream.
  const std::size_t total = 1013, shards = 7;
  std::vector<double> serial;
  for (std::size_t i = 0; i < total; ++i) {
    serial.push_back(static_cast<double>(i) * 0.37 + 1.0);
  }
  for (std::size_t threads : {1u, 2u, 4u}) {
    TaskPool pool(threads);
    std::vector<std::vector<double>> buf(shards);
    pool.run_shards(shards, [&](std::size_t s) {
      const auto [begin, end] = TaskPool::shard_range(total, shards, s);
      for (std::size_t i = begin; i < end; ++i) buf[s].push_back(serial[i]);
    });
    std::vector<double> merged;
    for (const auto& b : buf) merged.insert(merged.end(), b.begin(), b.end());
    EXPECT_EQ(merged, serial) << "threads=" << threads;
  }
}

TEST(TaskPool, RunsEveryShardExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(23);
  pool.run_shards(hits.size(), [&](std::size_t s) { ++hits[s]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, SingleThreadRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(9, 0);  // no data race possible: everything inline
  pool.run_shards(hits.size(), [&](std::size_t s) { ++hits[s]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TaskPool, ReusableAcrossJobs) {
  TaskPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.run_shards(8, [&](std::size_t s) { sum += s; });
  }
  EXPECT_EQ(sum.load(), 50u * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(TaskPool, ShardedSumMatchesSerialSum) {
  // The canonical use: partition an array into contiguous shards, combine
  // per-shard results in shard order — the total must be exactly the serial
  // one (each element touched once, no overlap).
  std::vector<std::uint64_t> data(10007);
  std::iota(data.begin(), data.end(), 1);
  const std::uint64_t serial =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  TaskPool pool(4);
  const std::size_t shards = 4;
  std::vector<std::uint64_t> partial(shards, 0);
  pool.run_shards(shards, [&](std::size_t s) {
    const auto [begin, end] = TaskPool::shard_range(data.size(), shards, s);
    for (std::size_t i = begin; i < end; ++i) partial[s] += data[i];
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), std::uint64_t{0}),
            serial);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DerivedSeedsAreIndependentStreams) {
  // Streams derived from consecutive ids must not correlate.
  Rng a(derive_seed(42, 0)), b(derive_seed(42, 1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(31);
  Accumulator whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Samples, QuantilesNearestRank) {
  Samples s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 2.0);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) must not divide by zero.
  EXPECT_EQ(fit_linear({1.0, 1.0}, {0.0, 5.0}).slope, 0.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"100", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::percent(0.125, 1), "12.5%");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/sinrcolor_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"1", "two,three"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"two,three\"");
}

TEST(Cli, ParsesFlagsBothSyntaxes) {
  const char* argv[] = {"prog", "--n=42", "--name", "alice", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "alice");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("also_missing", 1.5), 1.5);
}

TEST(Cli, SeedParsing) {
  const char* argv[] = {"prog", "--seed=0xdead"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_seed("seed", 0), 0xdeadULL);
}

TEST(Cli, AtLeastAcceptsValuesOnOrAboveTheBound) {
  const char* argv[] = {"prog", "--threads=1", "--side=0.5"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int_at_least("threads", 1, 1), 1);
  EXPECT_DOUBLE_EQ(cli.get_double_at_least("side", 5.0, 1e-9), 0.5);
  // Absent flag: the default is returned unchecked — callers own it.
  EXPECT_EQ(cli.get_int_at_least("absent", -3, 0), -3);
}

TEST(CliDeathTest, AtLeastRejectsOutOfRangeValues) {
  // usage_error exits with code 2 and names the offending flag on stderr, so
  // a typo'd sweep script fails loudly instead of running --threads=0.
  const char* threads[] = {"prog", "--threads=0"};
  EXPECT_EXIT(
      {
        Cli cli(2, threads);
        cli.get_int_at_least("threads", 1, 1);
      },
      ::testing::ExitedWithCode(2), "--threads must be at least 1, got 0");
  const char* window[] = {"prog", "--fail-window=-5"};
  EXPECT_EXIT(
      {
        Cli cli(2, window);
        cli.get_int_at_least("fail-window", 0, 0);
      },
      ::testing::ExitedWithCode(2), "--fail-window must be at least 0");
  const char* side[] = {"prog", "--side=-1"};
  EXPECT_EXIT(
      {
        Cli cli(2, side);
        cli.get_double_at_least("side", 5.0, 1e-9);
      },
      ::testing::ExitedWithCode(2), "--side must be at least");
}

}  // namespace
}  // namespace sinrcolor::common
