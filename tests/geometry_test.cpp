#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geometry/deployment.h"
#include "geometry/grid_index.h"
#include "geometry/point.h"

namespace sinrcolor::geometry {
namespace {

TEST(Point, DistanceAndWithin) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_TRUE(within(a, b, 5.0));   // boundary inclusive (δ ≤ R_T)
  EXPECT_FALSE(within(a, b, 4.999));
}

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{0.5, -1.0};
  EXPECT_EQ((a + b), (Point{1.5, 1.0}));
  EXPECT_EQ((a - b), (Point{0.5, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
}

TEST(Deployment, UniformStaysInSquareAndIsDeterministic) {
  common::Rng r1(5), r2(5);
  const auto d1 = uniform_deployment(200, 10.0, r1);
  const auto d2 = uniform_deployment(200, 10.0, r2);
  ASSERT_EQ(d1.size(), 200u);
  EXPECT_EQ(d1.points, d2.points);
  for (const auto& p : d1.points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
}

TEST(Deployment, ExactGridHasUniformSpacing) {
  common::Rng rng(5);
  const auto d = grid_deployment(16, 8.0, 0.0, rng);
  ASSERT_EQ(d.size(), 16u);
  // 4x4 grid with step 2: first two points are 2 apart.
  EXPECT_NEAR(distance(d.points[0], d.points[1]), 2.0, 1e-12);
  EXPECT_NEAR(d.points[0].x, 1.0, 1e-12);
}

TEST(Deployment, GridJitterStaysInSquare) {
  common::Rng rng(6);
  const auto d = grid_deployment(100, 10.0, 5.0, rng);
  for (const auto& p : d.points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
  }
}

TEST(Deployment, ClusteredProducesRequestedCount) {
  common::Rng rng(7);
  const auto d = clustered_deployment(300, 20.0, 5, 1.0, rng);
  EXPECT_EQ(d.size(), 300u);
}

TEST(Deployment, LineSpacing) {
  const auto d = line_deployment(10, 0.5);
  ASSERT_EQ(d.size(), 10u);
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_NEAR(distance(d.points[i - 1], d.points[i]), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(d.points[i].y, 0.0);
  }
}

TEST(Deployment, PoissonDiskRespectsMinSpacing) {
  common::Rng rng(8);
  const auto d = poisson_disk_deployment(150, 12.0, 1.0, rng);
  EXPECT_GT(d.size(), 50u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      ASSERT_GT(distance(d.points[i], d.points[j]), 1.0);
    }
  }
}

TEST(Deployment, PoissonDiskSaturatesGracefully) {
  common::Rng rng(9);
  // A 2x2 square cannot hold 1000 points 1 apart; must terminate short.
  const auto d = poisson_disk_deployment(1000, 2.0, 1.0, rng);
  EXPECT_LT(d.size(), 1000u);
  EXPECT_GE(d.size(), 1u);
}

class GridIndexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexRandomTest, MatchesBruteForce) {
  common::Rng rng(GetParam());
  const auto d = uniform_deployment(300, 10.0, rng);
  GridIndex index(d.points, d.side, 1.0);

  for (int q = 0; q < 30; ++q) {
    const Point query{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const double r = rng.uniform(0.1, 4.0);
    auto got = index.within(query, r);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < d.points.size(); ++i) {
      if (distance(query, d.points[i]) <= r) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GridIndex, QueriesBeyondWorldBoundsAreSafe) {
  common::Rng rng(10);
  const auto d = uniform_deployment(50, 5.0, rng);
  GridIndex index(d.points, d.side, 1.0);
  // Query centered outside the square, radius covering everything.
  const auto all = index.within({-3.0, -3.0}, 100.0);
  EXPECT_EQ(all.size(), 50u);
  EXPECT_TRUE(index.within({20.0, 20.0}, 0.5).empty());
}

TEST(GridIndex, InsertAndCount) {
  GridIndex index(10.0, 1.0);
  EXPECT_EQ(index.size(), 0u);
  index.insert(0, {1.0, 1.0});
  index.insert(1, {9.0, 9.0});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.within({1.0, 1.0}, 0.1), std::vector<std::size_t>{0});
}

TEST(GridIndex, BoundaryDistanceIsInclusive) {
  GridIndex index(10.0, 1.0);
  index.insert(0, {0.0, 0.0});
  index.insert(1, {2.0, 0.0});
  const auto hits = index.within({0.0, 0.0}, 2.0);
  EXPECT_EQ(hits.size(), 2u);  // exactly at distance r included
}

}  // namespace
}  // namespace sinrcolor::geometry
