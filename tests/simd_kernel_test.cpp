// Unit tests for the SoA accumulation kernel's numerical spec
// (sinr/field_engine.h, docs/KERNELS.md): the α-specialization table must be
// a bitwise twin of the scalar pow_alpha_from_sq fast paths, and the blocked
// 8-lane batched-Kahan kernel must reproduce — bit for bit — a plain scalar
// replay of its definition ("lane l takes elements j ≡ l mod 8, lanes
// combined in fixed order") at every tail size, including the pure-tail
// counts below one full block.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "sinr/field_engine.h"
#include "sinr/medium_field.h"

namespace sinrcolor::sinr {
namespace {

TEST(SimdKernel, ClassifyAlphaBoundaries) {
  EXPECT_EQ(classify_alpha(3.0), AlphaProfile::kCube);
  EXPECT_EQ(classify_alpha(4.0), AlphaProfile::kQuartic);
  EXPECT_EQ(classify_alpha(6.0), AlphaProfile::kSextic);
  // Anything off the three exact fast-path exponents must take the general
  // std::pow fallback — including values adjacent to a boundary.
  EXPECT_EQ(classify_alpha(2.0), AlphaProfile::kGeneral);
  EXPECT_EQ(classify_alpha(3.5), AlphaProfile::kGeneral);
  EXPECT_EQ(classify_alpha(5.0), AlphaProfile::kGeneral);
  EXPECT_EQ(classify_alpha(std::nextafter(4.0, 5.0)), AlphaProfile::kGeneral);
  EXPECT_EQ(classify_alpha(std::nextafter(6.0, 5.0)), AlphaProfile::kGeneral);
}

TEST(SimdKernel, PowAlphaProfiledIsBitwiseTwinOfScalarFastPaths) {
  // The equivalence argument in docs/KERNELS.md rests on each profile
  // multiplying in the same association as its pow_alpha_from_sq twin, so
  // the two are EXACTLY equal — not merely close — for every input.
  common::Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(1e-3, 8.0);
    const double d_sq = d * d;
    EXPECT_EQ(pow_alpha_profiled<AlphaProfile::kCube>(d_sq, 1.5),
              pow_alpha_from_sq(d_sq, 3.0));
    EXPECT_EQ(pow_alpha_profiled<AlphaProfile::kQuartic>(d_sq, 2.0),
              pow_alpha_from_sq(d_sq, 4.0));
    EXPECT_EQ(pow_alpha_profiled<AlphaProfile::kSextic>(d_sq, 3.0),
              pow_alpha_from_sq(d_sq, 6.0));
    EXPECT_EQ(pow_alpha_profiled<AlphaProfile::kGeneral>(d_sq, 3.5 / 2.0),
              pow_alpha_from_sq(d_sq, 3.5));
  }
}

/// Independent scalar replay of the kernel's numerical spec: one plain
/// round-robin loop (no blocking), δ^α via the scalar pow_alpha_from_sq,
/// lanes combined in the fixed order (s₀..s₇ then -c₀..-c₇). Any divergence
/// between the blocked kernel and this replay is a spec violation.
double replay_lane_spec(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const std::vector<double>& w, double ux, double uy,
                        double alpha) {
  double sum[kKahanLanes] = {0.0};
  double carry[kKahanLanes] = {0.0};
  for (std::size_t j = 0; j < x.size(); ++j) {
    const std::size_t l = j % kKahanLanes;
    const double dx = ux - x[j];
    const double dy = uy - y[j];
    const double p = w[j] / pow_alpha_from_sq(dx * dx + dy * dy, alpha);
    const double yk = p - carry[l];
    const double t = sum[l] + yk;
    carry[l] = (t - sum[l]) - yk;
    sum[l] = t;
  }
  KahanSum total;
  for (std::size_t l = 0; l < kKahanLanes; ++l) total.add(sum[l]);
  for (std::size_t l = 0; l < kKahanLanes; ++l) total.add(-carry[l]);
  return total.total();
}

void fill_soa(std::size_t count, common::Rng& rng, std::vector<double>& x,
              std::vector<double>& y, std::vector<double>& w) {
  x.resize(count);
  y.resize(count);
  w.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    x[j] = rng.uniform(0.0, 6.0);
    y[j] = rng.uniform(0.0, 6.0);
    w[j] = rng.uniform(0.25, 2.0);  // mixed weights, as under fading gains
  }
}

TEST(SimdKernel, KernelMatchesScalarReplayAcrossTailSizes) {
  // Counts straddle every tail shape: empty, pure tail (< 8), exactly one
  // block, block + partial tail, and multi-block.
  const std::size_t counts[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 257};
  common::Rng rng(91);
  std::vector<double> x, y, w;
  for (const double alpha : {3.0, 4.0, 6.0, 3.5}) {
    const FieldKernelFn kernel = field_kernel_for(classify_alpha(alpha));
    for (const std::size_t count : counts) {
      fill_soa(count, rng, x, y, w);
      const double ux = rng.uniform(0.0, 6.0);
      const double uy = rng.uniform(0.0, 6.0);
      const double got =
          kernel(x.data(), y.data(), w.data(), count, ux, uy, alpha / 2.0);
      const double want = replay_lane_spec(x, y, w, ux, uy, alpha);
      EXPECT_EQ(got, want) << "alpha " << alpha << " count " << count;
    }
  }
}

TEST(SimdKernel, ContribTableMatchesScalarTerm) {
  // The per-candidate recompute path must produce the same bits as the
  // naive per-term expression w / δ^α for every profile.
  common::Rng rng(55);
  std::vector<double> x, y, w;
  fill_soa(32, rng, x, y, w);
  const double ux = rng.uniform(0.0, 6.0);
  const double uy = rng.uniform(0.0, 6.0);
  for (const double alpha : {3.0, 4.0, 6.0, 3.5}) {
    const FieldContribFn contrib = field_contrib_for(classify_alpha(alpha));
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double dx = ux - x[j];
      const double dy = uy - y[j];
      const double want = w[j] / pow_alpha_from_sq(dx * dx + dy * dy, alpha);
      EXPECT_EQ(contrib(x.data(), y.data(), w.data(), j, ux, uy, alpha / 2.0),
                want)
          << "alpha " << alpha << " j " << j;
    }
  }
}

TEST(SimdKernel, EmptyInputYieldsZeroField) {
  const FieldKernelFn kernel = field_kernel_for(AlphaProfile::kQuartic);
  EXPECT_EQ(kernel(nullptr, nullptr, nullptr, 0, 1.0, 2.0, 2.0), 0.0);
}

}  // namespace
}  // namespace sinrcolor::sinr
