#include <gtest/gtest.h>

#include <cmath>

#include "baseline/aloha.h"
#include "baseline/greedy_coloring.h"
#include "baseline/mw_graph_model.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"

namespace sinrcolor::baseline {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TEST(GreedyColoring, ValidWithDeltaPlusOnePalette) {
  const auto g = uniform_graph(250, 5.0, 70);
  const auto c = greedy_coloring(g);
  EXPECT_TRUE(graph::is_valid_coloring(g, c));
  EXPECT_LE(c.palette_size(), g.max_degree() + 1);
}

TEST(GreedyColoring, DistanceDValidAtThatDistance) {
  const auto g = uniform_graph(180, 5.0, 71);
  for (double d : {1.5, 2.0, 3.0}) {
    const auto c = greedy_distance_d_coloring(g, d);
    EXPECT_TRUE(graph::is_valid_coloring(g, c, d)) << "d=" << d;
    // And the palette is bounded by Δ_{G^d}+1.
    EXPECT_LE(c.palette_size(), g.scaled(d).max_degree() + 1);
  }
}

TEST(GreedyColoring, DistanceDReducesToDistance1) {
  const auto g = uniform_graph(100, 4.0, 72);
  const auto direct = greedy_coloring(g);
  const auto via_d = greedy_distance_d_coloring(g, 1.0);
  EXPECT_EQ(direct.color, via_d.color);
}

TEST(MwGraphModel, OriginalAlgorithmWorksInItsModel) {
  const auto g = uniform_graph(80, 3.5, 73);
  const auto result = run_mw_graph_model(g, 7);
  EXPECT_TRUE(result.metrics.all_decided);
  EXPECT_TRUE(result.coloring_valid) << result.summary();
  EXPECT_EQ(result.independence_violations, 0u);
}

TEST(MwGraphModel, GraphTuningIsFasterThanSinrTuning) {
  const auto g = uniform_graph(80, 3.5, 74);
  const auto fast = run_mw_graph_model(g, 8);
  core::MwRunConfig sinr_cfg;
  sinr_cfg.seed = 8;
  const auto careful = core::run_mw_coloring(g, sinr_cfg);
  ASSERT_TRUE(fast.metrics.all_decided);
  ASSERT_TRUE(careful.metrics.all_decided);
  EXPECT_LT(fast.metrics.slots_executed, careful.metrics.slots_executed);
}

TEST(MwGraphModel, GraphTuningUnderSinrRuns) {
  // The negative baseline must execute to completion (the interesting part —
  // how often it violates independence — is measured by bench X9).
  const auto g = uniform_graph(60, 3.0, 75);
  const auto result = run_mw_graph_tuning_under_sinr(g, 9);
  EXPECT_TRUE(result.metrics.all_decided);
}

TEST(Aloha, CompletesOnSmallGraph) {
  const auto g = uniform_graph(50, 4.0, 76);
  const auto result = run_aloha_local_broadcast(g, phys_for_radius(1.0), 0.05,
                                                200000, 11);
  EXPECT_TRUE(result.completed) << result.summary();
  EXPECT_EQ(result.pairs_served, result.pairs_total);
  EXPECT_GT(result.transmissions, 0u);
  EXPECT_LE(result.slots_p50, result.slots_p95);
  EXPECT_LE(result.slots_p95, result.slots);
}

TEST(Aloha, IsolatedNodesFinishInstantly) {
  graph::UnitDiskGraph g(geometry::line_deployment(5, 2.0), 1.0);
  const auto result = run_aloha_local_broadcast(g, phys_for_radius(1.0), 0.1,
                                                1000, 12);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.pairs_total, 0u);
  EXPECT_EQ(result.slots, 0);
}

TEST(Aloha, DeterministicGivenSeed) {
  const auto g = uniform_graph(40, 3.0, 77);
  const auto phys = phys_for_radius(1.0);
  const auto a = run_aloha_local_broadcast(g, phys, 0.05, 100000, 13);
  const auto b = run_aloha_local_broadcast(g, phys, 0.05, 100000, 13);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

}  // namespace
}  // namespace sinrcolor::baseline
