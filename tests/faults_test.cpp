// Fault-injection subsystem (src/faults): FaultPlan parsing + validation,
// FaultEngine's injection semantics on every medium, the thread-count
// independence of an injected run, and the InvariantMonitor's episode
// bookkeeping. The determinism tests here are the dynamic check of the
// contract stated in radio/fault_injection.h.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "faults/fault_engine.h"
#include "faults/fault_plan.h"
#include "faults/invariant_monitor.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"
#include "radio/interference_model.h"
#include "radio/simulator.h"
#include "robust/recovery_protocol.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph scenario_graph(std::uint64_t seed) {
  common::Rng rng(seed);
  return graph::UnitDiskGraph(geometry::uniform_deployment(60, 3.5, rng), 1.0);
}

// Transmits every slot; decides upon first reception.
class ChattyProtocol final : public radio::Protocol {
 public:
  explicit ChattyProtocol(graph::NodeId id) : id_(id) {}
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = id_;
    return m;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  graph::NodeId id_;
  bool heard_ = false;
};

// Listens forever; decides upon first reception.
class ListenerProtocol final : public radio::Protocol {
 public:
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    return std::nullopt;
  }
  void on_receive(radio::Slot, const radio::Message&) override { heard_ = true; }
  void end_slot(radio::Slot) override {}
  bool decided() const override { return heard_; }

 private:
  bool heard_ = false;
};

// Beacons a fixed claimed color every slot, never decides.
class BeaconProtocol final : public radio::Protocol {
 public:
  BeaconProtocol(graph::NodeId id, graph::Color color)
      : id_(id), color_(color) {}
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    radio::Message m;
    m.kind = radio::MessageKind::kColorBeacon;
    m.sender = id_;
    m.color_class = color_;
    return m;
  }
  void on_receive(radio::Slot, const radio::Message&) override {}
  void end_slot(radio::Slot) override {}
  bool decided() const override { return false; }

 private:
  graph::NodeId id_;
  graph::Color color_;
};

const char* kFullPlan = R"({
  "schema": "sinrcolor.faults.v1",
  "seed_salt": 7,
  "crashes": [{"node": 3, "slot": 100, "restart": 200}],
  "deafness": [{"node": 1, "from": 10, "to": 20}],
  "jammers": [{"x": 1.5, "y": 2.0, "from": 0, "to": 99,
               "power": 2.0, "period": 10, "duty": 4, "radius": 0.5}],
  "noise": [{"from": 50, "to": 80, "factor": 1.5}],
  "drops": [{"from": 0, "probability": 0.25}]
})";

TEST(FaultPlan, ParsesFullDocument) {
  faults::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(faults::FaultPlan::from_string(kFullPlan, plan, &error)) << error;
  EXPECT_EQ(plan.seed_salt, 7u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].node, 3u);
  EXPECT_EQ(plan.crashes[0].slot, 100);
  EXPECT_EQ(plan.crashes[0].restart, 200);
  ASSERT_EQ(plan.deafness.size(), 1u);
  EXPECT_EQ(plan.deafness[0].node, 1u);
  ASSERT_EQ(plan.jammers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.jammers[0].position.x, 1.5);
  EXPECT_DOUBLE_EQ(plan.jammers[0].power, 2.0);
  ASSERT_EQ(plan.noise.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.noise[0].factor, 1.5);
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].to, -1);  // default: until the end of the run
  EXPECT_DOUBLE_EQ(plan.drops[0].probability, 0.25);
  EXPECT_TRUE(plan.validate(8).empty());
}

TEST(FaultPlan, RoundTripsThroughToJson) {
  faults::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(faults::FaultPlan::from_string(kFullPlan, plan, &error)) << error;
  const std::string canonical = plan.to_json();
  faults::FaultPlan reparsed;
  ASSERT_TRUE(faults::FaultPlan::from_string(canonical, reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.to_json(), canonical);
}

TEST(FaultPlan, RejectsUnknownKeys) {
  // A typo'd key must fail loudly, not silently disable the fault.
  faults::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(faults::FaultPlan::from_string(
      R"({"schema": "sinrcolor.faults.v1", "jamers": []})", plan, &error));
  EXPECT_NE(error.find("jamers"), std::string::npos);
  EXPECT_FALSE(faults::FaultPlan::from_string(
      R"({"schema": "sinrcolor.faults.v1",
          "drops": [{"from": 0, "probabilty": 0.5}]})",
      plan, &error));
  EXPECT_NE(error.find("probabilty"), std::string::npos);
}

TEST(FaultPlan, RejectsMissingOrWrongSchema) {
  faults::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(faults::FaultPlan::from_string(R"({"drops": []})", plan, &error));
  EXPECT_FALSE(faults::FaultPlan::from_string(
      R"({"schema": "sinrcolor.faults.v2"})", plan, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(FaultPlan, RejectsNonIntegerSlots) {
  faults::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(faults::FaultPlan::from_string(
      R"({"schema": "sinrcolor.faults.v1",
          "crashes": [{"node": 0, "slot": 1.5}]})",
      plan, &error));
  EXPECT_NE(error.find("integer"), std::string::npos);
}

TEST(FaultPlan, ValidateCatchesSemanticErrors) {
  faults::FaultPlan plan;
  plan.crashes.push_back({5, 10, -1});
  EXPECT_NE(plan.validate(4).find("out of range"), std::string::npos);
  plan.crashes[0] = {1, 100, 50};  // restart before the crash
  EXPECT_NE(plan.validate(4).find("restart"), std::string::npos);
  plan.crashes.clear();

  plan.drops.push_back({0, -1, 1.5});
  EXPECT_NE(plan.validate(4).find("probability"), std::string::npos);
  plan.drops.clear();

  faults::JammerSpec j;
  j.position = {1.0, 1.0};
  j.period = 5;
  j.duty = 9;  // duty > period
  plan.jammers.push_back(j);
  EXPECT_NE(plan.validate(4).find("duty"), std::string::npos);
  plan.jammers.clear();

  plan.noise.push_back({20, 10, 2.0});  // to < from
  EXPECT_NE(plan.validate(4).find("window"), std::string::npos);
  plan.noise.clear();
  EXPECT_TRUE(plan.validate(4).empty());
}

TEST(FaultPlan, JammerDutyCycle) {
  faults::JammerSpec j;
  j.from = 100;
  j.to = 199;
  j.period = 10;
  j.duty = 3;
  EXPECT_FALSE(j.active(99));
  EXPECT_TRUE(j.active(100));   // cycle slots 0, 1, 2 are on
  EXPECT_TRUE(j.active(102));
  EXPECT_FALSE(j.active(103));  // cycle slots 3..9 are off
  EXPECT_TRUE(j.active(110));   // next cycle
  EXPECT_FALSE(j.active(200));  // window is inclusive, 200 is out

  j.period = 0;  // continuously on inside the window
  EXPECT_TRUE(j.active(150));
  EXPECT_TRUE(j.active(199));
  EXPECT_FALSE(j.active(200));
}

TEST(FaultEngine, DropHashIsPureAndSaltSeparated) {
  faults::FaultPlan plan;
  plan.drops.push_back({0, -1, 0.5});
  faults::FaultEngine a(plan, 42);
  faults::FaultEngine b(plan, 42);
  plan.seed_salt = 1;
  faults::FaultEngine salted(plan, 42);
  bool diverged = false;
  for (radio::Slot slot = 0; slot < 256; ++slot) {
    // Same plan + seed: every answer identical (pure hash, no generator
    // state to advance). A different salt: an independent pattern.
    EXPECT_EQ(a.drop_delivery(slot, 0, 1), b.drop_delivery(slot, 0, 1));
    diverged |= a.drop_delivery(slot, 2, 3) != salted.drop_delivery(slot, 2, 3);
  }
  EXPECT_TRUE(diverged);
  EXPECT_GT(a.stats().dropped_deliveries, 0u);
}

TEST(FaultEngine, DropWindowBoundsAreInclusive) {
  faults::FaultPlan plan;
  plan.drops.push_back({10, 20, 1.0});
  faults::FaultEngine engine(plan, 1);
  EXPECT_FALSE(engine.drop_delivery(9, 0, 1));
  EXPECT_TRUE(engine.drop_delivery(10, 0, 1));
  EXPECT_TRUE(engine.drop_delivery(20, 0, 1));
  EXPECT_FALSE(engine.drop_delivery(21, 0, 1));
}

TEST(FaultEngine, CertainDropSuppressesEveryDelivery) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  plan.drops.push_back({0, -1, 1.0});
  faults::FaultEngine engine(plan, 3);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 3);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  engine.install(sim);
  const auto metrics = sim.run(50);
  EXPECT_EQ(metrics.decision_slot[1], -1);  // never heard a thing
  EXPECT_EQ(metrics.fault_dropped_deliveries, 50u);
  EXPECT_EQ(engine.stats().dropped_deliveries, 50u);
  EXPECT_EQ(metrics.total_deliveries, 0u);
}

TEST(FaultEngine, DeafnessBlocksReceptionOnly) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  plan.deafness.push_back({1, 0, 24});
  faults::FaultEngine engine(plan, 3);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 3);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  engine.install(sim);
  const auto metrics = sim.run(50);
  // The sender transmitted throughout (deafness is a receiver fault); the
  // listener decodes in the first slot after its window ends.
  EXPECT_EQ(metrics.tx_count[0], 50u);
  EXPECT_EQ(metrics.decision_slot[1], 25);
  EXPECT_EQ(metrics.fault_deaf_slots, 25u);
}

// Shared scenario for the channel-disturbance tests: sender 0 → listener 1
// at distance 0.5, a fault window over slots [0, 24], decode expected from
// slot 25 on.
radio::RunMetrics run_disturbed(std::unique_ptr<radio::InterferenceModel> model,
                                const graph::UnitDiskGraph& g,
                                faults::FaultEngine& engine) {
  radio::Simulator sim(g, std::move(model), radio::simultaneous_wakeup(2), 3);
  sim.set_protocol(0, std::make_unique<ChattyProtocol>(0));
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  engine.install(sim);
  return sim.run(50);
}

TEST(FaultEngine, JammerBlocksTheSinrMediumDuringItsWindow) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  faults::JammerSpec j;
  j.position = {g.position(1).x + 0.1, g.position(1).y + 0.1};
  j.from = 0;
  j.to = 24;
  j.power = 1.0;  // node transmit power right next to the listener
  plan.jammers.push_back(j);
  faults::FaultEngine engine(plan, 3);
  const auto metrics = run_disturbed(
      std::make_unique<radio::SinrInterferenceModel>(g, phys_for_radius(1.0)),
      g, engine);
  EXPECT_EQ(metrics.decision_slot[1], 25);
  EXPECT_EQ(engine.stats().jammer_slots, 25u);
}

TEST(FaultEngine, JammerBlanksTheGraphMediumWithinItsRadius) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  faults::JammerSpec j;
  j.position = {g.position(1).x + 0.05, g.position(1).y + 0.05};
  j.from = 0;
  j.to = 24;
  j.radius = 0.3;  // covers the listener, not the sender
  plan.jammers.push_back(j);
  faults::FaultEngine engine(plan, 3);
  const auto metrics = run_disturbed(
      std::make_unique<radio::GraphInterferenceModel>(g), g, engine);
  EXPECT_EQ(metrics.decision_slot[1], 25);
}

TEST(FaultEngine, NoiseBurstBlocksDecoding) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  plan.noise.push_back({0, 24, 1e9});
  faults::FaultEngine engine(plan, 3);
  const auto metrics = run_disturbed(
      std::make_unique<radio::SinrInterferenceModel>(g, phys_for_radius(1.0)),
      g, engine);
  EXPECT_EQ(metrics.decision_slot[1], 25);
  EXPECT_EQ(engine.stats().noisy_slots, 25u);
}

TEST(FaultEngine, FadingMediumHonoursTheJammerToo) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  faults::FaultPlan plan;
  faults::JammerSpec j;
  j.position = {g.position(1).x + 0.1, g.position(1).y + 0.1};
  j.from = 0;
  j.to = 24;
  plan.jammers.push_back(j);
  faults::FaultEngine engine(plan, 3);
  const auto metrics = run_disturbed(
      std::make_unique<radio::FadingSinrInterferenceModel>(
          g, phys_for_radius(1.0), sinr::FadingSpec{}),
      g, engine);
  // Fading may additionally kill post-window slots, but nothing decodes
  // while the jammer sits on the listener.
  EXPECT_GE(metrics.decision_slot[1], 25);
}

TEST(FaultEngine, FaultedRunIsThreadCountIndependent) {
  // The headline determinism claim: a faulted field-path run is
  // byte-identical at any worker count, because every fault answer is a
  // pure function of (plan, seed, slot, ids) — never of scheduling.
  const auto g = scenario_graph(91);
  faults::FaultPlan plan;
  plan.crashes.push_back({5, 1500, -1});
  plan.deafness.push_back({2, 0, 2000});
  faults::JammerSpec j;
  j.position = {0.05, 0.05};
  j.from = 0;
  j.to = 20000;
  j.power = 0.2;
  j.period = 3;
  j.duty = 1;
  plan.jammers.push_back(j);
  plan.noise.push_back({1000, 3000, 1.3});
  plan.drops.push_back({0, 20000, 0.05});

  core::MwRunConfig cfg;
  cfg.seed = 515;
  cfg.resolve = sinr::ResolveKind::kField;
  const auto faulted_run = [&](std::size_t threads) {
    cfg.threads = threads;
    core::MwInstance instance(g, cfg);
    faults::FaultEngine engine(plan, cfg.seed);
    engine.install(instance.simulator());
    const auto result = instance.run();
    EXPECT_GT(engine.stats().dropped_deliveries, 0u);
    return core::to_json(result);
  };
  const std::string serial = faulted_run(1);
  EXPECT_EQ(serial, faulted_run(4));
  EXPECT_FALSE(serial.empty());
}

TEST(InvariantMonitor, CleanRunIsCleanAndUnperturbed) {
  const auto g = scenario_graph(92);
  core::MwRunConfig cfg;
  cfg.seed = 99;
  const std::string bare = core::to_json(core::run_mw_coloring(g, cfg));

  core::MwInstance instance(g, cfg);
  const auto& nodes = instance.nodes();
  faults::InvariantMonitor monitor(
      g, [&nodes](graph::NodeId v) { return nodes[v]->final_color(); });
  monitor.attach(instance.simulator());
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  // The monitor is a pure read: same bytes as the unmonitored run, and a
  // fault-free protocol execution trips no invariant.
  EXPECT_EQ(core::to_json(result), bare);
  const auto report = monitor.report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.conflicts_repaired, 0u);
}

TEST(InvariantMonitor, TracksConflictEpisodesWithDurations) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ListenerProtocol>());
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  // Drive the observed colors from a script: both claim color 0 at slot 10
  // (conflict opens), node 1 repairs to color 1 at slot 20 (episode closes
  // with duration 10). The mutating observer is registered BEFORE the
  // monitor, so the monitor's scan sees each slot's final colors.
  std::vector<graph::Color> colors(2, graph::kUncolored);
  sim.add_end_observer([&colors](radio::Slot slot) {
    if (slot == 10) colors = {0, 0};
    if (slot == 20) colors[1] = 1;
  });
  faults::InvariantMonitor monitor(
      g, [&colors](graph::NodeId v) { return colors[v]; });
  monitor.attach(sim);
  sim.run(30);
  const auto report = monitor.report();
  EXPECT_EQ(report.legality_violations, 1u);
  EXPECT_EQ(report.conflicts_repaired, 1u);
  EXPECT_EQ(report.open_conflicts, 0u);
  EXPECT_EQ(report.max_conflict_duration, 10);
  ASSERT_EQ(monitor.conflict_durations().size(), 1u);
  EXPECT_EQ(monitor.conflict_durations()[0], 10);
  EXPECT_FALSE(report.clean());  // a violation DID occur, even if repaired
}

TEST(InvariantMonitor, ReportsConflictsStillOpenAtRunEnd) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ListenerProtocol>());
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  std::vector<graph::Color> colors = {2, 2};  // conflicting from slot 0, never
  faults::InvariantMonitor monitor(             // repaired
      g, [&colors](graph::NodeId v) { return colors[v]; });
  monitor.attach(sim);
  sim.run(15);
  const auto report = monitor.report();
  EXPECT_EQ(report.legality_violations, 1u);  // one episode, not 15
  EXPECT_EQ(report.open_conflicts, 1u);
  EXPECT_EQ(report.conflicts_repaired, 0u);
}

TEST(InvariantMonitor, DeathOfOneSideClosesTheEpisode) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ListenerProtocol>());
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  sim.set_failure_slot(1, 8);
  std::vector<graph::Color> colors = {4, 4};
  faults::InvariantMonitor monitor(
      g, [&colors](graph::NodeId v) { return colors[v]; });
  monitor.attach(sim);
  sim.run(20);
  const auto report = monitor.report();
  EXPECT_EQ(report.legality_violations, 1u);
  EXPECT_EQ(report.open_conflicts, 0u);
  EXPECT_EQ(report.conflicts_repaired, 1u);  // closed by the death
  EXPECT_EQ(report.max_conflict_duration, 8);
}

TEST(InvariantMonitor, FlagsAdjacentSameColorBeaconsOnAir) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<BeaconProtocol>(0, 5));
  sim.set_protocol(1, std::make_unique<BeaconProtocol>(1, 5));
  std::vector<graph::Color> colors(2, graph::kUncolored);
  faults::InvariantMonitor monitor(
      g, [&colors](graph::NodeId v) { return colors[v]; });
  monitor.attach(sim);
  sim.run(3);
  const auto report = monitor.report();
  EXPECT_EQ(report.tx_independence_violations, 3u);  // one per slot
  EXPECT_EQ(report.legality_violations, 0u);  // final state never conflicted
}

TEST(InvariantMonitor, FeasibilityBoundFlagsEachNodeOnce) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 2.0), 1.0);  // no edge
  radio::Simulator sim(g,
                       std::make_unique<radio::SinrInterferenceModel>(
                           g, phys_for_radius(1.0)),
                       radio::simultaneous_wakeup(2), 1);
  sim.set_protocol(0, std::make_unique<ListenerProtocol>());
  sim.set_protocol(1, std::make_unique<ListenerProtocol>());
  std::vector<graph::Color> colors = {3, 1};  // 3 exceeds the bound below
  faults::InvariantMonitor::Options options;
  options.max_color = 1;
  faults::InvariantMonitor monitor(
      g, [&colors](graph::NodeId v) { return colors[v]; }, options);
  monitor.attach(sim);
  sim.run(10);
  EXPECT_EQ(monitor.report().feasibility_violations, 1u);  // once, not per slot
}

// Decides in its very first slot without any traffic.
class InstantProtocol final : public radio::Protocol {
 public:
  void on_wake(radio::Slot) override {}
  std::optional<radio::Message> begin_slot(radio::Slot, common::Rng&) override {
    decided_ = true;
    return std::nullopt;
  }
  void on_receive(radio::Slot, const radio::Message&) override {}
  void end_slot(radio::Slot) override {}
  bool decided() const override { return decided_; }

 private:
  bool decided_ = false;
};

TEST(Chaos, SettleWindowKeepsTheRunAliveAfterAllDecided) {
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  const auto run_with = [&g](radio::Slot settle, radio::Slot max_slots) {
    radio::Simulator sim(g,
                         std::make_unique<radio::SinrInterferenceModel>(
                             g, phys_for_radius(1.0)),
                         radio::simultaneous_wakeup(2), 1);
    sim.set_protocol(0, std::make_unique<InstantProtocol>());
    sim.set_protocol(1, std::make_unique<InstantProtocol>());
    sim.set_settle_slots(settle);
    return sim.run(max_slots).slots_executed;
  };
  // Default: the run stops at the first all-decided slot.
  EXPECT_EQ(run_with(0, 100), 1);
  // A settle window keeps the slot loop alive past the last decision...
  EXPECT_EQ(run_with(10, 100), 10);
  // ...but never past max_slots.
  EXPECT_EQ(run_with(10, 5), 5);
}

TEST(Chaos, RecoveryRunUnderFullPlanConvergesWithBoundedConflicts) {
  // End-to-end: crash + restart, message loss and a noise burst against the
  // self-healing protocol, with the monitor as the judge — every conflict
  // the faults cause must be repaired before the run ends.
  common::Rng rng(77);
  graph::UnitDiskGraph g(geometry::uniform_deployment(30, 2.5, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 29;
  cfg.recovery.enabled = true;
  cfg.recovery.retransmit.initial_wait = 40;

  faults::FaultPlan plan;
  plan.crashes.push_back({3, 9000, 15000});
  plan.noise.push_back({9000, 11000, 1.4});
  plan.drops.push_back({7290, 30000, 0.2});

  robust::RecoveryInstance instance(g, cfg);
  faults::FaultEngine engine(plan, cfg.seed);
  engine.install(instance.simulator());
  const auto& nodes = instance.nodes();
  faults::InvariantMonitor monitor(
      g, [&nodes](graph::NodeId v) { return nodes[v]->final_color(); });
  monitor.attach(instance.simulator());
  const auto result = instance.run();

  EXPECT_TRUE(result.coloring_valid);
  EXPECT_EQ(result.metrics.stalled_nodes, 0u);
  EXPECT_EQ(result.metrics.joined_nodes, 1u);  // the restart
  EXPECT_GT(engine.stats().dropped_deliveries, 0u);
  const auto report = monitor.report();
  EXPECT_EQ(report.open_conflicts, 0u);
  EXPECT_EQ(report.feasibility_violations, 0u);
}

}  // namespace
}  // namespace sinrcolor
