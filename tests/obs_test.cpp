// Tests for the observability layer (src/obs): event naming, the ring
// buffer's drop-oldest policy, JSONL round-tripping, histogram bucket edges,
// and the digest's exact agreement with the simulator's own RunMetrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mw_node.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observation.h"
#include "obs/trace.h"
#include "robust/recovery_protocol.h"

namespace sinrcolor {
namespace {

TEST(TraceNames, EventKindNamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
    const auto kind = static_cast<obs::EventKind>(i);
    const std::string name = obs::to_string(kind);
    EXPECT_NE(name, "?");
    obs::EventKind parsed;
    ASSERT_TRUE(obs::event_kind_from_string(name, parsed)) << name;
    EXPECT_EQ(parsed, kind);
  }
  obs::EventKind parsed;
  EXPECT_FALSE(obs::event_kind_from_string("no_such_kind", parsed));
}

TEST(TraceNames, MwStateNamesMatchCoreToString) {
  // obs cannot include core (layering), so it carries its own copy of the
  // state names; this is the drift guard the header promises.
  for (std::size_t i = 0; i < core::kMwStateCount; ++i) {
    EXPECT_STREQ(obs::mw_state_name(static_cast<std::int64_t>(i)),
                 core::to_string(static_cast<core::MwStateKind>(i)));
  }
  EXPECT_STREQ(obs::mw_state_name(-1), "?");
  EXPECT_STREQ(obs::mw_state_name(6), "?");
}

TEST(TraceNames, JoinPhaseNamesAreStableWireNames) {
  // robust::SelfHealingNode::JoinPhase has no to_string; these literals ARE
  // the wire names (kInactive, kListening, kConfirming, kConfirmed).
  EXPECT_STREQ(obs::join_phase_name(0), "inactive");
  EXPECT_STREQ(obs::join_phase_name(1), "listening");
  EXPECT_STREQ(obs::join_phase_name(2), "confirming");
  EXPECT_STREQ(obs::join_phase_name(3), "confirmed");
  EXPECT_STREQ(obs::join_phase_name(4), "?");
}

TEST(Tracer, RingDropsOldestOnOverflow) {
  obs::Tracer tracer(4);
  for (std::int64_t s = 0; s < 6; ++s) {
    tracer.record(s, obs::EventKind::kTx, static_cast<obs::NodeId>(s));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].slot, static_cast<obs::Slot>(i + 2));  // 0,1 dropped
  }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, NullSinkMacroSkipsArgumentEvaluation) {
  obs::Tracer* tracer = nullptr;
  int evaluations = 0;
  const auto payload = [&]() { return ++evaluations; };
  SINRCOLOR_TRACE(tracer, 0, obs::EventKind::kTx, 0u, obs::kNoNode, payload());
  EXPECT_EQ(evaluations, 0);
  obs::Tracer live(4);
  SINRCOLOR_TRACE(&live, 0, obs::EventKind::kTx, 0u, obs::kNoNode, payload());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(live.size(), 1u);
}

TEST(JsonlExport, RoundTripIsLossless) {
  obs::TraceMeta meta;
  meta.node_count = 7;
  meta.seed = 424242;
  meta.scenario = "quoted \"name\"\twith\nescapes\\";
  meta.recorded = 20;
  meta.dropped = 3;

  std::vector<obs::TraceEvent> events;
  for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
    obs::TraceEvent e;
    e.slot = static_cast<obs::Slot>(100 + i);
    e.kind = static_cast<obs::EventKind>(i);
    e.node = static_cast<obs::NodeId>(i % 7);
    e.peer = i % 2 == 0 ? static_cast<obs::NodeId>((i + 1) % 7) : obs::kNoNode;
    e.a = static_cast<std::int32_t>(i) - 3;       // negatives survive
    e.b = -static_cast<std::int64_t>(i) * 1000000000000LL;  // wide payload
    events.push_back(e);
  }

  std::stringstream buf;
  obs::write_jsonl(meta, events, buf);

  obs::TraceMeta parsed_meta;
  std::vector<obs::TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::read_jsonl(buf, parsed_meta, parsed, &error)) << error;
  EXPECT_EQ(parsed_meta, meta);
  EXPECT_EQ(parsed, events);
}

TEST(JsonlExport, RejectsMalformedInput) {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
  std::string error;

  std::stringstream wrong_schema(
      "{\"schema\":\"other.v9\",\"node_count\":1,\"seed\":0,\"scenario\":\"\","
      "\"recorded\":0,\"dropped\":0}\n");
  EXPECT_FALSE(obs::read_jsonl(wrong_schema, meta, events, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  std::stringstream garbage_event;
  obs::write_jsonl(obs::TraceMeta{}, {}, garbage_event);
  garbage_event << "not json\n";
  garbage_event.seekg(0);
  EXPECT_FALSE(obs::read_jsonl(garbage_event, meta, events, &error));
  EXPECT_NE(error.find("line"), std::string::npos) << error;
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  obs::Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 edges + overflow
  h.record(0.5);   // <= 1.0          -> bucket 0
  h.record(1.0);   // == edge 0       -> bucket 0 (upper-inclusive)
  h.record(1.5);   // (1, 2]          -> bucket 1
  h.record(2.0);   // == edge 1       -> bucket 1
  h.record(4.0);   // == last edge    -> bucket 2
  h.record(4.001); // > last edge     -> overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.001);
  EXPECT_NEAR(h.mean(), (0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001) / 6.0, 1e-12);
}

TEST(MetricsRegistry, NamesAreStableHandles) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.counter("a").add(2);
  registry.counter("a").add(3);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  auto& h = registry.histogram("h", {1.0, 2.0});
  registry.histogram("h", {1.0, 2.0}).record(1.5);
  EXPECT_EQ(h.total(), 1u);  // same edges -> same histogram object
  EXPECT_FALSE(registry.empty());
  // Exported JSON is ordered (std::map) and therefore byte-stable.
  EXPECT_EQ(registry.to_json(), registry.to_json());
}

// --- export edge cases -------------------------------------------------------

TEST(JsonlExport, EmptyTraceRoundTripsAndRendersChromeSkeleton) {
  obs::TraceMeta meta;
  meta.node_count = 3;
  meta.scenario = "empty";

  std::stringstream jsonl;
  obs::write_jsonl(meta, {}, jsonl);
  obs::TraceMeta parsed_meta;
  std::vector<obs::TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::read_jsonl(jsonl, parsed_meta, parsed, &error)) << error;
  EXPECT_EQ(parsed_meta, meta);
  EXPECT_TRUE(parsed.empty());

  // The Chrome trace of an empty run is still a valid skeleton: process
  // metadata, no node tracks (and no profiler process without a profiler).
  std::stringstream chrome;
  obs::write_chrome_trace(meta, {}, chrome);
  const std::string out = chrome.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("process_name"), std::string::npos);
  EXPECT_EQ(out.find("thread_name"), std::string::npos);
  EXPECT_EQ(out.find("\"pid\":1"), std::string::npos);
}

TEST(JsonlExport, RingOverflowAccountingSurvivesExport) {
  // After the ring drops the oldest events, the exported header must still
  // satisfy recorded - dropped == events held (the invariant
  // tools/lint/trace_schema_check.py enforces on the artifact).
  obs::Tracer tracer(4);
  for (std::int64_t s = 0; s < 9; ++s) {
    tracer.record(s, obs::EventKind::kTx, static_cast<obs::NodeId>(0));
  }
  obs::TraceMeta meta;
  meta.node_count = 1;
  meta.recorded = tracer.recorded();
  meta.dropped = tracer.dropped();

  std::stringstream jsonl;
  obs::write_jsonl(meta, tracer.events(), jsonl);
  obs::TraceMeta parsed_meta;
  std::vector<obs::TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::read_jsonl(jsonl, parsed_meta, parsed, &error)) << error;
  EXPECT_EQ(parsed_meta.recorded, 9u);
  EXPECT_EQ(parsed_meta.dropped, 5u);
  EXPECT_EQ(parsed_meta.recorded - parsed_meta.dropped, parsed.size());
  // The surviving tail keeps emission order (slots 5..8).
  EXPECT_EQ(parsed.front().slot, 5);
  EXPECT_EQ(parsed.back().slot, 8);
}

TEST(ChromeTrace, ProfilerTracksLandInSecondProcess) {
  obs::Profiler profiler;
  profiler.record(obs::Phase::kSlot, 120, 100);
  profiler.record(obs::Phase::kResolve, 20, 20);
  obs::TraceMeta meta;
  meta.node_count = 1;

  std::stringstream chrome;
  obs::write_chrome_trace(meta, {}, chrome, &profiler);
  const std::string out = chrome.str();
  EXPECT_NE(out.find("profiler (phase totals, us)"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(out.find("phase slot"), std::string::npos);        // thread name
  EXPECT_NE(out.find("phase resolve"), std::string::npos);
  EXPECT_NE(out.find("phase_total_us:slot"), std::string::npos);  // counter
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("\"self_us\":100"), std::string::npos);
  // Silent phases emit no track.
  EXPECT_EQ(out.find("phase deliver"), std::string::npos);

  // A profiler that never recorded adds nothing — same bytes as no profiler.
  obs::Profiler idle;
  std::stringstream with_idle, without;
  obs::write_chrome_trace(meta, {}, with_idle, &idle);
  obs::write_chrome_trace(meta, {}, without, nullptr);
  EXPECT_EQ(with_idle.str(), without.str());
}

// --- digest / end-to-end agreement with the simulator -----------------------

TEST(Digest, MatchesRunMetricsExactly) {
  common::Rng rng(91);
  graph::UnitDiskGraph g(geometry::uniform_deployment(40, 2.8, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 17;
  cfg.wakeup = core::WakeupKind::kUniform;
  cfg.wakeup_window = 300;

  obs::RunObservation observation(std::size_t{1} << 22);
  core::MwInstance instance(g, cfg);
  instance.attach_observation(&observation);
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  ASSERT_EQ(observation.trace.dropped(), 0u);

  const auto digest = obs::build_digest(observation.trace.events(), g.size());
  ASSERT_EQ(digest.size(), g.size());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    EXPECT_EQ(digest[v].first_wake, result.metrics.wake_slot[v]) << v;
    EXPECT_EQ(digest[v].decision_slot, result.metrics.decision_slot[v]) << v;
    EXPECT_EQ(digest[v].final_color,
              static_cast<std::int64_t>(result.coloring.color[v]))
        << v;
    EXPECT_EQ(digest[v].death_slot, -1) << v;
  }
  std::size_t digest_leaders = 0;
  for (const auto& d : digest) digest_leaders += d.leader ? 1u : 0u;
  EXPECT_EQ(digest_leaders, result.leaders.size());

  const auto table = obs::render_digest(digest);
  EXPECT_NE(table.find("decided"), std::string::npos);
  // Filtering to one node keeps the header but drops the other 39 rows.
  const auto filtered = obs::render_digest(digest, 3);
  EXPECT_LT(std::count(filtered.begin(), filtered.end(), '\n'),
            std::count(table.begin(), table.end(), '\n'));
}

TEST(Digest, FailoverAndDeathAreVisibleInTheTrace) {
  // The X14 orphaned-requester scenario (see recovery_test.cpp): probe when
  // the member commits, kill its leader right after, and expect the trace to
  // carry the death and the self-healing failover.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.5), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.recovery.enabled = true;

  graph::NodeId leader = graph::kInvalidNode;
  graph::NodeId member = graph::kInvalidNode;
  radio::Slot request_entry = -1;
  {
    robust::RecoveryInstance probe(g, cfg);
    const auto& nodes = probe.nodes();
    probe.simulator().add_observer(
        [&](radio::Slot slot, std::span<const radio::TxRecord>) {
          for (graph::NodeId v = 0; v < 2; ++v) {
            const core::MwNode* inner = nodes[v]->inner();
            if (request_entry < 0 && inner != nullptr &&
                inner->state() == core::MwStateKind::kRequesting) {
              request_entry = slot;
              member = v;
            }
          }
        });
    const auto clean = probe.run();
    ASSERT_TRUE(clean.metrics.all_decided);
    ASSERT_EQ(clean.leaders.size(), 1u);
    leader = clean.leaders.front();
    ASSERT_GE(request_entry, 0);
    ASSERT_NE(member, leader);
  }

  obs::RunObservation observation(std::size_t{1} << 20);
  robust::RecoveryInstance instance(g, cfg);  // same seed => identical prefix
  instance.attach_observation(&observation);
  instance.simulator().set_failure_slot(leader, request_entry + 1);
  const auto result = instance.run();
  ASSERT_EQ(result.metrics.stalled_nodes, 0u);

  const auto events = observation.trace.events();
  bool saw_failover = false, saw_death = false;
  for (const auto& e : events) {
    saw_failover |= e.kind == obs::EventKind::kFailover && e.node == member;
    saw_death |= e.kind == obs::EventKind::kFailure && e.node == leader;
  }
  EXPECT_TRUE(saw_failover);
  EXPECT_TRUE(saw_death);

  const auto digest = obs::build_digest(events, g.size());
  EXPECT_GE(digest[member].failover_count, 1u);
  EXPECT_EQ(digest[leader].death_slot, request_entry + 1);
  EXPECT_NE(digest[member].final_color, -1);
  EXPECT_EQ(observation.metrics.counter("robust.failovers").value(),
            digest[member].failover_count);
}

}  // namespace
}  // namespace sinrcolor
