// Tests for the JSON writer and the run-report serialization.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/json.h"
#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"

namespace sinrcolor {
namespace {

TEST(JsonWriter, FlatObject) {
  common::JsonWriter json;
  json.begin_object();
  json.field("name", "node");
  json.field("id", 42);
  json.field("p", 0.5);
  json.field("ok", true);
  json.key("none");
  json.null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"node","id":42,"p":0.5,"ok":true,"none":null})");
}

TEST(JsonWriter, NestedContainers) {
  common::JsonWriter json;
  json.begin_object();
  json.key("xs");
  json.begin_array();
  json.value(1);
  json.value(2);
  json.begin_object();
  json.field("y", 3);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"xs":[1,2,{"y":3}]})");
}

TEST(JsonWriter, EmptyContainers) {
  common::JsonWriter json;
  json.begin_object();
  json.key("a");
  json.begin_array();
  json.end_array();
  json.key("o");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":[],"o":{}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(common::JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(common::JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(common::JsonWriter::escape("line\nbreak\ttab"),
            "line\\nbreak\\ttab");
  EXPECT_EQ(common::JsonWriter::escape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriter, TopLevelArray) {
  common::JsonWriter json;
  json.begin_array();
  json.value(std::int64_t{-7});
  json.value("x");
  json.end_array();
  EXPECT_EQ(json.str(), R"([-7,"x"])");
}

TEST(JsonWriter, RejectsDanglingKey) {
  common::JsonWriter json;
  json.begin_object();
  json.key("k");
  EXPECT_DEATH(json.end_object(), "dangling key");
}

TEST(JsonWriter, RejectsValueWithoutKeyInObject) {
  common::JsonWriter json;
  json.begin_object();
  EXPECT_DEATH(json.value(1), "key");
}

TEST(RunReport, SerializesAndRoundTripsStructurally) {
  common::Rng rng(77);
  graph::UnitDiskGraph g(geometry::uniform_deployment(40, 2.5, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 3;
  const auto result = core::run_mw_coloring(g, cfg);

  const auto doc = core::to_json(result);
  // Structural sanity without a parser: key fields and balanced braces.
  EXPECT_NE(doc.find("\"params\""), std::string::npos);
  EXPECT_NE(doc.find("\"palette\""), std::string::npos);
  EXPECT_NE(doc.find("\"colors\":["), std::string::npos);
  EXPECT_NE(doc.find("\"coloring_valid\":true"), std::string::npos);
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));

  const auto compact = core::to_json(result, /*include_per_node=*/false);
  EXPECT_EQ(compact.find("\"colors\""), std::string::npos);
  EXPECT_LT(compact.size(), doc.size());

  const auto params_doc = core::to_json(result.params);
  EXPECT_NE(params_doc.find("\"counter_threshold\""), std::string::npos);
}

}  // namespace
}  // namespace sinrcolor
