// Tiled slot engine: TilePartition structure and the engine-level
// determinism contract — a run's report is a pure function of
// (scenario, seed), never of --slot-threads. The partition tests pin the
// structural invariants (permutation, contiguity, determinism) the
// fixed-shard/ordered-merge argument rests on; the run tests compare full
// JSON reports byte for byte across thread counts on every medium
// (docs/ARCHITECTURE.md, "Tiled slot engine").
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"
#include "graph/tile_partition.h"
#include "graph/unit_disk_graph.h"
#include "obs/observation.h"

namespace sinrcolor {
namespace {

graph::UnitDiskGraph scenario_graph(std::uint64_t seed, std::size_t n = 60) {
  common::Rng rng(seed);
  return graph::UnitDiskGraph(geometry::uniform_deployment(n, 3.5, rng), 1.0);
}

TEST(TilePartition, IdentityIsOneAscendingTile) {
  const auto p = graph::TilePartition::identity(7);
  EXPECT_EQ(p.size(), 7u);
  EXPECT_EQ(p.tile_count(), 1u);
  const auto tile = p.tile(0);
  ASSERT_EQ(tile.size(), 7u);
  for (std::size_t i = 0; i < tile.size(); ++i) {
    EXPECT_EQ(tile[i], static_cast<graph::NodeId>(i));
  }
}

TEST(TilePartition, EmptyAndDefaultConstructedAreSafe) {
  const graph::TilePartition def;
  EXPECT_EQ(def.size(), 0u);
  EXPECT_EQ(def.tile_count(), 1u);
  EXPECT_TRUE(def.tile(0).empty());
  const auto empty = graph::TilePartition::identity(0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.tile(0).empty());
}

TEST(TilePartition, SpatialIsAPermutationInContiguousTiles) {
  const auto g = scenario_graph(91, 200);
  const auto p = graph::TilePartition::spatial(g, 8);
  EXPECT_EQ(p.size(), g.size());
  EXPECT_EQ(p.tile_count(), 8u);
  // Tiles concatenate to order() and cover every id exactly once.
  std::vector<graph::NodeId> concat;
  for (std::size_t t = 0; t < p.tile_count(); ++t) {
    const auto tile = p.tile(t);
    concat.insert(concat.end(), tile.begin(), tile.end());
    // Near-equal split: the shard_range contract.
    EXPECT_LE(tile.size(), g.size() / 8 + 1);
  }
  EXPECT_TRUE(std::equal(concat.begin(), concat.end(), p.order().begin(),
                         p.order().end()));
  std::set<graph::NodeId> ids(concat.begin(), concat.end());
  EXPECT_EQ(ids.size(), g.size());
}

TEST(TilePartition, SpatialIsDeterministic) {
  const auto g = scenario_graph(92, 150);
  const auto a = graph::TilePartition::spatial(g, 5);
  const auto b = graph::TilePartition::spatial(g, 5);
  EXPECT_TRUE(std::equal(a.order().begin(), a.order().end(),
                         b.order().begin(), b.order().end()));
}

TEST(TilePartition, SpatialClampsTileCount) {
  const auto g = scenario_graph(93, 10);
  // More tiles than nodes: clamped to n, every tile at most one node.
  const auto many = graph::TilePartition::spatial(g, 100);
  EXPECT_EQ(many.tile_count(), 10u);
  // Zero requested: clamped to one tile holding everything.
  const auto one = graph::TilePartition::spatial(g, 0);
  EXPECT_EQ(one.tile_count(), 1u);
  EXPECT_EQ(one.tile(0).size(), 10u);
}

TEST(TilePartition, DefaultTileCountIsPureAndBounded) {
  using graph::TilePartition;
  EXPECT_EQ(TilePartition::default_tile_count(0), 1u);
  EXPECT_EQ(TilePartition::default_tile_count(1), 1u);
  EXPECT_EQ(TilePartition::default_tile_count(256), 1u);
  EXPECT_EQ(TilePartition::default_tile_count(257), 2u);
  EXPECT_EQ(TilePartition::default_tile_count(1U << 20), 64u);
}

TEST(TilePartition, ReportsMemoryFootprint) {
  const auto g = scenario_graph(94, 100);
  const auto p = graph::TilePartition::spatial(g, 4);
  EXPECT_GE(p.memory_bytes(), g.size() * sizeof(graph::NodeId));
}

// One config per medium; the tile engine must be invisible in all of them.
core::MwRunConfig medium_config(bool graph_model, bool fading) {
  core::MwRunConfig cfg;
  cfg.seed = 515;
  cfg.graph_model = graph_model;
  if (fading) cfg.fading.kind = sinr::FadingKind::kLogNormal;
  return cfg;
}

std::string run_report(const graph::UnitDiskGraph& g, core::MwRunConfig cfg,
                       std::size_t slot_threads) {
  cfg.slot_threads = slot_threads;
  return core::to_json(core::run_mw_coloring(g, cfg));
}

TEST(TiledSlotEngine, SlotThreadsDoNotChangeTheSinrReport) {
  const auto g = scenario_graph(95);
  const auto cfg = medium_config(false, false);
  const std::string t1 = run_report(g, cfg, 1);
  EXPECT_EQ(t1, run_report(g, cfg, 4));
  EXPECT_FALSE(t1.empty());
}

TEST(TiledSlotEngine, SlotThreadsDoNotChangeTheFadingReport) {
  const auto g = scenario_graph(96);
  const auto cfg = medium_config(false, true);
  EXPECT_EQ(run_report(g, cfg, 1), run_report(g, cfg, 4));
}

TEST(TiledSlotEngine, SlotThreadsDoNotChangeTheGraphMediumReport) {
  const auto g = scenario_graph(97);
  const auto cfg = medium_config(true, false);
  EXPECT_EQ(run_report(g, cfg, 1), run_report(g, cfg, 4));
}

TEST(TiledSlotEngine, TracedRunMatchesUntracedAtAnyThreadCount) {
  // An attached tracer downgrades the simulator to the sequential engine
  // (trace event order is part of the sequential contract); the REPORT must
  // still match the untraced threaded run byte for byte.
  const auto g = scenario_graph(98);
  auto cfg = medium_config(false, false);
  const std::string untraced = run_report(g, cfg, 4);

  cfg.slot_threads = 4;
  obs::RunObservation observation(std::size_t{1} << 22);
  core::MwInstance instance(g, cfg);
  instance.attach_observation(&observation);
  const std::string traced = core::to_json(instance.run());
  EXPECT_EQ(untraced, traced);
  EXPECT_GT(observation.trace.recorded(), 0u);
}

TEST(TiledSlotEngine, RunReportsStateBytes) {
  const auto g = scenario_graph(99);
  const auto cfg = medium_config(false, false);
  core::MwRunConfig run_cfg = cfg;
  run_cfg.slot_threads = 2;
  const auto r = core::run_mw_coloring(g, run_cfg);
  // The accounting walks simulator + model + protocols + metric arrays, so
  // the footprint is at least a per-node state record for every node.
  EXPECT_GE(r.metrics.state_bytes, g.size() * sizeof(graph::NodeId));
  EXPECT_GT(r.metrics.bytes_per_node(), 0.0);
}

}  // namespace
}  // namespace sinrcolor
