// Tests for the stochastic fading substrate and its integration with the
// medium, the TDMA audit, and the coloring protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/greedy_coloring.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "mac/tdma.h"
#include "radio/interference_model.h"
#include "sinr/fading.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

TEST(Fading, NoneIsIdentity) {
  sinr::FadingSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, 0, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, 99, 7, 3), 1.0);
}

TEST(Fading, DeterministicAndSymmetric) {
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kRayleigh;
  const double f = sinr::fade_factor(spec, 5, 1, 2);
  EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, 5, 1, 2), f);  // reproducible
  EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, 5, 2, 1), f);  // symmetric
  EXPECT_NE(sinr::fade_factor(spec, 6, 1, 2), f);         // varies per slot
  EXPECT_NE(sinr::fade_factor(spec, 5, 1, 3), f);         // varies per link
}

TEST(Fading, StaticPerLinkFrozenAcrossSlots) {
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kLogNormal;
  spec.static_per_link = true;
  const double f = sinr::fade_factor(spec, 0, 4, 9);
  EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, 12345, 4, 9), f);
  EXPECT_NE(sinr::fade_factor(spec, 0, 4, 10), f);
}

TEST(Fading, RayleighHasUnitMean) {
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kRayleigh;
  common::Accumulator acc;
  for (std::int64_t slot = 0; slot < 20000; ++slot) {
    acc.add(sinr::fade_factor(spec, slot, 0, 1));
  }
  EXPECT_NEAR(acc.mean(), 1.0, 0.03);
  EXPECT_GT(acc.min(), 0.0);
}

TEST(Fading, LogNormalHasUnitMedianAndSigma) {
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kLogNormal;
  spec.sigma_db = 8.0;
  common::Samples db_samples;
  for (std::int64_t slot = 0; slot < 20000; ++slot) {
    const double f = sinr::fade_factor(spec, slot, 2, 3);
    ASSERT_GT(f, 0.0);
    db_samples.add(10.0 * std::log10(f));
  }
  EXPECT_NEAR(db_samples.median(), 0.0, 0.3);     // unit median
  // Empirical std-dev of the dB values ≈ sigma_db.
  common::Accumulator acc;
  for (double x : db_samples.values()) acc.add(x);
  EXPECT_NEAR(acc.stddev(), 8.0, 0.3);
}

TEST(Fading, ZeroSigmaLogNormalIsDeterministicUnity) {
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kLogNormal;
  spec.sigma_db = 0.0;
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    EXPECT_DOUBLE_EQ(sinr::fade_factor(spec, slot, 0, 1), 1.0);
  }
}

TEST(FadingMedium, LoneLinkEventuallyFadesOut) {
  // A link at 0.95·R_T needs only a mild fade to fail: across many slots a
  // Rayleigh channel must show both successes and failures.
  graph::UnitDiskGraph g(geometry::line_deployment(2, 0.95), 1.0);
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kRayleigh;
  radio::FadingSinrInterferenceModel model(g, phys_for_radius(1.0), spec);

  radio::Message m;
  m.kind = radio::MessageKind::kCompete;
  m.sender = 0;
  std::vector<radio::TxRecord> txs{{0, m}};
  std::vector<bool> listening{false, true};
  int delivered = 0;
  const int slots = 300;
  for (radio::Slot slot = 0; slot < slots; ++slot) {
    std::vector<std::optional<radio::Message>> deliveries(2);
    model.resolve(slot, txs, listening, deliveries);
    delivered += deliveries[1].has_value();
  }
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, slots);
}

TEST(FadingMedium, InvariantSurvivesManyRandomSlots) {
  // β ≥ 1 ⇒ at most one decodable sender per listener even with fading; the
  // model CHECKs this internally — exercise it broadly.
  common::Rng rng(77);
  graph::UnitDiskGraph g(geometry::uniform_deployment(60, 3.0, rng), 1.0);
  sinr::FadingSpec spec;
  spec.kind = sinr::FadingKind::kLogNormal;
  spec.sigma_db = 10.0;
  radio::FadingSinrInterferenceModel model(g, phys_for_radius(1.0), spec);

  for (radio::Slot slot = 0; slot < 200; ++slot) {
    std::vector<radio::TxRecord> txs;
    std::vector<bool> listening(g.size(), true);
    for (graph::NodeId v = 0; v < g.size(); ++v) {
      if (rng.bernoulli(0.1)) {
        radio::Message m;
        m.kind = radio::MessageKind::kCompete;
        m.sender = v;
        txs.push_back({v, m});
        listening[v] = false;
      }
    }
    std::vector<std::optional<radio::Message>> deliveries(g.size());
    model.resolve(slot, txs, listening, deliveries);  // aborts on violation
  }
  SUCCEED();
}

TEST(FadingTdma, AuditDegradesGracefullyWithSigma) {
  common::Rng rng(91);
  graph::UnitDiskGraph g(geometry::uniform_deployment(150, 4.0, rng), 1.0);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto schedule = mac::TdmaSchedule::from_coloring(
      baseline::greedy_distance_d_coloring(g, d + 1.0));

  // σ = 0 log-normal must reproduce the deterministic audit exactly.
  sinr::FadingSpec none;
  none.kind = sinr::FadingKind::kLogNormal;
  none.sigma_db = 0.0;
  const auto det = mac::audit_tdma_sinr(g, phys, schedule);
  const auto zero = mac::audit_tdma_sinr_fading(g, phys, none, schedule, 1);
  EXPECT_EQ(zero.pairs_delivered, det.pairs_delivered);
  EXPECT_EQ(zero.pairs_total, det.pairs_total);
  EXPECT_TRUE(zero.interference_free());

  // Growing shadowing strictly hurts on average.
  double last_rate = 1.01;
  for (double sigma : {2.0, 6.0, 10.0}) {
    sinr::FadingSpec spec;
    spec.kind = sinr::FadingKind::kLogNormal;
    spec.sigma_db = sigma;
    const auto audit = mac::audit_tdma_sinr_fading(g, phys, spec, schedule, 4);
    EXPECT_LT(audit.delivery_rate(), last_rate) << "sigma=" << sigma;
    EXPECT_GT(audit.delivery_rate(), 0.3) << "sigma=" << sigma;
    last_rate = audit.delivery_rate();
  }
}

TEST(FadingProtocol, ColoringStillCompletesUnderMildFading) {
  // The protocol's redundancy (windows sized for w.h.p. delivery) tolerates
  // mild shadowing: the run completes and colors stay valid. This is a
  // robustness observation beyond the paper's model, quantified by bench X12.
  common::Rng rng(92);
  graph::UnitDiskGraph g(geometry::uniform_deployment(100, 4.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 17;
  cfg.fading.kind = sinr::FadingKind::kLogNormal;
  cfg.fading.sigma_db = 2.0;
  const auto result = core::run_mw_coloring(g, cfg);
  EXPECT_TRUE(result.metrics.all_decided) << result.summary();
  EXPECT_TRUE(result.coloring_valid) << result.summary();
}

}  // namespace
}  // namespace sinrcolor
