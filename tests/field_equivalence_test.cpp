// Field-vs-naive equivalence suite: the shared interference-field fast path
// (sinr/field_engine.h) must deliver EXACTLY the same messages as the naive
// per-(sender, listener) resolution it replaced — across random deployments,
// random transmitter sets, all three SINR entry points (the plain medium,
// the fading medium and sinr::resolve_reception) and any thread count. The
// naive loops are kept in the tree purely as the A/B oracle exercised here.
//
// The simd kernel path (ResolveKind::kSimd, docs/KERNELS.md) is held to the
// same bar against the scalar field path: identical deliveries and
// byte-identical run JSON across all three media — plain SINR, fading SINR
// and the graph medium — thread counts, and faulted runs with drop windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "faults/fault_engine.h"
#include "faults/fault_plan.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "radio/interference_model.h"
#include "sinr/reception.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph random_graph(std::size_t n, double side,
                                  std::uint64_t seed) {
  common::Rng rng(seed);
  return graph::UnitDiskGraph(geometry::uniform_deployment(n, side, rng), 1.0);
}

/// Random slot workload: each node transmits w.p. `tx_prob`, everyone else
/// listens (half-duplex).
void random_slot(const graph::UnitDiskGraph& g, double tx_prob,
                 common::Rng& rng, std::vector<radio::TxRecord>& txs,
                 std::vector<bool>& listening) {
  txs.clear();
  listening.assign(g.size(), true);
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (!rng.bernoulli(tx_prob)) continue;
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = v;
    txs.push_back({v, m});
    listening[v] = false;
  }
}

/// Runs `slots` random slots through both models and requires identical
/// deliveries (presence and sender, per listener, per slot). Returns the
/// number of deliveries seen so callers can assert non-vacuity.
std::size_t expect_identical_deliveries(const radio::InterferenceModel& a,
                                        const radio::InterferenceModel& b,
                                        const graph::UnitDiskGraph& g,
                                        std::size_t slots, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<radio::TxRecord> txs;
  std::vector<bool> listening;
  std::vector<std::optional<radio::Message>> da(g.size()), db(g.size());
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    random_slot(g, 0.25, rng, txs, listening);
    std::fill(da.begin(), da.end(), std::nullopt);
    std::fill(db.begin(), db.end(), std::nullopt);
    a.resolve(static_cast<radio::Slot>(t), txs, listening, da);
    b.resolve(static_cast<radio::Slot>(t), txs, listening, db);
    for (std::size_t u = 0; u < g.size(); ++u) {
      EXPECT_EQ(da[u].has_value(), db[u].has_value())
          << "slot " << t << " listener " << u;
      if (da[u].has_value() && db[u].has_value()) {
        ++delivered;
        EXPECT_EQ(da[u]->sender, db[u]->sender)
            << "slot " << t << " listener " << u;
      }
    }
  }
  return delivered;
}

TEST(FieldEquivalence, PlainSinrModelMatchesNaiveAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::SinrInterferenceModel naive(
        g, phys, {sinr::ResolveKind::kNaive, 1});
    const radio::SinrInterferenceModel field(
        g, phys, {sinr::ResolveKind::kField, 1});
    EXPECT_GT(expect_identical_deliveries(naive, field, g, 24, 100 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(FieldEquivalence, FadingSinrModelMatchesNaiveAcrossSeeds) {
  sinr::FadingSpec fading;
  fading.kind = sinr::FadingKind::kRayleigh;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::FadingSinrInterferenceModel naive(
        g, phys, fading, {sinr::ResolveKind::kNaive, 1});
    const radio::FadingSinrInterferenceModel field(
        g, phys, fading, {sinr::ResolveKind::kField, 1});
    EXPECT_GT(expect_identical_deliveries(naive, field, g, 24, 200 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(FieldEquivalence, ThreadedFieldMatchesSerialField) {
  const auto g = random_graph(200, 4.5, 31);
  const auto phys = phys_for_radius(g.radius());
  const radio::SinrInterferenceModel serial(
      g, phys, {sinr::ResolveKind::kField, 1});
  const radio::SinrInterferenceModel threaded(
      g, phys, {sinr::ResolveKind::kField, 4});
  EXPECT_GT(expect_identical_deliveries(serial, threaded, g, 24, 300), 0u);
}

TEST(FieldEquivalence, ResolveReceptionMatchesNaiveOracle) {
  // The one-shot probe entry point: random transmitter clouds and listener
  // positions, the field-path winner must equal the per-candidate oracle's.
  common::Rng rng(41);
  const auto phys = phys_for_radius(1.0);
  std::size_t decoded = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<sinr::Transmitter> txs;
    txs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      txs.push_back({{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)}});
    }
    const geometry::Point at{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    const auto fast = sinr::resolve_reception(phys, at, txs);
    const auto oracle = sinr::resolve_reception_naive(phys, at, txs);
    ASSERT_EQ(fast.has_value(), oracle.has_value()) << "round " << round;
    if (fast.has_value()) {
      ++decoded;
      EXPECT_EQ(*fast, *oracle) << "round " << round;
    }
  }
  EXPECT_GT(decoded, 0u);  // the comparison is not vacuous
}

TEST(FieldEquivalence, FullProtocolReportsMatch) {
  // End to end: a complete MW coloring run must serialize to the identical
  // JSON report under either resolve path (colors, latencies, traffic — the
  // resolve knob is a pure wall-time knob).
  for (std::uint64_t seed : {1u, 7u}) {
    const auto g = random_graph(60, 3.5, 50 + seed);
    core::MwRunConfig cfg;
    cfg.seed = seed;
    cfg.resolve = sinr::ResolveKind::kNaive;
    const std::string naive = core::to_json(core::run_mw_coloring(g, cfg));
    cfg.resolve = sinr::ResolveKind::kField;
    const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
    EXPECT_EQ(naive, field) << "seed " << seed;
    EXPECT_FALSE(naive.empty());
  }
}

TEST(FieldEquivalence, FullFadingProtocolReportsMatch) {
  const auto g = random_graph(60, 3.5, 61);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.fading.kind = sinr::FadingKind::kRayleigh;
  cfg.resolve = sinr::ResolveKind::kNaive;
  const std::string naive = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.resolve = sinr::ResolveKind::kField;
  const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(naive, field);
}

// --- simd kernel path (ResolveKind::kSimd) ---

TEST(SimdEquivalence, PlainSinrModelMatchesFieldAndNaiveAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::SinrInterferenceModel naive(
        g, phys, {sinr::ResolveKind::kNaive, 1});
    const radio::SinrInterferenceModel field(
        g, phys, {sinr::ResolveKind::kField, 1});
    const radio::SinrInterferenceModel simd(
        g, phys, {sinr::ResolveKind::kSimd, 1});
    EXPECT_GT(expect_identical_deliveries(field, simd, g, 24, 100 + seed), 0u)
        << "seed " << seed;
    EXPECT_GT(expect_identical_deliveries(naive, simd, g, 24, 100 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(SimdEquivalence, FadingSinrModelMatchesFieldAcrossSeeds) {
  // Per-listener fade gains exercise the kernel's non-invariant weight path
  // (weights rebuilt per listener in shard scratch).
  sinr::FadingSpec fading;
  fading.kind = sinr::FadingKind::kRayleigh;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::FadingSinrInterferenceModel field(
        g, phys, fading, {sinr::ResolveKind::kField, 1});
    const radio::FadingSinrInterferenceModel simd(
        g, phys, fading, {sinr::ResolveKind::kSimd, 1});
    EXPECT_GT(expect_identical_deliveries(field, simd, g, 24, 200 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(SimdEquivalence, ThreadedSimdMatchesSerialSimd) {
  // The batched Kahan reduction is a fixed 8-lane spec, so F(u) — and with
  // it every decode — is independent of the shard layout.
  const auto g = random_graph(200, 4.5, 31);
  const auto phys = phys_for_radius(g.radius());
  const radio::SinrInterferenceModel serial(
      g, phys, {sinr::ResolveKind::kSimd, 1});
  const radio::SinrInterferenceModel threaded(
      g, phys, {sinr::ResolveKind::kSimd, 4});
  EXPECT_GT(expect_identical_deliveries(serial, threaded, g, 24, 300), 0u);
}

TEST(SimdEquivalence, ResolveReceptionMatchesNaiveOracle) {
  // The one-shot probe entry point through the SoA kernel: same winner (or
  // same silence) as the per-candidate oracle on random clouds.
  common::Rng rng(43);
  const auto phys = phys_for_radius(1.0);
  std::size_t decoded = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<sinr::Transmitter> txs;
    txs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      txs.push_back({{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)}});
    }
    const geometry::Point at{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    const auto simd =
        sinr::resolve_reception(phys, at, txs, sinr::ResolveKind::kSimd);
    const auto oracle = sinr::resolve_reception_naive(phys, at, txs);
    ASSERT_EQ(simd.has_value(), oracle.has_value()) << "round " << round;
    if (simd.has_value()) {
      ++decoded;
      EXPECT_EQ(*simd, *oracle) << "round " << round;
    }
  }
  EXPECT_GT(decoded, 0u);
}

TEST(SimdEquivalence, FullProtocolReportsMatchAtThreads1And4) {
  // End to end at the acceptance bar: byte-identical run JSON for simd vs
  // field at --threads ∈ {1, 4}.
  for (std::uint64_t seed : {1u, 7u}) {
    const auto g = random_graph(60, 3.5, 50 + seed);
    core::MwRunConfig cfg;
    cfg.seed = seed;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      cfg.threads = threads;
      cfg.resolve = sinr::ResolveKind::kField;
      const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
      cfg.resolve = sinr::ResolveKind::kSimd;
      const std::string simd = core::to_json(core::run_mw_coloring(g, cfg));
      EXPECT_EQ(field, simd) << "seed " << seed << " threads " << threads;
      EXPECT_FALSE(simd.empty());
    }
  }
}

TEST(SimdEquivalence, FullFadingProtocolReportsMatch) {
  const auto g = random_graph(60, 3.5, 61);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.fading.kind = sinr::FadingKind::kRayleigh;
  cfg.resolve = sinr::ResolveKind::kField;
  const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.resolve = sinr::ResolveKind::kSimd;
  const std::string simd = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(field, simd);
}

TEST(SimdEquivalence, GraphMediumIgnoresResolveKind) {
  // Third medium: the graph collision model has no SINR arithmetic; the
  // resolve knob must be inert there (identical run JSON).
  const auto g = random_graph(60, 3.5, 71);
  core::MwRunConfig cfg;
  cfg.seed = 9;
  cfg.graph_model = true;
  cfg.resolve = sinr::ResolveKind::kField;
  const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.resolve = sinr::ResolveKind::kSimd;
  const std::string simd = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(field, simd);
}

TEST(SimdEquivalence, FaultedRunWithDropWindowsMatchesField) {
  // Full fault plan — crashes, deafness, a periodic jammer (exercising the
  // kernel's grid-coverage fallback and JammerGain weights), a noise window
  // and delivery drop windows. Field and simd runs must serialize to the
  // same bytes: every fault answer is keyed on (plan, seed, slot, ids) and
  // every decode set is identical.
  const auto g = random_graph(60, 3.5, 91);
  faults::FaultPlan plan;
  plan.crashes.push_back({5, 1500, -1});
  plan.deafness.push_back({2, 0, 2000});
  faults::JammerSpec j;
  j.position = {0.05, 0.05};
  j.from = 0;
  j.to = 20000;
  j.power = 0.2;
  j.period = 3;
  j.duty = 1;
  plan.jammers.push_back(j);
  plan.noise.push_back({1000, 3000, 1.3});
  plan.drops.push_back({0, 20000, 0.05});

  core::MwRunConfig cfg;
  cfg.seed = 515;
  const auto faulted_run = [&](sinr::ResolveKind kind) {
    cfg.resolve = kind;
    core::MwInstance instance(g, cfg);
    faults::FaultEngine engine(plan, cfg.seed);
    engine.install(instance.simulator());
    const auto result = instance.run();
    EXPECT_GT(engine.stats().dropped_deliveries, 0u);
    return core::to_json(result);
  };
  const std::string field = faulted_run(sinr::ResolveKind::kField);
  EXPECT_EQ(field, faulted_run(sinr::ResolveKind::kSimd));
  EXPECT_FALSE(field.empty());
}

}  // namespace
}  // namespace sinrcolor
