// Field-vs-naive equivalence suite: the shared interference-field fast path
// (sinr/field_engine.h) must deliver EXACTLY the same messages as the naive
// per-(sender, listener) resolution it replaced — across random deployments,
// random transmitter sets, all three SINR entry points (the plain medium,
// the fading medium and sinr::resolve_reception) and any thread count. The
// naive loops are kept in the tree purely as the A/B oracle exercised here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/report.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "radio/interference_model.h"
#include "sinr/reception.h"

namespace sinrcolor {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph random_graph(std::size_t n, double side,
                                  std::uint64_t seed) {
  common::Rng rng(seed);
  return graph::UnitDiskGraph(geometry::uniform_deployment(n, side, rng), 1.0);
}

/// Random slot workload: each node transmits w.p. `tx_prob`, everyone else
/// listens (half-duplex).
void random_slot(const graph::UnitDiskGraph& g, double tx_prob,
                 common::Rng& rng, std::vector<radio::TxRecord>& txs,
                 std::vector<bool>& listening) {
  txs.clear();
  listening.assign(g.size(), true);
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (!rng.bernoulli(tx_prob)) continue;
    radio::Message m;
    m.kind = radio::MessageKind::kCompete;
    m.sender = v;
    txs.push_back({v, m});
    listening[v] = false;
  }
}

/// Runs `slots` random slots through both models and requires identical
/// deliveries (presence and sender, per listener, per slot). Returns the
/// number of deliveries seen so callers can assert non-vacuity.
std::size_t expect_identical_deliveries(const radio::InterferenceModel& a,
                                        const radio::InterferenceModel& b,
                                        const graph::UnitDiskGraph& g,
                                        std::size_t slots, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<radio::TxRecord> txs;
  std::vector<bool> listening;
  std::vector<std::optional<radio::Message>> da(g.size()), db(g.size());
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    random_slot(g, 0.25, rng, txs, listening);
    std::fill(da.begin(), da.end(), std::nullopt);
    std::fill(db.begin(), db.end(), std::nullopt);
    a.resolve(static_cast<radio::Slot>(t), txs, listening, da);
    b.resolve(static_cast<radio::Slot>(t), txs, listening, db);
    for (std::size_t u = 0; u < g.size(); ++u) {
      EXPECT_EQ(da[u].has_value(), db[u].has_value())
          << "slot " << t << " listener " << u;
      if (da[u].has_value() && db[u].has_value()) {
        ++delivered;
        EXPECT_EQ(da[u]->sender, db[u]->sender)
            << "slot " << t << " listener " << u;
      }
    }
  }
  return delivered;
}

TEST(FieldEquivalence, PlainSinrModelMatchesNaiveAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::SinrInterferenceModel naive(
        g, phys, {sinr::ResolveKind::kNaive, 1});
    const radio::SinrInterferenceModel field(
        g, phys, {sinr::ResolveKind::kField, 1});
    EXPECT_GT(expect_identical_deliveries(naive, field, g, 24, 100 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(FieldEquivalence, FadingSinrModelMatchesNaiveAcrossSeeds) {
  sinr::FadingSpec fading;
  fading.kind = sinr::FadingKind::kRayleigh;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto g = random_graph(150, 4.0, seed);
    const auto phys = phys_for_radius(g.radius());
    const radio::FadingSinrInterferenceModel naive(
        g, phys, fading, {sinr::ResolveKind::kNaive, 1});
    const radio::FadingSinrInterferenceModel field(
        g, phys, fading, {sinr::ResolveKind::kField, 1});
    EXPECT_GT(expect_identical_deliveries(naive, field, g, 24, 200 + seed), 0u)
        << "seed " << seed;
  }
}

TEST(FieldEquivalence, ThreadedFieldMatchesSerialField) {
  const auto g = random_graph(200, 4.5, 31);
  const auto phys = phys_for_radius(g.radius());
  const radio::SinrInterferenceModel serial(
      g, phys, {sinr::ResolveKind::kField, 1});
  const radio::SinrInterferenceModel threaded(
      g, phys, {sinr::ResolveKind::kField, 4});
  EXPECT_GT(expect_identical_deliveries(serial, threaded, g, 24, 300), 0u);
}

TEST(FieldEquivalence, ResolveReceptionMatchesNaiveOracle) {
  // The one-shot probe entry point: random transmitter clouds and listener
  // positions, the field-path winner must equal the per-candidate oracle's.
  common::Rng rng(41);
  const auto phys = phys_for_radius(1.0);
  std::size_t decoded = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<sinr::Transmitter> txs;
    txs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      txs.push_back({{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)}});
    }
    const geometry::Point at{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    const auto fast = sinr::resolve_reception(phys, at, txs);
    const auto oracle = sinr::resolve_reception_naive(phys, at, txs);
    ASSERT_EQ(fast.has_value(), oracle.has_value()) << "round " << round;
    if (fast.has_value()) {
      ++decoded;
      EXPECT_EQ(*fast, *oracle) << "round " << round;
    }
  }
  EXPECT_GT(decoded, 0u);  // the comparison is not vacuous
}

TEST(FieldEquivalence, FullProtocolReportsMatch) {
  // End to end: a complete MW coloring run must serialize to the identical
  // JSON report under either resolve path (colors, latencies, traffic — the
  // resolve knob is a pure wall-time knob).
  for (std::uint64_t seed : {1u, 7u}) {
    const auto g = random_graph(60, 3.5, 50 + seed);
    core::MwRunConfig cfg;
    cfg.seed = seed;
    cfg.resolve = sinr::ResolveKind::kNaive;
    const std::string naive = core::to_json(core::run_mw_coloring(g, cfg));
    cfg.resolve = sinr::ResolveKind::kField;
    const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
    EXPECT_EQ(naive, field) << "seed " << seed;
    EXPECT_FALSE(naive.empty());
  }
}

TEST(FieldEquivalence, FullFadingProtocolReportsMatch) {
  const auto g = random_graph(60, 3.5, 61);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  cfg.fading.kind = sinr::FadingKind::kRayleigh;
  cfg.resolve = sinr::ResolveKind::kNaive;
  const std::string naive = core::to_json(core::run_mw_coloring(g, cfg));
  cfg.resolve = sinr::ResolveKind::kField;
  const std::string field = core::to_json(core::run_mw_coloring(g, cfg));
  EXPECT_EQ(naive, field);
}

}  // namespace
}  // namespace sinrcolor
