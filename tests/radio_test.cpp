#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "geometry/deployment.h"
#include "radio/interference_model.h"
#include "radio/simulator.h"
#include "radio/wakeup.h"

namespace sinrcolor::radio {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph chain(std::size_t n, double spacing = 0.9) {
  return {geometry::line_deployment(n, spacing), 1.0};
}

Message compete_msg(graph::NodeId sender, std::int64_t counter = 0) {
  Message m;
  m.kind = MessageKind::kCompete;
  m.sender = sender;
  m.counter = counter;
  return m;
}

TEST(Wakeup, Schedules) {
  EXPECT_EQ(simultaneous_wakeup(3), (WakeupSchedule{0, 0, 0}));
  EXPECT_EQ(staggered_wakeup(3, 5), (WakeupSchedule{0, 5, 10}));
  common::Rng rng(1);
  const auto uniform = uniform_wakeup(100, 50, rng);
  for (Slot s : uniform) {
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 50);
  }
  EXPECT_EQ(last_wakeup(WakeupSchedule{3, 9, 2}), 9);
  EXPECT_EQ(last_wakeup({}), 0);
}

TEST(GraphModel, DeliversIffExactlyOneNeighborTransmits) {
  const auto g = chain(4);  // 0-1-2-3
  GraphInterferenceModel model(g);
  std::vector<bool> listening(4, true);
  std::vector<std::optional<Message>> deliveries(4);

  // Single transmitter 1: neighbors 0 and 2 decode.
  model.resolve(0, {{1, compete_msg(1)}}, listening, deliveries);
  EXPECT_TRUE(deliveries[0].has_value());
  EXPECT_TRUE(deliveries[2].has_value());
  EXPECT_FALSE(deliveries[1].has_value());
  EXPECT_FALSE(deliveries[3].has_value());

  // Transmitters 0 and 2: node 1 hears both → collision → nothing; node 3
  // hears only 2 → decodes.
  std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
  model.resolve(0, {{0, compete_msg(0)}, {2, compete_msg(2)}}, listening,
                deliveries);
  EXPECT_FALSE(deliveries[1].has_value());
  ASSERT_TRUE(deliveries[3].has_value());
  EXPECT_EQ(deliveries[3]->sender, 2u);
}

TEST(GraphModel, TransmittersDoNotReceive) {
  const auto g = chain(2);
  GraphInterferenceModel model(g);
  // Both nodes transmit (half-duplex: neither listens); each is the other's
  // unique transmitting neighbor, yet neither may receive.
  std::vector<bool> listening{false, false};
  std::vector<std::optional<Message>> deliveries(2);
  model.resolve(0, {{0, compete_msg(0)}, {1, compete_msg(1)}}, listening,
                deliveries);
  EXPECT_FALSE(deliveries[0].has_value());
  EXPECT_FALSE(deliveries[1].has_value());
}

TEST(SinrModel, LoneTransmitterReachesNeighbors) {
  const auto g = chain(3);
  SinrInterferenceModel model(g, phys_for_radius(1.0));
  std::vector<bool> listening(3, true);
  std::vector<std::optional<Message>> deliveries(3);
  model.resolve(0, {{1, compete_msg(1, 77)}}, listening, deliveries);
  ASSERT_TRUE(deliveries[0].has_value());
  EXPECT_EQ(deliveries[0]->counter, 77);
  EXPECT_TRUE(deliveries[2].has_value());
}

TEST(SinrModel, SimultaneousNeighborsCollide) {
  // Nodes 0 and 2 transmit; node 1 sits between them: SINR ≈ 1 < β at node 1.
  const auto g = chain(3);
  SinrInterferenceModel model(g, phys_for_radius(1.0));
  std::vector<bool> listening{true, true, true};
  std::vector<std::optional<Message>> deliveries(3);
  model.resolve(0, {{0, compete_msg(0)}, {2, compete_msg(2)}}, listening,
                deliveries);
  EXPECT_FALSE(deliveries[1].has_value());
}

TEST(SinrModel, FarInterferenceAccumulates) {
  // Under the graph model a transmitter 1.1 away cannot disturb; under SINR
  // enough of them do. Receiver at origin, sender at distance 1; ring of 12
  // interferers at distance 1.5 (outside the UDG disc of the receiver).
  geometry::Deployment dep;
  dep.side = 10.0;
  dep.points = {{5.0, 5.0}, {6.0, 5.0}};
  for (int k = 0; k < 12; ++k) {
    const double angle = 2.0 * M_PI * k / 12.0;
    dep.points.push_back(
        {5.0 + 1.5 * std::cos(angle), 5.0 + 1.5 * std::sin(angle)});
  }
  graph::UnitDiskGraph g(dep, 1.0);
  SinrInterferenceModel sinr_model(g, phys_for_radius(1.0));
  GraphInterferenceModel graph_model(g);

  std::vector<TxRecord> txs{{1, compete_msg(1)}};
  for (graph::NodeId v = 2; v < dep.points.size(); ++v) {
    txs.push_back({v, compete_msg(v)});
  }
  std::vector<bool> listening(dep.points.size(), true);
  listening[1] = false;
  for (std::size_t i = 2; i < dep.points.size(); ++i) listening[i] = false;

  std::vector<std::optional<Message>> deliveries(dep.points.size());
  graph_model.resolve(0, txs, listening, deliveries);
  ASSERT_TRUE(deliveries[0].has_value());  // graph model: only 1 neighbor txs

  std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
  sinr_model.resolve(0, txs, listening, deliveries);
  EXPECT_FALSE(deliveries[0].has_value());  // SINR: cumulative ring kills it
}

// A protocol that transmits a fixed message in a fixed slot, else listens.
class ScriptedProtocol final : public Protocol {
 public:
  ScriptedProtocol(graph::NodeId id, Slot tx_slot)
      : id_(id), tx_slot_(tx_slot) {}

  void on_wake(Slot) override { awake_ = true; }
  std::optional<Message> begin_slot(Slot slot, common::Rng&) override {
    ++slots_seen_;
    if (slot == tx_slot_) return compete_msg(id_, 42);
    return std::nullopt;
  }
  void on_receive(Slot, const Message& m) override { received_.push_back(m); }
  void end_slot(Slot) override {}
  bool decided() const override { return !received_.empty(); }

  bool awake_ = false;
  int slots_seen_ = 0;
  std::vector<Message> received_;

 private:
  graph::NodeId id_;
  Slot tx_slot_;
};

TEST(Simulator, DeliversAndStopsWhenAllDecided) {
  const auto g = chain(3);
  auto model = std::make_unique<SinrInterferenceModel>(g, phys_for_radius(1.0));
  Simulator sim(g, std::move(model), simultaneous_wakeup(3), 7);
  std::vector<ScriptedProtocol*> protos;
  for (graph::NodeId v = 0; v < 3; ++v) {
    // Node 1 transmits at slot 0 (0 and 2 decide); node 0 at slot 1 (1
    // decides); node 2 would transmit at slot 2 but the run stops before.
    auto p = std::make_unique<ScriptedProtocol>(v, v == 1 ? 0 : (v == 0 ? 1 : 2));
    protos.push_back(p.get());
    sim.set_protocol(v, std::move(p));
  }
  const auto metrics = sim.run(100);
  EXPECT_TRUE(metrics.all_decided);
  EXPECT_EQ(metrics.slots_executed, 2);
  EXPECT_EQ(metrics.total_transmissions, 2u);
  // Slot 0: 0 and 2 hear node 1. Slot 1: node 1 hears... 0 and 2 collide at 1.
  ASSERT_EQ(protos[0]->received_.size(), 1u);
  EXPECT_EQ(protos[0]->received_[0].sender, 1u);
  EXPECT_EQ(protos[0]->received_[0].counter, 42);
}

TEST(Simulator, RespectsWakeupSchedule) {
  const auto g = chain(2, 2.0);  // disconnected pair
  auto model = std::make_unique<GraphInterferenceModel>(g);
  Simulator sim(g, std::move(model), WakeupSchedule{0, 5}, 7);
  std::vector<ScriptedProtocol*> protos;
  for (graph::NodeId v = 0; v < 2; ++v) {
    auto p = std::make_unique<ScriptedProtocol>(v, -1);  // never transmit
    protos.push_back(p.get());
    sim.set_protocol(v, std::move(p));
  }
  (void)sim.run(10);
  EXPECT_EQ(protos[0]->slots_seen_, 10);
  EXPECT_EQ(protos[1]->slots_seen_, 5);  // woke at slot 5
}

TEST(Simulator, ObserverSeesTransmissions) {
  const auto g = chain(2);
  auto model = std::make_unique<GraphInterferenceModel>(g);
  Simulator sim(g, std::move(model), simultaneous_wakeup(2), 7);
  for (graph::NodeId v = 0; v < 2; ++v) {
    sim.set_protocol(v, std::make_unique<ScriptedProtocol>(v, 3));
  }
  std::size_t seen = 0;
  sim.add_observer([&](Slot slot, std::span<const TxRecord> txs) {
    if (slot == 3) seen = txs.size();
  });
  (void)sim.run(5);
  EXPECT_EQ(seen, 2u);
}

TEST(RunMetrics, LatencyComputation) {
  RunMetrics m;
  m.wake_slot = {0, 10};
  m.decision_slot = {5, 30};
  EXPECT_EQ(m.max_decision_latency(), 20);
  EXPECT_DOUBLE_EQ(m.mean_decision_latency(), 12.5);
  m.decision_slot = {5, -1};
  EXPECT_EQ(m.max_decision_latency(), -1);  // undecided flagged
}

}  // namespace
}  // namespace sinrcolor::radio
