#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baseline/greedy_coloring.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "graph/graph_algos.h"
#include "graph/independent_set.h"
#include "mac/algorithms.h"
#include "mac/distance_d.h"
#include "mac/message_passing.h"
#include "mac/palette_reduction.h"
#include "mac/simulation.h"
#include "mac/tdma.h"

namespace sinrcolor::mac {
namespace {

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

graph::UnitDiskGraph uniform_graph(std::size_t n, double side,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TEST(TdmaSchedule, CompactsSparsePalette) {
  graph::Coloring c{{0, 7, 7, 100}};
  const auto schedule = TdmaSchedule::from_coloring(c);
  EXPECT_EQ(schedule.frame_length(), 3u);
  EXPECT_EQ(schedule.slot_of(0), 0u);
  EXPECT_EQ(schedule.slot_of(1), 1u);
  EXPECT_EQ(schedule.slot_of(2), 1u);
  EXPECT_EQ(schedule.slot_of(3), 2u);
  EXPECT_EQ(schedule.nodes_in_slot(1), (std::vector<graph::NodeId>{1, 2}));
}

TEST(TdmaAudit, Theorem3ColoringIsInterferenceFree) {
  const auto g = uniform_graph(150, 5.0, 42);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  ASSERT_TRUE(graph::is_valid_coloring(g, coloring, d + 1.0));
  const auto schedule = TdmaSchedule::from_coloring(coloring);
  const auto audit = audit_tdma_sinr(g, phys, schedule);
  EXPECT_TRUE(audit.interference_free()) << audit.summary();
  EXPECT_EQ(audit.senders_fully_heard, g.size());
}

TEST(TdmaAudit, Distance1ColoringFailsUnderSinr) {
  // Distance-1 coloring: two neighbors of a common node can share a color and
  // transmit together → guaranteed collisions at that node; also hidden far
  // interference. Dense instance makes failures certain.
  const auto g = uniform_graph(200, 4.0, 43);
  const auto phys = phys_for_radius(1.0);
  const auto coloring = baseline::greedy_coloring(g);
  ASSERT_TRUE(graph::is_valid_coloring(g, coloring, 1.0));
  const auto audit = audit_tdma_sinr(g, phys, TdmaSchedule::from_coloring(coloring));
  EXPECT_LT(audit.delivery_rate(), 1.0) << audit.summary();
}

TEST(TdmaAudit, Distance2SufficesInGraphModelButNotSinr) {
  const auto g = uniform_graph(220, 4.0, 44);
  const auto phys = phys_for_radius(1.0);
  const auto coloring = baseline::greedy_distance_d_coloring(g, 2.0);
  ASSERT_TRUE(graph::is_valid_coloring(g, coloring, 2.0));
  const auto schedule = TdmaSchedule::from_coloring(coloring);

  // Graph-based model: distance-2 is exactly the classical sufficient
  // condition — zero losses.
  const auto graph_audit = audit_tdma_graph_model(g, schedule);
  EXPECT_TRUE(graph_audit.interference_free()) << graph_audit.summary();

  // SINR: additive far interference leaks through (the paper's Section V
  // motivation). On a dense instance some pair fails.
  const auto sinr_audit = audit_tdma_sinr(g, phys, schedule);
  EXPECT_LT(sinr_audit.delivery_rate(), 1.0) << sinr_audit.summary();
  // But it is still much better than distance-1.
  EXPECT_GT(sinr_audit.delivery_rate(), 0.8) << sinr_audit.summary();
}

TEST(DistanceD, ProtocolColoringValidAtDistanceD) {
  const auto g = uniform_graph(70, 4.5, 45);
  core::MwRunConfig cfg;
  cfg.seed = 9;
  const double d = 2.0;
  const auto result = compute_distance_d_coloring(g, d, cfg);
  EXPECT_TRUE(result.run.metrics.all_decided);
  EXPECT_TRUE(graph::is_valid_coloring(g, result.coloring, d))
      << result.run.summary();
  EXPECT_GE(result.scaled_max_degree, g.max_degree());
}

TEST(DistanceD, Theorem3PredicateChecksDistance)
{
  const auto g = uniform_graph(80, 5.0, 46);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto good = baseline::greedy_distance_d_coloring(g, d + 1.0);
  EXPECT_TRUE(satisfies_theorem3_distance(g, good, phys.alpha, phys.beta));
  const auto bad = baseline::greedy_coloring(g);
  EXPECT_FALSE(satisfies_theorem3_distance(g, bad, phys.alpha, phys.beta));
}

TEST(MessagePassing, InboxLookup) {
  Inbox inbox;
  inbox.messages = {{2, {10}}, {5, {20}}};
  ASSERT_NE(inbox.from(2), nullptr);
  EXPECT_EQ((*inbox.from(2))[0], 10);
  EXPECT_EQ(inbox.from(3), nullptr);
}

TEST(MessagePassing, FloodingMatchesBfsOracle) {
  const auto g = uniform_graph(100, 3.5, 47);
  auto nodes = instantiate(g, [](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<FloodingBfs>(v, 0);
  });
  const auto result = run_reference(g, nodes, 200);
  EXPECT_TRUE(result.all_terminated || !graph::is_connected(g));

  const auto oracle_dist = graph::bfs_distances(g, 0);
  const auto oracle_parent = graph::bfs_parents(g, 0);
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto* algo = static_cast<FloodingBfs*>(nodes[v].get());
    if (oracle_dist[v] == graph::kUnreachable) {
      EXPECT_EQ(algo->distance(), FloodingBfs::kUndiscovered);
    } else {
      EXPECT_EQ(algo->distance(), oracle_dist[v]);
      if (v != 0) {
        EXPECT_EQ(algo->parent(), oracle_parent[v]);
      }
    }
  }
}

TEST(MessagePassing, LubyMisIsMaximalIndependent) {
  const auto g = uniform_graph(120, 4.0, 48);
  auto nodes = instantiate(g, [](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<LubyMis>(v, 999);
  });
  const auto result = run_reference(g, nodes, 400);
  ASSERT_TRUE(result.all_terminated);
  std::vector<graph::NodeId> mis;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (static_cast<LubyMis*>(nodes[v].get())->in_mis()) mis.push_back(v);
  }
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mis));
}

TEST(MessagePassing, MaxIdGossipConverges) {
  const auto g = uniform_graph(60, 2.5, 49);
  ASSERT_TRUE(graph::is_connected(g));
  const auto diameter = graph::hop_diameter(g);
  auto nodes = instantiate(g, [&](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<MaxIdGossip>(v, diameter + 1);
  });
  const auto result = run_reference(g, nodes, diameter + 2);
  ASSERT_TRUE(result.all_terminated);
  for (const auto& node : nodes) {
    EXPECT_EQ(static_cast<MaxIdGossip*>(node.get())->max_id(), g.size() - 1);
  }
}

// Corollary 1: simulation over the SINR TDMA MAC reproduces the reference
// outputs exactly, for every algorithm.
class SimulationEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationEquivalenceTest, FloodingIdenticalUnderSinr) {
  const auto g = uniform_graph(90, 3.5, GetParam());
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  const auto schedule = TdmaSchedule::from_coloring(coloring);

  auto make = [](graph::NodeId v,
                 const graph::UnitDiskGraph&) -> std::unique_ptr<UniformAlgorithm> {
    return std::make_unique<FloodingBfs>(v, 0);
  };
  auto ref_nodes = instantiate(g, make);
  auto sim_nodes = instantiate(g, make);
  const auto ref = run_reference(g, ref_nodes, 300);
  const auto sim = run_over_sinr_tdma(g, phys, schedule, sim_nodes, 300);

  EXPECT_EQ(sim.missed_deliveries, 0u) << sim.summary();
  EXPECT_EQ(ref.rounds, sim.rounds);
  EXPECT_EQ(sim.slots_used,
            static_cast<radio::Slot>(sim.rounds) * schedule.frame_length());
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    const auto* a = static_cast<FloodingBfs*>(ref_nodes[v].get());
    const auto* b = static_cast<FloodingBfs*>(sim_nodes[v].get());
    ASSERT_EQ(a->distance(), b->distance()) << "node " << v;
    ASSERT_EQ(a->parent(), b->parent()) << "node " << v;
  }
}

TEST_P(SimulationEquivalenceTest, LubyIdenticalUnderSinr) {
  const auto g = uniform_graph(90, 3.5, GetParam() + 1000);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  const auto schedule = TdmaSchedule::from_coloring(coloring);

  auto make = [](graph::NodeId v,
                 const graph::UnitDiskGraph&) -> std::unique_ptr<UniformAlgorithm> {
    return std::make_unique<LubyMis>(v, 4242);
  };
  auto ref_nodes = instantiate(g, make);
  auto sim_nodes = instantiate(g, make);
  (void)run_reference(g, ref_nodes, 400);
  const auto sim = run_over_sinr_tdma(g, phys, schedule, sim_nodes, 400);
  EXPECT_EQ(sim.missed_deliveries, 0u) << sim.summary();
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    ASSERT_EQ(static_cast<LubyMis*>(ref_nodes[v].get())->in_mis(),
              static_cast<LubyMis*>(sim_nodes[v].get())->in_mis())
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationEquivalenceTest,
                         ::testing::Values(60, 61, 62));

TEST(Simulation, InsufficientColoringDegradesOutputs) {
  // With a distance-1 schedule the MAC loses deliveries; the executor must
  // keep going and report them rather than abort.
  const auto g = uniform_graph(150, 3.0, 63);
  const auto phys = phys_for_radius(1.0);
  const auto schedule =
      TdmaSchedule::from_coloring(baseline::greedy_coloring(g));
  auto nodes = instantiate(g, [](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<MaxIdGossip>(v, 3);
  });
  const auto sim = run_over_sinr_tdma(g, phys, schedule, nodes, 5);
  EXPECT_GT(sim.missed_deliveries, 0u) << sim.summary();
}

TEST(PaletteReduction, ReferenceProducesDeltaPlusOne) {
  const auto g = uniform_graph(130, 4.0, 64);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  const auto schedule = TdmaSchedule::from_coloring(coloring);
  const auto reduced = reduce_palette_reference(g, schedule, g.max_degree());
  EXPECT_TRUE(graph::is_valid_coloring(g, reduced));
  EXPECT_LE(reduced.palette_size(), g.max_degree() + 1);
}

TEST(PaletteReduction, SinrMatchesReferenceWithTheorem3Schedule) {
  const auto g = uniform_graph(130, 4.0, 65);
  const auto phys = phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
  const auto schedule = TdmaSchedule::from_coloring(coloring);

  const auto result = reduce_palette_sinr(g, phys, schedule, g.max_degree());
  EXPECT_EQ(result.missed_deliveries, 0u);
  EXPECT_TRUE(result.valid);
  EXPECT_LE(result.palette, g.max_degree() + 1);
  EXPECT_EQ(result.slots_used,
            static_cast<radio::Slot>(schedule.frame_length()));
  const auto reference = reduce_palette_reference(g, schedule, g.max_degree());
  EXPECT_EQ(result.reduced.color, reference.color);
}

}  // namespace
}  // namespace sinrcolor::mac
