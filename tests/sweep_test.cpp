// The sweep engine's determinism contract (common/sweep.h): trial i's
// result is a pure function of (base_seed, i) — independent of the thread
// count, the total trial count, and the order trials execute — and the
// engine returns results in trial order. Plus the zero-allocation
// steady-state contract of the slot loop, checked end-to-end through a real
// coloring run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/alloc_counter.h"
#include "common/rng.h"
#include "common/sweep.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"

namespace sinrcolor {
namespace {

graph::UnitDiskGraph dense_graph(std::size_t n, double avg_degree,
                                 std::uint64_t seed) {
  const double side = std::sqrt(static_cast<double>(n) * M_PI / avg_degree);
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

TEST(TrialSeedTest, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(common::trial_seed(7, 0), common::trial_seed(7, 0));
  EXPECT_NE(common::trial_seed(7, 0), common::trial_seed(7, 1));
  EXPECT_NE(common::trial_seed(7, 0), common::trial_seed(8, 0));
}

TEST(TrialSeedTest, DomainSeparatedFromPerNodeStreams) {
  // A trial stream must never coincide with a per-node stream of the same
  // seed, or trial t would correlate with node t's randomness.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(common::trial_seed(42, i), common::derive_seed(42, i));
  }
}

TEST(TrialSeedTest, NoCollisionsAcrossManyTrials) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seeds.push_back(common::trial_seed(1, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// A cheap deterministic "trial": hash a few draws from the trial's stream.
std::uint64_t digest_trial(const common::TrialContext& ctx) {
  common::Rng rng(ctx.seed);
  std::uint64_t h = ctx.index;
  for (int i = 0; i < 8; ++i) h = h * 31 + rng();
  return h;
}

TEST(SweepEngineTest, ResultsIndexedByTrial) {
  common::SweepEngine engine(1);
  const auto results = engine.run(16, 99, [](const common::TrialContext& ctx) {
    return ctx.index;
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

TEST(SweepEngineTest, ThreadCountNeverChangesResults) {
  common::SweepEngine serial(1);
  const auto expect = serial.run(33, 5, digest_trial);
  for (std::size_t threads : {2u, 4u, 7u}) {
    common::SweepEngine engine(threads);
    EXPECT_EQ(engine.run(33, 5, digest_trial), expect)
        << "results diverged at " << threads << " threads";
  }
}

TEST(SweepEngineTest, TrialCountNeverChangesEarlierTrials) {
  // Trial i's result must not depend on how many trials run after it: a
  // 10-trial sweep's prefix equals the 40-trial sweep's first 10 results.
  common::SweepEngine engine(3);
  const auto small = engine.run(10, 77, digest_trial);
  const auto large = engine.run(40, 77, digest_trial);
  ASSERT_EQ(small.size(), 10u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]) << "trial " << i;
  }
}

TEST(SweepEngineTest, ExecutionOrderInvisible) {
  // Perturb scheduling: trials stall different amounts depending on claim
  // order. Results must still be the pure per-index digests, in order.
  common::SweepEngine serial(1);
  const auto expect = serial.run(24, 3, digest_trial);
  common::SweepEngine engine(4);
  std::atomic<int> turn{0};
  const auto got = engine.run(24, 3, [&](const common::TrialContext& ctx) {
    const int my_turn = turn.fetch_add(1);
    volatile std::uint64_t spin = 0;
    for (int i = 0; i < (my_turn % 5) * 20000; ++i) spin = spin * 31 + 1;
    return digest_trial(ctx);
  });
  EXPECT_EQ(got, expect);
}

TEST(SweepEngineTest, TimingCoversEveryTrial) {
  common::SweepEngine engine(2);
  common::SweepTiming timing;
  engine.run(9, 1, digest_trial, &timing);
  ASSERT_EQ(timing.trial_us.size(), 9u);
  EXPECT_GE(timing.p95_us(), timing.p50_us());
  EXPECT_GE(timing.max_us(), timing.p95_us());
  EXPECT_GE(timing.total_us, 0u);
}

TEST(SweepEngineTest, ZeroTrialsIsANoop) {
  common::SweepEngine engine(4);
  common::SweepTiming timing;
  const auto results = engine.run(0, 1, digest_trial, &timing);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(timing.trial_us.empty());
}

// End-to-end over the real protocol: a parallel sweep of full coloring runs
// is byte-equal to the serial sweep, and every run's slot loop went
// allocation-free in steady state (the SINRCOLOR_COUNT_ALLOCS build checks
// the counter; sanitizer builds check determinism only).
TEST(SweepEngineTest, ColoringSweepDeterministicAndAllocFree) {
  const auto run_sweep = [](std::size_t threads) {
    common::SweepEngine engine(threads);
    return engine.run(3, 11, [](const common::TrialContext& ctx) {
      const auto g =
          dense_graph(96, 10.0, common::derive_seed(ctx.seed, 0x67));
      core::MwRunConfig cfg;
      cfg.seed = ctx.seed;
      const auto r = core::run_mw_coloring(g, cfg);
      EXPECT_TRUE(r.coloring_valid);
      if (common::alloc_counting_enabled()) {
        EXPECT_TRUE(r.metrics.steady_state_alloc_free())
            << "slot loop allocated in steady state: "
            << r.metrics.slot_heap_allocs << " allocs, last in slot "
            << r.metrics.last_alloc_slot << " of " << r.metrics.slots_executed;
      }
      return r.summary();
    });
  };
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace sinrcolor
