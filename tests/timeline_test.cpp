// Tests for the state timeline instrumentation and the clique lower bound.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/timeline.h"
#include "geometry/deployment.h"
#include "graph/packing.h"
#include "obs/observation.h"

namespace sinrcolor {
namespace {

TEST(StateTimeline, SamplesSumToNodeCountAndEndColored) {
  common::Rng rng(55);
  graph::UnitDiskGraph g(geometry::uniform_deployment(60, 3.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 3;
  core::MwInstance instance(g, cfg);
  core::StateTimeline timeline(64);
  timeline.attach(instance);
  const auto result = instance.run();
  ASSERT_TRUE(result.metrics.all_decided);
  ASSERT_FALSE(timeline.samples().empty());

  for (const auto& sample : timeline.samples()) {
    std::uint32_t total = 0;
    for (std::uint32_t c : sample.count) total += c;
    ASSERT_EQ(total, g.size());
  }
  // First sample: everyone in the listening phase (simultaneous wake-up).
  const auto& first = timeline.samples().front();
  EXPECT_EQ(first.count[static_cast<std::size_t>(core::MwStateKind::kListening)],
            g.size());
  // Last sample: nobody asleep, and decided states dominate.
  const auto& last = timeline.samples().back();
  EXPECT_EQ(last.count[static_cast<std::size_t>(core::MwStateKind::kAsleep)], 0u);
  const auto decided =
      last.count[static_cast<std::size_t>(core::MwStateKind::kLeader)] +
      last.count[static_cast<std::size_t>(core::MwStateKind::kColored)];
  EXPECT_GT(decided, g.size() / 2);
}

TEST(StateTimeline, DecidedFractionIsMonotone) {
  common::Rng rng(56);
  graph::UnitDiskGraph g(geometry::uniform_deployment(50, 3.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 4;
  core::MwInstance instance(g, cfg);
  core::StateTimeline timeline(32);
  timeline.attach(instance);
  (void)instance.run();
  const auto t25 = timeline.decided_fraction_slot(0.25);
  const auto t50 = timeline.decided_fraction_slot(0.5);
  const auto t90 = timeline.decided_fraction_slot(0.9);
  ASSERT_GE(t25, 0);
  ASSERT_GE(t50, t25);
  ASSERT_GE(t90, t50);
  EXPECT_EQ(timeline.decided_fraction_slot(0.0), timeline.samples().front().slot);
}

TEST(StateTimeline, AsciiRenderContainsAllStates) {
  common::Rng rng(57);
  graph::UnitDiskGraph g(geometry::uniform_deployment(40, 2.5, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 5;
  core::MwInstance instance(g, cfg);
  core::StateTimeline timeline(16);
  timeline.attach(instance);
  (void)instance.run();
  const auto art = timeline.render_ascii(40);
  EXPECT_NE(art.find("listening"), std::string::npos);
  EXPECT_NE(art.find("competing"), std::string::npos);
  EXPECT_NE(art.find("colored"), std::string::npos);
  EXPECT_NE(art.find("samples"), std::string::npos);
}

TEST(StateTimeline, EmptyTimelineRendersPlaceholder) {
  core::StateTimeline timeline(16);
  EXPECT_EQ(timeline.render_ascii(), "(no samples)\n");
  EXPECT_EQ(timeline.decided_fraction_slot(0.5), -1);
}

TEST(TimelineFromTrace, MatchesLiveAttachedSampling) {
  // The offline replay (timeline_from_trace) must reproduce the counts the
  // live observer saw at every shared sample slot: a sample at boundary s
  // reflects all state changes up to and including slot s.
  common::Rng rng(59);
  graph::UnitDiskGraph g(geometry::uniform_deployment(50, 3.0, rng), 1.0);
  core::MwRunConfig cfg;
  cfg.seed = 6;
  cfg.wakeup = core::WakeupKind::kUniform;
  cfg.wakeup_window = 200;

  obs::RunObservation observation(std::size_t{1} << 22);
  core::MwInstance instance(g, cfg);
  instance.attach_observation(&observation);
  core::StateTimeline live(64);
  live.attach(instance);
  (void)instance.run();
  ASSERT_EQ(observation.trace.dropped(), 0u);

  const auto events = observation.trace.events();
  const auto replayed = core::timeline_from_trace(events, g.size(), 64);
  ASSERT_GE(replayed.samples().size(), live.samples().size());
  for (std::size_t i = 0; i < live.samples().size(); ++i) {
    EXPECT_EQ(replayed.samples()[i].slot, live.samples()[i].slot) << i;
    EXPECT_EQ(replayed.samples()[i].count, live.samples()[i].count) << i;
  }
  // The replay additionally closes with the end-of-run population.
  const auto& final_count = replayed.samples().back().count;
  std::uint32_t total = 0;
  for (std::uint32_t c : final_count) total += c;
  EXPECT_EQ(total, g.size());
}

TEST(TimelineFromTrace, EmptyTraceYieldsNoSamples) {
  const auto timeline = core::timeline_from_trace({}, 10, 16);
  EXPECT_TRUE(timeline.samples().empty());
  EXPECT_EQ(timeline.node_count(), 10u);
  EXPECT_EQ(timeline.render_ascii(), "(no samples)\n");
  EXPECT_EQ(timeline.decided_fraction_slot(1.0), -1);
}

TEST(TimelineFromTrace, SingleEventProducesSingleSample) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent e;
  e.slot = 0;
  e.node = 2;
  e.kind = obs::EventKind::kMwTransition;
  e.a = static_cast<std::int32_t>(core::MwStateKind::kAsleep);
  e.b = static_cast<std::int64_t>(core::MwStateKind::kListening);
  events.push_back(e);

  const auto timeline = core::timeline_from_trace(events, 4, 16);
  ASSERT_EQ(timeline.samples().size(), 1u);
  const auto& s = timeline.samples().front();
  EXPECT_EQ(s.slot, 0);
  EXPECT_EQ(s.count[static_cast<std::size_t>(core::MwStateKind::kAsleep)], 3u);
  EXPECT_EQ(s.count[static_cast<std::size_t>(core::MwStateKind::kListening)],
            1u);
  EXPECT_NE(timeline.render_ascii().find("listening"), std::string::npos);
}

TEST(CliqueLowerBound, ExactOnHandInstances) {
  // Triangle + isolated node: clique number 3.
  geometry::Deployment dep;
  dep.side = 10.0;
  dep.points = {{0, 0}, {0.5, 0}, {0.25, 0.4}, {5, 5}};
  graph::UnitDiskGraph g(dep, 1.0);
  EXPECT_EQ(graph::greedy_clique_lower_bound(g), 3u);

  graph::UnitDiskGraph chain(geometry::line_deployment(5, 0.9), 1.0);
  EXPECT_EQ(graph::greedy_clique_lower_bound(chain), 2u);

  graph::UnitDiskGraph empty_graph(geometry::line_deployment(3, 2.0), 1.0);
  EXPECT_EQ(graph::greedy_clique_lower_bound(empty_graph), 1u);
}

TEST(CliqueLowerBound, NeverExceedsPaletteOfAnyValidColoring) {
  common::Rng rng(58);
  graph::UnitDiskGraph g(geometry::uniform_deployment(200, 5.0, rng), 1.0);
  const auto lb = graph::greedy_clique_lower_bound(g);
  EXPECT_GE(lb, 1u);
  EXPECT_LE(lb, g.max_degree() + 1);
  // Clique LB ≤ χ(G) ≤ palette of the greedy coloring.
  // (Checked against the MW protocol's palette in bench X1.)
}

}  // namespace
}  // namespace sinrcolor
