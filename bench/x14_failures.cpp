// X14 — crash-stop failures (beyond the paper's model). The paper assumes
// reliable nodes; a deployed initialization protocol meets dying ones. We
// kill a fraction of the nodes at random slots during the run and measure:
//   * the decided survivors' colors stay mutually valid (safety is local:
//     a correct decision never depends on nodes that later die);
//   * stalled survivors — requesters orphaned by a dead leader, or competitors
//     waiting on a dead counterpart's beacon — quantify the liveness cost;
//   * killing nodes AFTER convergence is entirely harmless.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "graph/coloring.h"

namespace {

// (1,·)-validity restricted to nodes that actually hold a color.
std::size_t colored_pair_violations(const sinrcolor::graph::UnitDiskGraph& g,
                                    const sinrcolor::graph::Coloring& coloring) {
  std::size_t violations = 0;
  for (const auto& v : sinrcolor::graph::find_coloring_violations(g, coloring)) {
    if (v.u != v.v) ++violations;  // skip "uncolored node" entries
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 250));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 4));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X14: crash-stop failures during the protocol",
      "decided colors stay valid under failures (safety is local); dead "
      "leaders can stall their orphaned requesters (bounded liveness cost)");

  common::Table table({"failure scenario", "killed(avg)", "stalled(avg)",
                       "decided(avg)", "color conflicts", "runs"});

  struct Scenario {
    const char* name;
    double fraction;
    double window_factor;  // failure window = factor · recommended horizon
  };
  const Scenario scenarios[] = {
      {"none (control)", 0.0, 0.0},
      {"5% early (listen phase)", 0.05, 0.02},
      {"10% early (listen phase)", 0.10, 0.02},
      {"10% spread over the run", 0.10, 0.6},
      {"20% spread over the run", 0.20, 0.6},
  };

  bool safety_ok = true;
  bool control_ok = true;
  double stalled_spread = 0.0;
  for (const auto& scenario : scenarios) {
    common::Accumulator killed, stalled, decided;
    std::size_t conflicts = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 14.0, 35000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 71000 + s;
      cfg.failure_fraction = scenario.fraction;
      // Estimate the horizon for the window from a throwaway instance.
      core::MwInstance probe(g, cfg);
      cfg.failure_window = static_cast<radio::Slot>(
          scenario.window_factor *
          static_cast<double>(probe.params().recommended_max_slots()) / 40.0);
      const auto r = core::run_mw_coloring(g, cfg);

      killed.add(static_cast<double>(r.metrics.failed_nodes));
      stalled.add(static_cast<double>(r.metrics.stalled_nodes));
      std::size_t done = 0;
      for (graph::Color c : r.coloring.color) done += (c != graph::kUncolored);
      decided.add(static_cast<double>(done));
      conflicts += colored_pair_violations(g, r.coloring);
      conflicts += r.independence_violations;
      if (scenario.fraction == 0.0) {
        control_ok &= r.coloring_valid && r.metrics.all_decided;
      }
    }
    safety_ok &= conflicts == 0;
    if (std::string(scenario.name).find("spread") != std::string::npos) {
      stalled_spread += stalled.mean();
    }
    table.add_row({scenario.name, common::Table::num(killed.mean(), 1),
                   common::Table::num(stalled.mean(), 1),
                   common::Table::num(decided.mean(), 1),
                   common::Table::integer(static_cast<long long>(conflicts)),
                   common::Table::integer(static_cast<long long>(seeds))});
  }
  table.print(std::cout);
  std::printf("(stalled survivors are requesters orphaned by a dead leader "
              "or competitors parked behind a dead neighbor's class — the "
              "liveness gap a failure-detector layer would close)\n");

  return bench::print_verdict(
      safety_ok && control_ok,
      "no color conflict ever appeared among decided nodes, with or without "
      "failures; the control runs stayed fully correct");
}
