// X10 — ablation of the paper's parameter relations. Each row disables one
// structural relation the analysis relies on and measures what breaks:
//   (1) κ (window/probability coupling): windows too short for a q-sender to
//       be heard w.h.p. ⇒ Theorem-1 violations (Case 1 of the proof fails).
//   (2) q_s = q_ℓ/Δ scaling: constant q_s ⇒ per-disc probability mass grows
//       with Δ, Eq. 1 / Lemma 3 break ⇒ deliveries collapse, violations.
//   (3) σ > 2γ (threshold vs window): threshold inside the reset window ⇒
//       Case 2 of Theorem 1's proof fails.
// The defaults (first row) must be clean; each ablation should degrade.
//
// All four configurations run over the SAME topologies: trial s of every
// configuration shares one cache-built graph (graph::TopologyCache), so the
// ablation comparison is paired by construction and each topology is built
// once instead of four times. Trials run through common::SweepEngine
// (`--sweep-threads=N`); results are byte-identical for every thread count.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/sweep.h"
#include "common/table.h"
#include "core/mw_params.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 4));
  const auto base_seed = cli.get_seed("seed", 10);
  const std::size_t threads = bench::sweep_threads(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X10: parameter ablations",
      "each paper relation, when broken, measurably degrades correctness; "
      "the default profile stays clean");

  common::Table table({"configuration", "violations", "invalid_runs",
                       "avg_latency", "note"});

  struct Outcome {
    std::size_t violations = 0;
    std::size_t invalid = 0;
    double latency = 0.0;
  };

  struct TrialOutcome {
    std::size_t violations = 0;
    bool invalid = false;
    double slots = 0.0;
  };

  common::SweepEngine engine(threads);

  auto run_with = [&](auto mutate) {
    const auto results = engine.run(
        seeds, base_seed, [&](const common::TrialContext& ctx) {
          // Same ctx.seed for trial s across all four configurations ⇒ same
          // cache key ⇒ one shared graph per trial, paired ablations.
          const auto g = bench::shared_uniform_graph_with_density(
              n, 16.0, common::derive_seed(ctx.seed, 0x67));
          core::MwConfig mw;
          mw.n = g->size();
          mw.max_degree = std::max<std::size_t>(g->max_degree(), 1);
          mw.phys = bench::phys_for_radius(g->radius());
          auto params = core::MwParams::practical(mw);
          mutate(params);

          core::MwRunConfig cfg;
          cfg.seed = common::derive_seed(ctx.seed, 0x70);  // 'p' — protocol
          cfg.params_override = params;
          const auto r = core::run_mw_coloring(*g, cfg);
          TrialOutcome out;
          out.violations = r.independence_violations;
          out.invalid = !(r.coloring_valid && r.metrics.all_decided);
          out.slots = static_cast<double>(r.metrics.slots_executed);
          return out;
        });
    Outcome outcome;
    for (const TrialOutcome& t : results) {
      outcome.violations += t.violations;
      outcome.invalid += t.invalid ? 1 : 0;
      outcome.latency += t.slots / static_cast<double>(seeds);
    }
    return outcome;
  };

  auto add_row = [&](const char* name, const Outcome& o, const char* note) {
    table.add_row({name,
                   common::Table::integer(static_cast<long long>(o.violations)),
                   common::Table::integer(static_cast<long long>(o.invalid)),
                   common::Table::num(o.latency, 0), note});
  };

  const auto baseline_run = run_with([](core::MwParams&) {});
  add_row("default practical profile", baseline_run, "expected clean");

  // (1) Shrink the windows 8x without touching anything else: a C-beacon is
  // no longer heard within the window ⇒ Case-1 leaks.
  const auto short_windows = run_with([](core::MwParams& p) {
    p.window_zero = std::max<std::int64_t>(1, p.window_zero / 8);
    p.window_positive = std::max<std::int64_t>(1, p.window_positive / 8);
  });
  add_row("windows / 8 (breaks q*window=Omega(ln n))", short_windows,
          "expect violations");

  // (2) Constant q_s (no 1/Δ scaling): per-disc probability mass ~Δ·q.
  const auto constant_qs = run_with([](core::MwParams& p) {
    p.q_small = p.q_leader;  // every competitor as loud as a leader
  });
  add_row("q_s = q_l (breaks Eq.1 budget)", constant_qs,
          "expect violations/stalls");

  // (3) Threshold inside the window: σ·window ⇒ 0.8·window.
  const auto low_threshold = run_with([](core::MwParams& p) {
    p.counter_threshold = std::max<std::int64_t>(2, (p.window_positive * 4) / 5);
  });
  add_row("threshold = 0.8*window (breaks sigma>2*gamma)", low_threshold,
          "expect violations");

  table.print(std::cout);
  std::printf("topology cache: %zu graphs built, %llu shared reuses\n",
              graph::global_topology_cache().size(),
              static_cast<unsigned long long>(
                  graph::global_topology_cache().hits()));

  const bool clean_default =
      baseline_run.violations == 0 && baseline_run.invalid == 0;
  const std::size_t degraded =
      static_cast<std::size_t>(short_windows.violations + short_windows.invalid > 0) +
      static_cast<std::size_t>(constant_qs.violations + constant_qs.invalid > 0) +
      static_cast<std::size_t>(low_threshold.violations + low_threshold.invalid > 0);
  std::printf("ablations that degraded correctness: %zu/3\n", degraded);
  return bench::print_verdict(
      clean_default && degraded >= 2,
      "default profile clean; breaking the paper's relations visibly "
      "degrades correctness");
}
