// X20 — tiled-slot-engine scale bench (engineering claim, not a paper claim):
// the simulator's spatially-tiled slot engine must (a) produce BYTE-IDENTICAL
// run JSON at --slot-threads=1 and --slot-threads=T on every medium
// (sinr | sinr+fading | graph), (b) keep the slot loop allocation-free in
// steady state at every size, and (c) complete a million-node run with
// measured bytes/node — the memory trajectory the SoA/arena layout buys
// (docs/PERFORMANCE.md, "Tiled slot engine").
//
// Two row families:
//  * convergence rows (--n-list): every medium, run to full convergence at
//    slot-threads 1 and T; the two reports are compared byte-for-byte and
//    both passes are timed (slots/sec, speedup = t1/tT).
//  * scale rows (--big-n, plain SINR only): slot-count capped (--big-slots) —
//    at 10^6 nodes the MW listen phase alone spans ⌈σΔ ln n⌉ slots, so these
//    rows measure ENGINE throughput and bytes/node honestly (all_decided is
//    expected false and not gated).
//
// Speedup is reported, not gated: on a 1-core host the deterministic tile
// engine cannot beat the sequential loop (the ordered merge adds work), and
// the honest number is the point. FAIL only on report divergence, a
// steady-state allocation (counting builds), or an incomplete run.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "core/report.h"

namespace {

using namespace sinrcolor;

struct Medium {
  const char* name;
  bool graph_model;
  bool fading;
};

constexpr Medium kMedia[] = {
    {"sinr", false, false},
    {"sinr+fading", false, true},
    {"graph", true, false},
};

struct RunOutcome {
  std::string report;        ///< full run JSON (per-node arrays included)
  std::uint64_t wall_us = 0;
  radio::RunMetrics metrics;
  bool coloring_valid = false;
};

}  // namespace

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const std::string n_list = cli.get("n-list", "1000,4000");
  const double avg = cli.get_double("avg-degree", 12.0);
  const auto seed = cli.get_seed("seed", 1);
  const auto slot_threads =
      static_cast<std::size_t>(cli.get_int_at_least("slot-threads", 4, 2));
  const auto big_n = static_cast<std::size_t>(cli.get_int("big-n", 0));
  const auto big_slots =
      static_cast<radio::Slot>(cli.get_int_at_least("big-slots", 64, 1));
  bench::MetricsSidecar sidecar(cli);
  sidecar.set_threads(slot_threads);
  cli.reject_unknown();

  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < n_list.size()) {
    const std::size_t comma = n_list.find(',', pos);
    const std::string tok =
        n_list.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0) {
      std::fprintf(stderr, "bad --n-list entry '%s'\n", tok.c_str());
      return 2;
    }
    sizes.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  bench::print_experiment_header(
      "X20: tiled slot engine at scale",
      "engineering — slot-threads 1 and T produce byte-identical run JSON on "
      "every medium, the slot loop stays allocation-free, and a million-node "
      "run completes with measured bytes/node");

  // One full protocol run. The sidecar observation is NEVER attached to
  // these runs: an attached tracer pins the simulator to the sequential
  // engine, which would make the threaded pass a no-op — aggregate counters
  // are recorded into the sidecar registry directly instead.
  const auto run_once = [&](const Medium& medium, std::size_t n,
                            std::size_t threads,
                            radio::Slot max_slots) -> RunOutcome {
    const auto g = bench::shared_uniform_graph_with_density(n, avg, seed);
    core::MwRunConfig cfg;
    cfg.seed = seed;
    cfg.graph_model = medium.graph_model;
    if (medium.fading) cfg.fading.kind = sinr::FadingKind::kLogNormal;
    cfg.slot_threads = threads;
    cfg.max_slots = max_slots;
    // The incremental Theorem-1 observer scans all n nodes every slot on the
    // slot-loop thread; validity is still checked once post-run.
    cfg.check_independence = false;
    RunOutcome out;
    bench::WallTimer timer;
    const core::MwRunResult r = core::run_mw_coloring(*g, cfg);
    out.wall_us = timer.elapsed_us();
    out.report = core::to_json(r);
    out.metrics = r.metrics;
    out.coloring_valid = r.coloring_valid;
    return out;
  };

  const auto slots_per_sec = [](const RunOutcome& o) {
    return o.wall_us > 0 ? static_cast<double>(o.metrics.slots_executed) *
                               1e6 / static_cast<double>(o.wall_us)
                         : 0.0;
  };

  common::Table table({"medium", "n", "slots", "t1_us",
                       std::string("t") + std::to_string(slot_threads) + "_us",
                       "speedup", "slots/sec", "bytes/node", "identical",
                       "decided"});
  std::size_t mismatches = 0;
  std::uint64_t slot_allocs = 0;
  std::size_t steady_violations = 0;
  std::size_t incomplete = 0;
  std::size_t invalid_colorings = 0;
  double headline_slots_per_sec = 0.0;
  double headline_speedup = 0.0;
  double headline_bytes_per_node = 0.0;
  std::size_t n_max = 0;

  const auto add_row = [&](const Medium& medium, std::size_t n,
                           radio::Slot max_slots, bool gate_decided) {
    const RunOutcome t1 = run_once(medium, n, 1, max_slots);
    const RunOutcome tn = run_once(medium, n, slot_threads, max_slots);
    const bool identical = t1.report == tn.report;
    if (!identical) ++mismatches;
    // Worker-side tile passes reuse pre-reserved buffers; the counter audits
    // the slot-loop thread, which owns every merge and resolve dispatch.
    slot_allocs += t1.metrics.slot_heap_allocs + tn.metrics.slot_heap_allocs;
    if (!t1.metrics.steady_state_alloc_free() ||
        !tn.metrics.steady_state_alloc_free()) {
      ++steady_violations;
    }
    if (gate_decided) {
      if (!t1.metrics.all_decided || !tn.metrics.all_decided) ++incomplete;
      if (!t1.coloring_valid || !tn.coloring_valid) ++invalid_colorings;
    }
    const double speedup =
        tn.wall_us > 0 ? static_cast<double>(t1.wall_us) /
                             static_cast<double>(tn.wall_us)
                       : 0.0;
    const double rate = slots_per_sec(tn);
    const double bpn = tn.metrics.bytes_per_node();
    table.add_row(
        {medium.name, common::Table::integer(static_cast<long long>(n)),
         common::Table::integer(
             static_cast<long long>(tn.metrics.slots_executed)),
         common::Table::integer(static_cast<long long>(t1.wall_us)),
         common::Table::integer(static_cast<long long>(tn.wall_us)),
         common::Table::num(speedup, 2), common::Table::num(rate, 0),
         common::Table::num(bpn, 0), identical ? "yes" : "NO",
         tn.metrics.all_decided ? "yes" : "no"});
    if (n >= n_max && !medium.graph_model && !medium.fading) {
      n_max = n;
      headline_slots_per_sec = rate;
      headline_speedup = speedup;
      headline_bytes_per_node = bpn;
    }
  };

  for (const std::size_t n : sizes) {
    for (const Medium& medium : kMedia) {
      add_row(medium, n, /*max_slots=*/0, /*gate_decided=*/true);
    }
  }
  if (big_n > 0) {
    add_row(kMedia[0], big_n, big_slots, /*gate_decided=*/false);
  }
  table.print(std::cout);

  const std::uint64_t rss = bench::peak_rss_bytes();
  std::printf("slot_threads=%zu avg_degree=%.1f seed=%llu peak_rss=%.1f MB\n",
              slot_threads, avg, static_cast<unsigned long long>(seed),
              static_cast<double>(rss) / (1024.0 * 1024.0));
  std::printf("report mismatches: %zu; incomplete converged rows: %zu; "
              "invalid colorings: %zu\n",
              mismatches, incomplete, invalid_colorings);
  if (common::alloc_counting_enabled()) {
    std::printf("slot-loop allocs: %llu total, %zu rows violating the "
                "steady-state contract (%s)\n",
                static_cast<unsigned long long>(slot_allocs),
                steady_violations,
                steady_violations == 0 ? "alloc-free steady state"
                                       : "ALLOCATING");
  }
  std::printf("headline (plain sinr, n=%zu, t%zu): %.0f slots/sec, "
              "speedup %.2fx over t1, %.0f bytes/node\n",
              n_max, slot_threads, headline_slots_per_sec, headline_speedup,
              headline_bytes_per_node);

  if (sidecar.observation() != nullptr) {
    auto& m = sidecar.observation()->metrics;
    m.counter("x20.slots_per_sec")
        .add(static_cast<std::uint64_t>(headline_slots_per_sec));
    m.counter("x20.speedup_permille")
        .add(static_cast<std::uint64_t>(headline_speedup * 1000.0));
    m.counter("x20.bytes_per_node")
        .add(static_cast<std::uint64_t>(headline_bytes_per_node));
    m.counter("x20.peak_rss_bytes").add(rss);
    m.counter("x20.n_max").add(n_max);
    m.counter("x20.slot_threads").add(slot_threads);
    m.counter("x20.mismatches").add(mismatches);
    m.counter("x20.slot_allocs").add(slot_allocs);
    m.counter("x20.steady_violations").add(steady_violations);
  }
  sidecar.write("x20_scale");

  const bool alloc_free =
      !common::alloc_counting_enabled() || steady_violations == 0;
  const bool pass = mismatches == 0 && incomplete == 0 &&
                    invalid_colorings == 0 && alloc_free;
  return bench::print_verdict(
      pass,
      mismatches > 0
          ? "slot-threads 1 and T produced DIFFERENT run JSON"
          : (incomplete > 0
                 ? "a convergence row failed to decide every node"
                 : (invalid_colorings > 0
                        ? "a converged run produced an invalid coloring"
                        : (alloc_free
                               ? "byte-identical reports across thread counts "
                                 "on every medium, slot loop alloc-free"
                               : "slot loop allocated in steady state"))));
}
