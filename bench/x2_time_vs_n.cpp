// X2 — Theorem 2 (time, growth in n): at fixed density (Δ ≈ const) the
// decision latency grows like O(Δ log n), i.e. ~logarithmically in n. We fit
// latency against Δ·ln n and report the normalized constant per row; the
// claim's shape holds iff the constant is flat (no super-logarithmic drift).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  const double avg = cli.get_double("avg-degree", 10.0);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  const std::string csv_path = cli.get("csv", "");
  core::MwRunConfig base_cfg;
  bench::apply_resolve_flags(cli, base_cfg);
  bench::MetricsSidecar sidecar(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X2: time vs n (fixed density)",
      "Theorem 2 — time is O(Delta log n): with Delta ~ constant, max "
      "decision latency grows ~ln n; latency/(Delta*ln n) stays flat");

  std::vector<std::size_t> sizes{64, 128, 256, 512, 1024};
  if (full) sizes.push_back(2048);

  common::Table table({"n", "Delta", "max_latency", "mean_latency",
                       "latency/(Delta*ln n)", "wall_ms", "valid"});
  std::vector<double> constants;
  bool all_valid = true;

  for (std::size_t n : sizes) {
    common::Accumulator delta_acc, max_lat, mean_lat, norm, wall_ms;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, avg, 2000 + s);
      core::MwRunConfig cfg = base_cfg;
      cfg.seed = 7000 + s;
      core::MwInstance instance(g, cfg);
      if (sidecar.observation() != nullptr) {
        instance.attach_observation(sidecar.observation());
      }
      const bench::WallTimer timer;
      const auto r = instance.run();
      const std::uint64_t us = timer.elapsed_us();
      wall_ms.add(static_cast<double>(us) / 1000.0);
      if (sidecar.observation() != nullptr) {
        auto& m = sidecar.observation()->metrics;
        m.counter("x2.wall_us.n=" + std::to_string(n)).add(us);
        m.counter("x2.runs.n=" + std::to_string(n)).add(1);
      }
      all_valid &= r.coloring_valid && r.metrics.all_decided;
      const double latency =
          static_cast<double>(r.metrics.max_decision_latency());
      const double dln = static_cast<double>(g.max_degree()) *
                         std::log(static_cast<double>(n));
      delta_acc.add(static_cast<double>(g.max_degree()));
      max_lat.add(latency);
      mean_lat.add(r.metrics.mean_decision_latency());
      norm.add(latency / dln);
    }
    constants.push_back(norm.mean());
    table.add_row({common::Table::integer(static_cast<long long>(n)),
                   common::Table::num(delta_acc.mean(), 1),
                   common::Table::num(max_lat.mean(), 0),
                   common::Table::num(mean_lat.mean(), 0),
                   common::Table::num(norm.mean(), 1),
                   common::Table::num(wall_ms.mean(), 1),
                   all_valid ? "yes" : "NO"});
  }
  table.print(std::cout);
  if (!csv_path.empty() && table.write_csv(csv_path)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  // Shape check: the normalized constant must not drift more than ~2.5x
  // across a 16x range of n (log-growth would keep it flat; linear growth in
  // n would blow it up ~16/ln-ratio ≈ 6x).
  double lo = constants.front(), hi = constants.front();
  for (double c : constants) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  std::printf("normalized constant range: [%.1f, %.1f] (ratio %.2f)\n", lo, hi,
              hi / lo);
  sidecar.write("x2_time_vs_n");
  const bool flat = hi / lo < 2.5;
  return bench::print_verdict(all_valid && flat,
                              flat ? "latency tracks Delta*ln n"
                                   : "latency grows faster than Delta*ln n");
}
